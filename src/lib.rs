#![warn(missing_docs)]
//! # boolsubst — Boolean division and substitution via RAR
//!
//! Umbrella crate re-exporting the `boolsubst` workspace: a reproduction of
//! Chang & Cheng, *"Efficient Boolean Division and Substitution"* (DAC'98 /
//! TCAD'99). See the workspace `README.md` for the architecture overview
//! and `DESIGN.md` for the per-experiment index.
//!
//! ```
//! use boolsubst::cube::parse_sop;
//! use boolsubst::core::{basic_divide_covers, DivisionOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Section I example: f = ab + ac + bc', d = ab + c.
//! let f = parse_sop(3, "ab + ac + bc'")?;
//! let d = parse_sop(3, "ab + c")?;
//! let div = basic_divide_covers(&f, &d, &DivisionOptions::default());
//! // Boolean division finds f = (a + b)·d + ... with 4 literals total.
//! assert!(div.verify(&f, &d));
//! # Ok(())
//! # }
//! ```

//! The blessed substitution surface is re-exported at the crate root:
//! [`Session`] is the one entry point for running a sweep, configured by
//! [`SubstOptions`]' builder methods.

pub use boolsubst_aig as aig;
pub use boolsubst_algebraic as algebraic;
pub use boolsubst_atpg as atpg;
pub use boolsubst_bdd as bdd;
pub use boolsubst_core as core;
pub use boolsubst_cube as cube;
pub use boolsubst_guard as guard;
pub use boolsubst_metrics as metrics;
pub use boolsubst_network as network;
pub use boolsubst_sat as sat;
pub use boolsubst_serve as serve;
pub use boolsubst_sim as sim;
pub use boolsubst_trace as trace;
pub use boolsubst_workloads as workloads;

pub use boolsubst_core::{
    all_configs, Acceptance, CandidateSource, Discovery, OverlapIndex, Session, SignatureClasses,
    SubstMode, SubstOptions, SubstStats,
};
pub use boolsubst_metrics::MetricsHandle;
pub use boolsubst_network::{egress, ingest, parse_blif, write_blif, Format, Network};
pub use boolsubst_trace::Tracer;
