//! `boolsubst` — command-line front end: optimize netlists (BLIF or
//! AIGER) with the paper's Boolean substitution, inspect statistics,
//! check equivalence, and play with cover-level division.
//!
//! File formats are auto-detected from the extension (`.blif`, `.aag`,
//! `.aig`); paths without a recognised extension are treated as BLIF.

use boolsubst::algebraic::{algebraic_resub, network_factored_literals, ResubOptions};
use boolsubst::atpg::{fault_coverage, rar_optimize, RarOptions};
use boolsubst::core::dontcare::{full_simplify, DontCareOptions};
use boolsubst::core::netcircuit::{network_from_circuit, NetCircuit};
use boolsubst::core::verify::{networks_equivalent, networks_equivalent_modulo_dc};
use boolsubst::core::{
    basic_divide_covers, extended_divide_covers, pos_divide_covers, DivisionOptions,
};
use boolsubst::core::{Discovery, Session, SubstOptions};
use boolsubst::cube::parse_sop;
use boolsubst::guard::TierPolicy;
use boolsubst::metrics::{json_snapshot_string, mem, prometheus_string, Heartbeat, MetricsHandle};
use boolsubst::network::{egress, ingest, write_blif, Format, Network};
use boolsubst::sat::{check_equivalence, EquivResult, SatOptions};
use boolsubst::trace::export::{chrome_trace_string, jsonl_string};
use boolsubst::trace::Tracer;
use boolsubst::workloads::scripts;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// With the `mem-profile` feature, route every allocation through the
/// counting allocator so `mem.live_bytes`/`mem.peak_bytes` are real
/// process-wide figures; without it the unit struct stays unused and the
/// system allocator is untouched.
#[cfg(feature = "mem-profile")]
#[global_allocator]
static ALLOC: mem::CountingAllocator = mem::CountingAllocator;

const USAGE: &str = "\
boolsubst — Boolean division and substitution via redundancy addition/removal

USAGE:
  boolsubst optimize <in> [--mode resub|basic|ext|ext-gdc]
                     [--script none|a|b|c] [--dc] [-o <out>] [--no-verify]
                     [--trace <out.jsonl>] [--chrome-trace <out.json>]
                     [--checked] [--deadline <secs>] [--threads <n>]
                     [--discovery overlap|signature|auto]
                     [--guard-tier sim|bdd|sat|auto] [--sat-conflicts <n>]
                     [--metrics <out.prom|out.json>] [--heartbeat <secs>]
  boolsubst stats <in>
  boolsubst check <a> <b> [--backend bdd|sat]
  boolsubst faults <in> [--vectors <n>] [--budget <n>]
  boolsubst rar <in> [-o <out>]
  boolsubst divide <num_vars> <f-sop> <d-sop> [--pos | --extended]
  boolsubst serve [--addr <host:port>] [--workers <n>] [--max-queue <n>]
                  [--tenant-cap <n>] [--journal <path>]
                  [--drain-deadline <secs>] [--default-deadline-ms <ms>]
                  [--threads-per-job <n>]

Netlist paths may be BLIF (.blif), ASCII AIGER (.aag) or binary AIGER
(.aig); the format is chosen by extension on both input and output.

EXAMPLES:
  boolsubst optimize circuit.blif --mode ext -o optimized.blif
  boolsubst optimize big.aig --mode basic -o optimized.aig
  boolsubst divide 3 \"ab + ac + bc'\" \"ab + c\"
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("optimize") => cmd_optimize(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("faults") => cmd_faults(&args[1..]),
        Some("rar") => cmd_rar(&args[1..]),
        Some("divide") => cmd_divide(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The format a path implies; unrecognised extensions keep the historic
/// behaviour of treating the file as BLIF.
fn format_of(path: &str) -> Format {
    Format::from_path(path).unwrap_or(Format::Blif)
}

fn read_network(path: &str) -> Result<Network, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let format = format_of(path);
    let model = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("net");
    ingest(&bytes, format, model).map_err(|e| format!("parsing {path} as {format}: {e}"))
}

/// Writes the network to `output` in the format its extension implies,
/// or prints BLIF on stdout when no output path was given.
fn write_network(net: &Network, output: Option<&str>) -> Result<(), String> {
    match output {
        Some(path) => {
            let bytes = egress(net, format_of(path));
            std::fs::write(path, bytes).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{}", write_blif(net)),
    }
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), String> {
    let mut input: Option<&str> = None;
    let mut output: Option<&str> = None;
    let mut mode = "ext";
    let mut script = "none";
    let mut verify = true;
    let mut dc = false;
    let mut trace_path: Option<&str> = None;
    let mut chrome_path: Option<&str> = None;
    let mut checked = false;
    let mut deadline_secs: Option<f64> = None;
    let mut threads = 1usize;
    let mut discovery: Option<Discovery> = None;
    let mut guard_tier: Option<TierPolicy> = None;
    let mut sat_conflicts: Option<u64> = None;
    let mut metrics_path: Option<&str> = None;
    let mut heartbeat_secs: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => mode = it.next().ok_or("--mode needs a value")?,
            "--script" => script = it.next().ok_or("--script needs a value")?,
            "-o" | "--output" => {
                output = Some(it.next().ok_or("-o needs a path")?);
            }
            "--no-verify" => verify = false,
            "--dc" => dc = true,
            "--trace" => trace_path = Some(it.next().ok_or("--trace needs a path")?),
            "--chrome-trace" => {
                chrome_path = Some(it.next().ok_or("--chrome-trace needs a path")?);
            }
            "--checked" => checked = true,
            "--deadline" => {
                let secs: f64 = it
                    .next()
                    .ok_or("--deadline needs a value in seconds")?
                    .parse()
                    .map_err(|_| "bad --deadline value")?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("bad --deadline value".into());
                }
                deadline_secs = Some(secs);
            }
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "bad --threads value")?;
                if threads == 0 {
                    return Err("bad --threads value (must be >= 1)".into());
                }
            }
            "--discovery" => {
                let name = it.next().ok_or("--discovery needs a value")?;
                discovery = Some(Discovery::from_name(name).ok_or_else(|| {
                    format!("unknown discovery {name:?} (use overlap|signature|auto)")
                })?);
            }
            "--guard-tier" => {
                let name = it.next().ok_or("--guard-tier needs a value")?;
                guard_tier = Some(TierPolicy::from_name(name).ok_or_else(|| {
                    format!("unknown guard tier {name:?} (use sim|bdd|sat|auto)")
                })?);
            }
            "--sat-conflicts" => {
                sat_conflicts = Some(
                    it.next()
                        .ok_or("--sat-conflicts needs a value")?
                        .parse()
                        .map_err(|_| "bad --sat-conflicts value")?,
                );
            }
            "--metrics" => metrics_path = Some(it.next().ok_or("--metrics needs a path")?),
            "--heartbeat" => {
                let secs: f64 = it
                    .next()
                    .ok_or("--heartbeat needs a value in seconds")?
                    .parse()
                    .map_err(|_| "bad --heartbeat value")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("bad --heartbeat value (must be > 0)".into());
                }
                heartbeat_secs = Some(secs);
            }
            other if input.is_none() => input = Some(other),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let input = input.ok_or("missing input file")?;
    let mut net = read_network(input)?;
    let golden = net.clone();
    let before = network_factored_literals(&net);

    match script {
        "none" => {}
        "a" => scripts::script_a(&mut net),
        "b" => scripts::script_b(&mut net),
        "c" => scripts::script_c(&mut net),
        other => return Err(format!("unknown script {other:?} (use none|a|b|c)")),
    }
    let after_script = network_factored_literals(&net);

    let tracing = trace_path.is_some() || chrome_path.is_some();
    let subst_opts = match mode {
        "resub" => {
            if tracing {
                return Err(
                    "--trace/--chrome-trace need a substitution mode (basic|ext|ext-gdc)".into(),
                );
            }
            if checked
                || deadline_secs.is_some()
                || threads > 1
                || discovery.is_some()
                || guard_tier.is_some()
                || sat_conflicts.is_some()
                || metrics_path.is_some()
                || heartbeat_secs.is_some()
            {
                return Err(
                    "--checked/--deadline/--threads/--discovery/--guard-tier/--sat-conflicts/--metrics/--heartbeat need a substitution mode (basic|ext|ext-gdc)"
                        .into(),
                );
            }
            algebraic_resub(&mut net, &ResubOptions::default());
            None
        }
        "basic" => Some(SubstOptions::basic()),
        "ext" => Some(SubstOptions::extended()),
        "ext-gdc" => Some(SubstOptions::extended_gdc()),
        other => {
            return Err(format!(
                "unknown mode {other:?} (use resub|basic|ext|ext-gdc)"
            ));
        }
    };
    if let Some(opts) = subst_opts {
        let mut opts = opts.with_checked(checked).with_threads(threads);
        if let Some(d) = discovery {
            opts = opts.with_discovery(d);
        }
        if let Some(tier) = guard_tier {
            opts = opts.with_guard_tier(tier);
        }
        if let Some(conflicts) = sat_conflicts {
            opts = opts.with_sat_conflicts(conflicts);
        }
        if let Some(secs) = deadline_secs {
            opts = opts.with_deadline(Instant::now() + Duration::from_secs_f64(secs));
        }
        let metrics_handle =
            (metrics_path.is_some() || heartbeat_secs.is_some()).then(MetricsHandle::new);
        let heartbeat = match (&metrics_handle, heartbeat_secs) {
            (Some(h), Some(secs)) => {
                Some(Heartbeat::start(h.clone(), Duration::from_secs_f64(secs)))
            }
            _ => None,
        };
        let mut tracer = tracing.then(|| Tracer::new(mode));
        let stats = {
            let mut session = Session::new(&mut net, opts);
            if let Some(h) = &metrics_handle {
                session = session.metrics(h);
            }
            if let Some(t) = tracer.as_mut() {
                session = session.tracer(t);
            }
            session.run()
        };
        drop(heartbeat);
        if let Some(tracer) = &tracer {
            eprintln!("{}", tracer.report());
            if let Some(path) = trace_path {
                std::fs::write(path, jsonl_string(tracer))
                    .map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("wrote {path}");
            }
            if let Some(path) = chrome_path {
                std::fs::write(path, chrome_trace_string(&[tracer]))
                    .map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("wrote {path}");
            }
        }
        if let Some(h) = &metrics_handle {
            // Fold the allocator's view in just before the snapshot so
            // the sinks carry final peak/live figures.
            mem::publish(h);
            if let Some(path) = metrics_path {
                let text = if path.ends_with(".json") {
                    json_snapshot_string(h)
                } else {
                    prometheus_string(h)
                };
                std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("wrote {path}");
            }
        }
        if discovery.is_some() {
            eprintln!(
                "discovery {}: {} proposed, {} bucket hit(s), {} proof(s) run, {} accepted",
                stats.discovery.name(),
                stats.discovery_proposed,
                stats.discovery_bucket_hits,
                stats.discovery_proofs_run,
                stats.discovery_accepted
            );
        }
        if checked {
            eprintln!(
                "checked apply: {} guard-rejected, {} engine fault(s), {} pair(s) quarantined, {} SAT-tier run(s), {} sampled pass(es)",
                stats.guard_rejections,
                stats.engine_faults,
                stats.quarantined,
                stats.guard_sat_runs,
                stats.guard_pass_sampled
            );
        }
        if stats.interrupted {
            eprintln!("deadline hit: sweep interrupted early (partial result is still verified)");
        }
    }
    if dc {
        let stats = full_simplify(&mut net, &DontCareOptions::default());
        eprintln!(
            "don't-care pass: {} ODC + {} SDC reductions, {} literals saved",
            stats.odc_reductions, stats.sdc_reductions, stats.literals_saved
        );
    }
    let after = network_factored_literals(&net);
    eprintln!("{input}: {before} -> {after_script} (script) -> {after} factored literals");
    if verify {
        if networks_equivalent_modulo_dc(&golden, &net) {
            eprintln!("verified: outputs unchanged (BDD)");
        } else {
            return Err("verification FAILED — refusing to write output".into());
        }
    }
    write_network(&net, output)
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing input file")?;
    let net = read_network(path)?;
    println!("model:            {}", net.name());
    println!("primary inputs:   {}", net.inputs().len());
    println!("primary outputs:  {}", net.outputs().len());
    println!("internal nodes:   {}", net.internal_ids().count());
    println!("SOP literals:     {}", net.sop_literals());
    println!("factored literals:{}", network_factored_literals(&net));
    let max_fanin = net
        .internal_ids()
        .map(|id| net.node(id).fanins().len())
        .max()
        .unwrap_or(0);
    println!("max fanin:        {max_fanin}");
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let mut backend = "bdd";
    let mut paths: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--backend" => backend = it.next().ok_or("--backend needs a value")?,
            other => paths.push(other),
        }
    }
    let [pa, pb] = paths.as_slice() else {
        return Err("check needs exactly two netlist files".into());
    };
    let (a, b) = (read_network(pa)?, read_network(pb)?);
    match backend {
        "bdd" => {
            if networks_equivalent(&a, &b) {
                println!("EQUIVALENT");
                Ok(())
            } else {
                Err("networks are NOT equivalent".into())
            }
        }
        "sat" => match check_equivalence(&a, &b, SatOptions::default()) {
            EquivResult::Equivalent => {
                println!("EQUIVALENT");
                Ok(())
            }
            EquivResult::Inequivalent { output, inputs } => {
                let witness: String = inputs.iter().map(|&v| if v { '1' } else { '0' }).collect();
                Err(format!(
                    "networks are NOT equivalent: output {output:?} differs on inputs {witness}"
                ))
            }
            EquivResult::InterfaceMismatch => {
                Err("networks have different input/output counts".into())
            }
            EquivResult::Unknown(_) => Err("SAT conflict budget exhausted: UNKNOWN".into()),
        },
        other => Err(format!("unknown backend {other:?} (use bdd|sat)")),
    }
}

fn cmd_faults(args: &[String]) -> Result<(), String> {
    let mut input: Option<&str> = None;
    let mut vectors = 256usize;
    let mut budget = 50_000usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--vectors" => {
                vectors = it
                    .next()
                    .ok_or("--vectors needs a value")?
                    .parse()
                    .map_err(|_| "bad --vectors value")?;
            }
            "--budget" => {
                budget = it
                    .next()
                    .ok_or("--budget needs a value")?
                    .parse()
                    .map_err(|_| "bad --budget value")?;
            }
            other if input.is_none() => input = Some(other),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let input = input.ok_or("missing input file")?;
    let net = read_network(input)?;
    let circuit = NetCircuit::build(&net).circuit;
    let report = fault_coverage(&circuit, vectors, 0xC07E, budget);
    let total = report.classes.len();
    println!("model:     {}", net.name());
    println!("faults:    {total}");
    println!("detected:  {}", report.detected);
    println!("redundant: {}", report.redundant);
    println!("aborted:   {}", report.aborted);
    println!(
        "coverage:  {:.2}% of testable faults",
        100.0 * report.coverage()
    );
    Ok(())
}

fn cmd_rar(args: &[String]) -> Result<(), String> {
    let mut input: Option<&str> = None;
    let mut output: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => output = Some(it.next().ok_or("-o needs a path")?),
            other if input.is_none() => input = Some(other),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let input = input.ok_or("missing input file")?;
    let net = read_network(input)?;
    let mut circuit = NetCircuit::build(&net).circuit;
    let gates_before = circuit.len();
    let stats = rar_optimize(&mut circuit, &RarOptions::default());
    eprintln!(
        "rar: {} addition(s), {} removal(s) over {} trial(s) ({} gates)",
        stats.additions, stats.removals, stats.trials, gates_before
    );
    let mut back = network_from_circuit(&circuit);
    back.sweep();
    // Safety net: the gate-level rewrites are proven, but re-verify the
    // round-tripped network against the input (input names differ, so
    // compare by simulation over all positions).
    let n = net.inputs().len();
    if n <= 16 {
        for m in 0u32..(1u32 << n) {
            let ins: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            if net.eval_outputs(&ins) != back.eval_outputs(&ins) {
                return Err("verification FAILED — refusing to write output".into());
            }
        }
        eprintln!("verified: outputs unchanged (exhaustive)");
    }
    write_network(&back, output)
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut config = boolsubst::serve::ServeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => config.addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--workers" => {
                config.workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|_| "bad --workers value")?;
            }
            "--max-queue" => {
                config.max_queue = it
                    .next()
                    .ok_or("--max-queue needs a value")?
                    .parse()
                    .map_err(|_| "bad --max-queue value")?;
            }
            "--tenant-cap" => {
                config.tenant_cap = it
                    .next()
                    .ok_or("--tenant-cap needs a value")?
                    .parse()
                    .map_err(|_| "bad --tenant-cap value")?;
            }
            "--journal" => {
                config.journal_path = it.next().ok_or("--journal needs a path")?.into();
            }
            "--drain-deadline" => {
                let secs: f64 = it
                    .next()
                    .ok_or("--drain-deadline needs a value in seconds")?
                    .parse()
                    .map_err(|_| "bad --drain-deadline value")?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("bad --drain-deadline value".into());
                }
                config.drain_deadline = Duration::from_secs_f64(secs);
            }
            "--default-deadline-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--default-deadline-ms needs a value")?
                    .parse()
                    .map_err(|_| "bad --default-deadline-ms value")?;
                config.default_deadline_ms = (ms > 0).then_some(ms);
            }
            "--threads-per-job" => {
                config.threads_per_job = it
                    .next()
                    .ok_or("--threads-per-job needs a value")?
                    .parse()
                    .map_err(|_| "bad --threads-per-job value")?;
                if config.threads_per_job == 0 {
                    return Err("bad --threads-per-job value (must be >= 1)".into());
                }
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let server = boolsubst::serve::Server::start(config).map_err(|e| format!("serve: {e}"))?;
    eprintln!(
        "boolsubst-serve listening on {} (POST /jobs, GET /metrics, POST /shutdown)",
        server.local_addr()
    );
    if server.serve_forever() {
        eprintln!("drained cleanly; journal synced");
    } else {
        eprintln!("drain deadline hit; unfinished jobs re-queue on next boot");
    }
    Ok(())
}

fn cmd_divide(args: &[String]) -> Result<(), String> {
    let mut pos = false;
    let mut extended = false;
    let mut positional: Vec<&String> = Vec::new();
    for a in args {
        match a.as_str() {
            "--pos" => pos = true,
            "--extended" => extended = true,
            _ => positional.push(a),
        }
    }
    let [nv, fs, ds] = positional.as_slice() else {
        return Err("divide needs: <num_vars> <f-sop> <d-sop>".into());
    };
    let n: usize = nv
        .parse()
        .map_err(|_| format!("bad variable count {nv:?}"))?;
    let f = parse_sop(n, fs).map_err(|e| e.to_string())?;
    let d = parse_sop(n, ds).map_err(|e| e.to_string())?;
    let opts = DivisionOptions::paper_default();
    if pos {
        let r = pos_divide_covers(&f, &d, &opts);
        let q = r.quotient_compl.complement();
        let rem = r.remainder_compl.complement();
        println!("f = (d + {q}) · ({rem})   [exact: {}]", r.verify(&f, &d));
    } else if extended {
        match extended_divide_covers(&f, &d, &opts) {
            Some(ext) => {
                println!("core divisor: {}", ext.core);
                println!(
                    "f = core·({}) + {}   [exact: {}]",
                    ext.division.quotient,
                    ext.division.remainder,
                    ext.division.verify(&f, &ext.core)
                );
            }
            None => println!("no useful core divisor found"),
        }
    } else {
        let r = basic_divide_covers(&f, &d, &opts);
        println!(
            "f = d·({}) + {}   [exact: {}]",
            r.quotient,
            r.remainder,
            r.verify(&f, &d)
        );
    }
    Ok(())
}
