//! The engine-facing filter: screening and counterexample refinement.

use crate::pool::{xorshift, PatternPool};
use crate::table::SimTable;
use crate::SimConfig;
use boolsubst_cube::{Cover, Phase};
use boolsubst_metrics::{Counter, MetricsHandle};
use boolsubst_network::{EvalScratch, Network, NodeId, SideTables};
use std::collections::HashMap;

/// Instruments resolved once at [`SimFilter::attach_metrics`] time.
/// Counters are atomic, so the read-only screening surface (shared
/// with sweep workers through `SimView`) can book screens through
/// `&self`. Observation only — screen verdicts are unaffected.
#[derive(Debug, Clone)]
struct SimMetrics {
    screens: Counter,
    refine_attempts: Counter,
    refinements: Counter,
}

/// Per-cube witness flags for one `(cover, divisor)` screen.
///
/// For cube `c` of the screened cover, `wit_div0[i]` records that some
/// pool pattern sets `c = 1` while the divisor evaluates to 0 — a
/// counterexample to "`c` is contained in a cube of the divisor", since a
/// containing cube would force the divisor on wherever `c` holds.
/// `wit_div1[i]` is the symmetric witness against containment in a cube
/// of the divisor's *complement*.
#[derive(Debug, Clone)]
pub struct CoverScreen {
    /// Witness `cube = 1 ∧ divisor = 0` found, per cube.
    pub wit_div0: Vec<bool>,
    /// Witness `cube = 1 ∧ divisor = 1` found, per cube.
    pub wit_div1: Vec<bool>,
}

impl CoverScreen {
    /// Every cube carries a `divisor = 0` witness: the whole cover is
    /// provably not contained cube-wise in the divisor, so the kept split
    /// of a basic (or extended) division against this divisor is empty.
    #[must_use]
    pub fn refutes_containment_in_divisor(&self) -> bool {
        self.wit_div0.iter().all(|&w| w)
    }

    /// Every cube carries a `divisor = 1` witness: symmetric refutation
    /// against the divisor's complement.
    #[must_use]
    pub fn refutes_containment_in_complement(&self) -> bool {
        self.wit_div1.iter().all(|&w| w)
    }
}

/// The engine's simulation filter: pattern pool, signature table, and the
/// counterexample-refinement machinery, behind one façade.
#[derive(Debug, Clone)]
pub struct SimFilter {
    config: SimConfig,
    pool: PatternPool,
    table: SimTable,
    scratch: EvalScratch,
    rng: u64,
    refinements: usize,
    /// Refinement *attempts*, successful or not. Bounded separately from
    /// `refinements` so that pairs whose witness genuinely does not exist
    /// (e.g. true containments that merely yielded no gain) cannot burn
    /// justification and simulation work on every false pass.
    attempts: usize,
    /// Lowest signature word invalidated by pool growth since the last
    /// [`SimFilter::flush`].
    pending_from: Option<usize>,
    metrics: Option<SimMetrics>,
}

impl SimFilter {
    /// Builds the pool and simulates the network.
    ///
    /// # Panics
    ///
    /// Panics if `config.exhaustive` is set and the network has more than
    /// 16 primary inputs.
    #[must_use]
    pub fn new(net: &Network, config: &SimConfig) -> SimFilter {
        let n = net.inputs().len();
        let pool = if config.exhaustive {
            PatternPool::exhaustive(n)
        } else {
            let reserve = config.reserve_words.min(config.words.saturating_sub(1));
            let base = config.words.max(1) - reserve;
            PatternPool::random(n, base, reserve, config.seed)
        };
        let table = SimTable::build(net, &pool);
        SimFilter {
            config: *config,
            pool,
            table,
            scratch: EvalScratch::default(),
            rng: config.seed ^ 0x9E37_79B9_7F4A_7C15,
            refinements: 0,
            attempts: 0,
            pending_from: None,
            metrics: None,
        }
    }

    /// Attaches a metrics registry: every subsequent screen books
    /// `sim.screens`, and refinement work books
    /// `sim.refine_attempts` / `sim.refinements` (pool growth).
    pub fn attach_metrics(&mut self, handle: &MetricsHandle) {
        self.metrics = Some(SimMetrics {
            screens: handle.counter("sim.screens"),
            refine_attempts: handle.counter("sim.refine_attempts"),
            refinements: handle.counter("sim.refinements"),
        });
    }

    /// Number of patterns currently in the pool.
    #[must_use]
    pub fn patterns(&self) -> usize {
        self.pool.patterns()
    }

    /// Signature width in words.
    #[must_use]
    pub fn words(&self) -> usize {
        self.pool.words()
    }

    /// Number of counterexample patterns harvested so far.
    #[must_use]
    pub fn refinements(&self) -> usize {
        self.refinements
    }

    /// The pattern pool behind the filter (validity masks for the
    /// signature-class index).
    pub(crate) fn pool(&self) -> &PatternPool {
        &self.pool
    }

    /// Direct access to a node's signature (primarily for tests).
    ///
    /// # Panics
    ///
    /// Panics if the table is stale.
    #[must_use]
    pub fn node_sig(&self, net: &Network, id: NodeId) -> &[u64] {
        self.table.sig(net, id)
    }

    /// Re-simulates the tail words invalidated by harvested patterns.
    /// Must be called before screening once patterns were added; a no-op
    /// otherwise.
    pub fn flush(&mut self, net: &Network) {
        if let Some(from) = self.pending_from.take() {
            self.table.resim_tail(net, &self.pool, from);
        }
    }

    /// Patches the signature table after an engine edit; `side` must
    /// already be synchronised. `seeds` are the rewired node ids. Returns
    /// the ids whose signature row actually changed (see
    /// [`SimTable::patch`]) so derived indexes can re-key exactly those.
    pub fn patch(&mut self, net: &Network, side: &SideTables, seeds: &[NodeId]) -> Vec<NodeId> {
        self.table.patch(net, side, &self.pool, seeds)
    }

    /// True when no harvested patterns are pending a [`SimFilter::flush`]
    /// — i.e. every cached signature word is current. Signature-class
    /// indexes must only be (re)built in this state, or bucket keys would
    /// bake in rotten tail words.
    #[must_use]
    pub fn is_flushed(&self) -> bool {
        self.pending_from.is_none()
    }

    /// Integrity audit (checked mode): re-derives each given node's cached
    /// signature row from its fanins' rows and compares. Returns false if
    /// any row has rotted — corruption the version-stamp protocol cannot
    /// see, because no edit happened.
    ///
    /// # Panics
    ///
    /// Panics if the table is stale or patterns are pending a
    /// [`SimFilter::flush`].
    #[must_use]
    pub fn audit(&self, net: &Network, ids: &[NodeId]) -> bool {
        assert!(self.pending_from.is_none(), "flush() patterns first");
        ids.iter().all(|&id| self.table.audit(net, &self.pool, id))
    }

    /// Rebuilds the signature table from scratch (deterministic repair
    /// after a failed audit; the pool, including harvested counterexample
    /// patterns, is kept).
    pub fn rebuild(&mut self, net: &Network) {
        self.pending_from = None;
        self.table = SimTable::build(net, &self.pool);
    }

    /// Flips one in-pool signature bit of `id` (fault injection for the
    /// chaos suite; see [`SimTable::chaos_poison`]).
    #[cfg(feature = "chaos")]
    pub fn chaos_poison_signature(&mut self, id: NodeId, pattern: usize) {
        let p = pattern % self.pool.patterns().max(1);
        self.table.chaos_poison(id, p);
    }

    /// Screens `cover` (over variables `vars`, e.g. a joint-space dividend
    /// or a node's local cover over its fanins) against `divisor`'s
    /// signature. Refute-only: a set flag is a proof, a clear flag means
    /// nothing.
    ///
    /// # Panics
    ///
    /// Panics if the table is stale or patterns are pending a
    /// [`SimFilter::flush`].
    #[must_use]
    pub fn screen_cover(
        &self,
        net: &Network,
        cover: &Cover,
        vars: &[NodeId],
        divisor: NodeId,
    ) -> CoverScreen {
        assert!(self.pending_from.is_none(), "flush() patterns first");
        if let Some(m) = &self.metrics {
            m.screens.inc();
        }
        let words = self.pool.words();
        let d = self.table.sig(net, divisor);
        let mut wit_div0 = vec![false; cover.len()];
        let mut wit_div1 = vec![false; cover.len()];
        for (ci, cube) in cover.cubes().iter().enumerate() {
            let mut w0 = false;
            let mut w1 = false;
            'words: for (w, &dw) in d.iter().enumerate().take(words) {
                // Start from the validity mask so complemented literals
                // cannot leak set bits beyond the pool.
                let mut acc = self.pool.mask(w);
                if acc == 0 {
                    continue;
                }
                for lit in cube.lits() {
                    let s = self.table.sig(net, vars[lit.var])[w];
                    acc &= match lit.phase {
                        Phase::Pos => s,
                        Phase::Neg => !s,
                    };
                    if acc == 0 {
                        continue 'words;
                    }
                }
                w0 |= acc & !dw != 0;
                w1 |= acc & dw != 0;
                if w0 && w1 {
                    break;
                }
            }
            wit_div0[ci] = w0;
            wit_div1[ci] = w1;
        }
        CoverScreen { wit_div0, wit_div1 }
    }

    /// Counterexample-guided refinement after a *false pass*: the screen
    /// let the pair `(target, divisor)` through, but the full check
    /// rejected it. Tries to harvest one input pattern that sets an
    /// unwitnessed cube of `target` to 1 with `divisor` at 0, so the next
    /// screen of a similar pair refutes without proof work.
    ///
    /// Justification is greedy and bounded; every candidate pattern is
    /// verified by simulation before entering the pool, so a wrong guess
    /// costs a miss, never soundness. Returns true if the pool grew.
    pub fn refine_from_false_pass(
        &mut self,
        net: &Network,
        target: NodeId,
        divisor: NodeId,
    ) -> bool {
        if self.refinements >= self.config.max_refinements
            || self.attempts >= self.config.max_refinements
            || self.pool.patterns() >= self.pool.capacity()
        {
            return false;
        }
        self.attempts += 1;
        if let Some(m) = &self.metrics {
            m.refine_attempts.inc();
        }
        self.flush(net);
        let node = net.node(target);
        let Some(cover) = node.cover() else {
            return false;
        };
        let fanins = node.fanins().to_vec();
        let screen = self.screen_cover(net, cover, &fanins, divisor);
        let Some(ci) = screen.wit_div0.iter().position(|&w| !w) else {
            return false;
        };
        let cube = cover.cubes()[ci].clone();

        // Justify "cube = 1" backwards to the primary inputs.
        let mut desired: HashMap<NodeId, bool> = HashMap::new();
        let mut budget = 256usize;
        for lit in cube.lits() {
            let want = matches!(lit.phase, Phase::Pos);
            if !justify(net, fanins[lit.var], want, &mut desired, &mut budget) {
                return false;
            }
        }

        // Fill the unconstrained inputs randomly and verify by simulation:
        // accept only a pattern that really exhibits cube = 1 ∧ d = 0.
        let n = net.inputs().len();
        for _ in 0..2 {
            let inputs: Vec<bool> = net
                .inputs()
                .iter()
                .map(|pi| {
                    desired
                        .get(pi)
                        .copied()
                        .unwrap_or_else(|| xorshift(&mut self.rng) & 1 == 1)
                })
                .collect();
            debug_assert_eq!(inputs.len(), n);
            let values = net.eval_into(&inputs, &mut self.scratch);
            let cube_on = cube
                .lits()
                .all(|l| values[fanins[l.var].index()] == matches!(l.phase, Phase::Pos));
            if cube_on && !values[divisor.index()] {
                if let Some(w) = self.pool.add_pattern(&inputs) {
                    self.pending_from = Some(self.pending_from.map_or(w, |p| p.min(w)));
                    self.refinements += 1;
                    if let Some(m) = &self.metrics {
                        m.refinements.inc();
                    }
                    return true;
                }
                return false;
            }
        }
        false
    }
}

/// A frozen, read-only screening view over a [`SimFilter`], shareable
/// across the parallel sweep's worker threads.
///
/// The view exposes exactly the filter surface whose answers are pure
/// functions of the shared state — the signature table over the shared
/// [`PatternPool`] — and none of the mutating machinery (flush, patch,
/// refinement). Construction asserts that no harvested patterns are
/// pending, so every screen taken through the view is identical to one
/// taken through the filter itself at freeze time.
#[derive(Debug, Clone, Copy)]
pub struct SimView<'a> {
    filter: &'a SimFilter,
}

// Worker threads share one view per epoch; the underlying filter must
// stay free of interior mutability for that to be sound. Compile-time pin:
const _: fn() = || {
    fn sync_only<T: Sync>() {}
    sync_only::<SimFilter>();
    sync_only::<SimView<'_>>();
};

impl<'a> SimView<'a> {
    /// Freezes `filter` for shared read-only screening.
    ///
    /// # Panics
    ///
    /// Panics if patterns are pending a [`SimFilter::flush`] — a frozen
    /// view of an unflushed filter would screen against rotten tails.
    #[must_use]
    pub fn freeze(filter: &'a SimFilter) -> SimView<'a> {
        assert!(filter.pending_from.is_none(), "flush() patterns first");
        SimView { filter }
    }

    /// Read-only [`SimFilter::screen_cover`] against the frozen state.
    #[must_use]
    pub fn screen_cover(
        &self,
        net: &Network,
        cover: &Cover,
        vars: &[NodeId],
        divisor: NodeId,
    ) -> CoverScreen {
        self.filter.screen_cover(net, cover, vars, divisor)
    }

    /// The underlying filter, for call sites that only hold the view.
    #[must_use]
    pub fn filter(&self) -> &'a SimFilter {
        self.filter
    }
}

/// Greedy bounded backward justification of `node = value`. Records the
/// chosen assignments in `desired`; conflicts or an exhausted budget fail
/// the whole attempt (the caller's simulation check is the safety net).
fn justify(
    net: &Network,
    node: NodeId,
    value: bool,
    desired: &mut HashMap<NodeId, bool>,
    budget: &mut usize,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    if let Some(&v) = desired.get(&node) {
        return v == value;
    }
    desired.insert(node, value);
    let n = net.node(node);
    let Some(cover) = n.cover() else {
        return true; // primary input: freely assignable
    };
    let fanins = n.fanins();
    if value {
        // Satisfy the first cube (greedy: no backtracking across cubes).
        let Some(cube) = cover.cubes().first() else {
            return false; // constant-0 node cannot be driven to 1
        };
        cube.lits().all(|l| {
            justify(
                net,
                fanins[l.var],
                matches!(l.phase, Phase::Pos),
                desired,
                budget,
            )
        })
    } else {
        // Falsify every cube: find or create one opposing literal each.
        'cubes: for cube in cover.cubes() {
            for l in cube.lits() {
                let want = matches!(l.phase, Phase::Pos);
                if desired.get(&fanins[l.var]) == Some(&!want) {
                    continue 'cubes;
                }
            }
            for l in cube.lits() {
                let want = matches!(l.phase, Phase::Pos);
                if !desired.contains_key(&fanins[l.var])
                    && justify(net, fanins[l.var], !want, desired, budget)
                {
                    continue 'cubes;
                }
            }
            return false; // cube forced on by prior choices
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_cube::parse_sop;

    /// f is a single wide cube over eight inputs and g = a', so `f = 1`
    /// forces `g = 0`: the div0 witness exists only where all eight
    /// inputs are 1 — rare enough (1 in 256) that a small random pool
    /// plausibly misses it.
    fn craft() -> (Network, NodeId, NodeId) {
        let mut net = Network::new("craft");
        let pis: Vec<NodeId> = ('a'..='h')
            .map(|c| net.add_input(c.to_string()).expect("pi"))
            .collect();
        let f = net
            .add_node("t", pis.clone(), parse_sop(8, "abcdefgh").expect("p"))
            .expect("t");
        let g = net
            .add_node("dvr", vec![pis[0]], parse_sop(1, "a'").expect("p"))
            .expect("dvr");
        net.add_output("t", f).expect("of");
        net.add_output("dvr", g).expect("og");
        (net, f, g)
    }

    #[test]
    fn exhaustive_screen_is_exact_on_craft() {
        let (net, f, g) = craft();
        let filter = SimFilter::new(&net, &SimConfig::exhaustive());
        let cover = net.node(f).cover().expect("cover").clone();
        let fanins = net.node(f).fanins().to_vec();
        let screen = filter.screen_cover(&net, &cover, &fanins, g);
        // abc = 1 forces g = a' = 0: the div0 witness exists, div1 cannot.
        assert!(screen.refutes_containment_in_divisor());
        assert!(!screen.refutes_containment_in_complement());
    }

    #[test]
    fn refinement_grows_pool_when_witness_missing() {
        let (net, f, g) = craft();
        // One seeded word, one reserve word. Seed chosen so the 64 random
        // patterns miss a = b = c = 1 (verified by the assert below).
        let config = SimConfig {
            words: 2,
            reserve_words: 1,
            seed: 0x00C0_FFEE,
            ..SimConfig::default()
        };
        let mut filter = SimFilter::new(&net, &config);
        let cover = net.node(f).cover().expect("cover").clone();
        let fanins = net.node(f).fanins().to_vec();
        let before = filter.screen_cover(&net, &cover, &fanins, g);
        assert!(
            !before.refutes_containment_in_divisor(),
            "seed must miss the witness for this regression test"
        );
        let patterns_before = filter.patterns();
        assert!(filter.refine_from_false_pass(&net, f, g));
        assert_eq!(filter.patterns(), patterns_before + 1);
        filter.flush(&net);
        let after = filter.screen_cover(&net, &cover, &fanins, g);
        assert!(
            after.refutes_containment_in_divisor(),
            "harvested pattern must sharpen the screen"
        );
    }
}
