//! Per-node signature table with version-checked incremental re-simulation.

use crate::pool::PatternPool;
use boolsubst_cube::Phase;
use boolsubst_network::{Network, NodeId, SideTables, VersionStamp};
use std::collections::{BTreeSet, HashMap};

/// Dense table of simulation signatures, one `words`-wide row per
/// [`NodeId::index`].
///
/// Maintenance mirrors [`SideTables`]: the table is built once per sweep
/// session and *patched* after each accepted edit ([`SimTable::patch`]
/// re-simulates only the invalidated cone, in level order, stopping where
/// signatures come out unchanged). Every query goes through the shared
/// [`VersionStamp`], so a stale read is a panic, not a wrong filter
/// decision.
#[derive(Debug, Clone)]
pub struct SimTable {
    stamp: VersionStamp,
    words: usize,
    sigs: Vec<u64>,
    /// Position of each primary input in `Network::inputs()` order.
    input_pos: HashMap<NodeId, usize>,
    /// Cached topological order for whole-table passes, keyed on the
    /// network version (orders survive pool growth but not edits).
    order: Vec<NodeId>,
    order_version: u64,
}

impl SimTable {
    /// Simulates the whole network over the pool's patterns.
    #[must_use]
    pub fn build(net: &Network, pool: &PatternPool) -> SimTable {
        let words = pool.words();
        let mut table = SimTable {
            stamp: VersionStamp::new(net),
            words,
            sigs: vec![0; net.id_bound() * words],
            input_pos: net
                .inputs()
                .iter()
                .enumerate()
                .map(|(k, &id)| (id, k))
                .collect(),
            order: net.topo_order(),
            order_version: net.version(),
        };
        for i in 0..table.order.len() {
            let id = table.order[i];
            table.recompute(net, pool, id, 0);
        }
        table
    }

    /// Signature width in words.
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// The signature row of `id`.
    ///
    /// # Panics
    ///
    /// Panics if the table is stale.
    #[must_use]
    pub fn sig(&self, net: &Network, id: NodeId) -> &[u64] {
        self.stamp.check(net, "SimTable");
        self.row(id)
    }

    fn row(&self, id: NodeId) -> &[u64] {
        &self.sigs[id.index() * self.words..(id.index() + 1) * self.words]
    }

    /// Recomputes words `from..words` of `id`'s signature from its fanins'
    /// current rows; returns true if any word changed.
    fn recompute(&mut self, net: &Network, pool: &PatternPool, id: NodeId, from: usize) -> bool {
        let node = net.node(id);
        let base = id.index() * self.words;
        let mut changed = false;
        match node.cover() {
            None => {
                let k = self.input_pos[&id];
                let src = pool.input_sig(k);
                for (w, &s) in src.iter().enumerate().take(self.words).skip(from) {
                    if self.sigs[base + w] != s {
                        self.sigs[base + w] = s;
                        changed = true;
                    }
                }
            }
            Some(cover) => {
                let fanins = node.fanins();
                for w in from..self.words {
                    let mask = pool.mask(w);
                    let mut or = 0u64;
                    for cube in cover.cubes() {
                        // Starting from the validity mask keeps bits beyond
                        // the pool zero even through complemented literals.
                        let mut acc = mask;
                        for lit in cube.lits() {
                            let s = self.sigs[fanins[lit.var].index() * self.words + w];
                            acc &= match lit.phase {
                                Phase::Pos => s,
                                Phase::Neg => !s,
                            };
                            if acc == 0 {
                                break;
                            }
                        }
                        or |= acc;
                    }
                    if self.sigs[base + w] != or {
                        self.sigs[base + w] = or;
                        changed = true;
                    }
                }
            }
        }
        changed
    }

    /// Integrity audit: re-derives `id`'s signature from its fanins'
    /// cached rows (or the pool, for a primary input) and compares it with
    /// the stored row, without mutating the table. Returns false when the
    /// cached row has rotted — the checked engine's defence against silent
    /// signature corruption, which the version stamp cannot see.
    ///
    /// # Panics
    ///
    /// Panics if the table is stale.
    #[must_use]
    pub fn audit(&self, net: &Network, pool: &PatternPool, id: NodeId) -> bool {
        self.stamp.check(net, "SimTable");
        let node = net.node(id);
        let row = self.row(id);
        match node.cover() {
            None => {
                let src = pool.input_sig(self.input_pos[&id]);
                (0..self.words).all(|w| row[w] == src[w])
            }
            Some(cover) => {
                let fanins = node.fanins();
                (0..self.words).all(|w| {
                    let mask = pool.mask(w);
                    let mut or = 0u64;
                    for cube in cover.cubes() {
                        let mut acc = mask;
                        for lit in cube.lits() {
                            let s = self.sigs[fanins[lit.var].index() * self.words + w];
                            acc &= match lit.phase {
                                Phase::Pos => s,
                                Phase::Neg => !s,
                            };
                            if acc == 0 {
                                break;
                            }
                        }
                        or |= acc;
                    }
                    row[w] == or
                })
            }
        }
    }

    /// Flips one in-pool bit of `id`'s cached signature row — fault
    /// injection for the chaos suite. The version stamp is deliberately
    /// left untouched: this is exactly the silent cache rot
    /// [`SimTable::audit`] exists to catch.
    #[cfg(feature = "chaos")]
    pub fn chaos_poison(&mut self, id: NodeId, pattern: usize) {
        let base = id.index() * self.words;
        self.sigs[base + pattern / 64] ^= 1u64 << (pattern % 64);
    }

    /// Re-simulates words `from..words` for every node (used after the
    /// pattern pool grew into a previously empty or partial word).
    ///
    /// # Panics
    ///
    /// Panics if the table is stale or the pool width changed.
    pub fn resim_tail(&mut self, net: &Network, pool: &PatternPool, from: usize) {
        self.stamp.check(net, "SimTable");
        assert_eq!(pool.words(), self.words, "pool width changed");
        if self.order_version != net.version() {
            self.order = net.topo_order();
            self.order_version = net.version();
        }
        for i in 0..self.order.len() {
            let id = self.order[i];
            self.recompute(net, pool, id, from);
        }
    }

    /// Patches the table after an engine edit: extends it over freshly
    /// created nodes and re-simulates the cone downstream of `seeds` (the
    /// rewired nodes) in level order, pruning wherever a recomputed
    /// signature is unchanged. `side` must already be synchronised with
    /// the network.
    ///
    /// Returns the ids whose cached row actually changed (including every
    /// fresh node), sorted and deduplicated — the exact set a derived
    /// index such as [`crate::SignatureBuckets`] must re-key. Seeds whose
    /// recomputed signature came out identical are *not* in the list.
    pub fn patch(
        &mut self,
        net: &Network,
        side: &SideTables,
        pool: &PatternPool,
        seeds: &[NodeId],
    ) -> Vec<NodeId> {
        let old_bound = self.sigs.len() / self.words;
        if net.id_bound() > old_bound {
            self.sigs.resize(net.id_bound() * self.words, 0);
        }
        // (level, id) ordering guarantees every fanin is final before a
        // node is popped: insertions only ever target strictly higher
        // levels than the node being processed.
        let mut work: BTreeSet<(u32, NodeId)> = BTreeSet::new();
        for id in net.node_ids() {
            if id.index() >= old_bound {
                work.insert((side.level(net, id), id));
            }
        }
        for &s in seeds {
            if net.node_opt(s).is_some() {
                work.insert((side.level(net, s), s));
            }
        }
        let fresh_bound = old_bound;
        let mut touched: Vec<NodeId> = Vec::new();
        while let Some((_, id)) = work.pop_first() {
            let changed = self.recompute(net, pool, id, 0);
            if changed || id.index() >= fresh_bound {
                touched.push(id);
                for &o in side.fanouts(net, id) {
                    work.insert((side.level(net, o), o));
                }
            }
        }
        self.stamp.mark(net);
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    /// True if no edit has happened since the last synchronisation.
    #[must_use]
    pub fn is_synced(&self, net: &Network) -> bool {
        self.stamp.is_synced(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_cube::parse_sop;
    use boolsubst_network::EvalScratch;

    fn sample() -> Network {
        let mut net = Network::new("t");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let c = net.add_input("c").expect("c");
        let g = net
            .add_node("g", vec![a, b], parse_sop(2, "ab").expect("p"))
            .expect("g");
        let h = net
            .add_node("h", vec![g, c], parse_sop(2, "a + b'").expect("p"))
            .expect("h");
        net.add_output("h", h).expect("o");
        net
    }

    /// Every signature bit must equal a scalar evaluation of the node on
    /// the corresponding pool pattern.
    fn assert_matches_eval(net: &Network, pool: &PatternPool, table: &SimTable) {
        let n = net.inputs().len();
        let mut scratch = EvalScratch::default();
        for m in 0..pool.patterns() {
            let inputs: Vec<bool> = (0..n)
                .map(|k| (pool.input_sig(k)[m / 64] >> (m % 64)) & 1 == 1)
                .collect();
            let values = net.eval_into(&inputs, &mut scratch).to_vec();
            for id in net.node_ids() {
                let bit = (table.sig(net, id)[m / 64] >> (m % 64)) & 1 == 1;
                assert_eq!(bit, values[id.index()], "node {id} pattern {m}");
            }
        }
    }

    #[test]
    fn build_matches_scalar_eval() {
        let net = sample();
        for pool in [PatternPool::random(3, 2, 0, 99), PatternPool::exhaustive(3)] {
            let table = SimTable::build(&net, &pool);
            assert_matches_eval(&net, &pool, &table);
        }
    }

    #[test]
    fn patch_matches_rebuild() {
        let mut net = sample();
        let pool = PatternPool::exhaustive(3);
        let mut side = SideTables::build(&net);
        let mut table = SimTable::build(&net, &pool);
        // Rewire h from (g, c) to (a, c) and add a new node, the way an
        // accepted substitution would.
        let a = net.inputs()[0];
        let c = net.inputs()[2];
        let h = *net
            .internal_ids()
            .collect::<Vec<_>>()
            .last()
            .expect("internal");
        let m = net
            .add_node("m", vec![a, c], parse_sop(2, "ab'").expect("p"))
            .expect("m");
        let old = net.node(h).fanins().to_vec();
        net.replace_function(h, vec![m, c], parse_sop(2, "a + b").expect("p"))
            .expect("replace");
        side.sync_new_nodes(&net);
        side.apply_replace(&net, h, &old);
        table.patch(&net, &side, &pool, &[h]);
        assert_matches_eval(&net, &pool, &table);
        let rebuilt = SimTable::build(&net, &pool);
        for id in net.node_ids() {
            assert_eq!(table.sig(&net, id), rebuilt.sig(&net, id), "node {id}");
        }
    }

    #[test]
    fn stale_query_panics() {
        let mut net = sample();
        let pool = PatternPool::exhaustive(3);
        let table = SimTable::build(&net, &pool);
        let a = net.inputs()[0];
        let g = net.internal_ids().next().expect("internal");
        net.replace_function(g, vec![a], parse_sop(1, "a'").expect("p"))
            .expect("replace");
        let result = std::panic::catch_unwind(|| table.sig(&net, a).len());
        assert!(result.is_err(), "stale sig query must panic");
    }

    #[test]
    fn audit_accepts_healthy_rows() {
        let net = sample();
        for pool in [PatternPool::random(3, 2, 0, 7), PatternPool::exhaustive(3)] {
            let table = SimTable::build(&net, &pool);
            for id in net.node_ids() {
                assert!(table.audit(&net, &pool, id), "healthy row flagged: {id}");
            }
        }
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn audit_detects_poisoned_row() {
        let net = sample();
        let pool = PatternPool::exhaustive(3);
        let mut table = SimTable::build(&net, &pool);
        let g = net.internal_ids().next().expect("internal");
        assert!(table.audit(&net, &pool, g));
        table.chaos_poison(g, 3);
        assert!(!table.audit(&net, &pool, g), "poisoned row must be caught");
        assert!(
            table.is_synced(&net),
            "poison must be invisible to the version stamp"
        );
    }

    #[test]
    fn resim_tail_picks_up_new_patterns() {
        let net = sample();
        let mut pool = PatternPool::random(3, 1, 1, 5);
        let mut table = SimTable::build(&net, &pool);
        let w = pool
            .add_pattern(&[true, true, false])
            .expect("reserve capacity");
        table.resim_tail(&net, &pool, w);
        assert_matches_eval(&net, &pool, &table);
    }
}
