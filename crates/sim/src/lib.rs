#![warn(missing_docs)]
//! # boolsubst-sim — word-parallel simulation signatures
//!
//! Bit-parallel simulation of a [`boolsubst_network::Network`] over a
//! seeded, deterministic pattern pool: every node carries a *signature* of
//! `64 × words` sampled output bits, computed 64 patterns at a time with
//! plain `u64` logic ops. The substitution engine uses the signatures as a
//! **refute-only** pre-filter for division candidates:
//!
//! - a universally quantified claim ("cube `c` of the dividend is
//!   contained in some cube of the divisor `d`") is *refuted* by a single
//!   witness pattern with `c = 1 ∧ d = 0`;
//! - no sampled witness proves nothing, so every pair that survives the
//!   screen still runs the full implication/ATPG proof.
//!
//! Because a refutation is an exact evaluation of both functions on a
//! concrete assignment, the screen is sound for *any* pattern pool: the
//! pool's quality only affects how many incompatible pairs are caught
//! early, never correctness. That also makes counterexample-guided
//! refinement safe — when the screen passes a pair the full check then
//! rejects (a *false pass*), [`SimFilter::refine_from_false_pass`]
//! harvests a distinguishing assignment into the pool, sharpening the
//! filter as the sweep runs.
//!
//! The signature table is maintained incrementally across engine edits
//! with the same version-checked patch protocol as
//! [`boolsubst_network::SideTables`] (see [`SimTable::patch`]): stale
//! queries panic instead of returning wrong bits.
//!
//! Beyond refutation, the signatures also *propose*: [`SignatureBuckets`]
//! hashes every internal node's canonical-form signature into equal /
//! complement / containment classes, giving the engine's signature
//! discovery mode its near-linear divisor candidates (see `classes`
//! module docs).

mod classes;
mod filter;
mod pool;
mod table;

pub use classes::{sig_compatible, Proposal, SignatureBuckets};
pub use filter::{CoverScreen, SimFilter, SimView};
pub use pool::PatternPool;
pub use table::SimTable;

/// Configuration for the simulation filter; rides inside the engine's
/// `SubstOptions` (cheap plain-data `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Master switch; when false the engine builds no filter at all.
    pub enabled: bool,
    /// Total signature width in 64-bit words (including reserve).
    pub words: usize,
    /// Tail words kept empty at start as capacity for harvested
    /// counterexample patterns. Clamped to `words - 1`.
    pub reserve_words: usize,
    /// Seed for the deterministic pattern pool and refinement fills.
    pub seed: u64,
    /// Ignore `words`/`reserve_words` and enumerate all `2^n` input
    /// minterms (networks with at most 16 inputs). Intended for tests:
    /// an exhaustive pool makes the refute-only screen *exact*.
    pub exhaustive: bool,
    /// Upper bound on harvested counterexample patterns per run.
    pub max_refinements: usize,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            enabled: true,
            words: 4,
            reserve_words: 1,
            seed: 0x5EED_B001_0001,
            exhaustive: false,
            max_refinements: 64,
        }
    }
}

impl SimConfig {
    /// A disabled configuration (engine runs unfiltered).
    #[must_use]
    pub fn disabled() -> SimConfig {
        SimConfig {
            enabled: false,
            ..SimConfig::default()
        }
    }

    /// An exhaustive configuration: all `2^n` minterms, no reserve.
    #[must_use]
    pub fn exhaustive() -> SimConfig {
        SimConfig {
            exhaustive: true,
            ..SimConfig::default()
        }
    }
}
