//! Signature-class buckets for simulation-guided divisor discovery
//! ("sim-resub", arXiv 2007.02579).
//!
//! Every internal node's masked signature row is reduced to a *canonical
//! form* — the row is complemented wholesale when its first in-pool bit is
//! set — so a function and its complement hash to the same key. Two hash
//! keys are derived per node:
//!
//! * the **equality key** over the full canonical row: nodes sharing it
//!   are (modulo hash collisions) equal or complementary on every pool
//!   pattern — prime divisor candidates;
//! * the **truncated key** over the canonical first word only: a coarser
//!   bucket inside which full-row subset tests find containment-related
//!   candidates (`t ⊆ o`, `o ⊆ t`, disjointness, and covering) without an
//!   all-pairs scan.
//!
//! The index is a pure accelerator: collisions and misses only change
//! *which* pairs get proposed, never what the division proof accepts. It
//! participates in the same invalidation discipline as [`SimTable`]: it
//! records the network version and pool size it was built against, is
//! patched incrementally from the changed-row list [`SimTable::patch`]
//! returns, and falls back to a full rebuild whenever the recorded state
//! cannot be proven current (foreign edit, pool growth).
//!
//! [`SimTable`]: crate::SimTable
//! [`SimTable::patch`]: crate::SimTable::patch

use std::collections::HashMap;

use boolsubst_network::{Network, NodeId};

use crate::SimFilter;

/// Divisor candidates proposed for one target, plus the funnel counter.
#[derive(Debug, Clone, Default)]
pub struct Proposal {
    /// Proposed divisor ids, sorted and deduplicated.
    pub divisors: Vec<NodeId>,
    /// Bucket members scanned to produce the proposal (equality-class
    /// peers plus truncated-bucket peers subjected to subset tests).
    pub bucket_hits: usize,
}

/// At most this many containment candidates are collected per target from
/// the truncated bucket, and at most this many equality-class peers per
/// call. Keeps a degenerate class (constant-heavy netlists, multiplier
/// partial-product arrays) from re-creating the all-pairs scan this index
/// exists to avoid: a class of `c` members costs `O(c · CAP)` proposals
/// across the sweep instead of `O(c²)`. The `cursor` resume protocol
/// still reaches every peer eventually — each re-enumeration after an
/// acceptance collects the next `CAP` past the cursor.
const CLASS_CAP: usize = 64;

/// True when the two nodes' signature rows stand in at least one of the
/// four phase relations divisor discovery cares about — `t ⊆ o`, `o ⊆ t`,
/// disjointness (`t ⊆ !o`) or covering (`!o ⊆ t`) — on every in-pool
/// pattern. Equality and complement are the two-sided special cases, so a
/// pair passing none of the tests is witnessed non-substitutable by the
/// pool and not worth a division proof as-is. [`SignatureBuckets::propose`]
/// applies this inside truncated buckets; it is exported for any caller
/// wanting the same whole-row compatibility check.
#[must_use]
pub fn sig_compatible(net: &Network, filter: &SimFilter, target: NodeId, other: NodeId) -> bool {
    let t_sig = filter.node_sig(net, target);
    let o_sig = filter.node_sig(net, other);
    let pool = filter.pool();
    let mut sub_to = true; // t & !o == 0
    let mut sub_from = true; // o & !t == 0
    let mut disjoint = true; // t & o == 0
    let mut covering = true; // !t & !o == 0
    for (w, (&t, &o)) in t_sig.iter().zip(o_sig.iter()).enumerate() {
        let m = pool.mask(w);
        sub_to &= t & !o & m == 0;
        sub_from &= o & !t & m == 0;
        disjoint &= t & o & m == 0;
        covering &= !t & !o & m == 0;
        if !(sub_to || sub_from || disjoint || covering) {
            return false;
        }
    }
    sub_to || sub_from || disjoint || covering
}

fn mix(mut h: u64, w: u64) -> u64 {
    h ^= w;
    h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 32;
    h.wrapping_mul(0xBF58_476D_1CE4_E5B9)
}

const EQ_SEED: u64 = 0x5167_C1A5_5E5B_0001;
const TRUNC_SEED: u64 = 0x5167_C1A5_5E5B_0002;

/// Hash index of per-node signature classes (see the module docs).
///
/// Build or refresh with [`SignatureBuckets::ensure`], carry across an
/// accepted edit with [`SignatureBuckets::apply_commit`], query with
/// [`SignatureBuckets::propose`], and audit with
/// [`SignatureBuckets::matches_rebuild`]. The filter handed to every
/// method must be flushed ([`SimFilter::is_flushed`]); keys derived from
/// half-simulated tail words would silently misfile nodes.
#[derive(Debug, Default)]
pub struct SignatureBuckets {
    /// Network version the index matches; `None` until first built.
    version: Option<u64>,
    /// Pool pattern count the keys were derived from.
    patterns: usize,
    /// Equality key → member ids, each vec sorted.
    eq: HashMap<u64, Vec<NodeId>>,
    /// Truncated key → member ids, each vec sorted.
    trunc: HashMap<u64, Vec<NodeId>>,
    /// Member → its (equality, truncated) keys, for O(1) re-keying.
    membership: HashMap<NodeId, (u64, u64)>,
    /// Full rebuilds performed (first build included).
    rebuilds: usize,
}

impl SignatureBuckets {
    /// An empty index; the first [`SignatureBuckets::ensure`] builds it.
    #[must_use]
    pub fn new() -> SignatureBuckets {
        SignatureBuckets::default()
    }

    /// Number of indexed nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.membership.len()
    }

    /// True when no nodes are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.membership.is_empty()
    }

    /// Full rebuilds performed so far (the first build counts).
    #[must_use]
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// True when the index provably matches `net` and the filter's pool.
    #[must_use]
    pub fn is_current(&self, net: &Network, filter: &SimFilter) -> bool {
        self.version == Some(net.version()) && self.patterns == filter.patterns()
    }

    /// Canonical (equality, truncated) keys for one node's signature.
    fn keys(&self, net: &Network, filter: &SimFilter, id: NodeId) -> (u64, u64) {
        let sig = filter.node_sig(net, id);
        let pool = filter.pool();
        // Canonical form: complement the whole row iff its first in-pool
        // bit is set, so `f` and `!f` produce identical keys.
        let mut flip = false;
        for (w, &s) in sig.iter().enumerate() {
            let m = pool.mask(w);
            if m != 0 {
                flip = s & (m & m.wrapping_neg()) != 0;
                break;
            }
        }
        let mut eq = EQ_SEED;
        let mut trunc = TRUNC_SEED;
        for (w, &s) in sig.iter().enumerate() {
            let m = pool.mask(w);
            let canon = if flip { !s & m } else { s & m };
            eq = mix(eq, canon);
            if w == 0 {
                trunc = mix(trunc, canon);
            }
        }
        (eq, trunc)
    }

    fn insert(&mut self, id: NodeId, keys: (u64, u64)) {
        let (eq, trunc) = keys;
        let v = self.eq.entry(eq).or_default();
        if let Err(pos) = v.binary_search(&id) {
            v.insert(pos, id);
        }
        let v = self.trunc.entry(trunc).or_default();
        if let Err(pos) = v.binary_search(&id) {
            v.insert(pos, id);
        }
        self.membership.insert(id, keys);
    }

    fn remove(&mut self, id: NodeId) {
        let Some((eq, trunc)) = self.membership.remove(&id) else {
            return;
        };
        for (map, key) in [(&mut self.eq, eq), (&mut self.trunc, trunc)] {
            if let Some(v) = map.get_mut(&key) {
                if let Ok(pos) = v.binary_search(&id) {
                    v.remove(pos);
                }
                if v.is_empty() {
                    map.remove(&key);
                }
            }
        }
    }

    fn rebuild(&mut self, net: &Network, filter: &SimFilter) {
        self.eq.clear();
        self.trunc.clear();
        self.membership.clear();
        for id in net.internal_ids() {
            let keys = self.keys(net, filter, id);
            self.insert(id, keys);
        }
        self.version = Some(net.version());
        self.patterns = filter.patterns();
        self.rebuilds += 1;
    }

    /// Brings the index up to date by rebuilding unless it provably
    /// matches the current network and pool. The cheap path across an
    /// accepted edit is [`SignatureBuckets::apply_commit`]; `ensure` is
    /// the catch-all for first use, pool growth, and foreign edits
    /// (rollbacks) the caller has no changed-row list for.
    ///
    /// # Panics
    ///
    /// Panics if the filter has patterns pending a flush, or if its table
    /// is stale relative to `net`.
    pub fn ensure(&mut self, net: &Network, filter: &SimFilter) {
        assert!(filter.is_flushed(), "flush() patterns before ensure");
        if !self.is_current(net, filter) {
            self.rebuild(net, filter);
        }
    }

    /// Incrementally carries the index across one committed edit.
    /// `pre_version` is the network version before the edit and `changed`
    /// the changed-row list [`crate::SimFilter::patch`] returned for it —
    /// possibly empty, since a substitution preserves the target's
    /// function and often no signature moves at all. If the index was not
    /// exactly at `pre_version` with an unchanged pool (a rollback or
    /// refinement intervened), it rebuilds instead.
    ///
    /// # Panics
    ///
    /// Panics if the filter has patterns pending a flush, or if its table
    /// is stale relative to `net`.
    pub fn apply_commit(
        &mut self,
        net: &Network,
        filter: &SimFilter,
        pre_version: u64,
        changed: &[NodeId],
    ) {
        assert!(filter.is_flushed(), "flush() patterns before apply_commit");
        if self.is_current(net, filter) {
            return;
        }
        if self.version != Some(pre_version) || self.patterns != filter.patterns() {
            self.rebuild(net, filter);
            return;
        }
        for &id in changed {
            self.remove(id);
            if net.node_opt(id).is_some_and(|n| !n.is_input()) {
                let keys = self.keys(net, filter, id);
                self.insert(id, keys);
            }
        }
        self.version = Some(net.version());
    }

    /// Proposes divisor candidates for `target`: its equality-class peers,
    /// plus truncated-bucket peers passing [`sig_compatible`]'s full-row
    /// subset test (each capped at `CLASS_CAP` per call).
    /// Only live internal nodes with `id.index() < bound` and, when
    /// `cursor` is set, `id > cursor` are returned — the same eligibility
    /// window the overlap enumerator applies.
    ///
    /// # Panics
    ///
    /// Panics if the index is not current for `net` and `filter` (call
    /// [`SignatureBuckets::ensure`] first).
    #[must_use]
    pub fn propose(
        &self,
        net: &Network,
        filter: &SimFilter,
        target: NodeId,
        bound: usize,
        cursor: Option<NodeId>,
    ) -> Proposal {
        assert!(
            self.is_current(net, filter),
            "SignatureBuckets: sync() before propose()"
        );
        let mut out = Proposal::default();
        let Some(&(eq_key, trunc_key)) = self.membership.get(&target) else {
            return out;
        };
        let eligible = |o: NodeId| {
            o != target
                && o.index() < bound
                && cursor.is_none_or(|c| o > c)
                && net.node_opt(o).is_some()
        };
        if let Some(members) = self.eq.get(&eq_key) {
            let mut collected = 0usize;
            for &o in members {
                if collected >= CLASS_CAP {
                    break;
                }
                if o != target {
                    out.bucket_hits += 1;
                    if eligible(o) {
                        out.divisors.push(o);
                        collected += 1;
                    }
                }
            }
        }
        let mut collected = 0usize;
        if let Some(members) = self.trunc.get(&trunc_key) {
            for &o in members {
                if collected >= CLASS_CAP {
                    break;
                }
                if o == target || !eligible(o) {
                    continue;
                }
                out.bucket_hits += 1;
                if sig_compatible(net, filter, target, o) {
                    out.divisors.push(o);
                    collected += 1;
                }
            }
        }
        out.divisors.sort_unstable();
        out.divisors.dedup();
        out
    }

    /// Spot-checks the named rows against freshly computed keys: each live
    /// internal node must be filed under exactly the keys its current
    /// signature hashes to, and each dead or input id must be absent. On
    /// the first mismatch the whole index is rebuilt (self-repair) and
    /// `false` is returned so the caller can book the fault. Cost is
    /// proportional to `rows`, mirroring [`SimFilter::audit`] — the full
    /// [`SignatureBuckets::matches_rebuild`] sweep is for tests.
    pub fn audit_rows(&mut self, net: &Network, filter: &SimFilter, rows: &[NodeId]) -> bool {
        assert!(filter.is_flushed(), "flush() patterns before audit_rows");
        let ok = self.is_current(net, filter)
            && rows.iter().all(|&id| {
                let live = net.node_opt(id).is_some_and(|n| !n.is_input());
                match self.membership.get(&id) {
                    Some(&(eq, trunc)) => {
                        live && {
                            let fresh = self.keys(net, filter, id);
                            fresh == (eq, trunc)
                                && self
                                    .eq
                                    .get(&eq)
                                    .is_some_and(|v| v.binary_search(&id).is_ok())
                                && self
                                    .trunc
                                    .get(&trunc)
                                    .is_some_and(|v| v.binary_search(&id).is_ok())
                        }
                    }
                    None => !live,
                }
            });
        if !ok {
            self.rebuild(net, filter);
        }
        ok
    }

    /// Compares this incrementally-maintained index against a from-scratch
    /// rebuild; `false` means the incremental protocol lost sync (the
    /// caller should rebuild and treat it as a fault).
    #[must_use]
    pub fn matches_rebuild(&self, net: &Network, filter: &SimFilter) -> bool {
        if !self.is_current(net, filter) {
            return false;
        }
        let mut fresh = SignatureBuckets::new();
        fresh.rebuild(net, filter);
        self.membership == fresh.membership && self.eq == fresh.eq && self.trunc == fresh.trunc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use boolsubst_cube::parse_sop;
    use boolsubst_network::SideTables;

    fn propose_for(
        buckets: &SignatureBuckets,
        net: &Network,
        filter: &SimFilter,
        target: NodeId,
    ) -> Proposal {
        buckets.propose(net, filter, target, net.id_bound(), None)
    }

    /// `f` and `!f` must land in the same equality class: the canonical
    /// form complements away the phase.
    #[test]
    fn complement_shares_equality_class() {
        let mut net = Network::new("t");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let f = net
            .add_node("f", vec![a, b], parse_sop(2, "ab").expect("p"))
            .expect("f");
        let g = net
            .add_node("g", vec![a, b], parse_sop(2, "a' + b'").expect("p"))
            .expect("g");
        net.add_output("f", f).expect("o");
        net.add_output("g", g).expect("o");
        let filter = SimFilter::new(&net, &SimConfig::exhaustive());
        let mut buckets = SignatureBuckets::new();
        buckets.ensure(&net, &filter);
        let p = propose_for(&buckets, &net, &filter, f);
        assert!(p.divisors.contains(&g), "complement not proposed: {p:?}");
        assert!(p.bucket_hits > 0);
    }

    /// Containment detection across words: `t = g & !x6` agrees with `g`
    /// on every pattern with `x6 = 0` (the whole first word of an
    /// exhaustive 7-input pool), so they share a truncated bucket, and the
    /// full-row subset test finds `t ⊆ g`.
    #[test]
    fn containment_is_proposed_within_truncated_bucket() {
        let mut net = Network::new("t");
        let inputs: Vec<NodeId> = (0..7)
            .map(|i| net.add_input(format!("x{i}")).expect("input"))
            .collect();
        let g = net
            .add_node(
                "g",
                vec![inputs[0], inputs[1]],
                parse_sop(2, "ab").expect("p"),
            )
            .expect("g");
        let t = net
            .add_node("t", vec![g, inputs[6]], parse_sop(2, "ab'").expect("p"))
            .expect("t");
        net.add_output("g", g).expect("o");
        net.add_output("t", t).expect("o");
        let filter = SimFilter::new(&net, &SimConfig::exhaustive());
        let mut buckets = SignatureBuckets::new();
        buckets.ensure(&net, &filter);
        let p = propose_for(&buckets, &net, &filter, t);
        assert!(p.divisors.contains(&g), "contained divisor missing: {p:?}");
    }

    /// Incremental re-keying from the changed-row list must land on the
    /// same index a from-scratch rebuild produces.
    #[test]
    fn incremental_sync_matches_rebuild() {
        let mut net = Network::new("t");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let c = net.add_input("c").expect("c");
        let g = net
            .add_node("g", vec![a, b], parse_sop(2, "ab").expect("p"))
            .expect("g");
        let h = net
            .add_node("h", vec![g, c], parse_sop(2, "a + b'").expect("p"))
            .expect("h");
        net.add_output("h", h).expect("o");
        let mut side = SideTables::build(&net);
        let mut filter = SimFilter::new(&net, &SimConfig::exhaustive());
        let mut buckets = SignatureBuckets::new();
        buckets.ensure(&net, &filter);
        assert_eq!(buckets.rebuilds(), 1);
        // Rewire h and add a new node, the way an accepted substitution
        // would, then sync from the patch's changed-row list alone.
        let pre_version = net.version();
        let m = net
            .add_node("m", vec![a, c], parse_sop(2, "ab'").expect("p"))
            .expect("m");
        let old = net.node(h).fanins().to_vec();
        net.replace_function(h, vec![m, c], parse_sop(2, "a + b").expect("p"))
            .expect("replace");
        side.sync_new_nodes(&net);
        side.apply_replace(&net, h, &old);
        let changed = filter.patch(&net, &side, &[h]);
        assert!(changed.contains(&m), "fresh node must be in changed list");
        buckets.apply_commit(&net, &filter, pre_version, &changed);
        assert_eq!(buckets.rebuilds(), 1, "commit must have been incremental");
        assert!(buckets.matches_rebuild(&net, &filter));
    }
}
