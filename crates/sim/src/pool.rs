//! Seeded deterministic pattern pool: per-input signature words.

/// A pool of input patterns stored column-wise: one signature (a `Vec` of
/// `u64` words, 64 patterns per word) per primary input, in
/// `Network::inputs()` order. Bit `b` of word `w` across all inputs spells
/// out pattern number `w * 64 + b`.
///
/// The pool starts with `64 × (words - reserve)` seeded patterns and grows
/// one pattern at a time via [`PatternPool::add_pattern`] (counterexample
/// refinement) until all `64 × words` slots are used. Bits beyond
/// [`PatternPool::patterns`] are kept zero in every signature; the
/// per-word validity mask is [`PatternPool::mask`].
#[derive(Debug, Clone)]
pub struct PatternPool {
    words: usize,
    filled: usize,
    sigs: Vec<Vec<u64>>,
}

/// xorshift64* step — the same dependency-free PRNG used across the repo.
pub(crate) fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl PatternPool {
    /// A pool of `64 * base_words` seeded random patterns with
    /// `reserve_words * 64` extra slots of growth capacity.
    ///
    /// Seeded words cycle through three bit densities — 1/2, 3/4, 1/4 —
    /// so that wide cubes (which a uniform pattern almost never turns on)
    /// still fire in the biased words and can collect refutation
    /// witnesses. Word 0 is always the uniform one.
    #[must_use]
    pub fn random(num_inputs: usize, base_words: usize, reserve_words: usize, seed: u64) -> Self {
        let base_words = base_words.max(1);
        let words = base_words + reserve_words;
        let mut state = seed | 1;
        let sigs = (0..num_inputs)
            .map(|_| {
                (0..words)
                    .map(|w| {
                        if w >= base_words {
                            return 0;
                        }
                        let a = xorshift(&mut state);
                        match w % 3 {
                            1 => a | xorshift(&mut state),
                            2 => a & xorshift(&mut state),
                            _ => a,
                        }
                    })
                    .collect()
            })
            .collect();
        PatternPool {
            words,
            filled: base_words * 64,
            sigs,
        }
    }

    /// A pool enumerating all `2^num_inputs` minterms: pattern `m` assigns
    /// input `k` the value `(m >> k) & 1`.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 16` (the pool would not fit in memory).
    #[must_use]
    pub fn exhaustive(num_inputs: usize) -> Self {
        assert!(num_inputs <= 16, "exhaustive pool needs <= 16 inputs");
        let patterns = 1usize << num_inputs;
        let words = patterns.div_ceil(64);
        let sigs = (0..num_inputs)
            .map(|k| {
                (0..words)
                    .map(|w| {
                        let mut word = 0u64;
                        for b in 0..64 {
                            let m = w * 64 + b;
                            if m < patterns && (m >> k) & 1 == 1 {
                                word |= 1 << b;
                            }
                        }
                        word
                    })
                    .collect()
            })
            .collect();
        PatternPool {
            words,
            filled: patterns,
            sigs,
        }
    }

    /// Signature width in words.
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Number of patterns currently in the pool.
    #[must_use]
    pub fn patterns(&self) -> usize {
        self.filled
    }

    /// Maximum number of patterns the pool can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.words * 64
    }

    /// Validity mask for word `w`: bit `b` is set iff pattern `w*64 + b`
    /// exists. Signatures must stay zero outside this mask so that
    /// complemented signatures can be re-masked with a single AND.
    #[must_use]
    pub fn mask(&self, w: usize) -> u64 {
        let lo = w * 64;
        if self.filled >= lo + 64 {
            !0
        } else if self.filled <= lo {
            0
        } else {
            (1u64 << (self.filled - lo)) - 1
        }
    }

    /// Signature words of the `k`-th primary input.
    #[must_use]
    pub fn input_sig(&self, k: usize) -> &[u64] {
        &self.sigs[k]
    }

    /// Appends one pattern (`assignment[k]` is the value of input `k`).
    /// Returns the word index the pattern landed in, or `None` when the
    /// pool is at capacity.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the pool's input count.
    pub fn add_pattern(&mut self, assignment: &[bool]) -> Option<usize> {
        assert_eq!(assignment.len(), self.sigs.len(), "wrong input count");
        if self.filled >= self.capacity() {
            return None;
        }
        let w = self.filled / 64;
        let b = self.filled % 64;
        for (sig, &v) in self.sigs.iter_mut().zip(assignment) {
            if v {
                sig[w] |= 1 << b;
            }
        }
        self.filled += 1;
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_pool_spells_minterms() {
        let pool = PatternPool::exhaustive(3);
        assert_eq!(pool.patterns(), 8);
        assert_eq!(pool.words(), 1);
        assert_eq!(pool.mask(0), 0xFF);
        // Pattern m assigns input k the bit (m >> k) & 1.
        for m in 0..8usize {
            for k in 0..3 {
                let want = (m >> k) & 1 == 1;
                let got = (pool.input_sig(k)[0] >> m) & 1 == 1;
                assert_eq!(got, want, "minterm {m} input {k}");
            }
        }
    }

    #[test]
    fn add_pattern_grows_into_reserve() {
        let mut pool = PatternPool::random(2, 1, 1, 42);
        assert_eq!(pool.patterns(), 64);
        assert_eq!(pool.capacity(), 128);
        assert_eq!(pool.mask(1), 0);
        let w = pool.add_pattern(&[true, false]).expect("capacity");
        assert_eq!(w, 1);
        assert_eq!(pool.patterns(), 65);
        assert_eq!(pool.mask(1), 1);
        assert_eq!(pool.input_sig(0)[1] & 1, 1);
        assert_eq!(pool.input_sig(1)[1] & 1, 0);
    }

    #[test]
    fn pool_is_full_at_capacity() {
        let mut pool = PatternPool::random(1, 1, 0, 7);
        assert_eq!(pool.patterns(), pool.capacity());
        assert!(pool.add_pattern(&[true]).is_none());
    }
}
