//! Edge-case integration tests for the cube calculus: degenerate
//! universes, wide universes crossing word boundaries, and API contracts.

use boolsubst_cube::{
    is_tautology_exhaustive, parse_sop, simplify, simplify_exact_cover, supercube, Cover, Cube,
    Lit, Phase, SimplifyOptions, VarState,
};

#[test]
fn zero_variable_universe() {
    // Over 0 variables: the empty cover is 0, the universal cube is 1.
    let zero = Cover::new(0);
    assert!(zero.is_empty());
    assert!(!zero.is_tautology());
    let one = Cover::one(0);
    assert!(one.is_tautology());
    assert!(one.eval(&[]));
    assert!(!zero.eval(&[]));
    let compl = zero.complement();
    assert!(compl.is_tautology());
}

#[test]
fn wide_universe_word_boundaries() {
    // 129 variables: three words, literals at every boundary.
    let n = 129;
    let lits = [0, 31, 32, 63, 64, 95, 96, 127, 128];
    let cube = Cube::from_lits(n, &lits.map(Lit::pos));
    assert_eq!(cube.literal_count(), lits.len());
    for &v in &lits {
        assert_eq!(cube.var_state(v), VarState::Pos);
    }
    // Containment across words.
    let weaker = Cube::from_lits(n, &[Lit::pos(64)]);
    assert!(weaker.contains(&cube));
    assert!(!cube.contains(&weaker));
    // Distance across words.
    let flipped = Cube::from_lits(n, &lits.map(Lit::neg));
    assert_eq!(cube.distance(&flipped), lits.len());
}

#[test]
fn cover_collects_and_extends() {
    let cubes = vec![
        Cube::from_lits(3, &[Lit::pos(0)]),
        Cube::from_lits(3, &[Lit::neg(1)]),
    ];
    let c: Cover = cubes.clone().into_iter().collect();
    assert_eq!(c.len(), 2);
    let mut d = Cover::new(3);
    d.extend(cubes);
    assert_eq!(d.len(), 2);
}

#[test]
fn empty_cube_is_dropped_everywhere() {
    let mut c = Cover::new(2);
    c.push(Cube::from_lits(2, &[Lit::pos(0), Lit::neg(0)]));
    assert!(c.is_empty());
    // Complement of constant 0 is constant 1.
    assert!(c.complement().is_tautology());
}

#[test]
fn supercube_of_disjoint_is_universe() {
    let a = parse_sop(2, "ab").expect("p");
    let b = parse_sop(2, "a'b'").expect("p");
    let s = supercube(&a.cubes()[0], &b.cubes()[0]);
    assert!(s.is_universe());
}

#[test]
fn simplify_handles_tautology_input() {
    let f = parse_sop(2, "a + a'").expect("p");
    let out = simplify_exact_cover(&f);
    assert!(out.is_tautology());
    assert!(out.literal_count() <= 2);
}

#[test]
fn simplify_with_overlapping_dc_drops_optional_minterms() {
    let on = parse_sop(2, "ab + a'b").expect("p");
    let dc = parse_sop(2, "b").expect("p"); // everything optional
    let out = simplify(&on, &dc, SimplifyOptions::default());
    // Result may be anything inside the envelope; check the envelope.
    assert!(on.or(&dc).covers(&out));
}

#[test]
fn tautology_on_wide_random_covers_matches_exhaustive() {
    // Deterministic pseudo-random covers over 10 vars.
    let mut seed = 0x1234_5678u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for _ in 0..30 {
        let mut cover = Cover::new(10);
        for _ in 0..(next() % 12 + 1) {
            let mut cube = Cube::universe(10);
            for _ in 0..(next() % 3 + 1) {
                let v = (next() % 10) as usize;
                let phase = if next() % 2 == 0 {
                    Phase::Pos
                } else {
                    Phase::Neg
                };
                cube.restrict(Lit { var: v, phase });
            }
            cover.push(cube);
        }
        assert_eq!(cover.is_tautology(), is_tautology_exhaustive(&cover));
    }
}

#[test]
fn remapped_permutes_support() {
    let f = parse_sop(3, "ab' + c").expect("p");
    // Swap variables 0 and 2.
    let g = f.remapped(3, &[2, 1, 0]);
    let want = parse_sop(3, "cb' + a").expect("p");
    assert!(g.equivalent(&want));
}

#[test]
fn parse_rejects_out_of_universe() {
    assert!(parse_sop(2, "abc").is_err());
    assert!(parse_sop(0, "a").is_err());
    assert!(parse_sop(2, "").is_err());
}

#[test]
fn display_of_wide_vars() {
    let c = Cube::from_lits(30, &[Lit::pos(26), Lit::neg(29)]);
    assert_eq!(c.to_string(), "v26v29'");
}
