//! Cover complementation via recursive Shannon expansion, plus cube
//! complement (De Morgan) and the sharp (`\`) operation.

use crate::{Cover, Cube, Lit, Phase};

impl Cube {
    /// Complement of a single cube as a cover: one single-literal cube per
    /// literal, each with the phase flipped (De Morgan).
    #[must_use]
    pub fn complement(&self) -> Cover {
        let n = self.num_vars();
        if self.is_empty() {
            return Cover::one(n);
        }
        let mut out = Cover::new(n);
        for l in self.lits() {
            out.push(Cube::from_lits(n, &[l.negated()]));
        }
        out
    }
}

impl Cover {
    /// Complement of the cover.
    ///
    /// Recursive Shannon expansion on the most binate variable with
    /// single-cube terminal cases; the result is made minimal with respect
    /// to single-cube containment but is not otherwise optimized.
    #[must_use]
    pub fn complement(&self) -> Cover {
        let mut out = compl_rec(self);
        out.remove_contained_cubes();
        out
    }

    /// The sharp operation `self \ other` (minterms of `self` not in
    /// `other`), returned as a cover.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn sharp(&self, other: &Cover) -> Cover {
        self.and(&other.complement())
    }
}

fn compl_rec(f: &Cover) -> Cover {
    let n = f.num_vars();
    if f.is_empty() {
        return Cover::one(n);
    }
    if f.cubes().iter().any(Cube::is_universe) {
        return Cover::new(n);
    }
    if f.len() == 1 {
        return f.cubes()[0].complement();
    }

    // Pick the most binate variable (fall back to the most frequent).
    let mut counts = vec![(0u32, 0u32); n];
    for c in f.cubes() {
        for l in c.lits() {
            match l.phase {
                Phase::Pos => counts[l.var].0 += 1,
                Phase::Neg => counts[l.var].1 += 1,
            }
        }
    }
    let v = counts
        .iter()
        .enumerate()
        .filter(|(_, &(p, m))| p + m > 0)
        .max_by_key(|(_, &(p, m))| (p.min(m), p + m))
        .map(|(v, _)| v)
        .expect("nonempty non-constant cover has a used variable");

    // compl(f) = x'·compl(f|x') + x·compl(f|x)
    let mut out = Cover::new(n);
    for phase in [Phase::Pos, Phase::Neg] {
        let l = Lit { var: v, phase };
        let sub = compl_rec(&f.cofactor_lit(l));
        for c in sub.cubes() {
            let mut c = c.clone();
            c.restrict(l);
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_sop;

    fn check_complement(n: usize, s: &str) {
        let f = parse_sop(n, s).expect("parse");
        let g = f.complement();
        // f + f' tautology, f·f' empty.
        assert!(f.or(&g).is_tautology(), "f + f' not tautology for {s}");
        let mut inter = f.and(&g);
        inter.remove_contained_cubes();
        assert!(inter.is_empty(), "f·f' nonempty for {s}: {inter}");
    }

    #[test]
    fn complement_identities() {
        check_complement(3, "ab + a'c");
        check_complement(2, "ab' + a'b");
        check_complement(4, "ab + cd");
        check_complement(3, "a + b + c");
        check_complement(1, "a");
    }

    #[test]
    fn complement_of_constants() {
        let zero = Cover::new(3);
        assert!(zero.complement().is_tautology());
        let one = Cover::one(3);
        assert!(one.complement().is_empty());
    }

    #[test]
    fn cube_complement_de_morgan() {
        let c = parse_sop(3, "ab'c").expect("parse");
        let comp = c.cubes()[0].complement();
        assert_eq!(comp.to_string(), "a' + b + c'");
    }

    #[test]
    fn sharp_subtracts() {
        let f = parse_sop(2, "a").expect("parse");
        let g = parse_sop(2, "ab").expect("parse");
        let d = f.sharp(&g);
        let want = parse_sop(2, "ab'").expect("parse");
        assert!(d.equivalent(&want));
    }
}
