//! Tautology checking via the unate recursive paradigm, and the Boolean
//! containment / equivalence predicates built on it.

use crate::{Cover, Cube, Lit};

impl Cover {
    /// True if the cover is a tautology (covers every minterm).
    ///
    /// Uses the classical unate recursive paradigm: unate variables are
    /// reduced away, then the most binate variable is chosen for Shannon
    /// splitting.
    #[must_use]
    pub fn is_tautology(&self) -> bool {
        taut_rec(self)
    }

    /// Boolean containment: true if every minterm of `cube` is covered.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        assert_eq!(self.num_vars(), cube.num_vars(), "universe mismatch");
        if cube.is_empty() {
            return true;
        }
        self.cofactor(cube).is_tautology()
    }

    /// Boolean containment of covers: `other ⇒ self`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn covers(&self, other: &Cover) -> bool {
        other.cubes().iter().all(|c| self.covers_cube(c))
    }

    /// Functional equivalence of two covers.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn equivalent(&self, other: &Cover) -> bool {
        self.covers(other) && other.covers(self)
    }
}

/// Per-variable phase statistics for a cover.
struct ColumnStats {
    /// (positive occurrences, negative occurrences) per variable.
    counts: Vec<(u32, u32)>,
}

fn column_stats(f: &Cover) -> ColumnStats {
    let mut counts = vec![(0u32, 0u32); f.num_vars()];
    for c in f.cubes() {
        for l in c.lits() {
            match l.phase {
                crate::Phase::Pos => counts[l.var].0 += 1,
                crate::Phase::Neg => counts[l.var].1 += 1,
            }
        }
    }
    ColumnStats { counts }
}

fn taut_rec(f: &Cover) -> bool {
    // Terminal cases.
    if f.cubes().iter().any(Cube::is_universe) {
        return true;
    }
    if f.is_empty() {
        return false;
    }

    let stats = column_stats(f);

    // Quick necessary condition: a cube with k literals covers a 2^-k
    // fraction of the space, so if the sum of 2^-k over all cubes is below
    // 1 the cover cannot be a tautology. Computed in units of 2^-64 with an
    // over-approximation (1 unit) for cubes of 64+ literals to stay sound.
    let mut frac: u128 = 0;
    for c in f.cubes() {
        let k = c.literal_count();
        frac = frac.saturating_add(if k < 64 { 1u128 << (64 - k as u32) } else { 1 });
        if frac >= 1u128 << 64 {
            break;
        }
    }
    if frac < (1u128 << 64) {
        return false;
    }

    // Unate reduction: if variable v appears in only one phase, cubes
    // containing that literal can never help cover the opposite half, and
    // the tautology question reduces to the cofactor against the *missing*
    // phase (which simply deletes those cubes).
    for (v, &(pos, neg)) in stats.counts.iter().enumerate() {
        if pos > 0 && neg == 0 {
            return taut_rec(&f.cofactor_lit(Lit::neg(v)));
        }
        if neg > 0 && pos == 0 {
            return taut_rec(&f.cofactor_lit(Lit::pos(v)));
        }
    }

    // Most binate variable: maximize min(pos, neg), tie-break on total.
    let split = stats
        .counts
        .iter()
        .enumerate()
        .filter(|(_, &(p, n))| p > 0 && n > 0)
        .max_by_key(|(_, &(p, n))| (p.min(n), p + n))
        .map(|(v, _)| v);

    match split {
        Some(v) => taut_rec(&f.cofactor_lit(Lit::pos(v))) && taut_rec(&f.cofactor_lit(Lit::neg(v))),
        None => {
            // No binate variable and no unate variable: every cube is the
            // universal cube (handled above) — unreachable for nonempty
            // covers without literals.
            f.cubes().iter().any(Cube::is_universe)
        }
    }
}

#[allow(clippy::missing_panics_doc)]
/// Exhaustive tautology check used to cross-validate the recursive one in
/// tests (2^n evaluation; only for small universes).
#[must_use]
pub fn is_tautology_exhaustive(f: &Cover) -> bool {
    let n = f.num_vars();
    assert!(n <= 20, "exhaustive check limited to 20 variables");
    let mut inputs = vec![false; n];
    for m in 0u64..(1u64 << n) {
        for (v, slot) in inputs.iter_mut().enumerate() {
            *slot = (m >> v) & 1 == 1;
        }
        if !f.eval(&inputs) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_sop;

    #[test]
    fn simple_tautologies() {
        assert!(parse_sop(1, "a + a'").expect("parse").is_tautology());
        assert!(parse_sop(2, "a + a'b + a'b'")
            .expect("parse")
            .is_tautology());
        assert!(parse_sop(2, "1").expect("parse").is_tautology());
    }

    #[test]
    fn simple_non_tautologies() {
        assert!(!parse_sop(2, "a + b").expect("parse").is_tautology());
        assert!(!parse_sop(1, "a").expect("parse").is_tautology());
        assert!(!parse_sop(2, "0").expect("parse").is_tautology());
    }

    #[test]
    fn xor_cover_plus_complement_is_tautology() {
        // a xor b = ab' + a'b ; complement = ab + a'b'
        let f = parse_sop(2, "ab' + a'b + ab + a'b'").expect("parse");
        assert!(f.is_tautology());
    }

    #[test]
    fn covers_cube_boolean_not_structural() {
        // f = ab + ab' covers cube a even though no single cube contains it.
        let f = parse_sop(2, "ab + ab'").expect("parse");
        let a = parse_sop(2, "a").expect("parse");
        assert!(!f.some_cube_contains(&a.cubes()[0]));
        assert!(f.covers_cube(&a.cubes()[0]));
    }

    #[test]
    fn equivalence_detects_consensus() {
        let f = parse_sop(3, "ab + a'c + bc").expect("parse");
        let g = parse_sop(3, "ab + a'c").expect("parse");
        assert!(f.equivalent(&g));
        let h = parse_sop(3, "ab + a'c'").expect("parse");
        assert!(!f.equivalent(&h));
    }

    #[test]
    fn matches_exhaustive_on_fixed_cases() {
        let cases = [
            (3, "ab + a'c + bc"),
            (3, "a + b + c + a'b'c'"),
            (4, "ab + cd + a'b' + c'd'"),
            (4, "a + a'b + a'b'c + a'b'c'd + a'b'c'd'"),
            (2, "ab"),
        ];
        for (n, s) in cases {
            let f = parse_sop(n, s).expect("parse");
            assert_eq!(
                f.is_tautology(),
                is_tautology_exhaustive(&f),
                "mismatch on {s}"
            );
        }
    }
}
