#![warn(missing_docs)]
//! # boolsubst-cube — two-level cube calculus
//!
//! The foundation of the `boolsubst` workspace: product terms ([`Cube`]),
//! sums of products ([`Cover`]), the unate-recursive tautology check,
//! complementation, and an ESPRESSO-style two-level simplifier.
//!
//! Cubes use positional notation packed two bits per variable, so
//! containment / intersection / distance are word-parallel. Containment of
//! cubes (`c1.contains(c2)` ⇔ `lits(c1) ⊆ lits(c2)`) is the notion on which
//! the paper's *sum-of-subproducts* (SOS) and *product-of-subsums* (POS)
//! definitions rest.
//!
//! ```
//! use boolsubst_cube::{parse_sop, SimplifyOptions, simplify, Cover};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let f = parse_sop(3, "ab + ab'c + a'bc")?;
//! let dc = Cover::new(3);
//! let g = simplify(&f, &dc, SimplifyOptions::default());
//! assert!(g.equivalent(&f));
//! assert!(g.literal_count() <= f.literal_count());
//! # Ok(())
//! # }
//! ```

mod complement;
mod count;
mod cover;
mod cube;
pub mod display;
mod simplify;
mod tautology;

pub use cover::Cover;
pub use cube::{Cube, Lit, Phase, VarState};
pub use display::{parse_sop, ParseSopError};
pub use simplify::{simplify, simplify_exact_cover, supercube, SimplifyOptions};
pub use tautology::is_tautology_exhaustive;
