//! Single-cube (product term) representation in positional notation.
//!
//! Each variable occupies two adjacent bits of a packed `u64` array:
//! bit `2v` set means the *negative* phase of variable `v` is allowed,
//! bit `2v + 1` set means the *positive* phase is allowed. Both bits set
//! means the variable is absent from the product (don't care); both bits
//! clear makes the cube empty (it covers no minterm).

use std::fmt;

/// Phase of a literal within a cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// The variable appears complemented (`x'`).
    Neg,
    /// The variable appears uncomplemented (`x`).
    Pos,
}

impl Phase {
    /// Returns the opposite phase.
    #[must_use]
    pub fn flipped(self) -> Phase {
        match self {
            Phase::Neg => Phase::Pos,
            Phase::Pos => Phase::Neg,
        }
    }
}

/// A literal: a variable index paired with a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit {
    /// Variable index.
    pub var: usize,
    /// Phase of the variable.
    pub phase: Phase,
}

impl Lit {
    /// Creates a positive literal for variable `var`.
    #[must_use]
    pub fn pos(var: usize) -> Lit {
        Lit {
            var,
            phase: Phase::Pos,
        }
    }

    /// Creates a negative literal for variable `var`.
    #[must_use]
    pub fn neg(var: usize) -> Lit {
        Lit {
            var,
            phase: Phase::Neg,
        }
    }

    /// Returns this literal with the phase flipped.
    #[must_use]
    pub fn negated(self) -> Lit {
        Lit {
            var: self.var,
            phase: self.phase.flipped(),
        }
    }
}

/// Value of a variable slot inside a cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarState {
    /// Variable absent (both phases allowed).
    DontCare,
    /// Positive literal present.
    Pos,
    /// Negative literal present.
    Neg,
    /// Neither phase allowed — the cube is empty.
    Empty,
}

/// A product term over `num_vars` variables, packed two bits per variable.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    words: Vec<u64>,
    num_vars: usize,
}

const VARS_PER_WORD: usize = 32;

fn word_count(num_vars: usize) -> usize {
    num_vars.div_ceil(VARS_PER_WORD).max(1)
}

impl Cube {
    /// The universal cube (no literals) over `num_vars` variables.
    #[must_use]
    pub fn universe(num_vars: usize) -> Cube {
        let mut words = vec![!0u64; word_count(num_vars)];
        // Clear the bits above the last variable so equality and hashing are
        // canonical.
        Self::mask_tail(&mut words, num_vars);
        Cube { words, num_vars }
    }

    /// A cube containing the given literals; duplicate literals are merged,
    /// and contradictory literals (`x` and `x'`) yield an empty cube.
    ///
    /// # Panics
    ///
    /// Panics if any literal's variable index is `>= num_vars`.
    #[must_use]
    pub fn from_lits(num_vars: usize, lits: &[Lit]) -> Cube {
        let mut c = Cube::universe(num_vars);
        for &l in lits {
            c.restrict(l);
        }
        c
    }

    fn mask_tail(words: &mut [u64], num_vars: usize) {
        let used_bits = 2 * num_vars;
        let full_words = used_bits / 64;
        let rem = used_bits % 64;
        if full_words < words.len() {
            if rem == 0 {
                for w in &mut words[full_words..] {
                    *w = 0;
                }
            } else {
                words[full_words] &= (1u64 << rem) - 1;
                for w in &mut words[full_words + 1..] {
                    *w = 0;
                }
            }
        }
    }

    /// Number of variables in the cube's universe.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    #[inline]
    fn slot(var: usize) -> (usize, u32) {
        (var / VARS_PER_WORD, (2 * (var % VARS_PER_WORD)) as u32)
    }

    /// State of variable `var` in this cube.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    #[must_use]
    pub fn var_state(&self, var: usize) -> VarState {
        assert!(var < self.num_vars, "variable {var} out of range");
        let (w, s) = Self::slot(var);
        match (self.words[w] >> s) & 0b11 {
            0b11 => VarState::DontCare,
            0b10 => VarState::Pos,
            0b01 => VarState::Neg,
            _ => VarState::Empty,
        }
    }

    /// Adds literal `l`, intersecting it with the current slot value.
    pub fn restrict(&mut self, l: Lit) {
        assert!(l.var < self.num_vars, "variable {} out of range", l.var);
        let (w, s) = Self::slot(l.var);
        let keep = match l.phase {
            Phase::Pos => 0b10u64 << s,
            Phase::Neg => 0b01u64 << s,
        };
        let mask = !(0b11u64 << s) | keep;
        self.words[w] &= mask;
    }

    /// Removes any literal of variable `var` (sets it to don't care).
    pub fn free_var(&mut self, var: usize) {
        assert!(var < self.num_vars, "variable {var} out of range");
        let (w, s) = Self::slot(var);
        self.words[w] |= 0b11u64 << s;
    }

    /// True if the cube covers no minterm (some variable has neither phase).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        if self.num_vars == 0 {
            return false;
        }
        // A slot is empty iff both of its bits are 0. Detect any 00 pair.
        let mut vars_left = self.num_vars;
        for &w in &self.words {
            let n = vars_left.min(VARS_PER_WORD);
            let lo = w & 0x5555_5555_5555_5555;
            let hi = (w >> 1) & 0x5555_5555_5555_5555;
            let present = lo | hi; // 1 in even bit position iff slot non-empty
            let mask = if n == VARS_PER_WORD {
                0x5555_5555_5555_5555
            } else {
                0x5555_5555_5555_5555 & ((1u64 << (2 * n)) - 1)
            };
            if present & mask != mask {
                return true;
            }
            vars_left -= n;
            if vars_left == 0 {
                break;
            }
        }
        false
    }

    /// True if the cube is the universal cube (no literals).
    #[must_use]
    pub fn is_universe(&self) -> bool {
        *self == Cube::universe(self.num_vars)
    }

    /// Number of literals in the cube. Empty slots count as two (both
    /// phases excluded); callers normally check [`Cube::is_empty`] first.
    #[must_use]
    pub fn literal_count(&self) -> usize {
        let mut count = 0;
        let mut vars_left = self.num_vars;
        for &w in &self.words {
            let n = vars_left.min(VARS_PER_WORD);
            let mask = if n == VARS_PER_WORD {
                !0u64
            } else {
                (1u64 << (2 * n)) - 1
            };
            count += (2 * n) - ((w & mask).count_ones() as usize);
            vars_left -= n;
            if vars_left == 0 {
                break;
            }
        }
        count
    }

    /// Iterates over the literals present in the cube.
    pub fn lits(&self) -> impl Iterator<Item = Lit> + '_ {
        (0..self.num_vars).filter_map(|v| match self.var_state(v) {
            VarState::Pos => Some(Lit::pos(v)),
            VarState::Neg => Some(Lit::neg(v)),
            _ => None,
        })
    }

    /// Variables constrained by this cube (either phase).
    pub fn support(&self) -> impl Iterator<Item = usize> + '_ {
        self.lits().map(|l| l.var)
    }

    /// Intersection (Boolean AND) of two cubes.
    ///
    /// # Panics
    ///
    /// Panics if the cubes have different universes.
    #[must_use]
    pub fn and(&self, other: &Cube) -> Cube {
        assert_eq!(self.num_vars, other.num_vars, "cube universes differ");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        Cube {
            words,
            num_vars: self.num_vars,
        }
    }

    /// True if `self` contains `other` (every minterm of `other` is in
    /// `self`). Empty cubes are contained by everything.
    ///
    /// # Panics
    ///
    /// Panics if the cubes have different universes.
    #[must_use]
    pub fn contains(&self, other: &Cube) -> bool {
        assert_eq!(self.num_vars, other.num_vars, "cube universes differ");
        if other.is_empty() {
            return true;
        }
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & b == *b)
    }

    /// Number of variables in which the two cubes have disjoint phases
    /// (the classical cube *distance*). Distance 0 means the cubes
    /// intersect; distance 1 means they are mergeable by consensus.
    ///
    /// # Panics
    ///
    /// Panics if the cubes have different universes.
    #[must_use]
    pub fn distance(&self, other: &Cube) -> usize {
        assert_eq!(self.num_vars, other.num_vars, "cube universes differ");
        let mut d = 0;
        let mut vars_left = self.num_vars;
        for (a, b) in self.words.iter().zip(&other.words) {
            let n = vars_left.min(VARS_PER_WORD);
            let w = a & b;
            let lo = w & 0x5555_5555_5555_5555;
            let hi = (w >> 1) & 0x5555_5555_5555_5555;
            let present = lo | hi;
            let mask = if n == VARS_PER_WORD {
                0x5555_5555_5555_5555
            } else {
                0x5555_5555_5555_5555 & ((1u64 << (2 * n)) - 1)
            };
            d += (mask & !present).count_ones() as usize;
            vars_left -= n;
            if vars_left == 0 {
                break;
            }
        }
        d
    }

    /// Cofactor of this cube with respect to literal `l`: the cube with the
    /// constraint on `l.var` removed, or `None` if the cube conflicts with
    /// `l` (the cofactor is empty).
    #[must_use]
    pub fn cofactor_lit(&self, l: Lit) -> Option<Cube> {
        match (self.var_state(l.var), l.phase) {
            (VarState::Empty, _) => None,
            (VarState::Pos, Phase::Neg) | (VarState::Neg, Phase::Pos) => None,
            _ => {
                let mut c = self.clone();
                c.free_var(l.var);
                Some(c)
            }
        }
    }

    /// Generalized cofactor of this cube with respect to cube `c`
    /// (`self / c` in the Shannon sense), or `None` if disjoint.
    ///
    /// # Panics
    ///
    /// Panics if the cubes have different universes.
    #[must_use]
    pub fn cofactor(&self, c: &Cube) -> Option<Cube> {
        assert_eq!(self.num_vars, c.num_vars, "cube universes differ");
        if self.distance(c) > 0 {
            return None;
        }
        // Free every variable constrained by c.
        let mut out = self.clone();
        for v in c.support() {
            out.free_var(v);
        }
        Some(out)
    }

    /// Grows the universe to `new_num_vars`, keeping existing literals.
    ///
    /// # Panics
    ///
    /// Panics if `new_num_vars < self.num_vars()`.
    #[must_use]
    pub fn extended(&self, new_num_vars: usize) -> Cube {
        assert!(new_num_vars >= self.num_vars, "cannot shrink a cube");
        let mut out = Cube::universe(new_num_vars);
        for l in self.lits() {
            out.restrict(l);
        }
        out
    }

    /// Remaps variables through `map` into a cube over `new_num_vars`
    /// variables; `map[v]` gives the new index of old variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if a mapped index is out of range or `map` is shorter than the
    /// cube's universe.
    #[must_use]
    pub fn remapped(&self, new_num_vars: usize, map: &[usize]) -> Cube {
        let mut out = Cube::universe(new_num_vars);
        for l in self.lits() {
            out.restrict(Lit {
                var: map[l.var],
                phase: l.phase,
            });
        }
        out
    }

    /// Evaluates the cube on a complete input assignment (`inputs[v]` is
    /// the value of variable `v`).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() < num_vars`.
    #[must_use]
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert!(inputs.len() >= self.num_vars, "assignment too short");
        self.lits().all(|l| match l.phase {
            Phase::Pos => inputs[l.var],
            Phase::Neg => !inputs[l.var],
        })
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({self})")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "0");
        }
        if self.is_universe() {
            return write!(f, "1");
        }
        for l in self.lits() {
            write!(f, "{}", super::display::var_name(l.var))?;
            if l.phase == Phase::Neg {
                write!(f, "'")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_has_no_literals() {
        let c = Cube::universe(5);
        assert_eq!(c.literal_count(), 0);
        assert!(!c.is_empty());
        assert!(c.is_universe());
    }

    #[test]
    fn restrict_and_state() {
        let mut c = Cube::universe(4);
        c.restrict(Lit::pos(1));
        c.restrict(Lit::neg(3));
        assert_eq!(c.var_state(0), VarState::DontCare);
        assert_eq!(c.var_state(1), VarState::Pos);
        assert_eq!(c.var_state(3), VarState::Neg);
        assert_eq!(c.literal_count(), 2);
    }

    #[test]
    fn contradictory_literals_empty_cube() {
        let c = Cube::from_lits(3, &[Lit::pos(0), Lit::neg(0)]);
        assert!(c.is_empty());
        assert!(Cube::universe(3).contains(&c));
    }

    #[test]
    fn containment_is_literal_subset() {
        let ab = Cube::from_lits(3, &[Lit::pos(0), Lit::pos(1)]);
        let abc = Cube::from_lits(3, &[Lit::pos(0), Lit::pos(1), Lit::pos(2)]);
        assert!(ab.contains(&abc));
        assert!(!abc.contains(&ab));
        assert!(ab.contains(&ab));
    }

    #[test]
    fn and_intersects() {
        let a = Cube::from_lits(3, &[Lit::pos(0)]);
        let bn = Cube::from_lits(3, &[Lit::neg(1)]);
        let both = a.and(&bn);
        assert_eq!(both.var_state(0), VarState::Pos);
        assert_eq!(both.var_state(1), VarState::Neg);
        let an = Cube::from_lits(3, &[Lit::neg(0)]);
        assert!(a.and(&an).is_empty());
    }

    #[test]
    fn distance_counts_conflicts() {
        let c1 = Cube::from_lits(4, &[Lit::pos(0), Lit::pos(1)]);
        let c2 = Cube::from_lits(4, &[Lit::neg(0), Lit::neg(1), Lit::pos(2)]);
        assert_eq!(c1.distance(&c2), 2);
        assert_eq!(c1.distance(&c1), 0);
    }

    #[test]
    fn cofactor_by_literal() {
        let c = Cube::from_lits(3, &[Lit::pos(0), Lit::neg(1)]);
        let cf = c.cofactor_lit(Lit::pos(0)).expect("compatible");
        assert_eq!(cf, Cube::from_lits(3, &[Lit::neg(1)]));
        assert!(c.cofactor_lit(Lit::neg(0)).is_none());
        // Cofactor w.r.t. an unconstrained variable leaves the cube intact.
        assert_eq!(c.cofactor_lit(Lit::pos(2)).expect("free var"), c);
    }

    #[test]
    fn eval_matches_lits() {
        let c = Cube::from_lits(3, &[Lit::pos(0), Lit::neg(2)]);
        assert!(c.eval(&[true, false, false]));
        assert!(c.eval(&[true, true, false]));
        assert!(!c.eval(&[true, true, true]));
        assert!(!c.eval(&[false, true, false]));
    }

    #[test]
    fn many_vars_cross_word_boundary() {
        let n = 100;
        let mut c = Cube::universe(n);
        c.restrict(Lit::pos(63));
        c.restrict(Lit::neg(64));
        c.restrict(Lit::pos(99));
        assert_eq!(c.literal_count(), 3);
        assert_eq!(c.var_state(63), VarState::Pos);
        assert_eq!(c.var_state(64), VarState::Neg);
        assert_eq!(c.var_state(99), VarState::Pos);
        assert!(!c.is_empty());
        c.restrict(Lit::neg(99));
        assert!(c.is_empty());
    }

    #[test]
    fn extended_preserves_literals() {
        let c = Cube::from_lits(2, &[Lit::pos(1)]);
        let e = c.extended(40);
        assert_eq!(e.num_vars(), 40);
        assert_eq!(e.var_state(1), VarState::Pos);
        assert_eq!(e.literal_count(), 1);
    }

    #[test]
    fn display_forms() {
        let c = Cube::from_lits(3, &[Lit::pos(0), Lit::neg(1)]);
        assert_eq!(c.to_string(), "ab'");
        assert_eq!(Cube::universe(2).to_string(), "1");
        assert_eq!(
            Cube::from_lits(1, &[Lit::pos(0), Lit::neg(0)]).to_string(),
            "0"
        );
    }
}
