//! Exact minterm counting for covers via disjoint decomposition — useful
//! for coverage statistics and as a cheap functional fingerprint.

use crate::{Cover, Cube, Lit, Phase, VarState};

impl Cover {
    /// Number of minterms the cover contains, computed by disjointing the
    /// cubes (recursive sharp). Exact; exponential only in pathological
    /// overlap patterns, fine for node-sized covers.
    ///
    /// # Panics
    ///
    /// Panics if the universe exceeds 127 variables (the count could
    /// overflow `u128`).
    #[must_use]
    pub fn minterm_count(&self) -> u128 {
        assert!(
            self.num_vars() <= 127,
            "minterm_count limited to 127 variables"
        );
        let mut disjoint: Vec<Cube> = Vec::new();
        for cube in self.cubes() {
            // Pieces of `cube` not covered by the already-collected
            // disjoint set.
            let mut pieces = vec![cube.clone()];
            for d in &disjoint {
                let mut next = Vec::new();
                for p in pieces {
                    next.extend(sharp_cube(&p, d));
                }
                pieces = next;
                if pieces.is_empty() {
                    break;
                }
            }
            disjoint.extend(pieces);
        }
        let n = self.num_vars() as u32;
        disjoint
            .iter()
            .map(|c| 1u128 << (n - c.literal_count() as u32))
            .sum()
    }

    /// Fraction of the input space covered (0.0–1.0).
    ///
    /// # Panics
    ///
    /// Panics if the universe exceeds 127 variables.
    #[must_use]
    pub fn density(&self) -> f64 {
        let n = self.num_vars() as u32;
        self.minterm_count() as f64 / (1u128 << n) as f64
    }
}

/// `a \ b` as a list of pairwise-disjoint cubes (the classical disjoint
/// sharp of two cubes).
fn sharp_cube(a: &Cube, b: &Cube) -> Vec<Cube> {
    let n = a.num_vars();
    if a.distance(b) > 0 {
        return vec![a.clone()]; // disjoint already
    }
    // For each variable where b is tighter than a, peel off the half of a
    // that b excludes; restrict a to b's phase and continue.
    let mut out = Vec::new();
    let mut rest = a.clone();
    for v in 0..n {
        let (sa, sb) = (rest.var_state(v), b.var_state(v));
        match (sa, sb) {
            (VarState::DontCare, VarState::Pos) => {
                let mut piece = rest.clone();
                piece.restrict(Lit {
                    var: v,
                    phase: Phase::Neg,
                });
                out.push(piece);
                rest.restrict(Lit {
                    var: v,
                    phase: Phase::Pos,
                });
            }
            (VarState::DontCare, VarState::Neg) => {
                let mut piece = rest.clone();
                piece.restrict(Lit {
                    var: v,
                    phase: Phase::Pos,
                });
                out.push(piece);
                rest.restrict(Lit {
                    var: v,
                    phase: Phase::Neg,
                });
            }
            _ => {}
        }
    }
    // `rest` is now contained in b: dropped.
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_sop;

    fn brute(f: &Cover) -> u128 {
        let n = f.num_vars();
        let mut count = 0u128;
        for m in 0u64..(1 << n) {
            let ins: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            if f.eval(&ins) {
                count += 1;
            }
        }
        count
    }

    #[test]
    fn counts_match_brute_force() {
        for (n, s) in [
            (3, "ab + a'c"),
            (3, "ab + ac + bc'"),
            (4, "ab + cd"),
            (2, "a + a'"),
            (4, "abcd"),
            (5, "a + b + c + d + e"),
        ] {
            let f = parse_sop(n, s).expect("parse");
            assert_eq!(f.minterm_count(), brute(&f), "mismatch on {s}");
        }
    }

    #[test]
    fn constants() {
        assert_eq!(Cover::new(4).minterm_count(), 0);
        assert_eq!(Cover::one(4).minterm_count(), 16);
        assert!((Cover::one(4).density() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn overlapping_cubes_not_double_counted() {
        let f = parse_sop(3, "a + a + ab + abc").expect("parse");
        assert_eq!(f.minterm_count(), 4);
    }

    #[test]
    fn equivalent_covers_same_count() {
        let f = parse_sop(3, "ab + a'c + bc").expect("parse");
        let g = parse_sop(3, "ab + a'c").expect("parse");
        assert_eq!(f.minterm_count(), g.minterm_count());
    }
}
