//! ESPRESSO-style heuristic two-level minimization (EXPAND, IRREDUNDANT,
//! REDUCE) with don't-care support. This is the `simplify` step of the
//! SIS-like scripts and the engine behind node minimization.

use crate::{Cover, Cube, Lit};

/// Options controlling [`simplify`].
#[derive(Debug, Clone, Copy)]
pub struct SimplifyOptions {
    /// Maximum number of EXPAND/IRREDUNDANT/REDUCE sweeps.
    pub max_iterations: usize,
    /// Whether to run the REDUCE phase between sweeps (more effort, can
    /// escape local minima).
    pub reduce: bool,
}

impl Default for SimplifyOptions {
    fn default() -> SimplifyOptions {
        SimplifyOptions {
            max_iterations: 4,
            reduce: true,
        }
    }
}

/// Cost of a cover: (cube count, literal count); minimization is
/// lexicographic on this pair with literals dominant like SIS.
fn cost(f: &Cover) -> (usize, usize) {
    (f.literal_count(), f.len())
}

/// Heuristically minimizes `onset` against the don't-care set `dcset`.
///
/// The result covers `onset` and is covered by `onset + dcset`; it is
/// irredundant and each cube is prime relative to `onset + dcset`.
///
/// # Panics
///
/// Panics if the universes differ.
#[must_use]
pub fn simplify(onset: &Cover, dcset: &Cover, opts: SimplifyOptions) -> Cover {
    assert_eq!(onset.num_vars(), dcset.num_vars(), "universe mismatch");
    let mut f = onset.clone();
    f.remove_contained_cubes();
    if f.is_empty() {
        return f;
    }
    let care_upper = onset.or(dcset);
    if care_upper.is_tautology() && dcset.is_empty() && onset.is_tautology() {
        return Cover::one(onset.num_vars());
    }

    let mut best = f.clone();
    let mut best_cost = cost(&best);
    for _ in 0..opts.max_iterations.max(1) {
        expand(&mut f, &care_upper);
        irredundant(&mut f, dcset);
        let c = cost(&f);
        if c < best_cost {
            best = f.clone();
            best_cost = c;
        } else {
            break;
        }
        if opts.reduce {
            reduce(&mut f, dcset);
        } else {
            break;
        }
    }
    best
}

/// Convenience wrapper: minimize with no don't cares and default options.
#[must_use]
pub fn simplify_exact_cover(onset: &Cover) -> Cover {
    simplify(
        onset,
        &Cover::new(onset.num_vars()),
        SimplifyOptions::default(),
    )
}

/// EXPAND: raise each cube to a prime of `upper = onset + dcset` by
/// deleting literals while the enlarged cube stays inside `upper`.
fn expand(f: &mut Cover, upper: &Cover) {
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Expand big cubes first so they can absorb small ones.
    cubes.sort_by_key(Cube::literal_count);
    for cube in &mut cubes {
        // Try literals in a deterministic order; re-check after each
        // deletion since deletions interact.
        let lits: Vec<Lit> = cube.lits().collect();
        for l in lits {
            let mut trial = cube.clone();
            trial.free_var(l.var);
            if upper.covers_cube(&trial) {
                *cube = trial;
            }
        }
    }
    *f = Cover::from_cubes(f.num_vars(), cubes);
    f.remove_contained_cubes();
}

/// IRREDUNDANT: drop cubes covered by the rest of the cover plus the
/// don't-care set. Greedy, biased to drop large-literal cubes first.
fn irredundant(f: &mut Cover, dcset: &Cover) {
    let mut order: Vec<usize> = (0..f.len()).collect();
    // Try to remove cubes with many literals first (cheapest to lose).
    order.sort_by_key(|&i| std::cmp::Reverse(f.cubes()[i].literal_count()));
    let mut keep = vec![true; f.len()];
    for &i in &order {
        keep[i] = false;
        let mut rest = Cover::new(f.num_vars());
        for (j, c) in f.cubes().iter().enumerate() {
            if keep[j] {
                rest.push(c.clone());
            }
        }
        rest.extend_cover(dcset);
        if !rest.covers_cube(&f.cubes()[i]) {
            keep[i] = true;
        }
    }
    let cubes = f
        .cubes()
        .iter()
        .enumerate()
        .filter(|&(i, _c)| keep[i])
        .map(|(_i, c)| c.clone())
        .collect();
    *f = Cover::from_cubes(f.num_vars(), cubes);
}

/// REDUCE: shrink each cube to the smallest cube still covering the part
/// of the onset no other cube covers, enabling different expansions on the
/// next sweep. We implement the classical "maximally reduce against the
/// rest" using supercube of the sharp.
fn reduce(f: &mut Cover, dcset: &Cover) {
    let n = f.num_vars();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Reduce small cubes last (they are the most constrained already).
    cubes.sort_by_key(|c| std::cmp::Reverse(c.literal_count()));
    for i in 0..cubes.len() {
        let mut rest = Cover::new(n);
        for (j, c) in cubes.iter().enumerate() {
            if j != i {
                rest.push(c.clone());
            }
        }
        rest.extend_cover(dcset);
        // Part of cube i not covered by the rest:
        let exclusive = Cover::from_cubes(n, vec![cubes[i].clone()]).sharp(&rest);
        if exclusive.is_empty() {
            continue; // fully redundant; leave for irredundant to drop
        }
        // Smallest cube containing `exclusive` (its supercube).
        let mut sup = exclusive.cubes()[0].clone();
        for c in &exclusive.cubes()[1..] {
            sup = supercube(&sup, c);
        }
        // Only shrink, never grow, and stay inside the original cube.
        if cubes[i].contains(&sup) {
            cubes[i] = sup;
        }
    }
    *f = Cover::from_cubes(n, cubes);
}

/// Smallest cube containing both arguments.
#[must_use]
pub fn supercube(a: &Cube, b: &Cube) -> Cube {
    let n = a.num_vars();
    assert_eq!(n, b.num_vars(), "universe mismatch");
    let mut out = Cube::universe(n);
    for v in 0..n {
        use crate::VarState::{Neg, Pos};
        match (a.var_state(v), b.var_state(v)) {
            (Pos, Pos) => out.restrict(Lit::pos(v)),
            (Neg, Neg) => out.restrict(Lit::neg(v)),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_sop;

    fn roundtrip(n: usize, on: &str, dc: &str) -> Cover {
        let onset = parse_sop(n, on).expect("parse onset");
        let dcset = parse_sop(n, dc).expect("parse dcset");
        let out = simplify(&onset, &dcset, SimplifyOptions::default());
        // Correctness envelope: onset \ dc ⊆ out ⊆ onset + dc. (Minterms in
        // both onset and dcset are genuinely optional.)
        assert!(
            out.covers(&onset.sharp(&dcset)),
            "lost care onset minterms for {on} dc {dc}"
        );
        assert!(
            onset.or(&dcset).covers(&out),
            "gained care minterms for {on} dc {dc}"
        );
        out
    }

    #[test]
    fn merges_adjacent_cubes() {
        let out = roundtrip(2, "ab + ab'", "0");
        assert_eq!(out.to_string(), "a");
    }

    #[test]
    fn removes_consensus_cube() {
        let out = roundtrip(3, "ab + a'c + bc", "0");
        assert_eq!(out.literal_count(), 4);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn uses_dont_cares() {
        // f = ab, dc = ab' : expands to a.
        let out = roundtrip(2, "ab", "ab'");
        assert_eq!(out.to_string(), "a");
    }

    #[test]
    fn boolean_division_via_dc_example() {
        // The paper's motivating trick: simplify f with d' as don't care.
        // f = ab + ac + bc', divisor d = ab + c. With dc = d' = a'c' + b'c'
        // f can use cubes inside d freely.
        let out = roundtrip(3, "ab + ac + bc'", "a'c' + b'c'");
        assert!(out.literal_count() <= 6);
    }

    #[test]
    fn full_onset_becomes_one() {
        let out = roundtrip(2, "ab + ab' + a'b + a'b'", "0");
        assert_eq!(out.to_string(), "1");
    }

    #[test]
    fn empty_onset_stays_empty() {
        let out = roundtrip(3, "0", "a");
        assert!(out.is_empty());
    }

    #[test]
    fn supercube_merges() {
        let a = parse_sop(3, "ab").expect("parse");
        let b = parse_sop(3, "ab'c").expect("parse");
        let s = supercube(&a.cubes()[0], &b.cubes()[0]);
        assert_eq!(s.to_string(), "a");
    }

    #[test]
    fn never_worse_than_input() {
        for (n, s) in [
            (4, "abcd + abcd' + abc'd + ab'cd"),
            (3, "ab + ab'c + a'bc"),
            (5, "abc + abd + abe + ab"),
        ] {
            let f = parse_sop(n, s).expect("parse");
            let out = simplify(&f, &Cover::new(n), SimplifyOptions::default());
            assert!(out.literal_count() <= f.literal_count(), "worse on {s}");
            assert!(out.equivalent(&f), "not equivalent on {s}");
        }
    }
}
