//! Covers: sums of products (lists of [`Cube`]s over a common universe).

use crate::{Cube, Lit};

/// A sum-of-products: an unordered list of cubes over `num_vars` variables.
///
/// The empty cover denotes the constant-0 function; a cover containing the
/// universal cube denotes constant 1 (possibly among other cubes).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cover {
    cubes: Vec<Cube>,
    num_vars: usize,
}

impl Cover {
    /// The empty (constant-0) cover over `num_vars` variables.
    #[must_use]
    pub fn new(num_vars: usize) -> Cover {
        Cover {
            cubes: Vec::new(),
            num_vars,
        }
    }

    /// The constant-1 cover (single universal cube).
    #[must_use]
    pub fn one(num_vars: usize) -> Cover {
        Cover {
            cubes: vec![Cube::universe(num_vars)],
            num_vars,
        }
    }

    /// Builds a cover from cubes.
    ///
    /// # Panics
    ///
    /// Panics if any cube's universe differs from `num_vars`.
    #[must_use]
    pub fn from_cubes(num_vars: usize, cubes: Vec<Cube>) -> Cover {
        for c in &cubes {
            assert_eq!(c.num_vars(), num_vars, "cube universe mismatch");
        }
        Cover { cubes, num_vars }
    }

    /// Number of variables in the universe.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The cubes of the cover.
    #[must_use]
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Mutable access to the cubes. Callers must preserve the universe.
    pub fn cubes_mut(&mut self) -> &mut Vec<Cube> {
        &mut self.cubes
    }

    /// Number of cubes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// True if the cover has no cubes (constant 0).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Total number of literals over all cubes (SOP literal count).
    #[must_use]
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Appends a cube, dropping it silently if empty.
    ///
    /// # Panics
    ///
    /// Panics if the cube's universe differs.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.num_vars(), self.num_vars, "cube universe mismatch");
        if !cube.is_empty() {
            self.cubes.push(cube);
        }
    }

    /// Appends all cubes of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn extend_cover(&mut self, other: &Cover) {
        assert_eq!(other.num_vars, self.num_vars, "cover universe mismatch");
        for c in &other.cubes {
            self.push(c.clone());
        }
    }

    /// Boolean OR: concatenation of the two covers.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn or(&self, other: &Cover) -> Cover {
        let mut out = self.clone();
        out.extend_cover(other);
        out
    }

    /// Boolean AND: pairwise cube intersections (may blow up; intended for
    /// small covers such as node functions).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn and(&self, other: &Cover) -> Cover {
        assert_eq!(other.num_vars, self.num_vars, "cover universe mismatch");
        let mut out = Cover::new(self.num_vars);
        for a in &self.cubes {
            for b in &other.cubes {
                out.push(a.and(b));
            }
        }
        out
    }

    /// True if some cube of the cover contains `cube` outright (a purely
    /// structural, single-cube containment test — *not* the full Boolean
    /// containment, for which see [`Cover::covers_cube`]).
    ///
    /// This is the containment notion used by the paper's SOS definition.
    #[must_use]
    pub fn some_cube_contains(&self, cube: &Cube) -> bool {
        self.cubes.iter().any(|c| c.contains(cube))
    }

    /// Cofactor of the cover with respect to literal `l`.
    #[must_use]
    pub fn cofactor_lit(&self, l: Lit) -> Cover {
        let cubes = self
            .cubes
            .iter()
            .filter_map(|c| c.cofactor_lit(l))
            .collect();
        Cover {
            cubes,
            num_vars: self.num_vars,
        }
    }

    /// Cofactor of the cover with respect to cube `c`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn cofactor(&self, c: &Cube) -> Cover {
        let cubes = self.cubes.iter().filter_map(|x| x.cofactor(c)).collect();
        Cover {
            cubes,
            num_vars: self.num_vars,
        }
    }

    /// Removes cubes contained in another cube of the cover (single-cube
    /// containment minimization). Keeps the first of equal cubes.
    pub fn remove_contained_cubes(&mut self) {
        let mut keep: Vec<Cube> = Vec::with_capacity(self.cubes.len());
        'outer: for (i, c) in self.cubes.iter().enumerate() {
            if c.is_empty() {
                continue;
            }
            for k in &keep {
                if k.contains(c) {
                    continue 'outer;
                }
            }
            for later in &self.cubes[i + 1..] {
                // Strictly larger later cube supersedes c; equal cubes are
                // handled by the `keep` scan above.
                if later.contains(c) && !c.contains(later) {
                    continue 'outer;
                }
            }
            keep.push(c.clone());
        }
        self.cubes = keep;
    }

    /// Evaluates the cover on a complete input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() < num_vars`.
    #[must_use]
    pub fn eval(&self, inputs: &[bool]) -> bool {
        self.cubes.iter().any(|c| c.eval(inputs))
    }

    /// Set of variables appearing in at least one cube.
    #[must_use]
    pub fn support(&self) -> Vec<usize> {
        let mut seen = vec![false; self.num_vars];
        for c in &self.cubes {
            for v in c.support() {
                seen[v] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter_map(|(v, &s)| s.then_some(v))
            .collect()
    }

    /// Remaps variables through `map` into a universe of `new_num_vars`.
    ///
    /// # Panics
    ///
    /// Panics if a mapped index is out of range.
    #[must_use]
    pub fn remapped(&self, new_num_vars: usize, map: &[usize]) -> Cover {
        let cubes = self
            .cubes
            .iter()
            .map(|c| c.remapped(new_num_vars, map))
            .collect();
        Cover {
            cubes,
            num_vars: new_num_vars,
        }
    }

    /// Grows the universe to `new_num_vars`, keeping all literals.
    ///
    /// # Panics
    ///
    /// Panics if `new_num_vars < num_vars`.
    #[must_use]
    pub fn extended(&self, new_num_vars: usize) -> Cover {
        let cubes = self
            .cubes
            .iter()
            .map(|c| c.extended(new_num_vars))
            .collect();
        Cover {
            cubes,
            num_vars: new_num_vars,
        }
    }
}

impl FromIterator<Cube> for Cover {
    /// Collects cubes into a cover; the universe is taken from the first
    /// cube (an empty iterator yields a 0-variable constant-0 cover).
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Cover {
        let mut it = iter.into_iter();
        match it.next() {
            None => Cover::new(0),
            Some(first) => {
                let mut cover = Cover::new(first.num_vars());
                cover.push(first);
                for c in it {
                    cover.push(c);
                }
                cover
            }
        }
    }
}

impl Extend<Cube> for Cover {
    fn extend<I: IntoIterator<Item = Cube>>(&mut self, iter: I) {
        for c in iter {
            self.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_sop;

    #[test]
    fn or_and_eval() {
        let f = parse_sop(3, "ab + c").expect("parse");
        let g = parse_sop(3, "a'").expect("parse");
        let h = f.and(&g);
        // (ab + c)a' = a'c
        assert!(h.eval(&[false, false, true]));
        assert!(!h.eval(&[true, true, false]));
        let o = f.or(&g);
        assert!(o.eval(&[false, false, false]));
    }

    #[test]
    fn empty_cube_dropped_on_push() {
        let mut f = Cover::new(2);
        f.push(Cube::from_lits(2, &[Lit::pos(0), Lit::neg(0)]));
        assert!(f.is_empty());
    }

    #[test]
    fn scc_removes_contained() {
        let mut f = parse_sop(3, "ab + abc + a + a").expect("parse");
        f.remove_contained_cubes();
        assert_eq!(f.to_string(), "a");
    }

    #[test]
    fn cofactor_by_lit() {
        let f = parse_sop(3, "ab + a'c").expect("parse");
        let fa = f.cofactor_lit(Lit::pos(0));
        assert_eq!(fa.to_string(), "b");
        let fan = f.cofactor_lit(Lit::neg(0));
        assert_eq!(fan.to_string(), "c");
    }

    #[test]
    fn some_cube_contains_is_structural() {
        let f = parse_sop(3, "ab + c").expect("parse");
        let abc = parse_sop(3, "abc").expect("parse");
        assert!(f.some_cube_contains(&abc.cubes()[0]));
        let ab_prime = parse_sop(3, "ab'").expect("parse");
        assert!(!f.some_cube_contains(&ab_prime.cubes()[0]));
    }

    #[test]
    fn support_lists_used_vars() {
        let f = parse_sop(5, "ac + d'").expect("parse");
        assert_eq!(f.support(), vec![0, 2, 3]);
    }
}
