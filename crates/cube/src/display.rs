//! Textual forms for cubes and covers used in tests, examples and the
//! table binaries. Variables are named `a..z`, then `v26`, `v27`, ….

use crate::{Cover, Cube, Lit, Phase};
use std::fmt;

/// Default print name for variable index `v`: `a..z`, then `v<index>`.
#[must_use]
pub fn var_name(v: usize) -> String {
    if v < 26 {
        char::from(b'a' + v as u8).to_string()
    } else {
        format!("v{v}")
    }
}

/// Error produced when parsing an alphabetic SOP expression fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSopError {
    msg: String,
}

impl fmt::Display for ParseSopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid sum-of-products expression: {}", self.msg)
    }
}

impl std::error::Error for ParseSopError {}

/// Parses expressions such as `ab' + c + a'bc` into a [`Cover`] over
/// `num_vars` variables, where `a` is variable 0, `b` variable 1, and so
/// on. `0` denotes the empty cover term and `1` the universal cube.
///
/// # Errors
///
/// Returns [`ParseSopError`] on unknown characters or variables outside the
/// declared universe.
pub fn parse_sop(num_vars: usize, text: &str) -> Result<Cover, ParseSopError> {
    let mut cover = Cover::new(num_vars);
    for term in text.split('+') {
        let term = term.trim();
        if term.is_empty() {
            return Err(ParseSopError {
                msg: "empty product term".into(),
            });
        }
        if term == "0" {
            continue;
        }
        if term == "1" {
            cover.push(Cube::universe(num_vars));
            continue;
        }
        let mut lits: Vec<Lit> = Vec::new();
        let chars: Vec<char> = term.chars().filter(|c| !c.is_whitespace()).collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if !c.is_ascii_lowercase() {
                return Err(ParseSopError {
                    msg: format!("unexpected character {c:?}"),
                });
            }
            let var = (c as u8 - b'a') as usize;
            if var >= num_vars {
                return Err(ParseSopError {
                    msg: format!("variable {c:?} outside universe of {num_vars}"),
                });
            }
            let phase = if i + 1 < chars.len() && chars[i + 1] == '\'' {
                i += 1;
                Phase::Neg
            } else {
                Phase::Pos
            };
            lits.push(Lit { var, phase });
            i += 1;
        }
        cover.push(Cube::from_lits(num_vars, &lits));
    }
    Ok(cover)
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes().iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cover({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let c = parse_sop(4, "ab' + c + a'bd").expect("parse");
        assert_eq!(c.to_string(), "ab' + c + a'bd");
    }

    #[test]
    fn parse_constants() {
        assert_eq!(parse_sop(2, "0").expect("parse").to_string(), "0");
        assert_eq!(parse_sop(2, "1").expect("parse").to_string(), "1");
        assert_eq!(parse_sop(2, "a + 0").expect("parse").to_string(), "a");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_sop(2, "a + ").is_err());
        assert!(parse_sop(2, "aZ").is_err());
        assert!(parse_sop(1, "ab").is_err());
    }
}
