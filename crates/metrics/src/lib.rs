//! Process-wide cost accounting for the boolsubst engine.
//!
//! The trace subsystem (`boolsubst-trace`) answers "what happened to
//! pair (t, d)?" — per-event spans with stage timings. This crate
//! answers the aggregate question — "where does the time, memory, and
//! work actually go?" — with always-cheap typed instruments:
//!
//! - [`Counter`] / [`Gauge`] / [`Histogram`]: lock-free atomic
//!   instruments handed out by a [`MetricsHandle`]-shared [`Registry`].
//!   Handles are resolved once (one interning lookup) and then every
//!   hot-path update is a single relaxed atomic op.
//! - [`Region`] (via [`MetricsHandle::region`]): scoped hierarchical
//!   profiling regions that roll wall-time and invocation counts up
//!   into dotted `perf.<path>.{calls,ns}` counters.
//! - [`mem`]: a counting global allocator behind the `mem-profile`
//!   feature, plus helpers to publish live/peak byte gauges.
//! - Sinks: [`prometheus_string`] (text exposition format),
//!   [`json_snapshot_string`] (routed through `boolsubst_trace::json`),
//!   and a live stderr [`Heartbeat`] ticker for long sweeps.
//!
//! Histogram bucketing reuses `boolsubst_trace::hist`'s log2 scheme
//! (65 buckets; bucket *i* ≥ 1 covers `[2^(i-1), 2^i - 1]`), so trace
//! report quantiles and metric histograms agree bucket for bucket.
//!
//! The attachment contract mirrors the tracer's: an engine holding an
//! `Option<MetricsHandle>` must produce bit-identical results whether
//! the handle is attached or not (pinned by the root crate's
//! `engine_parity` tests). Instruments only *observe*.

#![warn(missing_docs)]

pub mod heartbeat;
pub mod mem;
pub mod perf;
pub mod prometheus;
pub mod registry;
pub mod snapshot;

pub use heartbeat::{format_tick, Heartbeat, TickState};
pub use perf::Region;
pub use prometheus::prometheus_string;
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsHandle, Registry, Snapshot,
};
pub use snapshot::json_snapshot_string;
