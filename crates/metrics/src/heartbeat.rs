//! Live stderr heartbeat for long sweeps.
//!
//! [`Heartbeat::start`] spawns a ticker thread that periodically
//! formats a one-line progress summary from well-known engine metric
//! keys — pairs/s since the last tick, accept rate, guard tier mix,
//! target progress, and an ETA extrapolated from targets done — and
//! writes it to stderr. The line is produced by the pure
//! [`format_tick`], so the format is testable without threads or
//! timing.
//!
//! Missing keys render as zeros: the ticker works (dully) even when
//! pointed at an empty registry, and needs no coordination with the
//! engine beyond the shared handle.
//!
//! Dropping a `Heartbeat` always flushes one last `[final]`-tagged
//! line before the ticker joins — including when the drop happens
//! during a panic unwind — so the last progress a quarantined job
//! made is never lost to the tick period.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::registry::MetricsHandle;

/// Where heartbeat lines go. Boxed so tests (and services that want to
/// journal heartbeats) can capture them instead of writing stderr.
type Sink = Box<dyn FnMut(&str) + Send>;

/// Rate bookkeeping carried between ticks.
#[derive(Debug, Default)]
pub struct TickState {
    last_pairs: u64,
    last_elapsed: f64,
}

/// Formats one heartbeat line (no trailing newline) from the engine's
/// well-known metric keys; see the module docs. `elapsed_secs` is the
/// wall time since the run started.
#[must_use]
pub fn format_tick(handle: &MetricsHandle, state: &mut TickState, elapsed_secs: f64) -> String {
    let c = |k: &str| handle.counter_value(k).unwrap_or(0);
    let g = |k: &str| handle.gauge_value(k).unwrap_or(0);
    let pairs = c("engine.pairs");
    let accepts = c("engine.accepts");
    let dt = (elapsed_secs - state.last_elapsed).max(1e-9);
    let rate = (pairs.saturating_sub(state.last_pairs)) as f64 / dt;
    state.last_pairs = pairs;
    state.last_elapsed = elapsed_secs;
    let accept_pct = if pairs > 0 {
        accepts as f64 * 100.0 / pairs as f64
    } else {
        0.0
    };
    let (done, total) = (g("engine.targets_done"), g("engine.targets_total"));
    let eta = if done > 0 && total > done {
        let secs = elapsed_secs * (total - done) as f64 / done as f64;
        format!(" eta {secs:.0}s")
    } else {
        String::new()
    };
    format!(
        "[metrics {elapsed_secs:.1}s] pairs {pairs} ({rate:.1}/s) accept {accept_pct:.2}% \
         gain {} guard sim:{} bdd:{} sat:{} sampled:{} targets {done}/{total}{eta}",
        g("engine.literal_gain"),
        c("guard.tier.sim"),
        c("guard.tier.bdd"),
        c("guard.tier.sat"),
        c("guard.tier.sampled"),
    )
}

/// A background ticker; stops, flushes a final line, and joins on drop.
#[derive(Debug)]
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Heartbeat {
    /// Starts a stderr ticker over `handle` emitting every `period`.
    /// Periods below 100 ms are clamped up to keep stderr readable.
    #[must_use]
    pub fn start(handle: MetricsHandle, period: Duration) -> Heartbeat {
        Heartbeat::start_with_sink(handle, period, Box::new(|line| eprintln!("{line}")))
    }

    /// Like [`Heartbeat::start`] with an explicit sink for the emitted
    /// lines (periodic ticks and the final drop-time flush alike).
    #[must_use]
    pub fn start_with_sink(handle: MetricsHandle, period: Duration, mut sink: Sink) -> Heartbeat {
        let period = period.max(Duration::from_millis(100));
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut state = TickState::default();
            let mut next = period;
            while !stop2.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(50).min(period));
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                if t0.elapsed() >= next {
                    next += period;
                    sink(&format_tick(
                        &handle,
                        &mut state,
                        t0.elapsed().as_secs_f64(),
                    ));
                }
            }
            // The owner is dropping us (possibly mid-unwind after a
            // panic): flush one last summary so the run's final counter
            // values are on record even if no tick period ever elapsed.
            let line = format_tick(&handle, &mut state, t0.elapsed().as_secs_f64());
            sink(&format!("{line} [final]"));
        });
        Heartbeat {
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn capture() -> (Arc<Mutex<Vec<String>>>, Sink) {
        let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_lines = Arc::clone(&lines);
        let sink: Sink = Box::new(move |line: &str| {
            sink_lines.lock().expect("sink lock").push(line.to_string());
        });
        (lines, sink)
    }

    #[test]
    fn tick_formats_rates_and_eta() {
        let m = MetricsHandle::new();
        m.counter("engine.pairs").add(100);
        m.counter("engine.accepts").add(4);
        m.gauge("engine.literal_gain").set(9);
        m.counter("guard.tier.sim").add(90);
        m.counter("guard.tier.bdd").add(10);
        m.gauge("engine.targets_total").set(40);
        m.gauge("engine.targets_done").set(10);
        let mut state = TickState::default();
        let line = format_tick(&m, &mut state, 2.0);
        assert!(line.contains("pairs 100 (50.0/s)"), "{line}");
        assert!(line.contains("accept 4.00%"), "{line}");
        assert!(line.contains("gain 9"), "{line}");
        assert!(line.contains("sim:90 bdd:10 sat:0"), "{line}");
        assert!(line.contains("targets 10/40"), "{line}");
        assert!(line.contains("eta 6s"), "{line}");
        // Second tick: rate over the delta only.
        m.counter("engine.pairs").add(50);
        let line = format_tick(&m, &mut state, 3.0);
        assert!(line.contains("pairs 150 (50.0/s)"), "{line}");
    }

    #[test]
    fn empty_registry_ticks_zeros() {
        let m = MetricsHandle::new();
        let line = format_tick(&m, &mut TickState::default(), 1.0);
        assert!(line.contains("pairs 0 (0.0/s)"), "{line}");
        assert!(!line.contains("eta"), "{line}");
    }

    #[test]
    fn heartbeat_stops_on_drop() {
        let hb = Heartbeat::start(MetricsHandle::new(), Duration::from_secs(60));
        drop(hb); // must not hang waiting out the period
    }

    #[test]
    fn drop_flushes_a_final_line_before_any_tick() {
        let m = MetricsHandle::new();
        m.counter("engine.pairs").add(7);
        let (lines, sink) = capture();
        let hb = Heartbeat::start_with_sink(m, Duration::from_secs(60), sink);
        drop(hb);
        let lines = lines.lock().expect("lines");
        assert_eq!(lines.len(), 1, "exactly the final flush: {lines:?}");
        assert!(lines[0].ends_with("[final]"), "{}", lines[0]);
        assert!(lines[0].contains("pairs 7"), "{}", lines[0]);
    }

    #[test]
    fn final_line_survives_a_panic_unwind() {
        let m = MetricsHandle::new();
        m.counter("engine.pairs").add(3);
        let (lines, sink) = capture();
        let hb = Heartbeat::start_with_sink(m, Duration::from_secs(60), sink);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _hold = hb;
            panic!("job quarantined");
        }));
        assert!(result.is_err());
        let lines = lines.lock().expect("lines");
        assert_eq!(
            lines.len(),
            1,
            "unwind drop must still flush the final line: {lines:?}"
        );
        assert!(lines[0].contains("pairs 3 "), "{}", lines[0]);
        assert!(lines[0].ends_with("[final]"), "{}", lines[0]);
    }
}
