//! The metric registry and its typed instruments.
//!
//! A [`Registry`] interns string keys (dotted lowercase paths, e.g.
//! `sweep.worker.0.proof_ns`) to atomic slots. Call sites resolve a
//! [`Counter`]/[`Gauge`]/[`Histogram`] handle once — paying one
//! read-mostly `RwLock` lookup — and afterwards every update is a
//! single relaxed atomic operation on an `Arc`-shared cell, so the
//! hot path never takes a lock and never allocates.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use boolsubst_trace::{bucket_index, BUCKETS};

/// A monotonically increasing `u64` instrument (events, nanoseconds).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instrument for levels (live bytes, nodes, targets done).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (peak tracking).
    pub fn max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log2 histogram sharing `boolsubst_trace::hist`'s bucketing:
/// bucket 0 holds zeros, bucket `i >= 1` covers `[2^(i-1), 2^i - 1]`.
/// Values are typically nanoseconds but any `u64` scale works.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    fn new() -> Histogram {
        Histogram(Arc::new(HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Copies the per-bucket counts out.
    #[must_use]
    pub fn buckets(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }
}

/// A point-in-time copy of one histogram's cells.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket counts (log2 buckets, index per `trace::bucket_index`).
    pub buckets: [u64; BUCKETS],
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time copy of every registered metric, sorted by key.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counters as `(key, value)`.
    pub counters: Vec<(String, u64)>,
    /// Gauges as `(key, value)`.
    pub gauges: Vec<(String, i64)>,
    /// Histograms as `(key, cells)`.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Interning store behind a [`MetricsHandle`]. Metric keys are dotted
/// lowercase paths over `[a-z0-9_.]` (`guard.check_ns.sat`); the
/// Prometheus sink maps dots to underscores.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<HashMap<String, Metric>>,
}

fn assert_key(key: &str) {
    assert!(
        !key.is_empty()
            && key
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'.' || b == b'_'),
        "metric key {key:?} must be non-empty lowercase dotted [a-z0-9_.]"
    );
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    fn resolve<T, F, G>(&self, key: &str, project: F, create: G) -> T
    where
        F: Fn(&Metric) -> Option<T>,
        G: FnOnce() -> (Metric, T),
    {
        assert_key(key);
        if let Some(m) = self.metrics.read().expect("metrics lock").get(key) {
            return project(m).unwrap_or_else(|| {
                panic!("metric key {key:?} already registered as a {}", m.kind())
            });
        }
        let mut w = self.metrics.write().expect("metrics lock");
        if let Some(m) = w.get(key) {
            // Raced with another registrant between the two locks.
            return project(m).unwrap_or_else(|| {
                panic!("metric key {key:?} already registered as a {}", m.kind())
            });
        }
        let (metric, handle) = create();
        w.insert(key.to_string(), metric);
        handle
    }
}

/// A cheaply cloneable, thread-safe handle to a [`Registry`]. Cloning
/// shares the underlying store; instruments resolved from any clone
/// update the same cells. `Send + Sync`, so sweep workers may update
/// shared instruments directly.
#[derive(Clone, Debug, Default)]
pub struct MetricsHandle {
    registry: Arc<Registry>,
}

impl MetricsHandle {
    /// A handle to a fresh, empty registry.
    #[must_use]
    pub fn new() -> MetricsHandle {
        MetricsHandle::default()
    }

    /// Resolves (registering on first use) the counter named `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is malformed or already names a non-counter.
    #[must_use]
    pub fn counter(&self, key: &str) -> Counter {
        self.registry.resolve(
            key,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter(Arc::new(AtomicU64::new(0)));
                (Metric::Counter(c.clone()), c)
            },
        )
    }

    /// Resolves (registering on first use) the gauge named `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is malformed or already names a non-gauge.
    #[must_use]
    pub fn gauge(&self, key: &str) -> Gauge {
        self.registry.resolve(
            key,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge(Arc::new(AtomicI64::new(0)));
                (Metric::Gauge(g.clone()), g)
            },
        )
    }

    /// Resolves (registering on first use) the histogram named `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is malformed or already names a non-histogram.
    #[must_use]
    pub fn histogram(&self, key: &str) -> Histogram {
        self.registry.resolve(
            key,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Histogram::new();
                (Metric::Histogram(h.clone()), h)
            },
        )
    }

    /// Value of the counter named `key`, if registered as one.
    #[must_use]
    pub fn counter_value(&self, key: &str) -> Option<u64> {
        match self.registry.metrics.read().expect("metrics lock").get(key) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Value of the gauge named `key`, if registered as one.
    #[must_use]
    pub fn gauge_value(&self, key: &str) -> Option<i64> {
        match self.registry.metrics.read().expect("metrics lock").get(key) {
            Some(Metric::Gauge(g)) => Some(g.get()),
            _ => None,
        }
    }

    /// Copies every registered metric out, sorted by key.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for (k, m) in self.registry.metrics.read().expect("metrics lock").iter() {
            match m {
                Metric::Counter(c) => snap.counters.push((k.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((k.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((
                    k.clone(),
                    HistogramSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.buckets(),
                    },
                )),
            }
        }
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let m = MetricsHandle::new();
        let c = m.counter("engine.pairs");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(m.counter_value("engine.pairs"), Some(5));

        let g = m.gauge("mem.live_bytes");
        g.set(10);
        g.add(-3);
        g.max(5);
        g.max(100);
        assert_eq!(g.get(), 100);

        let h = m.histogram("engine.pair_ns");
        h.observe(0);
        h.observe(1);
        h.observe(1023);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1024);
        let b = h.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 1);
        assert_eq!(b[10], 1);
    }

    #[test]
    fn clones_share_the_store() {
        let m = MetricsHandle::new();
        let m2 = m.clone();
        m.counter("a.b").add(2);
        m2.counter("a.b").add(3);
        assert_eq!(m.counter_value("a.b"), Some(5));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_panics() {
        let m = MetricsHandle::new();
        let _ = m.counter("x.y");
        let _ = m.gauge("x.y");
    }

    #[test]
    #[should_panic(expected = "lowercase dotted")]
    fn malformed_key_panics() {
        let _ = MetricsHandle::new().counter("Engine Pairs");
    }

    /// Tentpole satellite: counters and histograms stay consistent
    /// under multi-threaded contention — no lost updates, and the
    /// histogram's count always equals the bucket total.
    #[test]
    fn contention_loses_no_updates() {
        let m = MetricsHandle::new();
        const THREADS: usize = 8;
        const PER: u64 = 10_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let m = m.clone();
                s.spawn(move || {
                    let c = m.counter("stress.count");
                    let h = m.histogram("stress.hist");
                    for i in 0..PER {
                        c.inc();
                        h.observe(i.wrapping_mul(2_654_435_761) % 1_000_000 + t as u64);
                    }
                });
            }
        });
        let total = THREADS as u64 * PER;
        assert_eq!(m.counter_value("stress.count"), Some(total));
        let snap = m.snapshot();
        let (_, h) = &snap.histograms[0];
        assert_eq!(h.count, total);
        assert_eq!(h.buckets.iter().sum::<u64>(), total);
    }
}
