//! Scoped hierarchical profiling regions.
//!
//! `handle.region("divide")` starts a region; dropping the returned
//! guard books its wall time and one invocation into the counters
//! `perf.<path>.ns` and `perf.<path>.calls`, where `<path>` is the
//! dot-joined stack of enclosing regions on *this thread* — e.g. a
//! region "extended" opened inside "divide" books under
//! `perf.divide.extended.*`. Self-time is derivable by subtracting
//! child totals from the parent's.
//!
//! The per-thread stack makes nesting cheap and allocation-free on
//! entry; the counter lookup happens once, at guard drop. Guards are
//! deliberately `!Send`: moving one across threads would unwind the
//! wrong stack.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::time::Instant;

use crate::registry::MetricsHandle;

thread_local! {
    static REGION_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one profiling region; see the module docs. Obtained
/// from [`MetricsHandle::region`].
#[derive(Debug)]
pub struct Region {
    handle: MetricsHandle,
    start: Instant,
    // Regions must unwind the stack of the thread that opened them.
    _not_send: PhantomData<*const ()>,
}

impl MetricsHandle {
    /// Opens a profiling region named `name` (a static identifier over
    /// `[a-z0-9_]`, no dots — nesting supplies the dots).
    #[must_use]
    pub fn region(&self, name: &'static str) -> Region {
        REGION_STACK.with(|s| s.borrow_mut().push(name));
        Region {
            handle: self.clone(),
            start: Instant::now(),
            _not_send: PhantomData,
        }
    }
}

impl Drop for Region {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let path = REGION_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let path = format!("perf.{}", s.join("."));
            s.pop();
            path
        });
        self.handle.counter(&format!("{path}.calls")).inc();
        self.handle.counter(&format!("{path}.ns")).add(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_regions_book_dotted_paths() {
        let m = MetricsHandle::new();
        {
            let _outer = m.region("pass");
            {
                let _inner = m.region("divide");
            }
            {
                let _inner = m.region("divide");
            }
        }
        assert_eq!(m.counter_value("perf.pass.calls"), Some(1));
        assert_eq!(m.counter_value("perf.pass.divide.calls"), Some(2));
        assert!(m.counter_value("perf.pass.divide.ns").is_some());
        // The stack fully unwound: a fresh region is top-level again.
        drop(m.region("pass"));
        assert_eq!(m.counter_value("perf.pass.calls"), Some(2));
    }
}
