//! Prometheus text-exposition sink.
//!
//! Renders a [`Snapshot`](crate::Snapshot) in the text format scrapers
//! expect: a `# TYPE` line per family, dotted metric keys mapped to
//! underscore names (`sweep.worker.0.proof_ns` →
//! `sweep_worker_0_proof_ns`), and histograms as cumulative
//! `_bucket{le="…"}` series (upper bounds are the log2 bucket
//! ceilings, in nanoseconds) plus `_sum`/`_count`.

use boolsubst_trace::bucket_ceil;

use crate::registry::MetricsHandle;

fn sanitize(key: &str) -> String {
    key.replace('.', "_")
}

/// Renders every registered metric in Prometheus text exposition
/// format, families sorted by key.
#[must_use]
pub fn prometheus_string(handle: &MetricsHandle) -> String {
    let snap = handle.snapshot();
    let mut out = String::new();
    for (k, v) in &snap.counters {
        let name = sanitize(k);
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (k, v) in &snap.gauges {
        let name = sanitize(k);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (k, h) in &snap.histograms {
        let name = sanitize(k);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let top = h.buckets.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
        let mut cum = 0u64;
        for (i, &c) in h.buckets.iter().enumerate().take(top) {
            cum += c;
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cum}\n",
                bucket_ceil(i)
            ));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsHandle;

    #[test]
    fn exposition_shape() {
        let m = MetricsHandle::new();
        m.counter("engine.pairs").add(7);
        m.gauge("mem.live_bytes").set(-3);
        let h = m.histogram("guard.check_ns.sim");
        h.observe(0);
        h.observe(5);
        h.observe(5);
        let text = prometheus_string(&m);
        assert!(text.contains("# TYPE engine_pairs counter\nengine_pairs 7\n"));
        assert!(text.contains("# TYPE mem_live_bytes gauge\nmem_live_bytes -3\n"));
        assert!(text.contains("# TYPE guard_check_ns_sim histogram\n"));
        // Cumulative: zeros bucket, then [1,1], [2,3], [4,7].
        assert!(text.contains("guard_check_ns_sim_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("guard_check_ns_sim_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("guard_check_ns_sim_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("guard_check_ns_sim_sum 10\n"));
        assert!(text.contains("guard_check_ns_sim_count 3\n"));
    }

    #[test]
    fn empty_histogram_still_exposes_inf_bucket() {
        let m = MetricsHandle::new();
        let _ = m.histogram("engine.pair_ns");
        let text = prometheus_string(&m);
        assert!(text.contains("engine_pair_ns_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("engine_pair_ns_count 0\n"));
    }
}
