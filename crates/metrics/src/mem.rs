//! Memory accounting: a counting global allocator behind the
//! `mem-profile` feature.
//!
//! [`CountingAllocator`] wraps the system allocator and maintains
//! live/peak byte totals plus an allocation count in process-wide
//! atomics. The *type* always exists so call sites compile with the
//! feature off, but the `GlobalAlloc` impl — and therefore every
//! accounting instruction — only exists under `mem-profile`; default
//! builds pay nothing. The root binary installs it with:
//!
//! ```ignore
//! #[cfg(feature = "mem-profile")]
//! #[global_allocator]
//! static ALLOC: boolsubst::metrics::mem::CountingAllocator =
//!     boolsubst::metrics::mem::CountingAllocator;
//! ```
//!
//! [`publish`] copies the totals into `mem.*` gauges so they ride
//! along in every sink. With the feature off (or the allocator not
//! installed) the totals read zero and the gauges say so honestly —
//! consumers check [`profiling_enabled`].

use crate::registry::MetricsHandle;

#[cfg(feature = "mem-profile")]
mod counters {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    pub(super) static LIVE: AtomicUsize = AtomicUsize::new(0);
    pub(super) static PEAK: AtomicUsize = AtomicUsize::new(0);
    pub(super) static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub(super) fn on_alloc(size: usize) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    // SAFETY: delegates allocation verbatim to `System`; the wrapper
    // only adds counter updates, never changes sizes or pointers.
    unsafe impl GlobalAlloc for super::CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                on_alloc(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            System.dealloc(ptr, layout);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
                on_alloc(new_size);
            }
            p
        }
    }
}

/// A system-allocator wrapper that counts live/peak bytes and
/// allocations; see the module docs. Accounting (and the
/// `GlobalAlloc` impl) exists only under the `mem-profile` feature.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

/// Whether this build carries allocator accounting (`mem-profile`).
#[must_use]
pub fn profiling_enabled() -> bool {
    cfg!(feature = "mem-profile")
}

/// Currently live heap bytes (0 when profiling is off or the
/// allocator is not installed).
#[must_use]
pub fn live_bytes() -> usize {
    #[cfg(feature = "mem-profile")]
    {
        counters::LIVE.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "mem-profile"))]
    {
        0
    }
}

/// High-water mark of live heap bytes (0 when profiling is off).
#[must_use]
pub fn peak_bytes() -> usize {
    #[cfg(feature = "mem-profile")]
    {
        counters::PEAK.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "mem-profile"))]
    {
        0
    }
}

/// Total allocation calls (0 when profiling is off).
#[must_use]
pub fn allocation_count() -> u64 {
    #[cfg(feature = "mem-profile")]
    {
        counters::ALLOCS.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "mem-profile"))]
    {
        0
    }
}

/// Publishes the allocator totals into `mem.live_bytes`,
/// `mem.peak_bytes`, and `mem.allocations` gauges, plus
/// `mem.profile_enabled` (0/1) so readers can tell "zero bytes" from
/// "not measured".
pub fn publish(handle: &MetricsHandle) {
    let clamp = |v: usize| i64::try_from(v).unwrap_or(i64::MAX);
    handle.gauge("mem.live_bytes").set(clamp(live_bytes()));
    handle.gauge("mem.peak_bytes").set(clamp(peak_bytes()));
    handle
        .gauge("mem.allocations")
        .set(i64::try_from(allocation_count()).unwrap_or(i64::MAX));
    handle
        .gauge("mem.profile_enabled")
        .set(i64::from(profiling_enabled()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_exposes_mem_gauges() {
        let m = MetricsHandle::new();
        publish(&m);
        assert!(m.gauge_value("mem.live_bytes").is_some());
        assert!(m.gauge_value("mem.peak_bytes").is_some());
        assert_eq!(
            m.gauge_value("mem.profile_enabled"),
            Some(i64::from(profiling_enabled()))
        );
    }
}
