//! JSON snapshot sink, routed through the `boolsubst_trace::json`
//! writer so the output is parseable by the same zero-dependency
//! parser the validators use.
//!
//! Shape (one object):
//!
//! ```json
//! {"type": "metrics",
//!  "counters": {"engine.pairs": 42, ...},
//!  "gauges": {"mem.live_bytes": 1024, ...},
//!  "histograms": {"engine.pair_ns":
//!     {"count": 3, "sum": 10, "buckets": [[0, 1], [7, 2]]}, ...}}
//! ```
//!
//! Histogram `buckets` pair each log2 bucket's inclusive upper bound
//! (ns) with its *non-cumulative* count; empty buckets are omitted.

use boolsubst_trace::{bucket_ceil, json::JsonObj};

use crate::registry::MetricsHandle;

/// Renders every registered metric as one JSON object (keys sorted).
#[must_use]
pub fn json_snapshot_string(handle: &MetricsHandle) -> String {
    let snap = handle.snapshot();
    let mut counters = String::from("{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            counters.push_str(", ");
        }
        counters.push_str(&format!("\"{k}\": {v}"));
    }
    counters.push('}');
    let mut gauges = String::from("{");
    for (i, (k, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            gauges.push_str(", ");
        }
        gauges.push_str(&format!("\"{k}\": {v}"));
    }
    gauges.push('}');
    let mut hists = String::from("{");
    for (i, (k, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            hists.push_str(", ");
        }
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(b, &c)| format!("[{}, {c}]", bucket_ceil(b)))
            .collect();
        hists.push_str(&format!(
            "\"{k}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
            h.count,
            h.sum,
            buckets.join(", ")
        ));
    }
    hists.push('}');
    let mut obj = JsonObj::new();
    obj.str("type", "metrics")
        .raw("counters", &counters)
        .raw("gauges", &gauges)
        .raw("histograms", &hists);
    let mut s = obj.finish();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prometheus::prometheus_string;
    use crate::registry::MetricsHandle;
    use boolsubst_trace::json::Json;

    fn sample() -> MetricsHandle {
        let m = MetricsHandle::new();
        m.counter("engine.pairs").add(42);
        m.counter("sweep.worker.0.proof_ns").add(9_001);
        m.gauge("engine.targets_done").set(17);
        let h = m.histogram("engine.pair_ns");
        for v in [0, 3, 900, 900, 1_000_000] {
            h.observe(v);
        }
        m
    }

    #[test]
    fn snapshot_parses_back() {
        let m = sample();
        let j = Json::parse(&json_snapshot_string(&m)).expect("valid json");
        assert_eq!(j.get("type").and_then(Json::as_str), Some("metrics"));
        let counters = j.get("counters").expect("counters");
        assert_eq!(
            counters.get("engine.pairs").and_then(Json::as_u64),
            Some(42)
        );
        let h = j
            .get("histograms")
            .and_then(|h| h.get("engine.pair_ns"))
            .expect("hist");
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(5));
        let buckets = h.get("buckets").and_then(Json::as_array).expect("buckets");
        let total: u64 = buckets
            .iter()
            .map(|p| p.as_array().expect("pair")[1].as_u64().expect("count"))
            .sum();
        assert_eq!(total, 5);
    }

    /// Tentpole satellite: the JSON and Prometheus sinks agree on
    /// every value — same counters, same gauges, same histogram
    /// count/sum, and the JSON bucket counts cumulate to exactly the
    /// Prometheus `_bucket` series.
    #[test]
    fn json_and_prometheus_snapshots_agree() {
        let m = sample();
        let j = Json::parse(&json_snapshot_string(&m)).expect("valid json");
        let prom = prometheus_string(&m);
        let line = |name: &str, v: &str| format!("{name} {v}\n");
        for (key, val) in [("engine.pairs", 42u64), ("sweep.worker.0.proof_ns", 9_001)] {
            assert_eq!(
                j.get("counters")
                    .and_then(|c| c.get(key))
                    .and_then(Json::as_u64),
                Some(val)
            );
            assert!(prom.contains(&line(&key.replace('.', "_"), &val.to_string())));
        }
        assert!(prom.contains(&line("engine_targets_done", "17")));
        let h = j
            .get("histograms")
            .and_then(|h| h.get("engine.pair_ns"))
            .expect("hist");
        let (count, sum) = (
            h.get("count").and_then(Json::as_u64).expect("count"),
            h.get("sum").and_then(Json::as_u64).expect("sum"),
        );
        assert!(prom.contains(&line("engine_pair_ns_count", &count.to_string())));
        assert!(prom.contains(&line("engine_pair_ns_sum", &sum.to_string())));
        let mut cum = 0;
        for pair in h.get("buckets").and_then(Json::as_array).expect("buckets") {
            let pair = pair.as_array().expect("pair");
            let (le, c) = (pair[0].as_u64().expect("le"), pair[1].as_u64().expect("c"));
            cum += c;
            assert!(prom.contains(&format!("engine_pair_ns_bucket{{le=\"{le}\"}} {cum}\n")));
        }
        assert_eq!(cum, count);
    }
}
