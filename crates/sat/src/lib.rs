#![warn(missing_docs)]
//! # boolsubst-sat — Tseitin encoding + CDCL: the guard's third proof tier
//!
//! The checked-apply guard escalates simulation → exact BDD, and BDDs
//! blow up exactly on the multiplier-shaped circuits of the large
//! corpus: on those instances tier B silently degrades to a sampled
//! pass. This crate supplies a proof backend whose cost tracks circuit
//! *structure* instead of BDD width:
//!
//! * [`cnf`] — the typed `Var`/`Lit`/`Clause`/`Cnf` core.
//! * [`tseitin`] — SOP-cover Tseitin encoding with structural hashing,
//!   so a pre/post rollback pair shares everything outside the
//!   rewritten cone.
//! * [`solver`] — a CDCL solver: two-watched-literal propagation,
//!   first-UIP learning, VSIDS decay, Luby restarts, phase saving,
//!   assumptions, and a hard conflict budget returning
//!   `Sat`/`Unsat`/`Unknown(BudgetExhausted)`.
//! * [`miter`] — PO-equivalence checking of two networks over shared
//!   input variables.
//! * [`windows`] — SAT-windowed don't-care extraction (AllSAT over a
//!   target's fanin space), feeding the paper's GDC configuration.
//!
//! Like the rest of the workspace the crate is std-only, and like
//! `boolsubst-guard` it sits *below* `boolsubst-core` in the crate
//! graph: the engine being checked can never vouch for itself.

pub mod cnf;
pub mod miter;
pub mod solver;
pub mod tseitin;
pub mod windows;

pub use cnf::{Clause, Cnf, Lit, Var};
pub use miter::{check_equivalence, check_equivalence_with_stats, EquivResult, SatStats};
pub use solver::{SatOptions, SatResult, Solver, Stop};
pub use tseitin::Encoder;
pub use windows::{window_sdc_cover, WindowOptions};
