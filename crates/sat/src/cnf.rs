//! The typed CNF core: variables, literals, clauses, and a formula
//! builder. Everything downstream (the Tseitin encoder, the CDCL
//! solver, the miter) speaks these types, so a raw `i32` DIMACS-style
//! literal can never leak into an index computation.

use std::fmt;

/// A propositional variable, densely numbered from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// The variable with the given dense index.
    #[must_use]
    pub fn new(index: u32) -> Var {
        Var(index)
    }

    /// Dense index for array lookups.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable with a polarity, packed as `var << 1 | neg` so
/// the code doubles as a dense index into watch lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    #[must_use]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[must_use]
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// A literal of `v` with the given polarity (`true` = negated).
    #[must_use]
    pub fn new(v: Var, negated: bool) -> Lit {
        Lit(v.0 << 1 | u32::from(negated))
    }

    /// The underlying variable.
    #[must_use]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is negated.
    #[must_use]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Packed code (`var << 1 | neg`): a dense index for watch lists and
    /// a canonical key for structural hashing.
    #[must_use]
    pub fn code(self) -> u32 {
        self.0
    }

    /// Inverse of [`Lit::code`].
    #[must_use]
    pub fn from_code(code: u32) -> Lit {
        Lit(code)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_neg() { "!" } else { "" }, self.var())
    }
}

/// A disjunction of literals. Construction normalizes: literals are
/// sorted and deduplicated, and a tautology (`x ∨ !x`) is flagged so
/// the formula builder can drop it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Builds a normalized clause. Returns `None` when the clause is a
    /// tautology (contains both polarities of some variable).
    #[must_use]
    pub fn new(mut lits: Vec<Lit>) -> Option<Clause> {
        lits.sort_unstable();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return None;
            }
        }
        Some(Clause { lits })
    }

    /// The literals, sorted.
    #[must_use]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether the clause is empty (unsatisfiable).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }
}

/// A CNF formula under construction: a variable counter plus a clause
/// list. The [`crate::solver::Solver`] consumes one of these; the
/// [`crate::tseitin`] encoder produces one.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Clause>,
    lit_true: Option<Lit>,
}

impl Cnf {
    /// An empty formula.
    #[must_use]
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Mints a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Number of variables minted so far.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Adds a clause (normalized; tautologies are silently dropped).
    pub fn add_clause(&mut self, lits: Vec<Lit>) {
        if let Some(c) = Clause::new(lits) {
            self.clauses.push(c);
        }
    }

    /// The clauses added so far.
    #[must_use]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// A literal constrained to be true (lazily mints one pinned
    /// variable). Lets encoders map constant functions to plain literals
    /// instead of special-casing them everywhere.
    pub fn lit_true(&mut self) -> Lit {
        if let Some(l) = self.lit_true {
            return l;
        }
        let l = Lit::pos(self.new_var());
        self.add_clause(vec![l]);
        self.lit_true = Some(l);
        l
    }

    /// A literal constrained to be false (negation of [`Cnf::lit_true`]).
    pub fn lit_false(&mut self) -> Lit {
        !self.lit_true()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_packing_roundtrips() {
        let v = Var::new(5);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(!p.is_neg());
        assert!(n.is_neg());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(Lit::from_code(p.code()), p);
        assert_eq!(Lit::new(v, true), n);
        assert_eq!(p.code(), 10);
        assert_eq!(n.code(), 11);
    }

    #[test]
    fn clause_normalizes_and_detects_tautologies() {
        let v0 = Var::new(0);
        let v1 = Var::new(1);
        let c = Clause::new(vec![Lit::pos(v1), Lit::pos(v0), Lit::pos(v1)]).expect("not taut");
        assert_eq!(c.lits(), &[Lit::pos(v0), Lit::pos(v1)]);
        assert!(Clause::new(vec![Lit::pos(v0), Lit::neg(v0)]).is_none());
        assert!(Clause::new(vec![]).expect("empty ok").is_empty());
    }

    #[test]
    fn cnf_constants_are_pinned_once() {
        let mut cnf = Cnf::new();
        let t = cnf.lit_true();
        let f = cnf.lit_false();
        assert_eq!(!t, f);
        assert_eq!(cnf.lit_true(), t, "cached");
        assert_eq!(cnf.num_vars(), 1);
        assert_eq!(cnf.clauses().len(), 1, "one pinning unit clause");
    }
}
