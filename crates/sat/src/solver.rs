//! A CDCL SAT solver: two-watched-literal propagation, first-UIP
//! conflict analysis with clause learning, VSIDS-style variable
//! activities with decay, Luby restarts, phase saving, incremental
//! solving under assumptions, and a hard conflict budget.
//!
//! The solver is deliberately classical — no preprocessing, no clause
//! deletion, no literal-block distance. The guard's miters are either
//! easy (structural sharing shrinks them to the rewritten cone) or
//! budget-bounded, so a lean, predictable kernel beats a tuned one
//! whose heuristics would be one more thing to audit.

use crate::cnf::{Clause, Cnf, Lit, Var};

/// Why a solve stopped without an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// The hard conflict budget ran out before a verdict.
    BudgetExhausted,
}

/// Outcome of one [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; the model assigns every variable (index = var index).
    Sat(Vec<bool>),
    /// Proved unsatisfiable (under the given assumptions, if any).
    Unsat,
    /// No verdict within budget. Callers must treat this as "don't
    /// know" — in the guard it degrades the decision to a sampled pass.
    Unknown(Stop),
}

/// Solver knobs. `Copy` + `Eq` so the guard config (and through it the
/// engine options) can embed one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatOptions {
    /// Hard conflict budget per [`Solver::solve`] call; hitting it
    /// returns [`SatResult::Unknown`]. `0` means "don't run at all" to
    /// budget-aware callers (the guard skips tier C entirely).
    pub conflict_budget: u64,
}

impl Default for SatOptions {
    fn default() -> SatOptions {
        SatOptions {
            conflict_budget: 100_000,
        }
    }
}

/// Truth value of a variable during search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

/// One stored clause. Learnt clauses are kept forever: the miter/window
/// workloads are budget-bounded, so a growing database is simpler than
/// activity-based deletion and never observable from outside.
#[derive(Debug)]
struct DbClause {
    lits: Vec<Lit>,
}

/// A watch list entry: the clause plus a cached "blocker" literal whose
/// truth lets propagation skip the clause without touching its memory.
#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: u32,
    blocker: Lit,
}

const NO_REASON: u32 = u32::MAX;
const RESTART_BASE: u64 = 100;
const VAR_DECAY: f64 = 0.95;
const RESCALE_AT: f64 = 1e100;

/// Max-heap over variable activities with a position index, so
/// activity bumps can sift in place (the classic VSIDS order).
#[derive(Debug, Default)]
struct VarOrder {
    heap: Vec<u32>,
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarOrder {
    fn grow_to(&mut self, n: usize) {
        while self.pos.len() < n {
            let v = u32::try_from(self.pos.len()).expect("var count fits u32");
            self.pos.push(ABSENT);
            self.insert(v, &[]);
        }
    }

    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != ABSENT
    }

    fn insert(&mut self, v: u32, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bumped(&mut self, v: u32, act: &[f64]) {
        let p = self.pos[v as usize];
        if p != ABSENT {
            self.sift_up(p, act);
        }
    }

    fn activity(act: &[f64], v: u32) -> f64 {
        act.get(v as usize).copied().unwrap_or(0.0)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::activity(act, self.heap[i]) <= Self::activity(act, self.heap[parent]) {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && Self::activity(act, self.heap[l]) > Self::activity(act, self.heap[best])
            {
                best = l;
            }
            if r < self.heap.len()
                && Self::activity(act, self.heap[r]) > Self::activity(act, self.heap[best])
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a;
        self.pos[self.heap[b] as usize] = b;
    }
}

/// The CDCL solver. Build one with [`Solver::new`] or
/// [`Solver::from_cnf`], optionally [`Solver::add_clause`] more clauses
/// between solves (the blocking-clause loop of the window enumerator),
/// and call [`Solver::solve`] with a set of assumption literals.
#[derive(Debug)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<DbClause>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    saved_phase: Vec<bool>,
    seen: Vec<bool>,
    conflicts: u64,
    restarts: u64,
    learnt_clauses: u64,
    ok: bool,
}

impl Solver {
    /// A solver over `num_vars` variables and no clauses.
    #[must_use]
    pub fn new(num_vars: usize) -> Solver {
        let mut order = VarOrder::default();
        order.grow_to(num_vars);
        Solver {
            num_vars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * num_vars],
            assign: vec![LBool::Undef; num_vars],
            level: vec![0; num_vars],
            reason: vec![NO_REASON; num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            order,
            saved_phase: vec![false; num_vars],
            seen: vec![false; num_vars],
            conflicts: 0,
            restarts: 0,
            learnt_clauses: 0,
            ok: true,
        }
    }

    /// A solver pre-loaded with a formula.
    #[must_use]
    pub fn from_cnf(cnf: &Cnf) -> Solver {
        let mut s = Solver::new(cnf.num_vars());
        for c in cnf.clauses() {
            s.add_normalized(c);
        }
        s
    }

    /// Total conflicts across every solve on this solver.
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Total Luby restarts across every solve on this solver.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Total clauses learned (units included) across every solve.
    #[must_use]
    pub fn learnt_clauses(&self) -> u64 {
        self.learnt_clauses
    }

    /// Number of variables the solver was built over.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Grows the solver to `num_vars` variables (no-op when it already
    /// has at least that many). Lets callers sync clauses from a [`Cnf`]
    /// that kept growing after the solver was built — the incremental
    /// pattern the miter's equivalence sweep uses.
    pub fn grow_to(&mut self, num_vars: usize) {
        if num_vars <= self.num_vars {
            return;
        }
        self.num_vars = num_vars;
        self.watches.resize(2 * num_vars, Vec::new());
        self.assign.resize(num_vars, LBool::Undef);
        self.level.resize(num_vars, 0);
        self.reason.resize(num_vars, NO_REASON);
        self.activity.resize(num_vars, 0.0);
        self.saved_phase.resize(num_vars, false);
        self.seen.resize(num_vars, false);
        self.order.grow_to(num_vars);
    }

    /// Adds a clause at the top level (any in-progress assignment above
    /// level 0 is undone first). Returns `false` once the formula is
    /// unsatisfiable without assumptions — further solves return
    /// `Unsat` immediately.
    pub fn add_clause(&mut self, lits: Vec<Lit>) -> bool {
        match Clause::new(lits) {
            None => self.ok, // tautology: nothing to add
            Some(c) => self.add_normalized(&c),
        }
    }

    fn add_normalized(&mut self, c: &Clause) -> bool {
        if !self.ok {
            return false;
        }
        self.backtrack(0);
        // At level 0 every current assignment is permanent: drop false
        // literals, and the clause is already satisfied if any is true.
        let mut lits: Vec<Lit> = Vec::with_capacity(c.len());
        for &l in c.lits() {
            match self.value_lit(l) {
                Some(true) => return true,
                Some(false) => {}
                None => lits.push(l),
            }
        }
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach(lits);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>) {
        let ci = u32::try_from(self.clauses.len()).expect("clause count fits u32");
        self.watches[lits[0].code() as usize].push(Watch {
            clause: ci,
            blocker: lits[1],
        });
        self.watches[lits[1].code() as usize].push(Watch {
            clause: ci,
            blocker: lits[0],
        });
        self.clauses.push(DbClause { lits });
    }

    fn value_var(&self, v: Var) -> LBool {
        self.assign[v.index()]
    }

    fn value_lit(&self, l: Lit) -> Option<bool> {
        match self.value_var(l.var()) {
            LBool::Undef => None,
            LBool::True => Some(!l.is_neg()),
            LBool::False => Some(l.is_neg()),
        }
    }

    fn decision_level(&self) -> u32 {
        u32::try_from(self.trail_lim.len()).expect("levels fit u32")
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var().index();
        debug_assert_eq!(self.assign[v], LBool::Undef);
        self.assign[v] = if l.is_neg() {
            LBool::False
        } else {
            LBool::True
        };
        self.saved_phase[v] = !l.is_neg();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    fn backtrack(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let keep = self.trail_lim[target as usize];
        for &l in &self.trail[keep..] {
            let v = l.var();
            self.assign[v.index()] = LBool::Undef;
            self.reason[v.index()] = NO_REASON;
            self.order.insert(
                u32::try_from(v.index()).expect("var fits u32"),
                &self.activity,
            );
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    /// Two-watched-literal unit propagation; returns the conflicting
    /// clause index, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code() as usize]);
            let mut kept = 0;
            let mut conflict = None;
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.value_lit(w.blocker) == Some(true) {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                let ci = w.clause as usize;
                // Make the false literal lits[1]; lits[0] is the survivor.
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let first = self.clauses[ci].lits[0];
                if first != w.blocker && self.value_lit(first) == Some(true) {
                    ws[kept] = Watch {
                        clause: w.clause,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a non-false literal to watch instead.
                let mut moved = false;
                for k in 2..self.clauses[ci].lits.len() {
                    if self.value_lit(self.clauses[ci].lits[k]) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        let new_watch = self.clauses[ci].lits[1];
                        self.watches[new_watch.code() as usize].push(Watch {
                            clause: w.clause,
                            blocker: first,
                        });
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflicting: the watch stays either way.
                ws[kept] = Watch {
                    clause: w.clause,
                    blocker: first,
                };
                kept += 1;
                if self.value_lit(first) == Some(false) {
                    // Conflict: keep the remaining watches and stop.
                    while i < ws.len() {
                        ws[kept] = ws[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.clause);
                } else {
                    self.unchecked_enqueue(first, w.clause);
                }
            }
            ws.truncate(kept);
            self.watches[false_lit.code() as usize] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        let a = &mut self.activity[v.index()];
        *a += self.var_inc;
        if *a > RESCALE_AT {
            for act in &mut self.activity {
                *act /= RESCALE_AT;
            }
            self.var_inc /= RESCALE_AT;
        }
        self.order.bumped(
            u32::try_from(v.index()).expect("var fits u32"),
            &self.activity,
        );
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var::new(0))]; // slot 0 = asserting lit
        let mut path_count: u32 = 0;
        let mut confl = confl as usize;
        let mut index = self.trail.len();
        let mut expanding_reason = false;
        let uip = loop {
            // A reason clause implies its lits[0]; skip it when expanding.
            let start = usize::from(expanding_reason);
            for k in start..self.clauses[confl].lits.len() {
                let q = self.clauses[confl].lits[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let p = self.trail[index];
            self.seen[p.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                break p;
            }
            confl = self.reason[p.var().index()] as usize;
            expanding_reason = true;
        };
        learnt[0] = !uip;
        // Backtrack to the second-highest decision level in the clause,
        // moving that literal to slot 1 so it gets watched.
        let back = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = k;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, back)
    }

    fn decay_activities(&mut self) {
        self.var_inc /= VAR_DECAY;
    }

    fn pick_branch(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v as usize] == LBool::Undef {
                return Some(Var::new(v));
            }
        }
        None
    }

    /// Solves under the given assumptions with a conflict budget.
    ///
    /// Assumptions are asserted as the first decisions; `Unsat` means
    /// "unsatisfiable together with the assumptions". The solver is
    /// reusable afterwards: the trail is rewound to the top level, and
    /// learnt clauses carry over to the next call.
    pub fn solve(&mut self, assumptions: &[Lit], opts: SatOptions) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        let budget_end = self.conflicts.saturating_add(opts.conflict_budget.max(1));
        let mut since_restart: u64 = 0;
        let mut restarts: u64 = 0;
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                if self.decision_level() as usize <= assumptions.len() {
                    // Every decision on the trail is an assumption: the
                    // conflict follows from them, no search needed.
                    self.backtrack(0);
                    return SatResult::Unsat;
                }
                if self.conflicts >= budget_end {
                    self.backtrack(0);
                    return SatResult::Unknown(Stop::BudgetExhausted);
                }
                let (learnt, back) = self.analyze(confl);
                self.learnt_clauses += 1;
                self.backtrack(back);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], NO_REASON);
                } else {
                    let ci = u32::try_from(self.clauses.len()).expect("clause count fits u32");
                    let asserting = learnt[0];
                    self.attach(learnt);
                    self.unchecked_enqueue(asserting, ci);
                }
                self.decay_activities();
            } else {
                if since_restart >= RESTART_BASE.saturating_mul(luby(restarts)) {
                    // `restarts` stays solve-local so the Luby schedule is
                    // unchanged across calls; the field is the lifetime total.
                    restarts += 1;
                    self.restarts += 1;
                    since_restart = 0;
                    self.backtrack(0);
                    continue;
                }
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.value_lit(a) {
                        Some(true) => self.new_decision_level(),
                        Some(false) => {
                            self.backtrack(0);
                            return SatResult::Unsat;
                        }
                        None => {
                            self.new_decision_level();
                            self.unchecked_enqueue(a, NO_REASON);
                        }
                    }
                } else if let Some(v) = self.pick_branch() {
                    let lit = Lit::new(v, !self.saved_phase[v.index()]);
                    self.new_decision_level();
                    self.unchecked_enqueue(lit, NO_REASON);
                } else {
                    let model = self
                        .assign
                        .iter()
                        .map(|&a| a == LBool::True)
                        .collect::<Vec<bool>>();
                    self.backtrack(0);
                    return SatResult::Sat(model);
                }
            }
        }
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2,
/// 4, 8, ... (0-indexed).
fn luby(i: u64) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = i;
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, neg: bool) -> Lit {
        Lit::new(Var::new(v), neg)
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new(2);
        s.add_clause(vec![lit(0, false)]);
        s.add_clause(vec![lit(0, true), lit(1, true)]);
        match s.solve(&[], SatOptions::default()) {
            SatResult::Sat(m) => {
                assert!(m[0]);
                assert!(!m[1]);
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut s = Solver::new(1);
        s.add_clause(vec![lit(0, false)]);
        assert!(!s.add_clause(vec![lit(0, true)]));
        assert_eq!(s.solve(&[], SatOptions::default()), SatResult::Unsat);
    }

    /// Pigeonhole: n+1 pigeons into n holes — classically UNSAT and
    /// requires real conflict analysis for n >= 3.
    fn pigeonhole(pigeons: u32, holes: u32) -> Solver {
        let var = |p: u32, h: u32| Var::new(p * holes + h);
        let mut s = Solver::new((pigeons * holes) as usize);
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| Lit::pos(var(p, h))).collect());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause(vec![Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_unsat() {
        for n in 2..=5u32 {
            let mut s = pigeonhole(n + 1, n);
            assert_eq!(
                s.solve(&[], SatOptions::default()),
                SatResult::Unsat,
                "php({}, {n})",
                n + 1
            );
        }
    }

    #[test]
    fn pigeonhole_sat_when_holes_suffice() {
        let mut s = pigeonhole(4, 4);
        assert!(matches!(
            s.solve(&[], SatOptions::default()),
            SatResult::Sat(_)
        ));
    }

    #[test]
    fn budget_exhaustion_returns_unknown() {
        let mut s = pigeonhole(7, 6);
        let out = s.solve(&[], SatOptions { conflict_budget: 5 });
        assert_eq!(out, SatResult::Unknown(Stop::BudgetExhausted));
        // The same solver finishes the job given real budget.
        assert_eq!(s.solve(&[], SatOptions::default()), SatResult::Unsat);
    }

    #[test]
    fn assumptions_flip_verdict_and_solver_is_reusable() {
        // (a | b) & (!a | b): b=false forces a contradiction.
        let mut s = Solver::new(2);
        s.add_clause(vec![lit(0, false), lit(1, false)]);
        s.add_clause(vec![lit(0, true), lit(1, false)]);
        assert_eq!(
            s.solve(&[lit(1, true)], SatOptions::default()),
            SatResult::Unsat
        );
        match s.solve(&[lit(1, false)], SatOptions::default()) {
            SatResult::Sat(m) => assert!(m[1]),
            other => panic!("expected Sat, got {other:?}"),
        }
        // No assumptions: still satisfiable.
        assert!(matches!(
            s.solve(&[], SatOptions::default()),
            SatResult::Sat(_)
        ));
    }

    #[test]
    fn contradictory_assumptions_are_unsat() {
        let mut s = Solver::new(2);
        s.add_clause(vec![lit(0, false), lit(1, false)]);
        assert_eq!(
            s.solve(&[lit(0, false), lit(0, true)], SatOptions::default()),
            SatResult::Unsat
        );
    }

    #[test]
    fn xor_chain_parity() {
        // x0 ^ x1 ^ ... ^ x7 = 1 encoded clause-wise via fresh partials.
        let n = 8u32;
        let mut cnf = Cnf::new();
        let xs: Vec<Var> = (0..n).map(|_| cnf.new_var()).collect();
        let mut acc = Lit::pos(xs[0]);
        for &x in &xs[1..] {
            let out = Lit::pos(cnf.new_var());
            let b = Lit::pos(x);
            // out = acc ^ b
            cnf.add_clause(vec![!out, acc, b]);
            cnf.add_clause(vec![!out, !acc, !b]);
            cnf.add_clause(vec![out, !acc, b]);
            cnf.add_clause(vec![out, acc, !b]);
            acc = out;
        }
        cnf.add_clause(vec![acc]);
        let mut s = Solver::from_cnf(&cnf);
        match s.solve(&[], SatOptions::default()) {
            SatResult::Sat(m) => {
                let parity = xs.iter().filter(|x| m[x.index()]).count() % 2;
                assert_eq!(parity, 1, "model must satisfy the parity constraint");
            }
            other => panic!("expected Sat, got {other:?}"),
        }
        // Forcing even parity on top is unsatisfiable.
        assert_eq!(s.solve(&[!acc], SatOptions::default()), SatResult::Unsat);
    }

    #[test]
    fn model_check_on_random_3cnf() {
        // Deterministic LCG-generated 3-CNF instances; every Sat model
        // is checked against the clauses.
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..20 {
            let nv = 12 + (next() % 6) as usize;
            let nc = nv * 3 + round;
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            let mut s = Solver::new(nv);
            for _ in 0..nc {
                let c: Vec<Lit> = (0..3)
                    .map(|_| {
                        let v = (next() as usize) % nv;
                        Lit::new(Var::new(u32::try_from(v).expect("fits")), next() % 2 == 0)
                    })
                    .collect();
                clauses.push(c.clone());
                s.add_clause(c);
            }
            match s.solve(&[], SatOptions::default()) {
                SatResult::Sat(m) => {
                    for c in &clauses {
                        assert!(
                            c.iter().any(|l| m[l.var().index()] != l.is_neg()),
                            "model violates clause {c:?}"
                        );
                    }
                }
                SatResult::Unsat => {}
                SatResult::Unknown(_) => panic!("tiny instance hit the budget"),
            }
        }
    }
}
