//! Miter construction: proving two networks compute the same primary
//! outputs by asking SAT whether any input distinguishes them.
//!
//! Both networks are Tseitin-encoded over *shared* input variables by
//! one [`Encoder`], whose structural cache collapses everything the
//! two networks agree on — for the guard's pre/post pairs (a rollback
//! differs from the live network only in the rewritten cone) the miter
//! degenerates to the changed window plus one XOR per genuinely
//! differing output. Outputs whose encodings hash to the same literal
//! are discharged with zero solver work.
//!
//! For the rest — the rewritten node and everything downstream of it,
//! which the structural cache cannot collapse because the cone is
//! duplicated — a monolithic output miter is exactly the hard instance
//! BDDs already choke on. So before the output solve, the checker runs
//! a *SAT sweep*: nodes are paired by name (exact for the guard's
//! rollback pairs), and each differing pair is proved equivalent with a
//! small per-node conflict budget, in topological order, learning the
//! equality as clauses. Each proof is local — its fanin equalities are
//! already learned — so a healthy rewrite costs a few conflicts per
//! downstream node instead of one monolithic cone-duplication proof,
//! and the final output miter propagates to UNSAT almost for free.

use boolsubst_network::Network;

use crate::cnf::Lit;
use crate::solver::{SatOptions, SatResult, Solver, Stop};
use crate::tseitin::Encoder;

/// Per-node-pair conflict cap for one direction of a sweep proof. A
/// pair that exceeds it is skipped (never merged) — soundness is
/// unaffected, the output miter just gets less help.
const SWEEP_NODE_CONFLICTS: u64 = 2_000;

/// Verdict of a miter equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// UNSAT miter (or structurally identical): the networks compute
    /// identical primary-output functions.
    Equivalent,
    /// A concrete input assignment distinguishes the networks.
    Inequivalent {
        /// Name of the first differing primary output (in `a`'s order).
        output: String,
        /// The distinguishing input assignment, in primary-input order.
        inputs: Vec<bool>,
    },
    /// The two networks declare different input or output interfaces;
    /// no function comparison was attempted.
    InterfaceMismatch,
    /// The conflict budget ran out before a verdict.
    Unknown(Stop),
}

impl EquivResult {
    /// Whether equivalence was *proved* (not merely not-refuted).
    #[must_use]
    pub fn proven_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent)
    }
}

/// Solver-effort totals for one equivalence check, for the guard's
/// per-check cost attribution (`sat.*` metric keys).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Conflicts across the sweep solves and the final output solve.
    pub conflicts: u64,
    /// Luby restarts across all solves.
    pub restarts: u64,
    /// Clauses learned (units included) across all solves.
    pub learnt_clauses: u64,
}

impl SatStats {
    fn of(solver: &Solver) -> SatStats {
        SatStats {
            conflicts: solver.conflicts(),
            restarts: solver.restarts(),
            learnt_clauses: solver.learnt_clauses(),
        }
    }
}

/// Checks primary-output equivalence of `a` and `b` under a conflict
/// budget. Inputs and outputs are matched positionally, like the
/// guard's BDD tier: for rollback pairs input `i` of one *is* input
/// `i` of the other.
#[must_use]
pub fn check_equivalence(a: &Network, b: &Network, opts: SatOptions) -> EquivResult {
    check_equivalence_with_stats(a, b, opts).0
}

/// [`check_equivalence`], additionally reporting the solver effort it
/// took to reach the verdict. An `InterfaceMismatch` costs nothing and
/// reports zeros.
#[must_use]
pub fn check_equivalence_with_stats(
    a: &Network,
    b: &Network,
    opts: SatOptions,
) -> (EquivResult, SatStats) {
    if a.inputs().len() != b.inputs().len() || a.outputs().len() != b.outputs().len() {
        return (EquivResult::InterfaceMismatch, SatStats::default());
    }
    let mut enc = Encoder::new();
    let pis = enc.fresh_inputs(a.inputs().len());
    let map_a = enc.encode_network(a, &pis);
    let map_b = enc.encode_network(b, &pis);

    let mut solver = Solver::from_cnf(&enc.cnf);
    let synced = enc.cnf.clauses().len();
    let budget = opts.conflict_budget.max(1);

    // SAT sweep over internal pairs (see module docs). Pairing is by
    // node *name*: exact for the guard's rollback pairs (a clone keeps
    // every name) and robust across file round trips, where slot order
    // shifts but substitution preserves each surviving node's function.
    // Mis-pairing is harmless — only *proved* equalities are learned.
    let by_name: std::collections::HashMap<&str, Lit> = a
        .topo_order()
        .into_iter()
        .filter_map(|id| {
            map_a
                .get(id.index())
                .copied()
                .flatten()
                .map(|l| (a.node(id).name(), l))
        })
        .collect();
    for id in b.topo_order() {
        if solver.conflicts() >= budget {
            break;
        }
        let Some(&Some(lb)) = map_b.get(id.index()) else {
            continue;
        };
        let Some(&la) = by_name.get(b.node(id).name()) else {
            continue;
        };
        if la == lb || la == !lb {
            continue;
        }
        let mini = |used: u64| SatOptions {
            conflict_budget: SWEEP_NODE_CONFLICTS.min(budget.saturating_sub(used)),
        };
        // UNSAT(la ∧ ¬lb) proves la → lb; both directions give equality.
        if solver.solve(&[la, !lb], mini(solver.conflicts())) != SatResult::Unsat {
            continue;
        }
        if solver.conflicts() >= budget {
            break;
        }
        if solver.solve(&[!la, lb], mini(solver.conflicts())) != SatResult::Unsat {
            continue;
        }
        solver.add_clause(vec![!la, lb]);
        solver.add_clause(vec![la, !lb]);
    }

    // One XOR per output pair; structurally shared outputs fold to the
    // constant-false literal and are dropped on the spot.
    let mut diffs: Vec<(usize, Lit)> = Vec::new();
    let lit_false = enc.cnf.lit_false();
    for (k, ((_, oa), (_, ob))) in a.outputs().iter().zip(b.outputs()).enumerate() {
        let la = map_a[oa.index()].expect("output driver encoded");
        let lb = map_b[ob.index()].expect("output driver encoded");
        let d = enc.xor(la, lb);
        if d != lit_false {
            diffs.push((k, d));
        }
    }
    if diffs.is_empty() {
        return (EquivResult::Equivalent, SatStats::of(&solver));
    }
    // Sync the XOR gadgets (and the lazily pinned constant) minted since
    // the solver was built, then assert "some output differs".
    solver.grow_to(enc.cnf.num_vars());
    for c in &enc.cnf.clauses()[synced..] {
        solver.add_clause(c.lits().to_vec());
    }
    solver.add_clause(diffs.iter().map(|&(_, d)| d).collect());
    let remaining = budget.saturating_sub(solver.conflicts());
    if remaining == 0 {
        return (
            EquivResult::Unknown(Stop::BudgetExhausted),
            SatStats::of(&solver),
        );
    }
    let verdict = match solver.solve(
        &[],
        SatOptions {
            conflict_budget: remaining,
        },
    ) {
        SatResult::Unsat => EquivResult::Equivalent,
        SatResult::Unknown(stop) => EquivResult::Unknown(stop),
        SatResult::Sat(model) => {
            let value = |l: Lit| model[l.var().index()] != l.is_neg();
            let output = diffs
                .iter()
                .find(|&&(_, d)| value(d))
                .map(|&(k, _)| a.outputs()[k].0.clone())
                .unwrap_or_else(|| "<unattributed>".to_string());
            let inputs = pis.iter().map(|&p| value(p)).collect();
            EquivResult::Inequivalent { output, inputs }
        }
    };
    (verdict, SatStats::of(&solver))
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_cube::parse_sop;
    use boolsubst_network::NodeId;

    fn two_level(n: usize, sops: &[(&str, &str)]) -> Network {
        let mut net = Network::new("m");
        let pis: Vec<NodeId> = (0..n)
            .map(|k| net.add_input(format!("x{k}")).expect("pi"))
            .collect();
        for (name, sop) in sops {
            let f = net
                .add_node(*name, pis.clone(), parse_sop(n, sop).expect("sop"))
                .expect("node");
            net.add_output(*name, f).expect("po");
        }
        net
    }

    #[test]
    fn identical_networks_are_equivalent_without_solving() {
        let a = two_level(3, &[("f", "ab + c"), ("g", "a'c")]);
        let b = two_level(3, &[("f", "ab + c"), ("g", "a'c")]);
        assert_eq!(
            check_equivalence(&a, &b, SatOptions::default()),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn semantically_equal_but_syntactically_different_pass() {
        // ab + ac == a(b + c): different covers, same function.
        let a = two_level(3, &[("f", "ab + ac")]);
        let mut b = Network::new("m");
        let pis: Vec<NodeId> = (0..3)
            .map(|k| b.add_input(format!("x{k}")).expect("pi"))
            .collect();
        let or = b
            .add_node(
                "or",
                vec![pis[1], pis[2]],
                parse_sop(2, "a + b").expect("or"),
            )
            .expect("or");
        let f = b
            .add_node("f", vec![pis[0], or], parse_sop(2, "ab").expect("and"))
            .expect("f");
        b.add_output("f", f).expect("po");
        assert_eq!(
            check_equivalence(&a, &b, SatOptions::default()),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn differing_networks_yield_a_witness() {
        let a = two_level(2, &[("f", "ab")]);
        let b = two_level(2, &[("f", "a + b")]);
        match check_equivalence(&a, &b, SatOptions::default()) {
            EquivResult::Inequivalent { output, inputs } => {
                assert_eq!(output, "f");
                assert_ne!(
                    a.eval_outputs(&inputs),
                    b.eval_outputs(&inputs),
                    "witness must actually distinguish the networks"
                );
            }
            other => panic!("expected Inequivalent, got {other:?}"),
        }
    }

    #[test]
    fn witness_names_the_differing_output() {
        let a = two_level(2, &[("same", "ab"), ("diff", "a'b'")]);
        let b = two_level(2, &[("same", "ab"), ("diff", "a' + b'")]);
        match check_equivalence(&a, &b, SatOptions::default()) {
            EquivResult::Inequivalent { output, .. } => assert_eq!(output, "diff"),
            other => panic!("expected Inequivalent, got {other:?}"),
        }
    }

    #[test]
    fn interface_mismatch_is_refused() {
        let a = two_level(2, &[("f", "ab")]);
        let b = two_level(3, &[("f", "ab")]);
        assert_eq!(
            check_equivalence(&a, &b, SatOptions::default()),
            EquivResult::InterfaceMismatch
        );
    }
}
