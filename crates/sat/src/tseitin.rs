//! Tseitin encoding of SOP networks into CNF, with structural hashing.
//!
//! Every internal node is an OR of cube terms, each cube an AND of
//! phased fanin literals — so the encoder needs exactly two gadgets,
//! conjunction and disjunction, plus constant handling. Node functions
//! are canonicalised to a *cover over CNF literal codes* before
//! encoding, and identical keys reuse the same CNF literal. When the
//! miter encodes a pre/post network pair over the same input
//! variables, everything outside the rewritten cone hashes equal and
//! the CNF collapses to the changed window — which is what makes SAT
//! equivalence checking of large multiplier networks affordable where
//! monolithic BDDs blow up.

use std::collections::HashMap;

use boolsubst_cube::{Cover, Phase};
use boolsubst_network::{Network, NodeId};

use crate::cnf::{Cnf, Lit};

/// Canonical function key: a set of cubes, each a sorted set of CNF
/// literal codes. Two nodes with equal keys compute the same function
/// of the same CNF literals.
type FuncKey = Vec<Vec<u32>>;

/// A Tseitin encoder over one growing [`Cnf`]. Encode any number of
/// networks (or ad-hoc gates) against shared input literals; the
/// structural cache spans all of them.
#[derive(Debug, Default)]
pub struct Encoder {
    /// The formula under construction.
    pub cnf: Cnf,
    cache: HashMap<FuncKey, Lit>,
}

impl Encoder {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Mints `n` fresh input literals (one positive literal per fresh
    /// variable), typically shared across the networks of a miter.
    pub fn fresh_inputs(&mut self, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(self.cnf.new_var())).collect()
    }

    /// Encodes every node of `net`, seeding primary input `i` with
    /// `pi_lits[i]`. Returns the CNF literal of each node, indexed by
    /// raw node id (`None` for dead slots).
    ///
    /// # Panics
    ///
    /// Panics when `pi_lits` is shorter than the network's input list.
    pub fn encode_network(&mut self, net: &Network, pi_lits: &[Lit]) -> Vec<Option<Lit>> {
        let mut node_lit: Vec<Option<Lit>> = vec![None; net.id_bound()];
        for (i, &pi) in net.inputs().iter().enumerate() {
            node_lit[pi.index()] = Some(pi_lits[i]);
        }
        for id in net.topo_order() {
            let node = net.node(id);
            let Some(cover) = node.cover() else { continue };
            let lit = self.encode_cover(cover, node.fanins(), &node_lit);
            node_lit[id.index()] = Some(lit);
        }
        node_lit
    }

    /// Encodes one SOP cover whose variable `v` is the node behind
    /// `fanins[v]` (already encoded in `node_lit`).
    fn encode_cover(&mut self, cover: &Cover, fanins: &[NodeId], node_lit: &[Option<Lit>]) -> Lit {
        let mut cube_lits: Vec<Lit> = Vec::with_capacity(cover.len());
        for cube in cover.cubes() {
            let lits: Vec<Lit> = cube
                .lits()
                .map(|l| {
                    let fan: NodeId = fanins[l.var];
                    let f = node_lit[fan.index()].expect("fanins precede node in topo order");
                    match l.phase {
                        Phase::Pos => f,
                        Phase::Neg => !f,
                    }
                })
                .collect();
            cube_lits.push(self.conj(lits));
        }
        self.disj(cube_lits)
    }

    /// The literal for `AND(lits)`: cached, constant-folded, aliased
    /// for 0/1-ary cases.
    pub fn conj(&mut self, lits: Vec<Lit>) -> Lit {
        let t = self.cnf.lit_true();
        let Some(codes) = normalize_term(lits, t) else {
            return !t; // contains x and !x, or a false constant
        };
        match codes.len() {
            0 => t,
            1 => Lit::from_code(codes[0]),
            _ => {
                let key: FuncKey = vec![codes.clone()];
                if let Some(&l) = self.cache.get(&key) {
                    return l;
                }
                let v = Lit::pos(self.cnf.new_var());
                let mut long: Vec<Lit> = vec![v];
                for &c in &codes {
                    let l = Lit::from_code(c);
                    self.cnf.add_clause(vec![!v, l]);
                    long.push(!l);
                }
                self.cnf.add_clause(long);
                self.cache.insert(key, v);
                v
            }
        }
    }

    /// The literal for `OR(lits)`: cached, constant-folded, aliased for
    /// 0/1-ary cases.
    pub fn disj(&mut self, lits: Vec<Lit>) -> Lit {
        let t = self.cnf.lit_true();
        // OR duals the AND normal form: normalize over negated inputs.
        let Some(neg_codes) = normalize_term(lits.into_iter().map(|l| !l).collect(), t) else {
            return t; // contains x or !x, or a true constant
        };
        match neg_codes.len() {
            0 => !t,
            1 => !Lit::from_code(neg_codes[0]),
            _ => {
                let codes: Vec<u32> = neg_codes.iter().map(|&c| c ^ 1).collect();
                let key: FuncKey = codes.iter().map(|&c| vec![c]).collect();
                if let Some(&l) = self.cache.get(&key) {
                    return l;
                }
                let v = Lit::pos(self.cnf.new_var());
                let mut long: Vec<Lit> = vec![!v];
                for &c in &codes {
                    let l = Lit::from_code(c);
                    self.cnf.add_clause(vec![v, !l]);
                    long.push(l);
                }
                self.cnf.add_clause(long);
                self.cache.insert(key, v);
                v
            }
        }
    }

    /// The literal for `a XOR b` (used by the miter's output compare).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        if a == b {
            return self.cnf.lit_false();
        }
        if a == !b {
            return self.cnf.lit_true();
        }
        // XOR = OR of two disjoint ANDs; routed through the gadgets so
        // the cache sees it as an ordinary two-cube cover.
        let p = self.conj(vec![a, !b]);
        let q = self.conj(vec![!a, b]);
        self.disj(vec![p, q])
    }
}

/// Canonicalizes an AND-term: sorted, deduplicated literal codes with
/// the constant-true literal dropped. Returns `None` when the term is
/// constant false (contains `t`'s negation or both polarities of a
/// variable).
fn normalize_term(lits: Vec<Lit>, lit_true: Lit) -> Option<Vec<u32>> {
    let mut codes: Vec<u32> = Vec::with_capacity(lits.len());
    for l in lits {
        if l == lit_true {
            continue;
        }
        if l == !lit_true {
            return None;
        }
        codes.push(l.code());
    }
    codes.sort_unstable();
    codes.dedup();
    for w in codes.windows(2) {
        if w[0] >> 1 == w[1] >> 1 {
            return None;
        }
    }
    Some(codes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SatOptions, SatResult, Solver};
    use boolsubst_cube::parse_sop;

    /// Builds a single-node network computing `sop` over `n` inputs.
    fn gate_net(n: usize, sop: &str) -> Network {
        let mut net = Network::new("gate");
        let pis: Vec<NodeId> = (0..n)
            .map(|k| net.add_input(format!("x{k}")).expect("pi"))
            .collect();
        let f = net
            .add_node("f", pis, parse_sop(n, sop).expect("sop"))
            .expect("node");
        net.add_output("f", f).expect("po");
        net
    }

    /// Exhaustively checks the encoding of `sop` against direct network
    /// evaluation: for every input assignment the CNF must be
    /// satisfiable with the output literal at the evaluated value and
    /// unsatisfiable at its negation.
    fn check_gate(n: usize, sop: &str) {
        let net = gate_net(n, sop);
        let mut enc = Encoder::new();
        let pis = enc.fresh_inputs(n);
        let map = enc.encode_network(&net, &pis);
        let out = map[net.outputs()[0].1.index()].expect("output encoded");
        let mut solver = Solver::from_cnf(&enc.cnf);
        for m in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|k| m >> k & 1 == 1).collect();
            let want = net.eval_outputs(&inputs)[0];
            let mut assume: Vec<Lit> = (0..n)
                .map(|k| if inputs[k] { pis[k] } else { !pis[k] })
                .collect();
            assume.push(if want { out } else { !out });
            assert!(
                matches!(
                    solver.solve(&assume, SatOptions::default()),
                    SatResult::Sat(_)
                ),
                "{sop}: consistent assignment rejected at minterm {m:b}"
            );
            let flipped = assume.last_mut().expect("non-empty");
            *flipped = !*flipped;
            assert_eq!(
                solver.solve(&assume, SatOptions::default()),
                SatResult::Unsat,
                "{sop}: inconsistent assignment accepted at minterm {m:b}"
            );
        }
    }

    #[test]
    fn per_gate_truth_tables() {
        check_gate(1, "a");
        check_gate(1, "a'");
        check_gate(2, "ab");
        check_gate(2, "a + b");
        check_gate(2, "ab' + a'b"); // xor
        check_gate(2, "ab + a'b'"); // xnor
        check_gate(2, "a'b'"); // nor
        check_gate(2, "a' + b'"); // nand
        check_gate(3, "abc");
        check_gate(3, "a + b + c");
        check_gate(3, "ab + a'c"); // mux(a; b, c)
        check_gate(3, "ab + ac + bc"); // majority
        check_gate(4, "ab + cd");
        check_gate(4, "ab'c + a'd + bcd'");
    }

    #[test]
    fn constant_covers_encode_as_pinned_literals() {
        // Constant 0: an empty cover.
        let mut net = Network::new("c0");
        let a = net.add_input("a").expect("a");
        let f = net
            .add_node("f", vec![a], Cover::new(1))
            .expect("const0 node");
        net.add_output("f", f).expect("po");
        let mut enc = Encoder::new();
        let pis = enc.fresh_inputs(1);
        let map = enc.encode_network(&net, &pis);
        let out = map[f.index()].expect("encoded");
        let mut solver = Solver::from_cnf(&enc.cnf);
        assert_eq!(
            solver.solve(&[out], SatOptions::default()),
            SatResult::Unsat
        );
        assert!(matches!(
            solver.solve(&[!out], SatOptions::default()),
            SatResult::Sat(_)
        ));
    }

    #[test]
    fn structural_sharing_reuses_literals() {
        // Two identical nodes over the same inputs must encode to the
        // same literal; a third, different node must not.
        let n = 3;
        let mut net = Network::new("shared");
        let pis: Vec<NodeId> = (0..n)
            .map(|k| net.add_input(format!("x{k}")).expect("pi"))
            .collect();
        let f = net
            .add_node("f", pis.clone(), parse_sop(n, "ab + c").expect("f"))
            .expect("f");
        let g = net
            .add_node("g", pis.clone(), parse_sop(n, "ab + c").expect("g"))
            .expect("g");
        let h = net
            .add_node("h", pis.clone(), parse_sop(n, "ab + c'").expect("h"))
            .expect("h");
        net.add_output("f", f).expect("po f");
        net.add_output("g", g).expect("po g");
        net.add_output("h", h).expect("po h");
        let mut enc = Encoder::new();
        let pi_lits = enc.fresh_inputs(n);
        let map = enc.encode_network(&net, &pi_lits);
        assert_eq!(map[f.index()], map[g.index()], "identical nodes share");
        assert_ne!(map[f.index()], map[h.index()], "different nodes do not");
    }

    #[test]
    fn xor_gadget_truth_table() {
        let mut enc = Encoder::new();
        let pis = enc.fresh_inputs(2);
        let x = enc.xor(pis[0], pis[1]);
        let mut solver = Solver::from_cnf(&enc.cnf);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let want = a != b;
            let assume = [
                if a { pis[0] } else { !pis[0] },
                if b { pis[1] } else { !pis[1] },
                if want { x } else { !x },
            ];
            assert!(
                matches!(
                    solver.solve(&assume, SatOptions::default()),
                    SatResult::Sat(_)
                ),
                "xor({a},{b})"
            );
        }
        assert_eq!(
            enc.xor(pis[0], pis[0]).code() ^ 1,
            enc.cnf.lit_true().code()
        );
        assert_eq!(enc.xor(pis[0], !pis[0]), enc.cnf.lit_true());
    }
}
