//! SAT-windowed don't-care extraction.
//!
//! For a target node with `k` fanins, the *satisfiability don't-cares*
//! of its window are the fanin value combinations no primary-input
//! assignment can produce. The extractor encodes the whole network
//! once, then runs an AllSAT loop over the k-bit fanin space: each
//! model blocks its combination, and when the solver finally answers
//! UNSAT the un-hit combinations are exactly the SDCs. The resulting
//! cover is in the target's fanin coordinates — directly usable as a
//! don't-care set for dividing or simplifying the target, feeding the
//! paper's GDC configuration from a proof engine instead of the
//! implication sweep.

use boolsubst_cube::{Cover, Cube, Lit as CubeLit, Phase};
use boolsubst_network::{Network, NodeId};

use crate::cnf::Lit;
use crate::solver::{SatOptions, SatResult, Solver};
use crate::tseitin::Encoder;

/// Bounds for the window enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowOptions {
    /// Skip targets with more fanins than this (the enumeration is
    /// exponential in the fanin count).
    pub max_fanins: usize,
    /// Conflict budget across the whole AllSAT loop.
    pub sat: SatOptions,
}

impl Default for WindowOptions {
    fn default() -> WindowOptions {
        WindowOptions {
            max_fanins: 10,
            sat: SatOptions::default(),
        }
    }
}

/// The satisfiability don't-care cover of `target`'s fanin window: one
/// minterm cube per unreachable fanin combination, over the fanin
/// variables in fanin order.
///
/// Returns `None` when the target is a primary input, has more than
/// `opts.max_fanins` fanins, or the solver exhausted its budget before
/// the enumeration completed — an incomplete enumeration must not be
/// reported as a (necessarily over-approximate) DC set.
///
/// # Panics
///
/// Panics if the node id is invalid.
#[must_use]
pub fn window_sdc_cover(net: &Network, target: NodeId, opts: &WindowOptions) -> Option<Cover> {
    let node = net.node(target);
    node.cover()?;
    let fanins = node.fanins().to_vec();
    let k = fanins.len();
    if k > opts.max_fanins.min(31) {
        return None;
    }
    let mut enc = Encoder::new();
    let pis = enc.fresh_inputs(net.inputs().len());
    let map = enc.encode_network(net, &pis);
    let fanin_lits: Vec<Lit> = fanins
        .iter()
        .map(|f| map[f.index()].expect("fanin encoded"))
        .collect();

    let mut solver = Solver::from_cnf(&enc.cnf);
    let mut reached = vec![false; 1usize << k];
    let mut left = 1usize << k;
    while left > 0 {
        match solver.solve(&[], opts.sat) {
            SatResult::Unsat => break,
            SatResult::Unknown(_) => return None,
            SatResult::Sat(model) => {
                let value = |l: Lit| model[l.var().index()] != l.is_neg();
                let mut combo = 0usize;
                let mut blocking: Vec<Lit> = Vec::with_capacity(k);
                for (i, &l) in fanin_lits.iter().enumerate() {
                    if value(l) {
                        combo |= 1 << i;
                        blocking.push(!l);
                    } else {
                        blocking.push(l);
                    }
                }
                if !reached[combo] {
                    reached[combo] = true;
                    left -= 1;
                }
                if !solver.add_clause(blocking) {
                    break; // blocking every model: the space is covered
                }
            }
        }
    }
    let mut dc = Cover::new(k);
    for (m, &hit) in reached.iter().enumerate() {
        if hit {
            continue;
        }
        let mut cube = Cube::universe(k);
        for i in 0..k {
            let phase = if m >> i & 1 == 1 {
                Phase::Pos
            } else {
                Phase::Neg
            };
            cube.restrict(CubeLit { var: i, phase });
        }
        dc.push(cube);
    }
    Some(dc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_cube::parse_sop;

    /// g0 = ab, g1 = a'b': the combination (g0, g1) = (1, 1) is
    /// unsatisfiable, so a target fed by both has exactly one SDC.
    #[test]
    fn mutually_exclusive_fanins_yield_the_expected_sdc() {
        let mut net = Network::new("w");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let g0 = net
            .add_node("g0", vec![a, b], parse_sop(2, "ab").expect("g0"))
            .expect("g0");
        let g1 = net
            .add_node("g1", vec![a, b], parse_sop(2, "a'b'").expect("g1"))
            .expect("g1");
        let f = net
            .add_node("f", vec![g0, g1], parse_sop(2, "a + b").expect("f"))
            .expect("f");
        net.add_output("f", f).expect("po");
        let dc = window_sdc_cover(&net, f, &WindowOptions::default()).expect("within bounds");
        assert_eq!(dc.len(), 1, "exactly one unreachable combination");
        assert!(
            dc.eval(&[true, true]),
            "the (1,1) fanin combination is the SDC"
        );
        assert!(!dc.eval(&[true, false]));
        assert!(!dc.eval(&[false, false]));
    }

    /// Independent primary inputs as fanins: every combination is
    /// reachable, so the SDC cover is empty.
    #[test]
    fn independent_fanins_have_no_sdc() {
        let mut net = Network::new("w");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let c = net.add_input("c").expect("c");
        let f = net
            .add_node("f", vec![a, b, c], parse_sop(3, "ab + c").expect("f"))
            .expect("f");
        net.add_output("f", f).expect("po");
        let dc = window_sdc_cover(&net, f, &WindowOptions::default()).expect("within bounds");
        assert!(dc.is_empty(), "PIs are unconstrained: {dc:?}");
    }

    #[test]
    fn fanin_bound_is_respected() {
        let mut net = Network::new("w");
        let pis: Vec<NodeId> = (0..4)
            .map(|k| net.add_input(format!("x{k}")).expect("pi"))
            .collect();
        let f = net
            .add_node("f", pis, parse_sop(4, "abcd").expect("f"))
            .expect("f");
        net.add_output("f", f).expect("po");
        let opts = WindowOptions {
            max_fanins: 3,
            ..WindowOptions::default()
        };
        assert!(window_sdc_cover(&net, f, &opts).is_none());
    }

    /// A buffer chain: the duplicated signal makes half the window
    /// unreachable (the two fanins can never disagree).
    #[test]
    fn duplicated_signal_halves_the_window() {
        let mut net = Network::new("w");
        let a = net.add_input("a").expect("a");
        let buf = net
            .add_node("buf", vec![a], parse_sop(1, "a").expect("buf"))
            .expect("buf");
        let f = net
            .add_node("f", vec![a, buf], parse_sop(2, "ab").expect("f"))
            .expect("f");
        net.add_output("f", f).expect("po");
        let dc = window_sdc_cover(&net, f, &WindowOptions::default()).expect("within bounds");
        assert_eq!(dc.len(), 2, "(0,1) and (1,0) are unreachable");
        assert!(dc.eval(&[true, false]));
        assert!(dc.eval(&[false, true]));
        assert!(!dc.eval(&[true, true]));
        assert!(!dc.eval(&[false, false]));
    }
}
