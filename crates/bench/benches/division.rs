//! Microbenchmarks of the division engines: RAR-based basic Boolean
//! division vs. algebraic weak division, extended division's voting and
//! clique overhead, and the POS (complement-domain) path.

use boolsubst_algebraic::weak_divide;
use boolsubst_bench::timing::Harness;
use boolsubst_core::{
    basic_divide_covers, extended_divide_covers, pos_divide_covers, DivisionOptions,
};
use boolsubst_cube::{parse_sop, Cover};
use std::hint::black_box;

/// The paper's running example plus progressively larger planted pairs.
fn cases() -> Vec<(&'static str, Cover, Cover)> {
    let paper_f = parse_sop(3, "ab + ac + bc'").expect("f");
    let paper_d = parse_sop(3, "ab + c").expect("d");
    let wide_f = parse_sop(8, "abe + abf + ace + acf + bde + bdf + gh + g'h'").expect("f");
    let wide_d = parse_sop(8, "ab + ac + bd").expect("d");
    let deep_f = parse_sop(10, "abc + abd' + ae + af + bg + bh + cij + c'ij'").expect("f");
    let deep_d = parse_sop(10, "a + b + cij").expect("d");
    vec![
        ("paper", paper_f, paper_d),
        ("wide8", wide_f, wide_d),
        ("deep10", deep_f, deep_d),
    ]
}

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("division");
    for (name, f, d) in cases() {
        group.bench(&format!("algebraic/{name}"), || {
            black_box(weak_divide(black_box(&f), black_box(&d)))
        });
        group.bench(&format!("boolean_basic/{name}"), || {
            black_box(basic_divide_covers(
                black_box(&f),
                black_box(&d),
                &DivisionOptions::paper_default(),
            ))
        });
        group.bench(&format!("boolean_extended/{name}"), || {
            black_box(extended_divide_covers(
                black_box(&f),
                black_box(&d),
                &DivisionOptions::paper_default(),
            ))
        });
        group.bench(&format!("boolean_pos/{name}"), || {
            black_box(pos_divide_covers(
                black_box(&f),
                black_box(&d),
                &DivisionOptions::paper_default(),
            ))
        });
    }
}
