//! Network-level benchmarks: the four resubstitution methods on a
//! Script-A-prepared planted workload — the per-method cost behind the
//! CPU columns of Tables II–V.

use boolsubst_algebraic::{algebraic_resub, ResubOptions};
use boolsubst_bench::timing::Harness;
use boolsubst_core::{Session, SubstOptions};
use boolsubst_network::Network;
use boolsubst_workloads::generator::{planted_network, PlantedParams};
use boolsubst_workloads::scripts::script_a;
use std::hint::black_box;

fn prepared(seed: u64, targets: usize) -> Network {
    let mut net = planted_network(
        seed,
        &PlantedParams {
            targets,
            ..PlantedParams::default()
        },
    );
    script_a(&mut net);
    net
}

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("substitution");
    for (seed, targets) in [(61u64, 6usize), (62, 12)] {
        let net = prepared(seed, targets);
        let label = format!("plant{targets}");
        group.bench(&format!("algebraic_resub/{label}"), || {
            let mut n = net.clone();
            algebraic_resub(&mut n, &ResubOptions::default());
            black_box(n.sop_literals())
        });
        for (name, opts) in [
            ("basic", SubstOptions::basic()),
            ("extended", SubstOptions::extended()),
            ("extended_gdc", SubstOptions::extended_gdc()),
        ] {
            group.bench(&format!("{name}/{label}"), || {
                let mut n = net.clone();
                Session::new(&mut n, opts.clone()).run();
                black_box(n.sop_literals())
            });
        }
    }
}
