//! Microbenchmarks of the two-level substrate everything sits on:
//! tautology checking, complementation, ESPRESSO-style simplification and
//! quick factoring.

use boolsubst_algebraic::factored_literals;
use boolsubst_bench::timing::Harness;
use boolsubst_cube::{simplify, Cover, Cube, Lit, Phase, SimplifyOptions};
use boolsubst_workloads::generator::Rng;
use std::hint::black_box;

fn random_cover(seed: u64, vars: usize, cubes: usize) -> Cover {
    let mut rng = Rng::new(seed);
    let mut cover = Cover::new(vars);
    while cover.len() < cubes {
        let mut cube = Cube::universe(vars);
        for _ in 0..(2 + rng.below(3)) {
            let phase = if rng.below(2) == 0 {
                Phase::Pos
            } else {
                Phase::Neg
            };
            cube.restrict(Lit {
                var: rng.below(vars),
                phase,
            });
        }
        if !cube.is_empty() {
            cover.push(cube);
        }
        cover.remove_contained_cubes();
    }
    cover
}

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("twolevel");
    for (vars, cubes) in [(8usize, 8usize), (12, 24), (16, 48)] {
        let f = random_cover(0xABCD + vars as u64, vars, cubes);
        let label = format!("{vars}v{cubes}c");
        group.bench(&format!("tautology/{label}"), || {
            black_box(black_box(&f).is_tautology())
        });
        group.bench(&format!("complement/{label}"), || {
            black_box(black_box(&f).complement())
        });
        let dc = Cover::new(vars);
        group.bench(&format!("simplify/{label}"), || {
            black_box(simplify(black_box(&f), &dc, SimplifyOptions::default()))
        });
        group.bench(&format!("factor/{label}"), || {
            black_box(factored_literals(black_box(&f)))
        });
    }
}
