//! Microbenchmarks of the two-level substrate everything sits on:
//! tautology checking, complementation, ESPRESSO-style simplification and
//! quick factoring.

use boolsubst_algebraic::factored_literals;
use boolsubst_cube::{simplify, Cover, Cube, Lit, Phase, SimplifyOptions};
use boolsubst_workloads::generator::Rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn random_cover(seed: u64, vars: usize, cubes: usize) -> Cover {
    let mut rng = Rng::new(seed);
    let mut cover = Cover::new(vars);
    while cover.len() < cubes {
        let mut cube = Cube::universe(vars);
        for _ in 0..(2 + rng.below(3)) {
            let phase = if rng.below(2) == 0 { Phase::Pos } else { Phase::Neg };
            cube.restrict(Lit { var: rng.below(vars), phase });
        }
        if !cube.is_empty() {
            cover.push(cube);
        }
        cover.remove_contained_cubes();
    }
    cover
}

fn bench_twolevel(c: &mut Criterion) {
    let mut group = c.benchmark_group("twolevel");
    for (vars, cubes) in [(8usize, 8usize), (12, 24), (16, 48)] {
        let f = random_cover(0xABCD + vars as u64, vars, cubes);
        let label = format!("{vars}v{cubes}c");
        group.bench_with_input(BenchmarkId::new("tautology", &label), &(), |b, ()| {
            b.iter(|| black_box(black_box(&f).is_tautology()));
        });
        group.bench_with_input(BenchmarkId::new("complement", &label), &(), |b, ()| {
            b.iter(|| black_box(black_box(&f).complement()));
        });
        group.bench_with_input(BenchmarkId::new("simplify", &label), &(), |b, ()| {
            let dc = Cover::new(vars);
            b.iter(|| {
                black_box(simplify(
                    black_box(&f),
                    &dc,
                    SimplifyOptions::default(),
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("factor", &label), &(), |b, ()| {
            b.iter(|| black_box(factored_literals(black_box(&f))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_twolevel);
criterion_main!(benches);
