//! Microbenchmarks of the implication engine: direct implications vs.
//! recursive learning, and full redundancy checks on chains of growing
//! depth — the paper's run-time/quality knob.

use boolsubst_atpg::{check_fault, Circuit, Fault, GateId, ImplyOptions, Wire};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Builds a reconvergent ladder of `depth` stages; returns the circuit and
/// a mid-ladder wire whose fault check exercises long implication chains.
fn ladder(depth: usize) -> (Circuit, Wire) {
    let mut c = Circuit::new();
    let mut a = c.add_input();
    let b = c.add_input();
    let mut mid = None;
    for i in 0..depth {
        let x = c.add_and(vec![a, b]);
        let y = c.add_or(vec![x, a]);
        if i == depth / 2 {
            mid = Some(Wire { gate: y, pin: 0 });
        }
        a = y;
    }
    c.add_output(a);
    (c, mid.expect("depth > 0"))
}

fn bench_implication(c: &mut Criterion) {
    let mut group = c.benchmark_group("implication");
    for depth in [8usize, 32, 128] {
        let (circuit, wire) = ladder(depth);
        let fault = Fault::sa1(wire);
        group.bench_with_input(
            BenchmarkId::new("check_fault_direct", depth),
            &(),
            |bch, ()| {
                bch.iter(|| {
                    black_box(check_fault(
                        black_box(&circuit),
                        fault,
                        ImplyOptions { learn_depth: 0 },
                    ))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("check_fault_learning1", depth),
            &(),
            |bch, ()| {
                bch.iter(|| {
                    black_box(check_fault(
                        black_box(&circuit),
                        fault,
                        ImplyOptions { learn_depth: 1 },
                    ))
                });
            },
        );
    }
    group.finish();
}

/// Fault sweep over a two-level region (the shape every division builds).
fn bench_region_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("region_sweep");
    for cubes in [4usize, 16, 64] {
        let mut circuit = Circuit::new();
        let inputs: Vec<GateId> = (0..10).map(|_| circuit.add_input()).collect();
        let mut cube_gates = Vec::new();
        for k in 0..cubes {
            let ins: Vec<GateId> = (0..3)
                .map(|j| inputs[(k * 3 + j) % inputs.len()])
                .collect();
            cube_gates.push(circuit.add_and(ins));
        }
        let root = circuit.add_or(cube_gates.clone());
        circuit.add_output(root);
        group.bench_with_input(BenchmarkId::new("all_faults", cubes), &(), |bch, ()| {
            bch.iter(|| {
                let mut untestable = 0usize;
                for &g in &cube_gates {
                    for pin in 0..circuit.fanins(g).len() {
                        let fault = Fault::sa1(Wire { gate: g, pin });
                        if check_fault(&circuit, fault, ImplyOptions::default())
                            .is_untestable()
                        {
                            untestable += 1;
                        }
                    }
                }
                black_box(untestable)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_implication, bench_region_sweep);
criterion_main!(benches);
