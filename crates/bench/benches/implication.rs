//! Microbenchmarks of the implication engine: direct implications vs.
//! recursive learning, and full redundancy checks on chains of growing
//! depth — the paper's run-time/quality knob.

use boolsubst_atpg::{check_fault, Circuit, Fault, GateId, ImplyOptions, Wire};
use boolsubst_bench::timing::Harness;
use std::hint::black_box;

/// Builds a reconvergent ladder of `depth` stages; returns the circuit and
/// a mid-ladder wire whose fault check exercises long implication chains.
fn ladder(depth: usize) -> (Circuit, Wire) {
    let mut c = Circuit::new();
    let mut a = c.add_input();
    let b = c.add_input();
    let mut mid = None;
    for i in 0..depth {
        let x = c.add_and(vec![a, b]);
        let y = c.add_or(vec![x, a]);
        if i == depth / 2 {
            mid = Some(Wire { gate: y, pin: 0 });
        }
        a = y;
    }
    c.add_output(a);
    (c, mid.expect("depth > 0"))
}

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("implication");
    for depth in [8usize, 32, 128] {
        let (circuit, wire) = ladder(depth);
        let fault = Fault::sa1(wire);
        group.bench(&format!("check_fault_direct/{depth}"), || {
            black_box(check_fault(
                black_box(&circuit),
                fault,
                ImplyOptions { learn_depth: 0 },
            ))
        });
        group.bench(&format!("check_fault_learning1/{depth}"), || {
            black_box(check_fault(
                black_box(&circuit),
                fault,
                ImplyOptions { learn_depth: 1 },
            ))
        });
    }

    let mut group = harness.group("region_sweep");
    for cubes in [4usize, 16, 64] {
        let mut circuit = Circuit::new();
        let inputs: Vec<GateId> = (0..10).map(|_| circuit.add_input()).collect();
        let mut cube_gates = Vec::new();
        for k in 0..cubes {
            let ins: Vec<GateId> = (0..3).map(|j| inputs[(k * 3 + j) % inputs.len()]).collect();
            cube_gates.push(circuit.add_and(ins));
        }
        let root = circuit.add_or(cube_gates.clone());
        circuit.add_output(root);
        group.bench(&format!("all_faults/{cubes}"), || {
            let mut untestable = 0usize;
            for &g in &cube_gates {
                for pin in 0..circuit.fanins(g).len() {
                    let fault = Fault::sa1(Wire { gate: g, pin });
                    if check_fault(&circuit, fault, ImplyOptions::default()).is_untestable() {
                        untestable += 1;
                    }
                }
            }
            black_box(untestable)
        });
    }
}
