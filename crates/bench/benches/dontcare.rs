//! Benchmarks for the explicit don't-care machinery and the fault-coverage
//! reporter — the cost of making the paper's implicit don't cares
//! explicit.

use boolsubst_atpg::fault_coverage;
use boolsubst_bench::timing::Harness;
use boolsubst_core::dontcare::{full_simplify, odc_cover, DontCareOptions};
use boolsubst_core::netcircuit::NetCircuit;
use boolsubst_workloads::benchmarks::{c17, ripple_adder};
use boolsubst_workloads::generator::{planted_network, PlantedParams};
use boolsubst_workloads::scripts::script_a;
use std::hint::black_box;

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("dontcare");
    let mut plant = planted_network(201, &PlantedParams::default());
    script_a(&mut plant);
    let node = plant.internal_ids().next().expect("nonempty");
    group.bench("odc_cover/one_node", || {
        black_box(odc_cover(&plant, node, 8))
    });
    group.bench("full_simplify/planted", || {
        let mut n = plant.clone();
        black_box(full_simplify(&mut n, &DontCareOptions::default()))
    });

    let mut group = harness.group("fault_coverage");
    for (name, net) in [("c17", c17()), ("add4", ripple_adder(4))] {
        let circuit = NetCircuit::build(&net).circuit;
        group.bench(name, || black_box(fault_coverage(&circuit, 32, 7, 20_000)));
    }
}
