//! Benchmarks for the explicit don't-care machinery and the fault-coverage
//! reporter — the cost of making the paper's implicit don't cares
//! explicit.

use boolsubst_atpg::fault_coverage;
use boolsubst_core::dontcare::{full_simplify, odc_cover, DontCareOptions};
use boolsubst_core::netcircuit::NetCircuit;
use boolsubst_workloads::benchmarks::{c17, ripple_adder};
use boolsubst_workloads::generator::{planted_network, PlantedParams};
use boolsubst_workloads::scripts::script_a;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_dontcare(c: &mut Criterion) {
    let mut group = c.benchmark_group("dontcare");
    group.sample_size(20);
    let mut plant = planted_network(201, &PlantedParams::default());
    script_a(&mut plant);
    group.bench_function("odc_cover/one_node", |b| {
        let node = plant.internal_ids().next().expect("nonempty");
        b.iter(|| black_box(odc_cover(&plant, node, 8)));
    });
    group.bench_function("full_simplify/planted", |b| {
        b.iter(|| {
            let mut n = plant.clone();
            black_box(full_simplify(&mut n, &DontCareOptions::default()))
        });
    });
    group.finish();
}

fn bench_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_coverage");
    group.sample_size(15);
    for (name, net) in [("c17", c17()), ("add4", ripple_adder(4))] {
        let circuit = NetCircuit::build(&net).circuit;
        group.bench_function(name, |b| {
            b.iter(|| black_box(fault_coverage(&circuit, 32, 7, 20_000)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dontcare, bench_coverage);
criterion_main!(benches);
