#![warn(missing_docs)]
//! Shared machinery for the table binaries: runs the four competing
//! resubstitution methods on identically-prepared circuits and prints
//! rows in the paper's format.

pub mod timing;

use boolsubst_algebraic::{algebraic_resub, network_factored_literals, ResubOptions};
use boolsubst_core::verify::networks_equivalent;
use boolsubst_core::{Session, SubstOptions};
use boolsubst_network::Network;
use std::time::Instant;

/// One measured cell: factored literals and CPU seconds.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Factored-form literal count after the method.
    pub lits: usize,
    /// Wall-clock seconds the method took.
    pub cpu: f64,
}

/// One row of a comparison table (one circuit).
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Circuit name.
    pub name: String,
    /// Initial factored literal count (after the preparation script).
    pub initial: usize,
    /// SIS-style `resub -d` result.
    pub resub: Cell,
    /// Our basic division.
    pub basic: Cell,
    /// Our extended division (no global don't cares).
    pub ext: Cell,
    /// Our extended division with global don't cares.
    pub ext_gdc: Cell,
    /// Whether every method's output was BDD-verified equivalent.
    pub verified: bool,
}

/// Runs the four methods on a prepared circuit.
///
/// # Panics
///
/// Panics if a method corrupts the network structurally.
#[must_use]
pub fn run_methods(prepared: &Network) -> TableRow {
    let initial = network_factored_literals(prepared);
    let mut verified = true;

    let mut timed = |f: &dyn Fn(&mut Network)| -> Cell {
        let mut net = prepared.clone();
        let start = Instant::now();
        f(&mut net);
        let cpu = start.elapsed().as_secs_f64();
        net.check_invariants();
        verified &= networks_equivalent(prepared, &net);
        Cell {
            lits: network_factored_literals(&net),
            cpu,
        }
    };

    let resub = timed(&|net| {
        algebraic_resub(net, &ResubOptions::default());
    });
    let basic = timed(&|net| {
        Session::new(net, SubstOptions::basic()).run();
    });
    let ext = timed(&|net| {
        Session::new(net, SubstOptions::extended()).run();
    });
    let ext_gdc = timed(&|net| {
        Session::new(net, SubstOptions::extended_gdc()).run();
    });

    TableRow {
        name: prepared.name().to_string(),
        initial,
        resub,
        basic,
        ext,
        ext_gdc,
        verified,
    }
}

/// Runs a full table: prepare each workload circuit with `script`, then
/// measure all four methods.
#[must_use]
pub fn run_table(script: &dyn Fn(&mut Network)) -> Vec<TableRow> {
    let mut rows = Vec::new();
    for mut net in boolsubst_workloads::full_suite() {
        script(&mut net);
        rows.push(run_methods(&net));
    }
    rows
}

/// Prints a table in the paper's layout (Tables II–V).
pub fn print_table(title: &str, rows: &[TableRow]) {
    println!("{title}");
    println!(
        "{:<10} {:>7} | {:>6} {:>7} | {:>6} {:>7} | {:>6} {:>7} | {:>6} {:>7} | ok",
        "circuit", "initial", "sis", "cpu", "basic", "cpu", "ext.", "cpu", "extGDC", "cpu"
    );
    println!("{}", "-".repeat(104));
    let mut sums = [0usize; 5];
    let mut cpus = [0f64; 4];
    let mut all_ok = true;
    for r in rows {
        println!(
            "{:<10} {:>7} | {:>6} {:>7.3} | {:>6} {:>7.3} | {:>6} {:>7.3} | {:>6} {:>7.3} | {}",
            r.name,
            r.initial,
            r.resub.lits,
            r.resub.cpu,
            r.basic.lits,
            r.basic.cpu,
            r.ext.lits,
            r.ext.cpu,
            r.ext_gdc.lits,
            r.ext_gdc.cpu,
            if r.verified { "yes" } else { "NO" },
        );
        sums[0] += r.initial;
        sums[1] += r.resub.lits;
        sums[2] += r.basic.lits;
        sums[3] += r.ext.lits;
        sums[4] += r.ext_gdc.lits;
        cpus[0] += r.resub.cpu;
        cpus[1] += r.basic.cpu;
        cpus[2] += r.ext.cpu;
        cpus[3] += r.ext_gdc.cpu;
        all_ok &= r.verified;
    }
    println!("{}", "-".repeat(104));
    println!(
        "{:<10} {:>7} | {:>6} {:>7.3} | {:>6} {:>7.3} | {:>6} {:>7.3} | {:>6} {:>7.3} | {}",
        "total",
        sums[0],
        sums[1],
        cpus[0],
        sums[2],
        cpus[1],
        sums[3],
        cpus[2],
        sums[4],
        cpus[3],
        if all_ok { "yes" } else { "NO" },
    );
    let pct = |x: usize| 100.0 * (sums[0] as f64 - x as f64) / (sums[0] as f64).max(1.0);
    println!(
        "{:<10} {:>7} | {:>5.1}% {:>7} | {:>5.1}% {:>7} | {:>5.1}% {:>7} | {:>5.1}% {:>7} |",
        "improve",
        "",
        pct(sums[1]),
        "",
        pct(sums[2]),
        "",
        pct(sums[3]),
        "",
        pct(sums[4]),
        ""
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_workloads::benchmarks::ripple_adder;
    use boolsubst_workloads::scripts::script_a;

    #[test]
    fn run_methods_verifies_and_orders() {
        let mut net = ripple_adder(3);
        script_a(&mut net);
        let row = run_methods(&net);
        assert!(row.verified, "all methods must be BDD-equivalent");
        assert!(row.resub.lits <= row.initial);
        assert!(row.basic.lits <= row.initial);
        assert!(
            row.ext.lits <= row.basic.lits,
            "ext may only improve on basic"
        );
        assert!(row.ext_gdc.lits <= row.initial);
    }

    #[test]
    fn print_table_smoke() {
        let row = TableRow {
            name: "x".into(),
            initial: 10,
            resub: Cell { lits: 9, cpu: 0.0 },
            basic: Cell { lits: 8, cpu: 0.0 },
            ext: Cell { lits: 8, cpu: 0.0 },
            ext_gdc: Cell { lits: 7, cpu: 0.0 },
            verified: true,
        };
        print_table("smoke", &[row]);
    }
}
