//! Regenerates Table IV: Script C (`eliminate 0; simplify; gkx`).

use boolsubst_bench::{print_table, run_table};
use boolsubst_workloads::scripts::script_c;

fn main() {
    let rows = run_table(&script_c);
    print_table("Table IV — Script C (eliminate 0; simplify; gkx)", &rows);
}
