//! Ablation: acceptance policy. The paper attributes its Table V anomaly
//! (ext-GDC occasionally underperforming ext) to the "locally greedy"
//! first-positive-gain acceptance. This binary compares first-gain vs.
//! best-gain acceptance across all three configurations.

use boolsubst_algebraic::network_factored_literals;
use boolsubst_core::verify::networks_equivalent;
use boolsubst_core::{Acceptance, Session, SubstOptions};
use boolsubst_workloads::scripts::script_a;
use std::time::Instant;

fn main() {
    println!("Ablation — first-gain (paper) vs best-gain acceptance\n");
    println!(
        "{:<10} {:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "circuit",
        "initial",
        "bas-first",
        "bas-best",
        "ext-first",
        "ext-best",
        "gdc-first",
        "gdc-best"
    );
    let mut sums = [0usize; 7];
    let mut cpu = [0f64; 6];
    for mut net in boolsubst_workloads::full_suite() {
        script_a(&mut net);
        let initial = network_factored_literals(&net);
        let mut cells = Vec::new();
        for (i, (mode, acc)) in [
            (SubstOptions::basic(), Acceptance::FirstGain),
            (SubstOptions::basic(), Acceptance::BestGain),
            (SubstOptions::extended(), Acceptance::FirstGain),
            (SubstOptions::extended(), Acceptance::BestGain),
            (SubstOptions::extended_gdc(), Acceptance::FirstGain),
            (SubstOptions::extended_gdc(), Acceptance::BestGain),
        ]
        .into_iter()
        .enumerate()
        {
            let opts = mode.with_acceptance(acc);
            let mut trial = net.clone();
            let start = Instant::now();
            Session::new(&mut trial, opts).run();
            cpu[i] += start.elapsed().as_secs_f64();
            assert!(
                networks_equivalent(&net, &trial),
                "rewrite broke {}",
                net.name()
            );
            cells.push(network_factored_literals(&trial));
        }
        println!(
            "{:<10} {:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
            net.name(),
            initial,
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4],
            cells[5]
        );
        sums[0] += initial;
        for (i, c) in cells.iter().enumerate() {
            sums[i + 1] += c;
        }
    }
    println!(
        "{:<10} {:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "total", sums[0], sums[1], sums[2], sums[3], sums[4], sums[5], sums[6]
    );
    println!(
        "cpu (s)             | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2}",
        cpu[0], cpu[1], cpu[2], cpu[3], cpu[4], cpu[5]
    );
    println!("\n(best-gain costs extra dry-runs; where it beats first-gain, the\n paper's explanation of its Table V anomaly is corroborated)");
}
