//! Ablation: core-divisor selection strategy in extended division.
//! Compares the paper's literal formulation (maximal cliques only)
//! against the library default (cliques + candidate subsets, decided by
//! actual division cost), a greedy single-row vote, and a variant with the
//! SOS validity filter disabled — quantifying how much each piece of
//! Section IV's machinery buys.

use boolsubst_core::division::DivisionOptions;
use boolsubst_core::extended::{extended_divide_covers_with, CoreSelection};
use boolsubst_cube::{Cover, Cube, Lit, Phase};
use boolsubst_workloads::generator::Rng;

/// Builds one (dividend, divisor-with-extras) pair with an embedded core.
fn planted_pair(rng: &mut Rng, vars: usize) -> (Cover, Cover) {
    let cube = |rng: &mut Rng, lits: usize| {
        let mut c = Cube::universe(vars);
        for _ in 0..lits {
            let phase = if rng.below(100) < 30 {
                Phase::Neg
            } else {
                Phase::Pos
            };
            c.restrict(Lit {
                var: rng.below(vars),
                phase,
            });
        }
        c
    };
    // Core: 2-3 cubes.
    let mut core = Cover::new(vars);
    let want = 2 + rng.below(2);
    while core.len() < want {
        let lits = 1 + rng.below(2);
        let c = cube(rng, lits);
        if !c.is_empty() {
            core.push(c);
        }
        core.remove_contained_cubes();
    }
    // f = core·q1 + core·q2 + noise.
    let mut f = Cover::new(vars);
    for _ in 0..2 {
        let lits = 1 + rng.below(2);
        let q = cube(rng, lits);
        for k in core.cubes() {
            f.push(k.and(&q));
        }
    }
    f.push(cube(rng, 3));
    f.remove_contained_cubes();
    // d = core + 1-2 junk cubes.
    let mut d = core.clone();
    let junk = 1 + rng.below(2);
    for _ in 0..junk {
        d.push(cube(rng, 2));
    }
    d.remove_contained_cubes();
    (f, d)
}

fn main() {
    let strategies = [
        ("cliques-only (paper)", CoreSelection::CliquesOnly),
        ("cliques+subsets (default)", CoreSelection::CliqueAndSubsets),
        ("greedy row", CoreSelection::GreedyRow),
        ("no SOS filter", CoreSelection::NoSosFilter),
    ];
    let opts = DivisionOptions::paper_default();
    let mut rng = Rng::new(0x5EED);
    let mut totals = vec![0usize; strategies.len()];
    let mut found = vec![0usize; strategies.len()];
    let trials = 200;
    let mut baseline_total = 0usize;
    for _ in 0..trials {
        let (f, d) = planted_pair(&mut rng, 8);
        if f.is_empty() || d.is_empty() {
            continue;
        }
        baseline_total += f.literal_count();
        for (i, (_, sel)) in strategies.iter().enumerate() {
            match extended_divide_covers_with(&f, &d, &opts, *sel) {
                Some(ext) => {
                    assert!(ext.division.verify(&f, &ext.core), "unsound division");
                    totals[i] += ext.division.sop_cost() + ext.core.literal_count();
                    found[i] += 1;
                }
                None => totals[i] += f.literal_count(),
            }
        }
    }
    println!("Ablation — core-divisor selection ({trials} planted divisions, 8 vars)");
    println!("baseline (no division): {baseline_total} SOP literals\n");
    println!(
        "{:<28} {:>10} {:>10}",
        "strategy", "total cost", "divisions"
    );
    for (i, (name, _)) in strategies.iter().enumerate() {
        println!("{:<28} {:>10} {:>10}", name, totals[i], found[i]);
    }
    println!(
        "\n(the default may only improve on cliques-only; greedy-row and the\n\
         unfiltered variant show what the clique search and the Table I SOS\n\
         filter each contribute)"
    );
}
