//! Extension experiment: the full Boolean flow (`script.boolean` —
//! prepare, extended substitution, fx+gkx extraction, substitute again,
//! clean up) against the algebraic `script.algebraic` flow, plus a final
//! don't-care pass. This is "what the paper enables" measured end to end.

use boolsubst_algebraic::{algebraic_resub, network_factored_literals, ResubOptions};
use boolsubst_core::dontcare::{full_simplify, DontCareOptions};
use boolsubst_core::verify::networks_equivalent;
use boolsubst_core::{Session, SubstOptions};
use boolsubst_workloads::scripts::{script_algebraic_with, script_boolean};
use std::time::Instant;

fn main() {
    println!("Extension — full algebraic flow vs full Boolean flow (+DC pass)\n");
    println!(
        "{:<10} {:>8} | {:>10} {:>7} | {:>10} {:>7} | {:>10} {:>7}",
        "circuit", "initial", "algebraic", "cpu", "boolean", "cpu", "bool+dc", "cpu"
    );
    let mut sums = [0usize; 4];
    let mut cpus = [0f64; 3];
    for net in boolsubst_workloads::full_suite() {
        let initial = network_factored_literals(&net);
        sums[0] += initial;

        let mut alg = net.clone();
        let t0 = Instant::now();
        script_algebraic_with(&mut alg, |n| {
            algebraic_resub(n, &ResubOptions::default());
        });
        let alg_cpu = t0.elapsed().as_secs_f64();
        cpus[0] += alg_cpu;
        assert!(
            networks_equivalent(&net, &alg),
            "algebraic flow broke {}",
            net.name()
        );

        let mut boo = net.clone();
        let t1 = Instant::now();
        script_boolean(&mut boo, |n| {
            Session::new(n, SubstOptions::extended()).run();
        });
        let boo_cpu = t1.elapsed().as_secs_f64();
        cpus[1] += boo_cpu;
        assert!(
            networks_equivalent(&net, &boo),
            "boolean flow broke {}",
            net.name()
        );

        let mut dc = boo.clone();
        let t2 = Instant::now();
        full_simplify(&mut dc, &DontCareOptions::default());
        dc.sweep();
        // The +DC column's cost is the Boolean flow plus the DC pass.
        let dc_cpu = boo_cpu + t2.elapsed().as_secs_f64();
        cpus[2] += dc_cpu;
        assert!(
            networks_equivalent(&net, &dc),
            "dc pass broke {}",
            net.name()
        );

        let cells = [
            network_factored_literals(&alg),
            network_factored_literals(&boo),
            network_factored_literals(&dc),
        ];
        for (i, c) in cells.iter().enumerate() {
            sums[i + 1] += c;
        }
        println!(
            "{:<10} {:>8} | {:>10} {:>7.3} | {:>10} {:>7.3} | {:>10} {:>7.3}",
            net.name(),
            initial,
            cells[0],
            alg_cpu,
            cells[1],
            boo_cpu,
            cells[2],
            dc_cpu,
        );
    }
    println!(
        "{:<10} {:>8} | {:>10} {:>7.2} | {:>10} {:>7.2} | {:>10} {:>7.2}",
        "total", sums[0], sums[1], cpus[0], sums[2], cpus[1], sums[3], cpus[2]
    );
    let pct = |x: usize| 100.0 * (sums[0] as f64 - x as f64) / (sums[0] as f64).max(1.0);
    println!(
        "{:<10} {:>8} | {:>9.1}% {:>7} | {:>9.1}% {:>7} | {:>9.1}% {:>7}",
        "improve",
        "",
        pct(sums[1]),
        "",
        pct(sums[2]),
        "",
        pct(sums[3]),
        ""
    );
}
