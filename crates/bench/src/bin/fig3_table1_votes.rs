//! Regenerates Fig. 3 and Table I: the extended-division voting process —
//! every dividend wire's stuck-at fault is implied, the divisor cubes with
//! implied value 0 form the wire's candidate core divisor, and the table
//! is filtered by the SOS validity check.

use boolsubst_core::division::DivisionOptions;
use boolsubst_core::extended::{compute_vote_table, extended_divide_covers};
use boolsubst_cube::display::var_name;
use boolsubst_cube::{parse_sop, Phase};

fn main() {
    println!("Fig. 3 / Table I — extended-division vote table\n");
    // A divisor pool in the spirit of Fig. 3(a): f's ideal divisor is a
    // sub-expression of d (cubes k1 = ab, k2 = c) among unrelated cubes
    // (k3 = de).
    let f = parse_sop(5, "ab + ac + bc'").expect("f parses");
    let d = parse_sop(5, "ab + c + de").expect("d parses");
    println!("dividend f = {f}");
    println!("divisor  d = {d}  (cubes k1..k{})\n", d.len());

    let table = compute_vote_table(&f, &d, &DivisionOptions::paper_default());
    println!("Table I(a) — raw votes (divisor cubes implied to 0 per wire):");
    println!("{:<16} {:<20} note", "wire", "candidate core");
    for row in &table.rows {
        let lit = format!(
            "{}{}",
            var_name(row.wire.lit.var),
            if row.wire.lit.phase == Phase::Neg {
                "'"
            } else {
                ""
            }
        );
        let cube = f.cubes()[row.wire.cube_index].to_string();
        let cands: Vec<String> = row
            .candidates
            .iter()
            .map(|k| format!("k{} ({})", k + 1, d.cubes()[*k]))
            .collect();
        let note = if row.always_removable {
            "untestable outright"
        } else if !row.sos_valid {
            "filtered: not an SOS of its cube"
        } else {
            ""
        };
        println!(
            "{:<16} {:<20} {}",
            format!("{lit} in {cube}"),
            if cands.is_empty() {
                "-".to_string()
            } else {
                cands.join(" + ")
            },
            note
        );
    }

    println!("\nTable I(b) — rows surviving the SOS filter:");
    for row in table.valid_rows() {
        let lit = format!(
            "{}{}",
            var_name(row.wire.lit.var),
            if row.wire.lit.phase == Phase::Neg {
                "'"
            } else {
                ""
            }
        );
        let cands: Vec<String> = row
            .candidates
            .iter()
            .map(|k| format!("k{}", k + 1))
            .collect();
        println!(
            "  {lit} in {:<8} votes for {{{}}}",
            f.cubes()[row.wire.cube_index].to_string(),
            cands.join(", ")
        );
    }

    match extended_divide_covers(&f, &d, &DivisionOptions::paper_default()) {
        Some(ext) => {
            let core_names: Vec<String> = ext
                .core_cube_indices
                .iter()
                .map(|k| format!("k{}", k + 1))
                .collect();
            println!(
                "\nchosen core divisor: {} = {{{}}}",
                ext.core,
                core_names.join(", ")
            );
            println!("expected wire removals: {}", ext.expected_removals);
            println!(
                "final division: f = dc·({}) + {}  [verified: {}]",
                ext.division.quotient,
                ext.division.remainder,
                ext.division.verify(&f, &ext.core)
            );
        }
        None => println!("\nno useful core divisor found"),
    }
}
