//! Regenerates Fig. 1: the redundancy-addition-and-removal warm-up — an
//! irredundant circuit where adding ONE redundant wire makes TWO other
//! wires redundant, shrinking the circuit.
//!
//! The instance: o1 = ab + ac and o2 = ab + c are both outputs. The wire
//! o2 → AND(a,b) is redundant (ab ⇒ o2, so AND-ing it changes nothing);
//! once added, the literal b and the whole cube ac become untestable and
//! o1 collapses to a·o2 — two removals bought by one addition.

use boolsubst_atpg::{
    check_fault, is_testable_exhaustive, remove_redundant_wires, CandidateWire, Circuit, Fault,
    GateId, ImplyOptions, Wire,
};

fn build(with_added_wire: bool) -> (Circuit, [GateId; 8]) {
    let mut c = Circuit::new();
    let a = c.add_input();
    let b = c.add_input();
    let cc = c.add_input();
    let d_ab = c.add_and(vec![a, b]);
    let o2 = c.add_or(vec![d_ab, cc]);
    let f_ab = if with_added_wire {
        c.add_and(vec![a, b, o2]) // the dotted wire of Fig. 1(a)
    } else {
        c.add_and(vec![a, b])
    };
    let f_ac = c.add_and(vec![a, cc]);
    let o1 = c.add_or(vec![f_ab, f_ac]);
    c.add_output(o1);
    c.add_output(o2);
    (c, [a, b, cc, d_ab, o2, f_ab, f_ac, o1])
}

fn main() {
    println!("Fig. 1 — redundancy addition and removal, step by step\n");
    println!("outputs: o1 = ab + ac, o2 = ab + c\n");

    // (a) without the dotted wire, the region is irredundant.
    let (c0, [a, b, _cc, _d_ab, _o2, f_ab, f_ac, o1]) = build(false);
    let mut irredundant = true;
    for (gate, pin, what) in [
        (f_ab, 0, "a -> cube ab"),
        (f_ab, 1, "b -> cube ab"),
        (f_ac, 0, "a -> cube ac"),
        (f_ac, 1, "c -> cube ac"),
        (o1, 0, "cube ab -> o1"),
        (o1, 1, "cube ac -> o1"),
    ] {
        let stuck = pin < 2 && (gate == f_ab || gate == f_ac);
        let fault = Fault {
            wire: Wire { gate, pin },
            stuck,
        };
        irredundant &= is_testable_exhaustive(&c0, fault);
        let _ = what;
    }
    println!("original circuit irredundant: {irredundant}\n");

    // (b) the dotted wire o2 -> AND(a,b) is redundant (ab implies o2).
    let (c1, [.., f_ab1, f_ac1, o1_1]) = build(true);
    let added = Fault::sa1(Wire {
        gate: f_ab1,
        pin: 2,
    });
    println!(
        "added wire o2 -> cube ab; redundant (exhaustive check): {}",
        !is_testable_exhaustive(&c1, added)
    );
    let status = check_fault(&c1, added, ImplyOptions::default());
    println!(
        "  (our implication engine does not even need to test it: {})\n",
        if status.is_untestable() {
            "conflict found"
        } else {
            "known a priori by Lemma 1"
        }
    );

    // (c) now remove what became redundant.
    let mut c2 = c1.clone();
    let candidates = vec![
        CandidateWire {
            sink: f_ab1,
            driver: a,
        },
        CandidateWire {
            sink: f_ab1,
            driver: b,
        },
        CandidateWire {
            sink: o1_1,
            driver: f_ac1,
        },
        CandidateWire {
            sink: f_ac1,
            driver: a,
        },
    ];
    let outcome = remove_redundant_wires(&mut c2, &candidates, ImplyOptions::default(), 3);
    println!(
        "after the addition, {} wire(s) became removable (paper removes 2):",
        outcome.removed.len()
    );
    for w in &outcome.removed {
        let name = if w.driver == b {
            "literal b of cube ab"
        } else if w.sink == o1_1 {
            "whole cube ac"
        } else {
            "another region wire"
        };
        println!("  removed {name}");
    }

    // Final sanity: both outputs unchanged.
    let mut same = true;
    for m in 0u32..8 {
        let ins: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
        let v0 = c0.eval(&ins);
        let v2 = c2.eval(&ins);
        same &= c0
            .outputs()
            .iter()
            .zip(c2.outputs())
            .all(|(x, y)| v0[x.index()] == v2[y.index()]);
    }
    println!("\noutputs preserved: {same}");
    println!(
        "net effect: one added wire, {} removed — o1 is now a·o2",
        outcome.removed.len()
    );
}
