//! Ablation: implication effort. The paper presents implication scope as a
//! run-time/quality trade-off ("we can adjust the tradeoff between the run
//! time and the amount of don't cares"). This binary sweeps the effort
//! axis for the extended configuration: direct implications, one level of
//! recursive learning, and the bounded exact test search.

use boolsubst_algebraic::network_factored_literals;
use boolsubst_atpg::ImplyOptions;
use boolsubst_core::division::DivisionOptions;
use boolsubst_core::verify::networks_equivalent;
use boolsubst_core::{Session, SubstOptions};
use boolsubst_workloads::scripts::script_a;
use std::time::Instant;

fn main() {
    let efforts: Vec<(&str, DivisionOptions)> = vec![
        ("direct", DivisionOptions::paper_default()),
        (
            "learn1",
            DivisionOptions {
                imply: ImplyOptions { learn_depth: 1 },
                ..DivisionOptions::paper_default()
            },
        ),
        ("exact5k", DivisionOptions::exact(5_000)),
        (
            "learn1+exact5k",
            DivisionOptions {
                imply: ImplyOptions { learn_depth: 1 },
                ..DivisionOptions::exact(5_000)
            },
        ),
    ];
    println!("Ablation — implication effort (extended configuration)\n");
    print!("{:<10} {:>8}", "circuit", "initial");
    for (name, _) in &efforts {
        print!(" | {name:>14}");
    }
    println!();
    let mut sums = vec![0usize; efforts.len() + 1];
    let mut cpus = vec![0f64; efforts.len()];
    for mut net in boolsubst_workloads::full_suite() {
        script_a(&mut net);
        let initial = network_factored_literals(&net);
        print!("{:<10} {:>8}", net.name(), initial);
        sums[0] += initial;
        for (i, (_, division)) in efforts.iter().enumerate() {
            let opts = SubstOptions::extended().with_division(*division);
            let mut trial = net.clone();
            let start = Instant::now();
            Session::new(&mut trial, opts).run();
            cpus[i] += start.elapsed().as_secs_f64();
            assert!(networks_equivalent(&net, &trial), "broke {}", net.name());
            let lits = network_factored_literals(&trial);
            sums[i + 1] += lits;
            print!(" | {lits:>14}");
        }
        println!();
    }
    print!("{:<10} {:>8}", "total", sums[0]);
    for s in &sums[1..] {
        print!(" | {s:>14}");
    }
    println!();
    print!("{:<19}", "cpu (s)");
    for c in &cpus {
        print!(" | {c:>14.2}");
    }
    println!();
    println!(
        "\n(more implication effort may only match or beat direct implications;\n         the exact-search columns depend on the decision budget — an aborted\n         search falls back to the conservative answer — which is exactly the\n         run-time/quality knob the paper describes)"
    );
}
