//! Regenerates Table III: Script B (`eliminate 0; simplify; gcx`).

use boolsubst_bench::{print_table, run_table};
use boolsubst_workloads::scripts::script_b;

fn main() {
    let rows = run_table(&script_b);
    print_table("Table III — Script B (eliminate 0; simplify; gcx)", &rows);
}
