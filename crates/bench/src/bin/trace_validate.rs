//! CI validator for the observability artifacts: checks that a JSONL
//! event log, a Chrome trace-event file, the committed BENCH tables,
//! and/or a Prometheus text exposition are well-formed without any
//! external tooling.
//!
//! ```bash
//! trace_validate --jsonl trace.jsonl --chrome trace.json \
//!                --bench-sweep BENCH_sweep.json --bench-guard BENCH_guard.json \
//!                --bench-serve BENCH_serve.json --prom metrics.prom
//! ```
//!
//! Exits non-zero with a diagnostic on the first violation. Checks:
//!
//! * JSONL: non-empty; every line parses as a JSON object with a known
//!   `type`; the first line of each mode block is a `meta` line; pair
//!   lines carry a known outcome name and all five stage-nanos fields.
//! * Chrome: the whole file parses as a JSON array; every event is a
//!   `ph: "M"` metadata or `ph: "X"` complete event with numeric
//!   `ts`/`dur`; `ts` is monotonically non-decreasing per `(pid, tid)`.
//! * BENCH tables: every row carries its kind's required keys with the
//!   right JSON types; multi-threaded `extended_mt` rows must publish
//!   the proof/commit/wait/idle utilization fractions (each in [0, 1])
//!   and one per-worker breakdown entry per configured worker.
//! * Prometheus: every sample line parses as `name[{labels}] value`,
//!   every series is preceded by its `# TYPE` declaration, and each
//!   histogram exposes cumulative `_bucket` series ending in `+Inf`
//!   whose final count equals `_count`.

use std::collections::HashMap;
use std::process::ExitCode;

use boolsubst_trace::json::Json;
use boolsubst_trace::Outcome;

const STAGE_FIELDS: [&str; 5] = [
    "enumerate_ns",
    "filter_ns",
    "sim_ns",
    "divide_ns",
    "apply_ns",
];

fn validate_jsonl(text: &str) -> Result<(), String> {
    let mut lines = 0usize;
    let mut pairs = 0usize;
    let mut first = true;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        lines += 1;
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing \"type\"", i + 1))?;
        if first && ty != "meta" {
            return Err(format!("line {}: stream must open with a meta line", i + 1));
        }
        first = false;
        match ty {
            "meta" => {
                v.get("mode")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {}: meta without mode", i + 1))?;
                let disc = v
                    .get("discovery")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {}: meta without discovery", i + 1))?;
                if !matches!(disc, "overlap" | "signature" | "auto") {
                    return Err(format!("line {}: unknown discovery {disc:?}", i + 1));
                }
            }
            "pair" => {
                pairs += 1;
                let name = v
                    .get("outcome")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {}: pair without outcome", i + 1))?;
                if Outcome::from_name(name).is_none() {
                    return Err(format!("line {}: unknown outcome {name:?}", i + 1));
                }
                for field in STAGE_FIELDS {
                    if v.get(field).and_then(Json::as_u64).is_none() {
                        return Err(format!("line {}: pair missing {field}", i + 1));
                    }
                }
            }
            "pass" | "shadow_build" | "sim_refine" => {
                if v.get("dur_ns").and_then(Json::as_u64).is_none() {
                    return Err(format!("line {}: {ty} missing dur_ns", i + 1));
                }
            }
            "guard" => {
                let tier = v
                    .get("tier")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {}: guard without tier", i + 1))?;
                if !matches!(tier, "sim" | "bdd" | "sat" | "sampled") {
                    return Err(format!("line {}: unknown guard tier {tier:?}", i + 1));
                }
                for field in ["passed", "exact"] {
                    if v.get(field).and_then(Json::as_bool).is_none() {
                        return Err(format!("line {}: guard missing {field}", i + 1));
                    }
                }
                if v.get("dur_ns").and_then(Json::as_u64).is_none() {
                    return Err(format!("line {}: guard missing dur_ns", i + 1));
                }
            }
            other => return Err(format!("line {}: unknown type {other:?}", i + 1)),
        }
    }
    if lines == 0 {
        return Err("empty JSONL stream".into());
    }
    println!("jsonl ok: {lines} lines, {pairs} pair spans");
    Ok(())
}

fn validate_chrome(text: &str) -> Result<(), String> {
    let v = Json::parse(text).map_err(|e| format!("chrome trace: {e}"))?;
    let rows = v.as_array().ok_or("chrome trace is not a JSON array")?;
    if rows.is_empty() {
        return Err("chrome trace is empty".into());
    }
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut complete = 0usize;
    for (i, row) in rows.iter().enumerate() {
        let ph = row
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = row
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = row
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        match ph {
            "M" => {}
            "X" => {
                complete += 1;
                let ts = row
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X without numeric ts"))?;
                let dur = row
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X without numeric dur"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                let key = (pid, tid);
                if let Some(&prev) = last_ts.get(&key) {
                    if ts < prev {
                        return Err(format!(
                            "event {i}: ts {ts} < {prev} regresses on pid {pid} tid {tid}"
                        ));
                    }
                }
                last_ts.insert(key, ts);
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    if complete == 0 {
        return Err("chrome trace has no complete (ph=X) events".into());
    }
    println!("chrome ok: {} events, {complete} complete", rows.len());
    Ok(())
}

/// The JSON type a BENCH-row key must have.
#[derive(Clone, Copy)]
enum Ty {
    U64,
    I64,
    F64,
    Str,
    Bool,
}

fn check_key(row: &Json, key: &str, ty: Ty) -> Result<(), String> {
    let v = row.get(key).ok_or_else(|| format!("missing key {key:?}"))?;
    let ok = match ty {
        Ty::U64 => v.as_u64().is_some(),
        Ty::I64 => v.as_i64().is_some(),
        Ty::F64 => v.as_f64().is_some(),
        Ty::Str => v.as_str().is_some(),
        Ty::Bool => v.as_bool().is_some(),
    };
    if ok {
        Ok(())
    } else {
        Err(format!("key {key:?} has the wrong type"))
    }
}

fn check_keys(row: &Json, keys: &[(&str, Ty)]) -> Result<(), String> {
    for &(key, ty) in keys {
        check_key(row, key, ty)?;
    }
    Ok(())
}

/// Required keys of the multi-threaded utilization block (satellite of
/// the metrics layer): per-stage fractions plus a per-worker breakdown.
fn check_mt_util(row: &Json, threads: u64) -> Result<(), String> {
    for key in ["proof_frac", "commit_frac", "wait_frac", "idle_frac"] {
        let v = row
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("extended_mt threads={threads}: missing {key}"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{key} = {v} outside [0, 1]"));
        }
    }
    check_keys(row, &[("util_wall_secs", Ty::F64), ("epochs", Ty::U64)])?;
    let workers = row
        .get("workers")
        .and_then(Json::as_array)
        .ok_or("extended_mt row missing workers array")?;
    if workers.len() as u64 != threads {
        return Err(format!(
            "workers array has {} entries for threads={threads}",
            workers.len()
        ));
    }
    for (i, w) in workers.iter().enumerate() {
        check_keys(
            w,
            &[
                ("worker", Ty::U64),
                ("proof_ns", Ty::U64),
                ("wait_ns", Ty::U64),
                ("idle_ns", Ty::U64),
                ("pairs", Ty::U64),
            ],
        )
        .map_err(|e| format!("worker entry {i}: {e}"))?;
    }
    Ok(())
}

fn validate_bench_sweep(text: &str) -> Result<(), String> {
    let v = Json::parse(text).map_err(|e| format!("BENCH_sweep: {e}"))?;
    let rows = v.as_array().ok_or("BENCH_sweep is not a JSON array")?;
    if rows.is_empty() {
        return Err("BENCH_sweep is empty".into());
    }
    let mut mt_util_rows = 0usize;
    let mut discovery_rows = 0usize;
    for (i, row) in rows.iter().enumerate() {
        let res = match row.get("kind").and_then(Json::as_str) {
            None => {
                // Engine-vs-legacy and extended_mt scaling rows.
                check_keys(
                    row,
                    &[
                        ("mode", Ty::Str),
                        ("discovery", Ty::Str),
                        ("threads", Ty::U64),
                        ("host_cpus", Ty::U64),
                        ("nodes", Ty::U64),
                        ("pairs", Ty::U64),
                        ("legacy_secs", Ty::F64),
                        ("engine_secs", Ty::F64),
                        ("legacy_candidates_per_s", Ty::F64),
                        ("engine_candidates_per_s", Ty::F64),
                        ("speedup", Ty::F64),
                        ("substitutions", Ty::U64),
                        ("literal_gain", Ty::I64),
                        ("sim_pairs_screened", Ty::U64),
                        ("sim_pairs_refuted", Ty::U64),
                        ("sim_false_passes", Ty::U64),
                        ("sim_refinements", Ty::U64),
                        ("sim_patterns", Ty::U64),
                    ],
                )
                .and_then(|()| {
                    let mode = row.get("mode").and_then(Json::as_str).unwrap_or("");
                    let threads = row.get("threads").and_then(Json::as_u64).unwrap_or(1);
                    if mode == "extended_mt" && threads >= 2 {
                        mt_util_rows += 1;
                        check_mt_util(row, threads)
                    } else {
                        Ok(())
                    }
                })
            }
            Some("node_sweep") => check_keys(
                row,
                &[
                    ("mode", Ty::Str),
                    ("family", Ty::Str),
                    ("target_nodes", Ty::U64),
                    ("nodes", Ty::U64),
                    ("discovery", Ty::Str),
                    ("gen_secs", Ty::F64),
                    ("sweep_secs", Ty::F64),
                    ("pairs", Ty::U64),
                    ("candidates_per_s", Ty::F64),
                    ("substitutions", Ty::U64),
                    ("literal_gain", Ty::I64),
                    ("peak_cover_cubes", Ty::U64),
                    ("interrupted", Ty::Bool),
                ],
            ),
            Some("discovery") => {
                discovery_rows += 1;
                check_keys(
                    row,
                    &[
                        ("mode", Ty::Str),
                        ("family", Ty::Str),
                        ("target_nodes", Ty::U64),
                        ("nodes", Ty::U64),
                        ("discovery", Ty::Str),
                        ("deadline_secs", Ty::F64),
                        ("gen_secs", Ty::F64),
                        ("sweep_secs", Ty::F64),
                        ("pairs", Ty::U64),
                        ("candidates_per_s", Ty::F64),
                        ("proposed", Ty::U64),
                        ("bucket_hits", Ty::U64),
                        ("proofs_run", Ty::U64),
                        ("accepted", Ty::U64),
                        ("substitutions", Ty::U64),
                        ("literal_gain", Ty::I64),
                        ("guard_rejections", Ty::U64),
                        ("guard_pass_sampled", Ty::U64),
                        ("interrupted", Ty::Bool),
                    ],
                )
                .and_then(|()| {
                    let disc = row.get("discovery").and_then(Json::as_str).unwrap_or("");
                    if matches!(disc, "overlap" | "signature") {
                        Ok(())
                    } else {
                        Err(format!("unknown resolved discovery {disc:?}"))
                    }
                })
            }
            Some(other) => Err(format!("unknown row kind {other:?}")),
        };
        res.map_err(|e| format!("row {i}: {e}"))?;
    }
    if mt_util_rows == 0 {
        return Err("no multi-threaded extended_mt utilization rows".into());
    }
    if discovery_rows == 0 {
        return Err("no discovery crossover rows".into());
    }
    println!(
        "bench-sweep ok: {} rows, {mt_util_rows} with worker utilization, \
         {discovery_rows} discovery",
        rows.len()
    );
    Ok(())
}

fn validate_bench_guard(text: &str) -> Result<(), String> {
    let v = Json::parse(text).map_err(|e| format!("BENCH_guard: {e}"))?;
    let rows = v.as_array().ok_or("BENCH_guard is not a JSON array")?;
    if rows.is_empty() {
        return Err("BENCH_guard is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let kind = row.get("kind").and_then(Json::as_str).unwrap_or("");
        if kind != "guard_latency" {
            return Err(format!("row {i}: kind {kind:?} is not guard_latency"));
        }
        check_keys(
            row,
            &[
                ("tier_policy", Ty::Str),
                ("family", Ty::Str),
                ("nodes", Ty::U64),
                ("guard_checks", Ty::U64),
                ("guard_secs", Ty::F64),
                ("avg_check_ms", Ty::F64),
                ("guard_sim", Ty::U64),
                ("guard_bdd", Ty::U64),
                ("guard_sat", Ty::U64),
                ("guard_sampled", Ty::U64),
                ("substitutions", Ty::U64),
                ("interrupted", Ty::Bool),
            ],
        )
        .map_err(|e| format!("row {i}: {e}"))?;
    }
    println!("bench-guard ok: {} rows", rows.len());
    Ok(())
}

fn validate_bench_serve(text: &str) -> Result<(), String> {
    let v = Json::parse(text).map_err(|e| format!("BENCH_serve: {e}"))?;
    let rows = v.as_array().ok_or("BENCH_serve is not a JSON array")?;
    if rows.is_empty() {
        return Err("BENCH_serve is empty".into());
    }
    let mut worker_counts: Vec<u64> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let kind = row.get("kind").and_then(Json::as_str).unwrap_or("");
        if kind != "serve" {
            return Err(format!("row {i}: kind {kind:?} is not serve"));
        }
        check_keys(
            row,
            &[
                ("workers", Ty::U64),
                ("host_cpus", Ty::U64),
                ("jobs", Ty::U64),
                ("concurrency", Ty::U64),
                ("wall_secs", Ty::F64),
                ("throughput_jobs_per_s", Ty::F64),
                ("p50_ms", Ty::U64),
                ("p99_ms", Ty::U64),
                ("shed_429", Ty::U64),
                ("shed_rate", Ty::F64),
                ("done", Ty::U64),
                ("failed", Ty::U64),
                ("quarantined", Ty::U64),
                ("chaos", Ty::Bool),
            ],
        )
        .map_err(|e| format!("row {i}: {e}"))?;
        let workers = row.get("workers").and_then(Json::as_u64).unwrap_or(0);
        if workers == 0 {
            return Err(format!("row {i}: workers label must be >= 1"));
        }
        if !worker_counts.contains(&workers) {
            worker_counts.push(workers);
        }
        let p50 = row.get("p50_ms").and_then(Json::as_u64).unwrap_or(0);
        let p99 = row.get("p99_ms").and_then(Json::as_u64).unwrap_or(0);
        if p99 < p50 {
            return Err(format!("row {i}: p99 {p99} < p50 {p50}"));
        }
    }
    if worker_counts.len() < 2 {
        return Err(format!(
            "need rows at >= 2 distinct worker counts, got {worker_counts:?}"
        ));
    }
    println!(
        "bench-serve ok: {} rows over worker counts {worker_counts:?}",
        rows.len()
    );
    Ok(())
}

/// True iff `name` is a legal Prometheus metric/series name.
fn prom_name_ok(name: &str) -> bool {
    let mut chars = name.chars();
    let first_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    first_ok
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Strips a histogram-series suffix, returning the base metric name.
fn prom_base(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

fn validate_prom(text: &str) -> Result<(), String> {
    let mut types: HashMap<String, String> = HashMap::new();
    // Per-histogram state: (last cumulative bucket count, saw +Inf,
    // _count value) so we can cross-check the series at the end.
    let mut hist_last: HashMap<String, f64> = HashMap::new();
    let mut hist_inf: HashMap<String, f64> = HashMap::new();
    let mut hist_count: HashMap<String, f64> = HashMap::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(ty), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("line {n}: malformed TYPE comment"));
            };
            if !prom_name_ok(name) {
                return Err(format!("line {n}: bad metric name {name:?}"));
            }
            if !matches!(ty, "counter" | "gauge" | "histogram") {
                return Err(format!("line {n}: unknown metric type {ty:?}"));
            }
            if types.insert(name.to_string(), ty.to_string()).is_some() {
                return Err(format!("line {n}: duplicate TYPE for {name:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments (HELP etc.) are legal
        }
        // Sample line: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: sample without value"))?;
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v
                .parse()
                .map_err(|_| format!("line {n}: non-numeric value {v:?}"))?,
        };
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (name, Some(labels))
            }
            None => (series, None),
        };
        if !prom_name_ok(name) {
            return Err(format!("line {n}: bad series name {name:?}"));
        }
        let base = prom_base(name);
        let ty = types
            .get(base)
            .or_else(|| types.get(name))
            .ok_or_else(|| format!("line {n}: sample {name:?} without a TYPE declaration"))?;
        if ty == "histogram" {
            if name == format!("{base}_bucket") {
                let labels = labels.ok_or_else(|| format!("line {n}: _bucket without le label"))?;
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|l| l.strip_suffix('"'))
                    .ok_or_else(|| format!("line {n}: _bucket labels {labels:?} are not le"))?;
                let last = hist_last.entry(base.to_string()).or_insert(0.0);
                if value < *last {
                    return Err(format!(
                        "line {n}: {base} bucket le={le} count {value} regresses below {last}"
                    ));
                }
                *last = value;
                if le == "+Inf" {
                    hist_inf.insert(base.to_string(), value);
                }
            } else if name == format!("{base}_count") {
                hist_count.insert(base.to_string(), value);
            }
        } else if labels.is_some() {
            return Err(format!("line {n}: unexpected labels on {ty} {name:?}"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples".into());
    }
    for (name, ty) in &types {
        if ty == "histogram" {
            let inf = hist_inf
                .get(name)
                .ok_or_else(|| format!("histogram {name:?} has no +Inf bucket"))?;
            let count = hist_count
                .get(name)
                .ok_or_else(|| format!("histogram {name:?} has no _count"))?;
            if inf != count {
                return Err(format!(
                    "histogram {name:?}: +Inf bucket {inf} != _count {count}"
                ));
            }
        }
    }
    println!("prom ok: {} series types, {samples} samples", types.len());
    Ok(())
}

type Validator = fn(&str) -> Result<(), String>;

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut checked = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let (flag, validate): (&str, Validator) = match a.as_str() {
            "--jsonl" => ("--jsonl", validate_jsonl),
            "--chrome" => ("--chrome", validate_chrome),
            "--bench-sweep" => ("--bench-sweep", validate_bench_sweep),
            "--bench-guard" => ("--bench-guard", validate_bench_guard),
            "--bench-serve" => ("--bench-serve", validate_bench_serve),
            "--prom" => ("--prom", validate_prom),
            other => return Err(format!("unknown argument {other:?}")),
        };
        let path = it.next().ok_or_else(|| format!("{flag} needs a path"))?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        validate(&text).map_err(|e| format!("{path}: {e}"))?;
        checked = true;
    }
    if !checked {
        return Err(
            "usage: trace_validate [--jsonl <trace.jsonl>] [--chrome <trace.json>] \
             [--bench-sweep <BENCH_sweep.json>] [--bench-guard <BENCH_guard.json>] \
             [--bench-serve <BENCH_serve.json>] [--prom <metrics.prom>]"
                .into(),
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("trace_validate: {msg}");
            ExitCode::FAILURE
        }
    }
}
