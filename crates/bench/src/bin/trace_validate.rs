//! CI validator for the trace exporters: checks that a JSONL event log
//! and/or a Chrome trace-event file are well-formed without any external
//! tooling.
//!
//! ```bash
//! trace_validate --jsonl trace.jsonl --chrome trace.json
//! ```
//!
//! Exits non-zero with a diagnostic on the first violation. Checks:
//!
//! * JSONL: non-empty; every line parses as a JSON object with a known
//!   `type`; the first line of each mode block is a `meta` line; pair
//!   lines carry a known outcome name and all five stage-nanos fields.
//! * Chrome: the whole file parses as a JSON array; every event is a
//!   `ph: "M"` metadata or `ph: "X"` complete event with numeric
//!   `ts`/`dur`; `ts` is monotonically non-decreasing per `(pid, tid)`.

use std::collections::HashMap;
use std::process::ExitCode;

use boolsubst_trace::json::Json;
use boolsubst_trace::Outcome;

const STAGE_FIELDS: [&str; 5] = [
    "enumerate_ns",
    "filter_ns",
    "sim_ns",
    "divide_ns",
    "apply_ns",
];

fn validate_jsonl(text: &str) -> Result<(), String> {
    let mut lines = 0usize;
    let mut pairs = 0usize;
    let mut first = true;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        lines += 1;
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing \"type\"", i + 1))?;
        if first && ty != "meta" {
            return Err(format!("line {}: stream must open with a meta line", i + 1));
        }
        first = false;
        match ty {
            "meta" => {
                v.get("mode")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {}: meta without mode", i + 1))?;
            }
            "pair" => {
                pairs += 1;
                let name = v
                    .get("outcome")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {}: pair without outcome", i + 1))?;
                if Outcome::from_name(name).is_none() {
                    return Err(format!("line {}: unknown outcome {name:?}", i + 1));
                }
                for field in STAGE_FIELDS {
                    if v.get(field).and_then(Json::as_u64).is_none() {
                        return Err(format!("line {}: pair missing {field}", i + 1));
                    }
                }
            }
            "pass" | "shadow_build" | "sim_refine" => {
                if v.get("dur_ns").and_then(Json::as_u64).is_none() {
                    return Err(format!("line {}: {ty} missing dur_ns", i + 1));
                }
            }
            other => return Err(format!("line {}: unknown type {other:?}", i + 1)),
        }
    }
    if lines == 0 {
        return Err("empty JSONL stream".into());
    }
    println!("jsonl ok: {lines} lines, {pairs} pair spans");
    Ok(())
}

fn validate_chrome(text: &str) -> Result<(), String> {
    let v = Json::parse(text).map_err(|e| format!("chrome trace: {e}"))?;
    let rows = v.as_array().ok_or("chrome trace is not a JSON array")?;
    if rows.is_empty() {
        return Err("chrome trace is empty".into());
    }
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut complete = 0usize;
    for (i, row) in rows.iter().enumerate() {
        let ph = row
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = row
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = row
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        match ph {
            "M" => {}
            "X" => {
                complete += 1;
                let ts = row
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X without numeric ts"))?;
                let dur = row
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X without numeric dur"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                let key = (pid, tid);
                if let Some(&prev) = last_ts.get(&key) {
                    if ts < prev {
                        return Err(format!(
                            "event {i}: ts {ts} < {prev} regresses on pid {pid} tid {tid}"
                        ));
                    }
                }
                last_ts.insert(key, ts);
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    if complete == 0 {
        return Err("chrome trace has no complete (ph=X) events".into());
    }
    println!("chrome ok: {} events, {complete} complete", rows.len());
    Ok(())
}

type Validator = fn(&str) -> Result<(), String>;

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut checked = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let (flag, validate): (&str, Validator) = match a.as_str() {
            "--jsonl" => ("--jsonl", validate_jsonl),
            "--chrome" => ("--chrome", validate_chrome),
            other => return Err(format!("unknown argument {other:?}")),
        };
        let path = it.next().ok_or_else(|| format!("{flag} needs a path"))?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        validate(&text).map_err(|e| format!("{path}: {e}"))?;
        checked = true;
    }
    if !checked {
        return Err("usage: trace_validate [--jsonl <trace.jsonl>] [--chrome <trace.json>]".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("trace_validate: {msg}");
            ExitCode::FAILURE
        }
    }
}
