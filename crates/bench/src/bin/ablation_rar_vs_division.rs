//! Ablation: general single-wire RAR vs. the paper's specialized
//! multi-wire division configuration. The paper's motivation (§II): "most
//! of the RAR techniques only try to incrementally add one wire at a time
//! … efforts that try to add multiple wires/gates have only little
//! success". Here both run on the same dividend/divisor instances, and we
//! count the wires each approach eliminates from the dividend.

use boolsubst_atpg::{rar_optimize, Circuit, GateId, RarOptions};
use boolsubst_core::division::{basic_divide_covers, DivisionOptions};
use boolsubst_cube::{Cover, Cube, Lit, Phase};
use boolsubst_workloads::generator::Rng;

fn planted_pair(rng: &mut Rng, vars: usize) -> (Cover, Cover) {
    let cube = |rng: &mut Rng, lits: usize| {
        let mut c = Cube::universe(vars);
        for _ in 0..lits {
            let phase = if rng.below(100) < 30 {
                Phase::Neg
            } else {
                Phase::Pos
            };
            c.restrict(Lit {
                var: rng.below(vars),
                phase,
            });
        }
        c
    };
    let mut d = Cover::new(vars);
    let want = 2 + rng.below(2);
    while d.len() < want {
        let lits = 1 + rng.below(2);
        let c = cube(rng, lits);
        if !c.is_empty() {
            d.push(c);
        }
        d.remove_contained_cubes();
    }
    let mut f = Cover::new(vars);
    for _ in 0..2 {
        let lits = 1 + rng.below(2);
        let q = cube(rng, lits);
        for k in d.cubes() {
            f.push(k.and(&q));
        }
    }
    f.remove_contained_cubes();
    (f, d)
}

/// Builds the two-node circuit (f and d share literals, both observed) and
/// counts the AND/OR wires in f's structure.
fn build_plain(f: &Cover, d: &Cover) -> (Circuit, usize) {
    let n = f.num_vars();
    let mut c = Circuit::new();
    let mut lits = Vec::new();
    for _ in 0..n {
        let p = c.add_input();
        let ng = c.add_not(p);
        lits.push((p, ng));
    }
    let lit = |lits: &Vec<(GateId, GateId)>, l: Lit| match l.phase {
        Phase::Pos => lits[l.var].0,
        Phase::Neg => lits[l.var].1,
    };
    let mut f_wires = 0usize;
    let f_cubes: Vec<GateId> = f
        .cubes()
        .iter()
        .map(|cube| {
            let ins: Vec<GateId> = cube.lits().map(|l| lit(&lits, l)).collect();
            f_wires += ins.len() + 1; // literals + the cube wire into the OR
            c.add_and(ins)
        })
        .collect();
    let f_or = c.add_or(f_cubes);
    let d_cubes: Vec<GateId> = d
        .cubes()
        .iter()
        .map(|cube| {
            let ins: Vec<GateId> = cube.lits().map(|l| lit(&lits, l)).collect();
            c.add_and(ins)
        })
        .collect();
    let d_or = c.add_or(d_cubes);
    c.add_output(f_or);
    c.add_output(d_or);
    (c, f_wires)
}

fn main() {
    let mut rng = Rng::new(0xAB1E);
    let trials = 60;
    let mut rar_removed = 0usize;
    let mut division_removed = 0usize;
    let mut total_wires = 0usize;
    let opts = DivisionOptions::paper_default();
    for _ in 0..trials {
        let (f, d) = planted_pair(&mut rng, 7);
        if f.is_empty() || d.is_empty() {
            continue;
        }
        let (mut circuit, f_wires) = build_plain(&f, &d);
        total_wires += f_wires;

        // General RAR: one wire at a time, everything checked.
        let stats = rar_optimize(
            &mut circuit,
            &RarOptions {
                max_trials: 400,
                ..RarOptions::default()
            },
        );
        rar_removed += stats.removals.saturating_sub(stats.additions);

        // The paper's specialization: the fixed multi-wire configuration.
        let division = basic_divide_covers(&f, &d, &opts);
        if division.succeeded() {
            assert!(division.verify(&f, &d), "division must stay exact");
            let after = division.quotient.literal_count() + division.quotient.len() + 1;
            division_removed += f_wires.saturating_sub(after);
        }
    }
    println!("Ablation — single-wire RAR vs the division configuration");
    println!("({trials} planted dividend/divisor instances, 7 variables)\n");
    println!("dividend wires total:            {total_wires}");
    println!("net wires removed by RAR:        {rar_removed}");
    println!("net wires removed by division:   {division_removed}");
    println!(
        "\n(the specialized multi-wire addition of Section III wins because the\n\
         added AND gate is known redundant a priori — general RAR must prove\n\
         each addition and only ever adds one wire at a time)"
    );
}
