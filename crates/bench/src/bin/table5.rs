//! Regenerates Table V: the full `script.algebraic`-style flow with every
//! `resub` occurrence replaced by each algorithm under test (SIS algebraic
//! `resub -d`, then our basic / extended / extended-GDC substitution).

use boolsubst_algebraic::{algebraic_resub, network_factored_literals, ResubOptions};
use boolsubst_bench::{print_table, Cell, TableRow};
use boolsubst_core::verify::networks_equivalent;
use boolsubst_core::{Session, SubstOptions};
use boolsubst_network::Network;
use boolsubst_workloads::scripts::script_algebraic_with;
use std::time::Instant;

fn flow(net: &Network, resub: &dyn Fn(&mut Network)) -> (Cell, bool) {
    let mut n = net.clone();
    let start = Instant::now();
    script_algebraic_with(&mut n, |x| resub(x));
    let cpu = start.elapsed().as_secs_f64();
    n.check_invariants();
    let ok = networks_equivalent(net, &n);
    (
        Cell {
            lits: network_factored_literals(&n),
            cpu,
        },
        ok,
    )
}

fn main() {
    let mut rows = Vec::new();
    for net in boolsubst_workloads::full_suite() {
        let initial = network_factored_literals(&net);
        let (resub, ok1) = flow(&net, &|n| {
            algebraic_resub(n, &ResubOptions::default());
        });
        let (basic, ok2) = flow(&net, &|n| {
            Session::new(n, SubstOptions::basic()).run();
        });
        let (ext, ok3) = flow(&net, &|n| {
            Session::new(n, SubstOptions::extended()).run();
        });
        let (ext_gdc, ok4) = flow(&net, &|n| {
            Session::new(n, SubstOptions::extended_gdc()).run();
        });
        rows.push(TableRow {
            name: net.name().to_string(),
            initial,
            resub,
            basic,
            ext,
            ext_gdc,
            verified: ok1 && ok2 && ok3 && ok4,
        });
    }
    print_table(
        "Table V — script.algebraic with each resubstitution method",
        &rows,
    );
}
