//! Ablation: implication-derived vs SAT-windowed don't-care capture.
//!
//! Both extractors aim at the same object — fanin combinations of a
//! target node that no primary-input assignment can produce — but from
//! opposite ends. The implication path (`sdc_space_and_cover`) writes
//! down one level of local consistency (each fanin must equal its own
//! cover over the joint space) and is cheap; the SAT window
//! (`window_sdc_cover`) runs an AllSAT loop against the *whole* network
//! encoding and is complete. Projecting the implication cover into the
//! fanin window (a combination is unreachable only if it has no
//! consistent joint-space extension) makes the two directly comparable:
//! the implication set is always a subset, and the gap counts the
//! don't-cares only a proof engine sees — unreachability created by
//! sharing and reconvergence deeper than one level.

use std::time::Instant;

use boolsubst_core::sdc_space_and_cover;
use boolsubst_network::Network;
use boolsubst_sat::{window_sdc_cover, WindowOptions};
use boolsubst_workloads::generator::{random_network, GeneratorParams};

/// Joint spaces above this are skipped (the projection enumerates 2^n).
const MAX_JOINT_SPACE: usize = 14;
/// Fanin windows above this are skipped for both methods.
const MAX_WINDOW: usize = 8;

#[derive(Default)]
struct Totals {
    nodes: usize,
    impl_minterms: usize,
    sat_minterms: usize,
    sat_strictly_more: usize,
    impl_secs: f64,
    sat_secs: f64,
}

fn measure(net: &Network, totals: &mut Totals) {
    let win_opts = WindowOptions {
        max_fanins: MAX_WINDOW,
        ..WindowOptions::default()
    };
    for id in net.internal_ids() {
        let node = net.node(id);
        if node.cover().is_none() {
            continue;
        }
        let fanins = node.fanins().to_vec();
        let k = fanins.len();
        if k == 0 || k > MAX_WINDOW {
            continue;
        }

        let t0 = Instant::now();
        let Some(sat_dc) = window_sdc_cover(net, id, &win_opts) else {
            continue;
        };
        let sat_secs = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let Some((vars, sdc)) = sdc_space_and_cover(net, id, MAX_JOINT_SPACE) else {
            continue;
        };
        // Universal projection: a fanin combination is implication-
        // unreachable iff every joint-space point extending it violates
        // some local consistency cube.
        let n = vars.len();
        let fanin_pos: Vec<usize> = fanins
            .iter()
            .map(|f| vars.binary_search(f).expect("fanin in joint space"))
            .collect();
        let mut reachable = vec![false; 1usize << k];
        let mut point = vec![false; n];
        for m in 0..1usize << n {
            for (i, p) in point.iter_mut().enumerate() {
                *p = m >> i & 1 == 1;
            }
            if sdc.eval(&point) {
                continue; // locally inconsistent point
            }
            let mut combo = 0usize;
            for (i, &p) in fanin_pos.iter().enumerate() {
                combo |= usize::from(point[p]) << i;
            }
            reachable[combo] = true;
        }
        let impl_minterms = reachable.iter().filter(|&&r| !r).count();
        let impl_secs = t0.elapsed().as_secs_f64();

        // The one-level set must be a subset of the complete SAT set.
        let sat_minterms = sat_dc.len();
        assert!(
            impl_minterms <= sat_minterms,
            "implication found a DC the complete extractor missed on {}",
            node.name()
        );

        totals.nodes += 1;
        totals.impl_minterms += impl_minterms;
        totals.sat_minterms += sat_minterms;
        totals.sat_strictly_more += usize::from(sat_minterms > impl_minterms);
        totals.impl_secs += impl_secs;
        totals.sat_secs += sat_secs;
    }
}

fn main() {
    let params = GeneratorParams {
        inputs: 8,
        nodes: 40,
        max_fanin: 4,
        ..GeneratorParams::default()
    };
    println!("DC capture ablation — implication projection vs SAT window (AllSAT)\n");
    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "workload", "nodes", "impl DCs", "sat DCs", "sat>impl", "impl s", "sat s"
    );
    let mut grand = Totals::default();
    for seed in 1..=8u64 {
        let net = random_network(seed, &params);
        let mut t = Totals::default();
        measure(&net, &mut t);
        println!(
            "{:<10} {:>7} {:>12} {:>12} {:>10} {:>10.3} {:>10.3}",
            format!("rand-{seed}"),
            t.nodes,
            t.impl_minterms,
            t.sat_minterms,
            t.sat_strictly_more,
            t.impl_secs,
            t.sat_secs
        );
        grand.nodes += t.nodes;
        grand.impl_minterms += t.impl_minterms;
        grand.sat_minterms += t.sat_minterms;
        grand.sat_strictly_more += t.sat_strictly_more;
        grand.impl_secs += t.impl_secs;
        grand.sat_secs += t.sat_secs;
    }
    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>10} {:>10.3} {:>10.3}",
        "total",
        grand.nodes,
        grand.impl_minterms,
        grand.sat_minterms,
        grand.sat_strictly_more,
        grand.impl_secs,
        grand.sat_secs
    );
    println!(
        "\n(impl DCs = fanin-window minterms proved unreachable by one-level\n\
         implication consistency; sat DCs = the complete set from the AllSAT\n\
         window — the gap is unreachability from sharing/reconvergence deeper\n\
         than one level, invisible to the implication sweep)"
    );
}
