//! Crossover sweep: where does *extended* division start paying for its
//! vote/clique overhead? The knob is the number of junk cubes padded onto
//! each planted divisor node — at 0 the divisor is usable as-is (basic
//! suffices); every extra cube hides the core deeper, and only divisor
//! decomposition (Section IV) can recover it.
//!
//! The binary also times the incremental [`SubstEngine`] sweep against the
//! legacy per-pair path on a ≥ 200-node generated workload and writes the
//! numbers to `BENCH_sweep.json` so the perf trajectory is tracked across
//! PRs. "Candidates/s" counts every (target, divisor) pair the sweep
//! disposed of per wall-clock second — for the engine that includes pairs
//! the support-overlap index rejected without ever materialising them.
//!
//! [`SubstEngine`]: boolsubst_core::SubstEngine

use std::time::{Duration, Instant};

use boolsubst_algebraic::{algebraic_resub, network_factored_literals, ResubOptions};
use boolsubst_core::subst::boolean_substitute_legacy;
use boolsubst_core::verify::networks_equivalent;
use boolsubst_core::{Discovery, Session, SubstOptions, SubstStats};
use boolsubst_guard::TierPolicy;
use boolsubst_metrics::MetricsHandle;
use boolsubst_network::{write_blif, Network};
use boolsubst_trace::export::{chrome_trace_string, jsonl_string};
use boolsubst_trace::json::{json_array_pretty, JsonObj};
use boolsubst_trace::{GuardTier, Tracer};
use boolsubst_workloads::generator::{
    planted_network, random_network, GeneratorParams, PlantedParams,
};
use boolsubst_workloads::large::{large_network, Family};
use boolsubst_workloads::scripts::script_a;

/// One baseline-vs-subject measurement on a fixed workload and mode. For
/// the `legacy` rows the baseline is the legacy per-pair sweep and the
/// subject is the 1-thread engine; for the `extended_mt` scaling rows the
/// baseline is the 1-thread engine and the subject is the engine at
/// `threads` workers (the `legacy_*` field names are kept for continuity
/// of the BENCH_sweep.json schema).
struct SweepRow {
    mode: &'static str,
    threads: usize,
    /// CPUs the host actually offers — scaling rows are only meaningful
    /// relative to this (a 1-CPU container can never beat 1.0x).
    host_cpus: usize,
    nodes: usize,
    pairs: usize,
    legacy_secs: f64,
    engine_secs: f64,
    legacy_cand_per_s: f64,
    engine_cand_per_s: f64,
    speedup: f64,
    substitutions: usize,
    literal_gain: i64,
    sim_pairs_screened: usize,
    sim_pairs_refuted: usize,
    sim_false_passes: usize,
    sim_refinements: usize,
    sim_patterns: usize,
    /// Per-stage overhead attribution from a metered re-run; only the
    /// multi-threaded `extended_mt` rows carry one.
    util: Option<SweepUtil>,
}

/// Utilization breakdown of one metered multi-threaded run: where the
/// `wall × threads` worker-seconds actually went. `idle_frac` is the
/// remainder (committer enumeration/merge, cursor traffic, scheduling),
/// so the four fractions sum to 1 by construction.
struct SweepUtil {
    wall_secs: f64,
    epochs: u64,
    proof_frac: f64,
    commit_frac: f64,
    wait_frac: f64,
    idle_frac: f64,
    workers: Vec<WorkerUtil>,
}

/// One sweep worker's lifetime totals (worker 0 is the committer's
/// inline drain lane).
struct WorkerUtil {
    worker: u64,
    proof_ns: u64,
    wait_ns: u64,
    idle_ns: u64,
    pairs: u64,
}

/// Runs the sweep once, untimed-for-ranking but metered: a fresh
/// [`MetricsHandle`] is attached and the published `sweep.*` counters are
/// folded into fractions of the run's total worker-seconds.
fn metered_util(net: &Network, opts: &SubstOptions, threads: usize) -> SweepUtil {
    let handle = MetricsHandle::new();
    let mut trial = net.clone();
    let start = Instant::now();
    Session::new(&mut trial, opts.clone())
        .metrics(&handle)
        .run();
    let wall_secs = start.elapsed().as_secs_f64();
    let c = |key: &str| handle.counter_value(key).unwrap_or(0);
    let denom = (wall_secs * threads as f64 * 1e9).max(1.0);
    let proof_frac = c("sweep.proof_ns") as f64 / denom;
    let commit_frac = c("sweep.commit_ns") as f64 / denom;
    let wait_frac = c("sweep.wait_ns") as f64 / denom;
    let idle_frac = (1.0 - proof_frac - commit_frac - wait_frac).max(0.0);
    let workers = (0..threads)
        .map(|w| WorkerUtil {
            worker: u64::try_from(w).unwrap_or(u64::MAX),
            proof_ns: c(&format!("sweep.worker.{w}.proof_ns")),
            wait_ns: c(&format!("sweep.worker.{w}.wait_ns")),
            idle_ns: c(&format!("sweep.worker.{w}.idle_ns")),
            pairs: c(&format!("sweep.worker.{w}.pairs")),
        })
        .collect();
    SweepUtil {
        wall_secs,
        epochs: c("sweep.epochs"),
        proof_frac,
        commit_frac,
        wait_frac,
        idle_frac,
        workers,
    }
}

/// Timing policy: the reported time is the minimum over repeated runs —
/// the standard guard against scheduler and frequency noise. Every
/// measurement takes at least [`MIN_REPS`] samples and keeps sampling
/// until [`MIN_BUDGET_SECS`] of total run time (capped at [`MAX_REPS`]),
/// so a fast subject gets proportionally more chances to catch a quiet
/// window than a slow one. The substitution itself is deterministic, so
/// stats and BLIF are identical across repetitions (asserted).
const MIN_REPS: usize = 3;
const MAX_REPS: usize = 25;
const MIN_BUDGET_SECS: f64 = 0.75;

fn timed(net: &Network, opts: &SubstOptions, legacy: bool) -> (f64, SubstStats, String) {
    let mut best: Option<(f64, SubstStats, String)> = None;
    let mut spent = 0.0f64;
    for rep in 0..MAX_REPS {
        if rep >= MIN_REPS && spent >= MIN_BUDGET_SECS {
            break;
        }
        let mut trial = net.clone();
        let start = Instant::now();
        let stats = if legacy {
            boolean_substitute_legacy(&mut trial, opts)
        } else {
            Session::new(&mut trial, opts.clone()).run()
        };
        let secs = start.elapsed().as_secs_f64();
        spent += secs;
        let blif = write_blif(&trial);
        match &best {
            Some((b, _, prev)) => {
                assert_eq!(prev, &blif, "non-deterministic substitution");
                if secs < *b {
                    best = Some((secs, stats, blif));
                }
            }
            None => best = Some((secs, stats, blif)),
        }
    }
    best.expect("MIN_REPS >= 1")
}

fn measure(net: &Network, mode: &'static str, opts: &SubstOptions) -> SweepRow {
    let (legacy_secs, legacy, legacy_blif) = timed(net, opts, true);
    let (engine_secs, engine, engine_blif) = timed(net, opts, false);
    assert_eq!(
        engine_blif, legacy_blif,
        "{mode}: engine diverged from legacy"
    );
    assert_eq!(
        engine.substitutions, legacy.substitutions,
        "{mode}: substitutions"
    );
    // Pairs the sweep is responsible for: the legacy path feeds every
    // snapshot pair through the filter chain; the engine disposes of the
    // index-rejected remainder in O(1) amortised.
    let legacy_pairs = legacy.candidates_enumerated;
    let engine_pairs = engine.candidates_enumerated + engine.filtered_by_index;
    let legacy_rate = legacy_pairs as f64 / legacy_secs;
    let engine_rate = engine_pairs as f64 / engine_secs;
    SweepRow {
        mode,
        threads: 1,
        host_cpus: std::thread::available_parallelism().map_or(1, usize::from),
        nodes: net.internal_ids().count(),
        pairs: legacy_pairs,
        legacy_secs,
        engine_secs,
        legacy_cand_per_s: legacy_rate,
        engine_cand_per_s: engine_rate,
        speedup: engine_rate / legacy_rate,
        substitutions: engine.substitutions,
        literal_gain: engine.literal_gain,
        sim_pairs_screened: engine.sim_pairs_screened,
        sim_pairs_refuted: engine.sim_pairs_refuted,
        sim_false_passes: engine.sim_false_passes,
        sim_refinements: engine.sim_refinements,
        sim_patterns: engine.sim_patterns,
        util: None,
    }
}

fn json_row(r: &SweepRow) -> String {
    fn u(v: usize) -> u64 {
        u64::try_from(v).unwrap_or(u64::MAX)
    }
    let mut obj = JsonObj::new();
    obj.str("mode", r.mode)
        .str("discovery", Discovery::Overlap.name())
        .u64("threads", u(r.threads))
        .u64("host_cpus", u(r.host_cpus))
        .u64("nodes", u(r.nodes))
        .u64("pairs", u(r.pairs))
        .f64("legacy_secs", r.legacy_secs, 6)
        .f64("engine_secs", r.engine_secs, 6)
        .f64("legacy_candidates_per_s", r.legacy_cand_per_s, 1)
        .f64("engine_candidates_per_s", r.engine_cand_per_s, 1)
        .f64("speedup", r.speedup, 2)
        .u64("substitutions", u(r.substitutions))
        .i64("literal_gain", r.literal_gain)
        .u64("sim_pairs_screened", u(r.sim_pairs_screened))
        .u64("sim_pairs_refuted", u(r.sim_pairs_refuted))
        .u64("sim_false_passes", u(r.sim_false_passes))
        .u64("sim_refinements", u(r.sim_refinements))
        .u64("sim_patterns", u(r.sim_patterns));
    if let Some(ut) = &r.util {
        obj.f64("util_wall_secs", ut.wall_secs, 6)
            .u64("epochs", ut.epochs)
            .f64("proof_frac", ut.proof_frac, 4)
            .f64("commit_frac", ut.commit_frac, 4)
            .f64("wait_frac", ut.wait_frac, 4)
            .f64("idle_frac", ut.idle_frac, 4);
        let workers: Vec<String> = ut
            .workers
            .iter()
            .map(|w| {
                JsonObj::new()
                    .u64("worker", w.worker)
                    .u64("proof_ns", w.proof_ns)
                    .u64("wait_ns", w.wait_ns)
                    .u64("idle_ns", w.idle_ns)
                    .u64("pairs", w.pairs)
                    .finish()
            })
            .collect();
        obj.raw("workers", &format!("[{}]", workers.join(", ")));
    }
    obj.finish()
}

/// Re-runs each mode once with a [`Tracer`] attached and writes the
/// requested exports: one JSONL stream (modes concatenated; each starts
/// with its own `meta` line) and/or one Chrome trace (one "process" per
/// mode). Also prints the per-mode [`boolsubst_trace::TraceReport`]s and
/// the three modes' stats merged via [`SubstStats::merge`].
fn traced_runs(net: &Network, trace_path: Option<&str>, chrome_path: Option<&str>) {
    let modes: [(&str, SubstOptions); 3] = [
        ("basic", SubstOptions::basic()),
        ("ext", SubstOptions::extended()),
        ("ext-gdc", SubstOptions::extended_gdc()),
    ];
    let mut tracers: Vec<Tracer> = Vec::new();
    let mut merged = SubstStats::default();
    for (name, opts) in modes {
        let mut trial = net.clone();
        let mut tracer = Tracer::new(name);
        let stats = Session::new(&mut trial, opts).tracer(&mut tracer).run();
        merged.merge(&stats);
        println!("\n{}", tracer.report());
        tracers.push(tracer);
    }
    println!("\nmerged stats across modes:\n{merged}");
    println!("merged json: {}", merged.to_json());
    if let Some(path) = trace_path {
        let text: String = tracers.iter().map(jsonl_string).collect();
        std::fs::write(path, text).expect("write JSONL trace");
        println!("wrote {path}");
    }
    if let Some(path) = chrome_path {
        let refs: Vec<&Tracer> = tracers.iter().collect();
        std::fs::write(path, chrome_trace_string(&refs)).expect("write Chrome trace");
        println!("wrote {path}");
    }
}

/// One engine run on a large generated instance. Unlike [`SweepRow`]
/// these rows have no legacy baseline — at 20k+ nodes the per-pair
/// legacy path is not worth waiting for — and carry a deadline instead,
/// so the sweep records throughput-at-scale without unbounded wall time.
struct NodeRow {
    mode: &'static str,
    family: &'static str,
    target: usize,
    nodes: usize,
    /// The resolved discovery strategy the run actually used.
    discovery: &'static str,
    gen_secs: f64,
    sweep_secs: f64,
    pairs: usize,
    cand_per_s: f64,
    substitutions: usize,
    literal_gain: i64,
    peak_cover_cubes: usize,
    interrupted: bool,
}

fn json_node_row(r: &NodeRow) -> String {
    fn u(v: usize) -> u64 {
        u64::try_from(v).unwrap_or(u64::MAX)
    }
    JsonObj::new()
        .str("kind", "node_sweep")
        .str("mode", r.mode)
        .str("family", r.family)
        .u64("target_nodes", u(r.target))
        .u64("nodes", u(r.nodes))
        .str("discovery", r.discovery)
        .f64("gen_secs", r.gen_secs, 3)
        .f64("sweep_secs", r.sweep_secs, 3)
        .u64("pairs", u(r.pairs))
        .f64("candidates_per_s", r.cand_per_s, 1)
        .u64("substitutions", u(r.substitutions))
        .i64("literal_gain", r.literal_gain)
        .u64("peak_cover_cubes", u(r.peak_cover_cubes))
        .bool("interrupted", r.interrupted)
        .finish()
}

/// Node-count scaling sweep: the engine on adder-family instances from
/// the legacy-comparable 220 up to 100k gates, one deadline-bounded run
/// per (size, mode). Generation is streaming, so `gen_secs` doubles as
/// a check that the workload side stays O(n).
fn node_sweep(smoke: bool) -> Vec<NodeRow> {
    let targets: &[usize] = if smoke {
        &[2_000]
    } else {
        &[220, 2_000, 20_000, 100_000]
    };
    let modes: &[(&'static str, SubstOptions)] = &if smoke {
        vec![("basic", SubstOptions::basic())]
    } else {
        vec![
            ("basic", SubstOptions::basic()),
            ("extended", SubstOptions::extended()),
            ("extended_gdc", SubstOptions::extended_gdc()),
        ]
    };
    let deadline = Duration::from_secs_f64(if smoke { 5.0 } else { 30.0 });
    println!("\nNode-count sweep — adder family, {deadline:?} deadline per run\n");
    println!(
        "{:<14} {:>8} {:>9} {:>9} {:>10} {:>12} {:>6} {:>9}",
        "mode", "nodes", "gen s", "sweep s", "pairs", "cand/s", "subs", "cut off"
    );
    let mut rows = Vec::new();
    for &target in targets {
        let start = Instant::now();
        let net = large_network(Family::Adder, target, 1);
        let gen_secs = start.elapsed().as_secs_f64();
        let nodes = net.internal_ids().count();
        for (name, opts) in modes {
            let mut trial = net.clone();
            let opts = opts.clone().with_deadline(Instant::now() + deadline);
            let start = Instant::now();
            let stats = Session::new(&mut trial, opts).run();
            let sweep_secs = start.elapsed().as_secs_f64();
            let pairs = stats.candidates_enumerated + stats.filtered_by_index;
            let peak = trial
                .internal_ids()
                .map(|id| trial.node(id).cover().map_or(0, boolsubst_cube::Cover::len))
                .max()
                .unwrap_or(0);
            let row = NodeRow {
                mode: name,
                family: Family::Adder.name(),
                target,
                nodes,
                discovery: stats.discovery.name(),
                gen_secs,
                sweep_secs,
                pairs,
                cand_per_s: pairs as f64 / sweep_secs,
                substitutions: stats.substitutions,
                literal_gain: stats.literal_gain,
                peak_cover_cubes: peak,
                interrupted: stats.interrupted,
            };
            println!(
                "{:<14} {:>8} {:>9.3} {:>9.3} {:>10} {:>12.0} {:>6} {:>9}",
                row.mode,
                row.nodes,
                row.gen_secs,
                row.sweep_secs,
                row.pairs,
                row.cand_per_s,
                row.substitutions,
                if row.interrupted { "yes" } else { "no" }
            );
            rows.push(row);
        }
    }
    rows
}

/// One run of the discovery crossover: the same instance swept in
/// extended checked mode under each divisor-discovery strategy, with the
/// proposal funnel recorded so the BENCH table shows where signature
/// classes win (and that their accepted rewrites are guard-verified).
struct DiscRow {
    family: &'static str,
    target: usize,
    nodes: usize,
    discovery: &'static str,
    deadline_secs: f64,
    gen_secs: f64,
    sweep_secs: f64,
    pairs: usize,
    cand_per_s: f64,
    proposed: usize,
    bucket_hits: usize,
    proofs_run: usize,
    accepted: usize,
    substitutions: usize,
    literal_gain: i64,
    guard_rejections: usize,
    guard_pass_sampled: usize,
    interrupted: bool,
}

fn json_disc_row(r: &DiscRow) -> String {
    fn u(v: usize) -> u64 {
        u64::try_from(v).unwrap_or(u64::MAX)
    }
    JsonObj::new()
        .str("kind", "discovery")
        .str("mode", "extended")
        .str("family", r.family)
        .u64("target_nodes", u(r.target))
        .u64("nodes", u(r.nodes))
        .str("discovery", r.discovery)
        .f64("deadline_secs", r.deadline_secs, 1)
        .f64("gen_secs", r.gen_secs, 3)
        .f64("sweep_secs", r.sweep_secs, 3)
        .u64("pairs", u(r.pairs))
        .f64("candidates_per_s", r.cand_per_s, 1)
        .u64("proposed", u(r.proposed))
        .u64("bucket_hits", u(r.bucket_hits))
        .u64("proofs_run", u(r.proofs_run))
        .u64("accepted", u(r.accepted))
        .u64("substitutions", u(r.substitutions))
        .i64("literal_gain", r.literal_gain)
        .u64("guard_rejections", u(r.guard_rejections))
        .u64("guard_pass_sampled", u(r.guard_pass_sampled))
        .bool("interrupted", r.interrupted)
        .finish()
}

/// Discovery crossover sweep: overlap vs signature-class divisor
/// discovery on adder instances from the legacy-comparable 220 up to
/// 100k gates, extended mode, checked apply (so every accepted rewrite
/// is guard-verified), one deadline-bounded run per (size, strategy).
/// The interesting row pair is the largest size: overlap's quadratic
/// enumeration runs out of deadline while the signature pass finishes.
fn discovery_sweep(smoke: bool) -> Vec<DiscRow> {
    let targets: &[usize] = if smoke {
        &[2_000]
    } else {
        &[220, 10_000, 100_000]
    };
    // 200 s sits between the measured full-sweep times at 100k nodes on
    // the 1-CPU reference container (signature ~150 s, overlap ~282 s —
    // same 50 048 accepts, but overlap pays 247k division proofs where
    // the screen leaves signature 55k), so the largest row pair shows
    // the crossover: signature complete, overlap interrupted.
    let deadline = Duration::from_secs_f64(if smoke { 5.0 } else { 200.0 });
    println!(
        "\nDiscovery crossover — adder family, extended checked, {deadline:?} deadline per run\n"
    );
    println!(
        "{:<10} {:>8} {:>9} {:>10} {:>12} {:>10} {:>8} {:>6} {:>7} {:>7}",
        "discovery",
        "nodes",
        "sweep s",
        "proposed",
        "bucket hit",
        "proofs",
        "accept",
        "subs",
        "g.rej",
        "cut off"
    );
    let mut rows = Vec::new();
    for &target in targets {
        let start = Instant::now();
        let net = large_network(Family::Adder, target, 1);
        let gen_secs = start.elapsed().as_secs_f64();
        let nodes = net.internal_ids().count();
        for discovery in [Discovery::Overlap, Discovery::Signature] {
            let mut trial = net.clone();
            let opts = SubstOptions::extended()
                .with_checked(true)
                .with_discovery(discovery)
                .with_deadline(Instant::now() + deadline);
            let start = Instant::now();
            let stats = Session::new(&mut trial, opts).run();
            let sweep_secs = start.elapsed().as_secs_f64();
            let pairs = stats.candidates_enumerated + stats.filtered_by_index;
            let row = DiscRow {
                family: Family::Adder.name(),
                target,
                nodes,
                discovery: stats.discovery.name(),
                deadline_secs: deadline.as_secs_f64(),
                gen_secs,
                sweep_secs,
                pairs,
                cand_per_s: pairs as f64 / sweep_secs,
                proposed: stats.discovery_proposed,
                bucket_hits: stats.discovery_bucket_hits,
                proofs_run: stats.discovery_proofs_run,
                accepted: stats.discovery_accepted,
                substitutions: stats.substitutions,
                literal_gain: stats.literal_gain,
                guard_rejections: stats.guard_rejections,
                guard_pass_sampled: stats.guard_pass_sampled,
                interrupted: stats.interrupted,
            };
            println!(
                "{:<10} {:>8} {:>9.3} {:>10} {:>12} {:>10} {:>8} {:>6} {:>7} {:>7}",
                row.discovery,
                row.nodes,
                row.sweep_secs,
                row.proposed,
                row.bucket_hits,
                row.proofs_run,
                row.accepted,
                row.substitutions,
                row.guard_rejections,
                if row.interrupted { "yes" } else { "no" }
            );
            rows.push(row);
        }
    }
    rows
}

/// One checked-mode run under a fixed guard tier policy, with a tracer
/// attached so every guard decision's tier and latency is recorded.
struct GuardRow {
    policy: &'static str,
    family: &'static str,
    nodes: usize,
    checks: u64,
    guard_secs: f64,
    avg_check_ms: f64,
    tier_counts: [u64; GuardTier::ALL.len()],
    substitutions: usize,
    interrupted: bool,
}

fn json_guard_row(r: &GuardRow) -> String {
    let mut obj = JsonObj::new();
    obj.str("kind", "guard_latency")
        .str("tier_policy", r.policy)
        .str("family", r.family)
        .u64("nodes", u64::try_from(r.nodes).unwrap_or(u64::MAX))
        .u64("guard_checks", r.checks)
        .f64("guard_secs", r.guard_secs, 3)
        .f64("avg_check_ms", r.avg_check_ms, 3);
    for tier in GuardTier::ALL {
        obj.u64(&format!("guard_{}", tier.name()), r.tier_counts[tier.idx()]);
    }
    obj.u64(
        "substitutions",
        u64::try_from(r.substitutions).unwrap_or(u64::MAX),
    )
    .bool("interrupted", r.interrupted)
    .finish()
}

/// Guard-tier latency sweep: the same multiplier instance run in checked
/// mode under the BDD-only and SAT tier policies, so `BENCH_guard.json`
/// tracks what each exact backend costs per accepted rewrite. The
/// instance is sized so both tiers are actually exercised (it fits the
/// BDD node budget, and the SAT policy bypasses that budget anyway).
fn guard_sweep(smoke: bool) -> Vec<GuardRow> {
    let target = 600;
    let deadline = Duration::from_secs_f64(if smoke { 4.0 } else { 20.0 });
    let net = large_network(Family::Multiplier, target, 7);
    let nodes = net.internal_ids().count();
    println!(
        "\nGuard tier latency — {nodes}-node {}, checked basic, {deadline:?} deadline per run\n",
        Family::Multiplier.name()
    );
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>6} {:>6} {:>6} {:>8} {:>6}",
        "policy", "checks", "guard s", "ms/check", "bdd", "sat", "sampl", "subs", "cutoff"
    );
    let mut rows = Vec::new();
    for (name, tier) in [("bdd", TierPolicy::Bdd), ("sat", TierPolicy::Sat)] {
        let mut trial = net.clone();
        let mut tracer = Tracer::new(name);
        let opts = SubstOptions::basic()
            .with_checked(true)
            .with_guard_tier(tier)
            .with_deadline(Instant::now() + deadline);
        let stats = Session::new(&mut trial, opts).tracer(&mut tracer).run();
        let (checks, guard_ns) = tracer.guard_stats();
        let guard_secs = guard_ns as f64 / 1e9;
        let mut tier_counts = [0u64; GuardTier::ALL.len()];
        for t in GuardTier::ALL {
            tier_counts[t.idx()] = tracer.guard_tier_count(t);
        }
        let row = GuardRow {
            policy: name,
            family: Family::Multiplier.name(),
            nodes,
            checks,
            guard_secs,
            avg_check_ms: if checks == 0 {
                0.0
            } else {
                guard_secs * 1e3 / checks as f64
            },
            tier_counts,
            substitutions: stats.substitutions,
            interrupted: stats.interrupted,
        };
        println!(
            "{:<8} {:>8} {:>10.3} {:>12.3} {:>6} {:>6} {:>6} {:>8} {:>6}",
            row.policy,
            row.checks,
            row.guard_secs,
            row.avg_check_ms,
            row.tier_counts[GuardTier::Bdd.idx()],
            row.tier_counts[GuardTier::Sat.idx()],
            row.tier_counts[GuardTier::Sampled.idx()],
            row.substitutions,
            if row.interrupted { "yes" } else { "no" }
        );
        rows.push(row);
    }
    rows
}

fn engine_vs_legacy(smoke: bool) -> (Network, Vec<SweepRow>) {
    let params = GeneratorParams {
        inputs: 16,
        nodes: if smoke { 60 } else { 220 },
        ..GeneratorParams::default()
    };
    let net = random_network(9001, &params);
    println!(
        "\nEngine vs legacy sweep — {} internal nodes\n",
        net.internal_ids().count()
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>14} {:>14} {:>8}",
        "mode", "pairs", "legacy s", "engine s", "legacy c/s", "engine c/s", "speedup"
    );
    let modes: [(&'static str, SubstOptions); 3] = [
        ("basic", SubstOptions::basic()),
        ("extended", SubstOptions::extended()),
        ("extended_gdc", SubstOptions::extended_gdc()),
    ];
    let mut rows: Vec<SweepRow> = modes
        .iter()
        .map(|(name, opts)| measure(&net, name, opts))
        .collect();
    for r in &rows {
        println!(
            "{:<14} {:>10} {:>12.3} {:>12.3} {:>14.0} {:>14.0} {:>7.2}x",
            r.mode,
            r.pairs,
            r.legacy_secs,
            r.engine_secs,
            r.legacy_cand_per_s,
            r.engine_cand_per_s,
            r.speedup
        );
    }
    rows.extend(parallel_scaling(&net));
    (net, rows)
}

/// Scaling rows for the speculative parallel sweep: the extended mode at
/// 1/2/4/8 worker threads against the 1-thread engine baseline. Every
/// width must produce a bit-identical network (asserted) — the parallel
/// sweep only changes wall-clock, never the rewrites.
fn parallel_scaling(net: &Network) -> Vec<SweepRow> {
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "\nParallel speculative sweep — extended mode, epoch commits ({host_cpus} host CPU(s))\n"
    );
    println!(
        "{:<14} {:>8} {:>10} {:>12} {:>14} {:>8}",
        "mode", "threads", "pairs", "secs", "cand/s", "speedup"
    );
    let (base_secs, base, base_blif) = timed(net, &SubstOptions::extended(), false);
    let base_pairs = base.candidates_enumerated + base.filtered_by_index;
    let base_rate = base_pairs as f64 / base_secs;
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let opts = SubstOptions::extended().with_threads(threads);
        let (secs, stats, blif) = if threads == 1 {
            (base_secs, base, base_blif.clone())
        } else {
            timed(net, &opts, false)
        };
        assert_eq!(
            blif, base_blif,
            "threads={threads}: parallel sweep diverged from sequential"
        );
        assert_eq!(
            stats.substitutions, base.substitutions,
            "threads={threads}: substitutions"
        );
        assert_eq!(
            stats.literal_gain, base.literal_gain,
            "threads={threads}: literal gain"
        );
        let pairs = stats.candidates_enumerated + stats.filtered_by_index;
        let rate = pairs as f64 / secs;
        // Attribution re-run: meter where the worker-seconds go. Kept
        // separate from the timed run so the ranking numbers stay free
        // of even the (tiny) metered overhead.
        let util = (threads > 1).then(|| metered_util(net, &opts, threads));
        let row = SweepRow {
            mode: "extended_mt",
            threads,
            host_cpus,
            nodes: net.internal_ids().count(),
            pairs: stats.candidates_enumerated,
            legacy_secs: base_secs,
            engine_secs: secs,
            legacy_cand_per_s: base_rate,
            engine_cand_per_s: rate,
            speedup: rate / base_rate,
            substitutions: stats.substitutions,
            literal_gain: stats.literal_gain,
            sim_pairs_screened: stats.sim_pairs_screened,
            sim_pairs_refuted: stats.sim_pairs_refuted,
            sim_false_passes: stats.sim_false_passes,
            sim_refinements: stats.sim_refinements,
            sim_patterns: stats.sim_patterns,
            util,
        };
        println!(
            "{:<14} {:>8} {:>10} {:>12.3} {:>14.0} {:>7.2}x",
            row.mode, row.threads, row.pairs, row.engine_secs, row.engine_cand_per_s, row.speedup
        );
        if let Some(ut) = &row.util {
            println!(
                "{:<14} epochs {:>5}  proof {:>5.1}%  commit {:>5.1}%  wait {:>5.1}%  idle {:>5.1}%",
                "  utilization",
                ut.epochs,
                100.0 * ut.proof_frac,
                100.0 * ut.commit_frac,
                100.0 * ut.wait_frac,
                100.0 * ut.idle_frac
            );
        }
        rows.push(row);
    }
    rows
}

fn main() {
    // --smoke: a CI-sized run — one padding level, one seed, and a small
    // engine-vs-legacy workload — exercising the full measurement and
    // BENCH_sweep.json plumbing in seconds.
    // --trace <out.jsonl> / --chrome-trace <out.json>: after the timing
    // comparison, re-run each mode with a tracer attached and export the
    // recorded spans (JSONL events / chrome://tracing format).
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a path"))
                .as_str()
        })
    };
    let trace_path = flag_value("--trace");
    let chrome_path = flag_value("--chrome-trace");
    let (paddings, seeds): (Vec<usize>, Vec<u64>) = if smoke {
        (vec![1], vec![301])
    } else {
        ((0..=3).collect(), vec![301, 302, 303, 304, 305])
    };
    println!("Crossover sweep — divisor padding vs method (total factored literals)\n");
    println!(
        "{:<8} {:>8} | {:>7} | {:>7} | {:>7} | {:>9}",
        "padding", "initial", "resub", "basic", "ext.", "ext-basic"
    );
    for &extra in &paddings {
        let mut initial = 0usize;
        let mut cells = [0usize; 3];
        for &seed in &seeds {
            let mut net = planted_network(
                seed,
                &PlantedParams {
                    targets: 8,
                    divisor_extra_cubes: extra,
                    ..PlantedParams::default()
                },
            );
            script_a(&mut net);
            initial += network_factored_literals(&net);
            let runs: [&dyn Fn(&mut boolsubst_network::Network); 3] = [
                &|n| {
                    algebraic_resub(n, &ResubOptions::default());
                },
                &|n| {
                    Session::new(n, SubstOptions::basic()).run();
                },
                &|n| {
                    Session::new(n, SubstOptions::extended()).run();
                },
            ];
            for (i, run) in runs.iter().enumerate() {
                let mut trial = net.clone();
                run(&mut trial);
                assert!(
                    networks_equivalent(&net, &trial),
                    "method {i} broke seed {seed} at padding {extra}"
                );
                cells[i] += network_factored_literals(&trial);
            }
        }
        let gap = cells[1] as i64 - cells[2] as i64;
        println!(
            "{:<8} {:>8} | {:>7} | {:>7} | {:>7} | {:>9}",
            extra, initial, cells[0], cells[1], cells[2], gap
        );
    }
    println!(
        "\n(ext-basic = literals extended saves beyond basic; it should grow\n\
         with padding — at 0 the two coincide, past the crossover only the\n\
         decomposing divider can reach the buried cores)"
    );
    let (net, rows) = engine_vs_legacy(smoke);
    let node_rows = node_sweep(smoke);
    let disc_rows = discovery_sweep(smoke);
    let json = json_array_pretty(
        rows.iter()
            .map(json_row)
            .chain(node_rows.iter().map(json_node_row))
            .chain(disc_rows.iter().map(json_disc_row)),
    );
    std::fs::write("BENCH_sweep.json", json).expect("write BENCH_sweep.json");
    println!("\nwrote BENCH_sweep.json");
    let guard_rows = guard_sweep(smoke);
    let guard_json = json_array_pretty(guard_rows.iter().map(json_guard_row));
    std::fs::write("BENCH_guard.json", guard_json).expect("write BENCH_guard.json");
    println!("\nwrote BENCH_guard.json");
    if trace_path.is_some() || chrome_path.is_some() {
        traced_runs(&net, trace_path, chrome_path);
    }
}
