//! Crossover sweep: where does *extended* division start paying for its
//! vote/clique overhead? The knob is the number of junk cubes padded onto
//! each planted divisor node — at 0 the divisor is usable as-is (basic
//! suffices); every extra cube hides the core deeper, and only divisor
//! decomposition (Section IV) can recover it.
//!
//! The binary also times the incremental [`SubstEngine`] sweep against the
//! legacy per-pair path on a ≥ 200-node generated workload and writes the
//! numbers to `BENCH_sweep.json` so the perf trajectory is tracked across
//! PRs. "Candidates/s" counts every (target, divisor) pair the sweep
//! disposed of per wall-clock second — for the engine that includes pairs
//! the support-overlap index rejected without ever materialising them.
//!
//! [`SubstEngine`]: boolsubst_core::SubstEngine

use std::time::Instant;

use boolsubst_algebraic::{algebraic_resub, network_factored_literals, ResubOptions};
use boolsubst_core::subst::{
    boolean_substitute, boolean_substitute_legacy, SubstOptions, SubstStats,
};
use boolsubst_core::verify::networks_equivalent;
use boolsubst_network::{write_blif, Network};
use boolsubst_workloads::generator::{
    planted_network, random_network, GeneratorParams, PlantedParams,
};
use boolsubst_workloads::scripts::script_a;

/// One legacy-vs-engine measurement on a fixed workload and mode.
struct SweepRow {
    mode: &'static str,
    nodes: usize,
    pairs: usize,
    legacy_secs: f64,
    engine_secs: f64,
    legacy_cand_per_s: f64,
    engine_cand_per_s: f64,
    speedup: f64,
    substitutions: usize,
    literal_gain: i64,
    sim_pairs_screened: usize,
    sim_pairs_refuted: usize,
    sim_false_passes: usize,
    sim_refinements: usize,
    sim_patterns: usize,
}

/// Timing policy: the reported time is the minimum over repeated runs —
/// the standard guard against scheduler and frequency noise. Every
/// measurement takes at least [`MIN_REPS`] samples and keeps sampling
/// until [`MIN_BUDGET_SECS`] of total run time (capped at [`MAX_REPS`]),
/// so a fast subject gets proportionally more chances to catch a quiet
/// window than a slow one. The substitution itself is deterministic, so
/// stats and BLIF are identical across repetitions (asserted).
const MIN_REPS: usize = 3;
const MAX_REPS: usize = 25;
const MIN_BUDGET_SECS: f64 = 0.75;

fn timed(net: &Network, opts: &SubstOptions, legacy: bool) -> (f64, SubstStats, String) {
    let mut best: Option<(f64, SubstStats, String)> = None;
    let mut spent = 0.0f64;
    for rep in 0..MAX_REPS {
        if rep >= MIN_REPS && spent >= MIN_BUDGET_SECS {
            break;
        }
        let mut trial = net.clone();
        let start = Instant::now();
        let stats = if legacy {
            boolean_substitute_legacy(&mut trial, opts)
        } else {
            boolean_substitute(&mut trial, opts)
        };
        let secs = start.elapsed().as_secs_f64();
        spent += secs;
        let blif = write_blif(&trial);
        match &best {
            Some((b, _, prev)) => {
                assert_eq!(prev, &blif, "non-deterministic substitution");
                if secs < *b {
                    best = Some((secs, stats, blif));
                }
            }
            None => best = Some((secs, stats, blif)),
        }
    }
    best.expect("MIN_REPS >= 1")
}

fn measure(net: &Network, mode: &'static str, opts: &SubstOptions) -> SweepRow {
    let (legacy_secs, legacy, legacy_blif) = timed(net, opts, true);
    let (engine_secs, engine, engine_blif) = timed(net, opts, false);
    assert_eq!(
        engine_blif, legacy_blif,
        "{mode}: engine diverged from legacy"
    );
    assert_eq!(
        engine.substitutions, legacy.substitutions,
        "{mode}: substitutions"
    );
    // Pairs the sweep is responsible for: the legacy path feeds every
    // snapshot pair through the filter chain; the engine disposes of the
    // index-rejected remainder in O(1) amortised.
    let legacy_pairs = legacy.candidates_enumerated;
    let engine_pairs = engine.candidates_enumerated + engine.filtered_by_index;
    let legacy_rate = legacy_pairs as f64 / legacy_secs;
    let engine_rate = engine_pairs as f64 / engine_secs;
    SweepRow {
        mode,
        nodes: net.internal_ids().count(),
        pairs: legacy_pairs,
        legacy_secs,
        engine_secs,
        legacy_cand_per_s: legacy_rate,
        engine_cand_per_s: engine_rate,
        speedup: engine_rate / legacy_rate,
        substitutions: engine.substitutions,
        literal_gain: engine.literal_gain,
        sim_pairs_screened: engine.sim_pairs_screened,
        sim_pairs_refuted: engine.sim_pairs_refuted,
        sim_false_passes: engine.sim_false_passes,
        sim_refinements: engine.sim_refinements,
        sim_patterns: engine.sim_patterns,
    }
}

fn json_row(r: &SweepRow) -> String {
    format!(
        "  {{\"mode\": \"{}\", \"nodes\": {}, \"pairs\": {}, \
         \"legacy_secs\": {:.6}, \"engine_secs\": {:.6}, \
         \"legacy_candidates_per_s\": {:.1}, \"engine_candidates_per_s\": {:.1}, \
         \"speedup\": {:.2}, \"substitutions\": {}, \"literal_gain\": {}, \
         \"sim_pairs_screened\": {}, \"sim_pairs_refuted\": {}, \
         \"sim_false_passes\": {}, \"sim_refinements\": {}, \
         \"sim_patterns\": {}}}",
        r.mode,
        r.nodes,
        r.pairs,
        r.legacy_secs,
        r.engine_secs,
        r.legacy_cand_per_s,
        r.engine_cand_per_s,
        r.speedup,
        r.substitutions,
        r.literal_gain,
        r.sim_pairs_screened,
        r.sim_pairs_refuted,
        r.sim_false_passes,
        r.sim_refinements,
        r.sim_patterns
    )
}

fn engine_vs_legacy(smoke: bool) {
    let params = GeneratorParams {
        inputs: 16,
        nodes: if smoke { 60 } else { 220 },
        ..GeneratorParams::default()
    };
    let net = random_network(9001, &params);
    println!(
        "\nEngine vs legacy sweep — {} internal nodes\n",
        net.internal_ids().count()
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>14} {:>14} {:>8}",
        "mode", "pairs", "legacy s", "engine s", "legacy c/s", "engine c/s", "speedup"
    );
    let modes: [(&'static str, SubstOptions); 3] = [
        ("basic", SubstOptions::basic()),
        ("extended", SubstOptions::extended()),
        ("extended_gdc", SubstOptions::extended_gdc()),
    ];
    let rows: Vec<SweepRow> = modes
        .iter()
        .map(|(name, opts)| measure(&net, name, opts))
        .collect();
    for r in &rows {
        println!(
            "{:<14} {:>10} {:>12.3} {:>12.3} {:>14.0} {:>14.0} {:>7.2}x",
            r.mode,
            r.pairs,
            r.legacy_secs,
            r.engine_secs,
            r.legacy_cand_per_s,
            r.engine_cand_per_s,
            r.speedup
        );
    }
    let body: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!("[\n{}\n]\n", body.join(",\n"));
    std::fs::write("BENCH_sweep.json", json).expect("write BENCH_sweep.json");
    println!("\nwrote BENCH_sweep.json");
}

fn main() {
    // --smoke: a CI-sized run — one padding level, one seed, and a small
    // engine-vs-legacy workload — exercising the full measurement and
    // BENCH_sweep.json plumbing in seconds.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (paddings, seeds): (Vec<usize>, Vec<u64>) = if smoke {
        (vec![1], vec![301])
    } else {
        ((0..=3).collect(), vec![301, 302, 303, 304, 305])
    };
    println!("Crossover sweep — divisor padding vs method (total factored literals)\n");
    println!(
        "{:<8} {:>8} | {:>7} | {:>7} | {:>7} | {:>9}",
        "padding", "initial", "resub", "basic", "ext.", "ext-basic"
    );
    for &extra in &paddings {
        let mut initial = 0usize;
        let mut cells = [0usize; 3];
        for &seed in &seeds {
            let mut net = planted_network(
                seed,
                &PlantedParams {
                    targets: 8,
                    divisor_extra_cubes: extra,
                    ..PlantedParams::default()
                },
            );
            script_a(&mut net);
            initial += network_factored_literals(&net);
            let runs: [&dyn Fn(&mut boolsubst_network::Network); 3] = [
                &|n| {
                    algebraic_resub(n, &ResubOptions::default());
                },
                &|n| {
                    boolean_substitute(n, &SubstOptions::basic());
                },
                &|n| {
                    boolean_substitute(n, &SubstOptions::extended());
                },
            ];
            for (i, run) in runs.iter().enumerate() {
                let mut trial = net.clone();
                run(&mut trial);
                assert!(
                    networks_equivalent(&net, &trial),
                    "method {i} broke seed {seed} at padding {extra}"
                );
                cells[i] += network_factored_literals(&trial);
            }
        }
        let gap = cells[1] as i64 - cells[2] as i64;
        println!(
            "{:<8} {:>8} | {:>7} | {:>7} | {:>7} | {:>9}",
            extra, initial, cells[0], cells[1], cells[2], gap
        );
    }
    println!(
        "\n(ext-basic = literals extended saves beyond basic; it should grow\n\
         with padding — at 0 the two coincide, past the crossover only the\n\
         decomposing divider can reach the buried cores)"
    );
    engine_vs_legacy(smoke);
}
