//! Crossover sweep: where does *extended* division start paying for its
//! vote/clique overhead? The knob is the number of junk cubes padded onto
//! each planted divisor node — at 0 the divisor is usable as-is (basic
//! suffices); every extra cube hides the core deeper, and only divisor
//! decomposition (Section IV) can recover it.

use boolsubst_algebraic::{algebraic_resub, network_factored_literals, ResubOptions};
use boolsubst_core::subst::{boolean_substitute, SubstOptions};
use boolsubst_core::verify::networks_equivalent;
use boolsubst_workloads::generator::{planted_network, PlantedParams};
use boolsubst_workloads::scripts::script_a;

fn main() {
    println!("Crossover sweep — divisor padding vs method (total factored literals)\n");
    println!(
        "{:<8} {:>8} | {:>7} | {:>7} | {:>7} | {:>9}",
        "padding", "initial", "resub", "basic", "ext.", "ext-basic"
    );
    for extra in 0..=3usize {
        let mut initial = 0usize;
        let mut cells = [0usize; 3];
        for seed in [301u64, 302, 303, 304, 305] {
            let mut net = planted_network(
                seed,
                &PlantedParams {
                    targets: 8,
                    divisor_extra_cubes: extra,
                    ..PlantedParams::default()
                },
            );
            script_a(&mut net);
            initial += network_factored_literals(&net);
            let runs: [&dyn Fn(&mut boolsubst_network::Network); 3] = [
                &|n| {
                    algebraic_resub(n, &ResubOptions::default());
                },
                &|n| {
                    boolean_substitute(n, &SubstOptions::basic());
                },
                &|n| {
                    boolean_substitute(n, &SubstOptions::extended());
                },
            ];
            for (i, run) in runs.iter().enumerate() {
                let mut trial = net.clone();
                run(&mut trial);
                assert!(
                    networks_equivalent(&net, &trial),
                    "method {i} broke seed {seed} at padding {extra}"
                );
                cells[i] += network_factored_literals(&trial);
            }
        }
        let gap = cells[1] as i64 - cells[2] as i64;
        println!(
            "{:<8} {:>8} | {:>7} | {:>7} | {:>7} | {:>9}",
            extra, initial, cells[0], cells[1], cells[2], gap
        );
    }
    println!(
        "\n(ext-basic = literals extended saves beyond basic; it should grow\n\
         with padding — at 0 the two coincide, past the crossover only the\n\
         decomposing divider can reach the buried cores)"
    );
}
