//! Regenerates Fig. 4: the candidate-intersection graph — one vertex per
//! (SOS-valid) voting wire, an edge wherever two wires' candidate core
//! divisors intersect, and the maximal cliques whose common intersection
//! yields the core divisor.

use boolsubst_core::division::DivisionOptions;
use boolsubst_core::extended::{compute_vote_table, enumerate_cliques};
use boolsubst_cube::display::var_name;
use boolsubst_cube::{parse_sop, Phase};

fn main() {
    println!("Fig. 4 — candidate-intersection graph and maximal cliques\n");
    let f = parse_sop(5, "ab + ac + bc'").expect("f parses");
    let d = parse_sop(5, "ab + c + de").expect("d parses");
    println!("dividend f = {f}");
    println!("divisor  d = {d}\n");

    let table = compute_vote_table(&f, &d, &DivisionOptions::paper_default());
    let rows = table.valid_rows();

    let label = |i: usize| {
        let row = rows[i];
        format!(
            "w{i}:{}{}@{}",
            var_name(row.wire.lit.var),
            if row.wire.lit.phase == Phase::Neg {
                "'"
            } else {
                ""
            },
            f.cubes()[row.wire.cube_index]
        )
    };

    println!("vertices:");
    for (i, row) in rows.iter().enumerate() {
        let cands: Vec<String> = row
            .candidates
            .iter()
            .map(|k| format!("k{}", k + 1))
            .collect();
        println!("  {} with candidate {{{}}}", label(i), cands.join(", "));
    }

    println!("\nedges (non-empty pairwise intersection):");
    for i in 0..rows.len() {
        for j in i + 1..rows.len() {
            let inter: Vec<String> = rows[i]
                .candidates
                .iter()
                .filter(|k| rows[j].candidates.contains(k))
                .map(|k| format!("k{}", k + 1))
                .collect();
            if !inter.is_empty() {
                println!(
                    "  {} -- {}  ∩ = {{{}}}",
                    label(i),
                    label(j),
                    inter.join(", ")
                );
            }
        }
    }

    println!("\nmaximal cliques (common intersection validated):");
    let mut cliques = enumerate_cliques(&table, 128);
    cliques.sort_by_key(|c| std::cmp::Reverse(c.members.len()));
    for c in &cliques {
        let members: Vec<String> = c.members.iter().map(|&i| label(i)).collect();
        let core: Vec<String> = c
            .core_cube_indices
            .iter()
            .map(|k| format!("k{}", k + 1))
            .collect();
        println!(
            "  clique {{{}}} -> core divisor {{{}}} (expects {} removals)",
            members.join(", "),
            core.join(", "),
            c.members.len()
        );
    }
}
