//! Regenerates Fig. 2: the basic-division walkthrough — remainder split,
//! the a-priori-redundant bold AND (Lemma 1), and redundancy removal by
//! implication conflict, on the paper's running example
//! f = ab + ac + bc', d = ab + c.

use boolsubst_core::division::{basic_divide_covers, split_remainder, DivisionOptions};
use boolsubst_core::sos::{is_sos_of, lemma1_holds};
use boolsubst_cube::parse_sop;

fn main() {
    println!("Fig. 2 — basic Boolean division walkthrough\n");
    let f = parse_sop(3, "ab + ac + bc'").expect("f parses");
    let d = parse_sop(3, "ab + c").expect("d parses");
    println!("dividend  f = {f}");
    println!("divisor   d = {d}\n");

    // (a)-(b): split out the remainder.
    let (kept, remainder) = split_remainder(&f, &d);
    println!("step 1 — remainder split (cubes not contained by any divisor cube):");
    println!("  kept f1 = {kept}");
    println!("  remainder r = {remainder}\n");

    // (c): the bold AND is redundant a priori.
    println!("step 2 — Lemma 1:");
    println!("  d is an SOS of f1: {}", is_sos_of(&d, &kept));
    println!("  therefore f1·d == f1: {}\n", lemma1_holds(&d, &kept));

    // (d)-(e): redundancy removal inside the region.
    let result = basic_divide_covers(&f, &d, &DivisionOptions::paper_default());
    println!("step 3 — redundancy removal in the f1 region:");
    println!("  wires removed: {}", result.wires_removed);
    println!("  fault checks:  {}", result.checks);
    println!("  quotient  q = {}", result.quotient);
    println!("  remainder r = {}", result.remainder);
    println!(
        "  f = d·({}) + {}   [verified: {}]",
        result.quotient,
        result.remainder,
        result.verify(&f, &d)
    );
    println!(
        "\nliterals: f originally {} (SOP); divided form costs {} \
         (the paper reaches 4: f = (a + b)d)",
        f.literal_count(),
        result.sop_cost()
    );
}
