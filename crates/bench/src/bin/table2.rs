//! Regenerates Table II: Script A (`eliminate 0; simplify`) starting
//! points, comparing SIS-style `resub -d` with the paper's three Boolean
//! configurations.

use boolsubst_bench::{print_table, run_table};
use boolsubst_workloads::scripts::script_a;

fn main() {
    let rows = run_table(&script_a);
    print_table("Table II — Script A (eliminate 0; simplify)", &rows);
}
