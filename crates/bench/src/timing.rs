//! Minimal self-calibrating timing harness for the `harness = false`
//! bench targets, so `cargo bench` works with no registry access. Each
//! measurement warms the closure up, picks an iteration count that fills
//! roughly [`Harness::TARGET_BATCH`], runs a few batches, and reports the
//! best per-iteration time (least noisy on a shared machine).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Entry point of one bench binary: parses CLI args (a bare argument is a
/// substring filter on `group/id`; flags such as `--bench` that cargo
/// passes through are ignored).
#[derive(Debug, Clone, Default)]
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// Per-batch time budget the calibration aims for.
    pub const TARGET_BATCH: Duration = Duration::from_millis(60);

    /// Number of measured batches per benchmark.
    pub const BATCHES: usize = 3;

    /// Builds a harness from the process arguments.
    #[must_use]
    pub fn from_args() -> Harness {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Harness { filter }
    }

    /// Starts a named benchmark group.
    #[must_use]
    pub fn group(&self, name: &str) -> Group {
        println!("\n{name}");
        Group {
            name: name.to_string(),
            filter: self.filter.clone(),
        }
    }
}

/// A group of related measurements, printed under one heading.
#[derive(Debug)]
pub struct Group {
    name: String,
    filter: Option<String>,
}

impl Group {
    /// Measures `f`, reporting the best per-iteration time over
    /// [`Harness::BATCHES`] batches.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        let full = format!("{}/{id}", self.name);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up and calibration: time a single run, derive the batch size.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Harness::TARGET_BATCH.as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as usize;
        let mut best = Duration::MAX;
        for _ in 0..Harness::BATCHES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per_iter = start.elapsed() / iters as u32;
            best = best.min(per_iter);
        }
        println!(
            "  {full:<44} {:>12} /iter  ({iters} iters/batch)",
            fmt_duration(best)
        );
    }
}

/// Human-readable duration with ns/µs/ms/s scaling.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.00 s");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut group = Group {
            name: "g".into(),
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        group.bench("x", || ran = true);
        assert!(!ran, "filtered bench must not run");
    }
}
