//! AIGER writers: ASCII (`.aag`) and binary (`.aig`).
//!
//! Both emit the canonical dense layout [`Aig`] maintains (inputs
//! `1..=I`, ANDs following in topological order), so the output of the
//! writers always re-parses, and write∘parse is idempotent.

use crate::graph::Aig;
use std::fmt::Write as _;

/// AIGER symbol names are "everything to the end of the line", so a name
/// containing a newline (or other control whitespace) would corrupt the
/// symbol table. Writers map such characters to `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

fn symbol_table(aig: &Aig) -> String {
    let mut s = String::new();
    for i in 0..aig.num_inputs() {
        if let Some(name) = aig.input_name(i) {
            let _ = writeln!(s, "i{i} {}", sanitize(name));
        }
    }
    for (o, (name, _)) in aig.outputs().iter().enumerate() {
        if let Some(name) = name {
            let _ = writeln!(s, "o{o} {}", sanitize(name));
        }
    }
    s
}

/// Serializes the graph as ASCII AIGER (`.aag`) text, including the
/// symbol table for named inputs and outputs.
#[must_use]
pub fn write_aiger_ascii(aig: &Aig) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "aag {} {} 0 {} {}",
        aig.max_var(),
        aig.num_inputs(),
        aig.num_outputs(),
        aig.num_ands()
    );
    for i in 0..aig.num_inputs() {
        let _ = writeln!(s, "{}", aig.input_lit(i));
    }
    for (_, lit) in aig.outputs() {
        let _ = writeln!(s, "{lit}");
    }
    for (var, [f0, f1]) in aig.ands() {
        // Canonical fanin order: larger literal first (matches the
        // binary format's requirement, harmless in ASCII).
        let (hi, lo) = if f0.raw() >= f1.raw() {
            (f0, f1)
        } else {
            (f1, f0)
        };
        let _ = writeln!(s, "{} {hi} {lo}", var * 2);
    }
    s.push_str(&symbol_table(aig));
    s
}

fn push_varint(out: &mut Vec<u8>, mut value: u32) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Serializes the graph as binary AIGER (`.aig`) bytes: the header and
/// output literals in ASCII, the AND section as the format's
/// delta-encoded varint stream, then the symbol table.
#[must_use]
pub fn write_aiger_binary(aig: &Aig) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(
        format!(
            "aig {} {} 0 {} {}\n",
            aig.max_var(),
            aig.num_inputs(),
            aig.num_outputs(),
            aig.num_ands()
        )
        .as_bytes(),
    );
    for (_, lit) in aig.outputs() {
        out.extend_from_slice(format!("{lit}\n").as_bytes());
    }
    for (var, [f0, f1]) in aig.ands() {
        let lhs = var * 2;
        let (hi, lo) = if f0.raw() >= f1.raw() {
            (f0, f1)
        } else {
            (f1, f0)
        };
        // The dense layout guarantees hi < lhs, so both deltas are
        // non-negative: delta0 = lhs - rhs0, delta1 = rhs0 - rhs1.
        push_varint(&mut out, lhs - hi.raw());
        push_varint(&mut out, hi.raw() - lo.raw());
    }
    out.extend_from_slice(symbol_table(aig).as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AigLit;
    use crate::reader::{parse_aiger, parse_aiger_ascii, parse_aiger_binary};

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input_named("a");
        let b = aig.add_input_named("b");
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let f = aig.or(ab, c);
        aig.add_output_named("f", f);
        aig.add_output(None, !ab);
        aig
    }

    fn outputs_agree(x: &Aig, y: &Aig) {
        assert_eq!(x.num_inputs(), y.num_inputs());
        for m in 0u32..(1 << x.num_inputs()) {
            let ins: Vec<bool> = (0..x.num_inputs()).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(x.eval(&ins), y.eval(&ins), "diverged on {ins:?}");
        }
    }

    #[test]
    fn ascii_roundtrip() {
        let aig = sample();
        let text = write_aiger_ascii(&aig);
        let back = parse_aiger_ascii(&text).expect("reparse");
        back.check_invariants();
        outputs_agree(&aig, &back);
        assert_eq!(back.input_name(0), Some("a"));
        assert_eq!(back.outputs()[0].0.as_deref(), Some("f"));
        // Idempotent: writing the reparse reproduces the text exactly.
        assert_eq!(write_aiger_ascii(&back), text);
    }

    #[test]
    fn binary_roundtrip() {
        let aig = sample();
        let bytes = write_aiger_binary(&aig);
        let back = parse_aiger_binary(&bytes).expect("reparse");
        back.check_invariants();
        outputs_agree(&aig, &back);
        assert_eq!(write_aiger_binary(&back), bytes);
    }

    #[test]
    fn auto_detect_dispatches_on_magic() {
        let aig = sample();
        let ascii = parse_aiger(write_aiger_ascii(&aig).as_bytes()).expect("ascii");
        let binary = parse_aiger(&write_aiger_binary(&aig)).expect("binary");
        outputs_agree(&ascii, &binary);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u32, 1, 127, 128, 16383, 16384, u32::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            // Decode by hand.
            let mut value: u64 = 0;
            let mut shift = 0;
            for &b in &buf {
                value |= u64::from(b & 0x7F) << shift;
                shift += 7;
            }
            assert_eq!(value, u64::from(v));
        }
    }

    #[test]
    fn whitespace_in_symbols_is_sanitized() {
        let mut aig = Aig::new();
        let a = aig.add_input_named("a b\nc");
        aig.add_output_named("out", a);
        let text = write_aiger_ascii(&aig);
        let back = parse_aiger_ascii(&text).expect("reparse");
        assert_eq!(back.input_name(0), Some("a_b_c"));
    }

    #[test]
    fn constant_outputs_roundtrip() {
        let mut aig = Aig::new();
        aig.add_input();
        aig.add_output(None, AigLit::TRUE);
        aig.add_output(None, AigLit::FALSE);
        for text in [
            write_aiger_ascii(&aig).into_bytes(),
            write_aiger_binary(&aig),
        ] {
            let back = parse_aiger(&text).expect("reparse");
            assert_eq!(back.eval(&[false]), vec![true, false]);
        }
    }
}
