#![warn(missing_docs)]
//! # boolsubst-aig — And-Inverter Graphs and AIGER I/O
//!
//! The repository's format-agnostic front-end representation for large
//! circuits: a compact, structurally-hashed And-Inverter Graph
//! ([`Aig`]) with complemented edges ([`AigLit`]), restricted to the
//! latch-free combinational subset, plus hardened readers and writers
//! for both AIGER formats — ASCII `.aag` and the delta-encoded binary
//! `.aig` used to interchange ISCAS/EPFL-scale netlists.
//!
//! Every malformed-input path in the readers returns a typed
//! [`AigerError`]; the parsers never panic (see
//! `tests/aiger_hardening.rs`).
//!
//! ```
//! use boolsubst_aig::{parse_aiger, write_aiger_binary, Aig};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input_named("a");
//! let b = aig.add_input_named("b");
//! let f = aig.xor(a, b);
//! aig.add_output_named("f", f);
//!
//! let bytes = write_aiger_binary(&aig);
//! let back = parse_aiger(&bytes).expect("own output always reparses");
//! assert_eq!(back.eval(&[true, false]), vec![true]);
//! ```

mod graph;
mod reader;
mod writer;

pub use graph::{Aig, AigLit};
pub use reader::{parse_aiger, parse_aiger_ascii, parse_aiger_binary, AigerError, MAX_VARS};
pub use writer::{write_aiger_ascii, write_aiger_binary};
