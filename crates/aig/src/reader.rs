//! Hardened AIGER readers: ASCII (`.aag`) and binary (`.aig`), plus a
//! header-sniffing auto-detect entry. Every malformed-input path returns
//! a typed [`AigerError`]; the readers never panic, whatever the bytes
//! say.

use crate::graph::{Aig, AigLit};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Hard cap on the `M` (maximum variable index) header field. Keeps the
/// literal space comfortably inside `u32` and bounds allocation on
/// adversarial headers before any node data has been seen.
pub const MAX_VARS: u64 = (u32::MAX as u64) / 4;

/// Error produced when parsing AIGER input fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AigerError {
    /// The `aag`/`aig` header line is missing or malformed.
    BadHeader(String),
    /// The file uses a feature this reader does not support (latches).
    Unsupported(String),
    /// A literal is out of range, mis-parity, redefined, or undefined.
    BadLiteral {
        /// 1-based line number (0 in binary sections without lines).
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// The file ended before the declared contents did.
    Truncated(String),
    /// A symbol-table entry is malformed.
    BadSymbol {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// The same symbol-table slot was named twice.
    DuplicateSymbol {
        /// 1-based line number.
        line: usize,
        /// The offending entry, e.g. `i0`.
        entry: String,
    },
    /// The AND definitions form a combinational cycle.
    Cyclic(String),
    /// A header count exceeds [`MAX_VARS`] or overflows.
    TooLarge(String),
}

impl fmt::Display for AigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigerError::BadHeader(m) => write!(f, "aiger parse error: bad header: {m}"),
            AigerError::Unsupported(m) => write!(f, "aiger parse error: unsupported: {m}"),
            AigerError::BadLiteral { line, msg } => {
                write!(f, "aiger parse error at line {line}: {msg}")
            }
            AigerError::Truncated(m) => write!(f, "aiger parse error: truncated input: {m}"),
            AigerError::BadSymbol { line, msg } => {
                write!(
                    f,
                    "aiger parse error at line {line}: bad symbol entry: {msg}"
                )
            }
            AigerError::DuplicateSymbol { line, entry } => {
                write!(
                    f,
                    "aiger parse error at line {line}: duplicate symbol entry {entry:?}"
                )
            }
            AigerError::Cyclic(m) => write!(f, "aiger parse error: cyclic definition: {m}"),
            AigerError::TooLarge(m) => write!(f, "aiger parse error: size limit: {m}"),
        }
    }
}

impl std::error::Error for AigerError {}

/// The parsed `aag`/`aig` header counts.
#[derive(Debug, Clone, Copy)]
struct Header {
    max_var: u32,
    inputs: u32,
    outputs: u32,
    ands: u32,
}

fn parse_header(line: &str, expect_magic: &str) -> Result<Header, AigerError> {
    let mut it = line.split_whitespace();
    let magic = it
        .next()
        .ok_or_else(|| AigerError::BadHeader("empty header line".into()))?;
    if magic != expect_magic {
        return Err(AigerError::BadHeader(format!(
            "expected magic {expect_magic:?}, found {magic:?}"
        )));
    }
    let mut field = |name: &str| -> Result<u64, AigerError> {
        let tok = it
            .next()
            .ok_or_else(|| AigerError::BadHeader(format!("missing {name} field")))?;
        tok.parse::<u64>()
            .map_err(|_| AigerError::BadHeader(format!("{name} field {tok:?} is not a number")))
    };
    let (m, i, l, o, a) = (
        field("M")?,
        field("I")?,
        field("L")?,
        field("O")?,
        field("A")?,
    );
    if it.next().is_some() {
        return Err(AigerError::BadHeader(
            "trailing tokens after A field".into(),
        ));
    }
    if m > MAX_VARS || i > m || a > m || o > MAX_VARS {
        return Err(AigerError::TooLarge(format!(
            "header M={m} I={i} L={l} O={o} A={a} exceeds limits"
        )));
    }
    if l != 0 {
        return Err(AigerError::Unsupported(format!(
            "{l} latch(es): only the combinational subset is supported"
        )));
    }
    if i.checked_add(a).is_none_or(|sum| sum > m) {
        return Err(AigerError::BadHeader(format!(
            "I={i} + A={a} exceeds M={m}"
        )));
    }
    #[allow(clippy::cast_possible_truncation)] // bounded by MAX_VARS above
    Ok(Header {
        max_var: m as u32,
        inputs: i as u32,
        outputs: o as u32,
        ands: a as u32,
    })
}

fn parse_lit(tok: &str, max_var: u32, line: usize) -> Result<u32, AigerError> {
    let raw: u64 = tok.parse().map_err(|_| AigerError::BadLiteral {
        line,
        msg: format!("literal {tok:?} is not a number"),
    })?;
    if raw / 2 > u64::from(max_var) {
        return Err(AigerError::BadLiteral {
            line,
            msg: format!("literal {raw} exceeds maximum variable index {max_var}"),
        });
    }
    #[allow(clippy::cast_possible_truncation)] // bounded by max_var <= MAX_VARS
    Ok(raw as u32)
}

/// Parses an ASCII AIGER (`.aag`) file.
///
/// The combinational subset only: latches are rejected with
/// [`AigerError::Unsupported`]. Definitions may appear in any order (the
/// spec does not require topological order for the ASCII format); the
/// reader re-maps variables to the dense layout [`Aig`] maintains and
/// rejects cyclic definitions.
///
/// # Errors
///
/// Returns [`AigerError`] on malformed input. Never panics.
pub fn parse_aiger_ascii(text: &str) -> Result<Aig, AigerError> {
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines
        .next()
        .ok_or_else(|| AigerError::BadHeader("empty file".into()))?;
    let h = parse_header(header_line, "aag")?;

    let mut next_data_line = |what: &str| -> Result<(usize, &str), AigerError> {
        match lines.next() {
            Some((i, l)) => Ok((i + 1, l)),
            None => Err(AigerError::Truncated(format!("missing {what} line"))),
        }
    };

    // Input literals: distinct even non-constant literals.
    let mut input_vars: HashSet<u32> = HashSet::new();
    let mut input_file_vars: Vec<u32> = Vec::with_capacity(h.inputs as usize);
    for _ in 0..h.inputs {
        let (line_no, line) = next_data_line("input")?;
        let raw = parse_lit(line.trim(), h.max_var, line_no)?;
        if raw < 2 || raw % 2 != 0 {
            return Err(AigerError::BadLiteral {
                line: line_no,
                msg: format!("input literal {raw} must be an even non-constant literal"),
            });
        }
        let var = raw / 2;
        if !input_vars.insert(var) {
            return Err(AigerError::BadLiteral {
                line: line_no,
                msg: format!("variable {var} defined twice"),
            });
        }
        input_file_vars.push(var);
    }

    // Output literals (may reference anything, resolved after ANDs).
    let mut outputs: Vec<(usize, u32)> = Vec::with_capacity(h.outputs as usize);
    for _ in 0..h.outputs {
        let (line_no, line) = next_data_line("output")?;
        outputs.push((line_no, parse_lit(line.trim(), h.max_var, line_no)?));
    }

    // AND definitions.
    struct RawAnd {
        line: usize,
        rhs: [u32; 2],
    }
    let mut and_defs: HashMap<u32, RawAnd> = HashMap::new();
    let mut and_file_vars: Vec<u32> = Vec::with_capacity(h.ands as usize);
    for _ in 0..h.ands {
        let (line_no, line) = next_data_line("and")?;
        let mut toks = line.split_whitespace();
        let mut lit = |what: &str| -> Result<u32, AigerError> {
            let tok = toks.next().ok_or_else(|| AigerError::BadLiteral {
                line: line_no,
                msg: format!("and line missing {what} literal"),
            })?;
            parse_lit(tok, h.max_var, line_no)
        };
        let lhs = lit("lhs")?;
        let rhs0 = lit("rhs0")?;
        let rhs1 = lit("rhs1")?;
        if toks.next().is_some() {
            return Err(AigerError::BadLiteral {
                line: line_no,
                msg: "trailing tokens on and line".into(),
            });
        }
        if lhs < 2 || lhs % 2 != 0 {
            return Err(AigerError::BadLiteral {
                line: line_no,
                msg: format!("and lhs {lhs} must be an even non-constant literal"),
            });
        }
        let var = lhs / 2;
        if input_vars.contains(&var) || and_defs.contains_key(&var) {
            return Err(AigerError::BadLiteral {
                line: line_no,
                msg: format!("variable {var} defined twice"),
            });
        }
        and_defs.insert(
            var,
            RawAnd {
                line: line_no,
                rhs: [rhs0, rhs1],
            },
        );
        and_file_vars.push(var);
    }

    // Topologically order the AND definitions (iterative DFS — the stack
    // must survive 100k-node chains), rejecting cycles and undefined
    // variables.
    let mut order: Vec<u32> = Vec::with_capacity(and_file_vars.len());
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state: HashMap<u32, u8> = HashMap::new();
    for &root in &and_file_vars {
        if state.get(&root).copied().unwrap_or(0) == 2 {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
        state.insert(root, 1);
        while let Some(&mut (var, ref mut child)) = stack.last_mut() {
            let def = and_defs.get(&var).expect("only ands are stacked");
            if *child < 2 {
                let rhs = def.rhs[*child];
                *child += 1;
                let rv = rhs / 2;
                if rv == 0 || input_vars.contains(&rv) {
                    continue; // constant or input: nothing to visit
                }
                if !and_defs.contains_key(&rv) {
                    return Err(AigerError::BadLiteral {
                        line: def.line,
                        msg: format!("literal {rhs} references undefined variable {rv}"),
                    });
                }
                match state.get(&rv).copied().unwrap_or(0) {
                    0 => {
                        state.insert(rv, 1);
                        stack.push((rv, 0));
                    }
                    1 => {
                        return Err(AigerError::Cyclic(format!(
                            "variable {rv} participates in a cycle"
                        )));
                    }
                    _ => {}
                }
            } else {
                state.insert(var, 2);
                order.push(var);
                stack.pop();
            }
        }
    }

    // Build the graph in the dense internal numbering.
    let mut aig = Aig::new();
    for _ in 0..h.inputs {
        aig.add_input();
    }
    let mut mapped: HashMap<u32, AigLit> = HashMap::new();
    for (k, &v) in input_file_vars.iter().enumerate() {
        mapped.insert(v, aig.input_lit(k));
    }
    let map_edge = |mapped: &HashMap<u32, AigLit>, raw: u32| -> Option<AigLit> {
        if raw < 2 {
            return Some(AigLit::from_raw(raw));
        }
        mapped
            .get(&(raw / 2))
            .map(|l| l.xor_complement(raw % 2 == 1))
    };
    for &var in &order {
        let def = &and_defs[&var];
        let f0 = map_edge(&mapped, def.rhs[0]).expect("topologically ordered");
        let f1 = map_edge(&mapped, def.rhs[1]).expect("topologically ordered");
        let lit = aig.push_and(f0, f1);
        mapped.insert(var, lit);
    }
    for (line_no, raw) in outputs {
        let lit = map_edge(&mapped, raw).ok_or_else(|| AigerError::BadLiteral {
            line: line_no,
            msg: format!(
                "output literal {raw} references undefined variable {}",
                raw / 2
            ),
        })?;
        aig.add_output(None, lit);
    }

    // Symbol table and comment section.
    let rest: Vec<(usize, &str)> = lines.map(|(i, l)| (i + 1, l)).collect();
    apply_symbols(&mut aig, rest.into_iter(), &h)?;
    Ok(aig)
}

/// Parses the symbol-table / comment tail shared by both formats.
fn apply_symbols<'a>(
    aig: &mut Aig,
    lines: impl Iterator<Item = (usize, &'a str)>,
    h: &Header,
) -> Result<(), AigerError> {
    let mut seen: HashMap<String, usize> = HashMap::new();
    let mut input_syms: Vec<Option<String>> = vec![None; h.inputs as usize];
    let mut output_syms: Vec<Option<String>> = vec![None; h.outputs as usize];
    for (line_no, line) in lines {
        if line == "c" || line.starts_with("c ") {
            break; // comment section: everything after is free-form
        }
        if line.trim().is_empty() {
            continue;
        }
        let (entry, name) = match line.split_once(' ') {
            Some((e, n)) if !n.is_empty() => (e, n),
            _ => {
                return Err(AigerError::BadSymbol {
                    line: line_no,
                    msg: format!("expected \"<slot> <name>\", found {line:?}"),
                });
            }
        };
        let Some((kind, idx_str)) = entry.split_at_checked(1) else {
            return Err(AigerError::BadSymbol {
                line: line_no,
                msg: format!("empty symbol slot in {line:?}"),
            });
        };
        let idx: usize = idx_str.parse().map_err(|_| AigerError::BadSymbol {
            line: line_no,
            msg: format!("bad slot index in {entry:?}"),
        })?;
        if seen.insert(entry.to_string(), line_no).is_some() {
            return Err(AigerError::DuplicateSymbol {
                line: line_no,
                entry: entry.to_string(),
            });
        }
        match kind {
            "i" => {
                let slot = input_syms
                    .get_mut(idx)
                    .ok_or_else(|| AigerError::BadSymbol {
                        line: line_no,
                        msg: format!("input symbol index {idx} out of range"),
                    })?;
                *slot = Some(name.to_string());
            }
            "o" => {
                let slot = output_syms
                    .get_mut(idx)
                    .ok_or_else(|| AigerError::BadSymbol {
                        line: line_no,
                        msg: format!("output symbol index {idx} out of range"),
                    })?;
                *slot = Some(name.to_string());
            }
            "l" => {
                return Err(AigerError::Unsupported(
                    "latch symbol entry in a combinational file".into(),
                ));
            }
            _ => {
                return Err(AigerError::BadSymbol {
                    line: line_no,
                    msg: format!("unknown symbol kind in {entry:?}"),
                });
            }
        }
    }
    aig.set_symbols(input_syms, output_syms);
    Ok(())
}

/// Parses a binary AIGER (`.aig`) file.
///
/// The combinational subset only. The AND section is the delta-encoded
/// varint stream the format specifies; truncated streams, zero deltas,
/// and deltas that would take a right-hand side below zero are all typed
/// errors.
///
/// # Errors
///
/// Returns [`AigerError`] on malformed input. Never panics.
pub fn parse_aiger_binary(bytes: &[u8]) -> Result<Aig, AigerError> {
    let mut pos = 0usize;
    let mut line_no = 0usize;
    let mut next_line = |what: &str| -> Result<(usize, &str), AigerError> {
        if pos >= bytes.len() {
            return Err(AigerError::Truncated(format!("missing {what} line")));
        }
        let start = pos;
        while pos < bytes.len() && bytes[pos] != b'\n' {
            pos += 1;
        }
        let end = pos;
        if pos < bytes.len() {
            pos += 1; // consume the newline
        } else {
            return Err(AigerError::Truncated(format!(
                "{what} line is missing its newline"
            )));
        }
        line_no += 1;
        let s = std::str::from_utf8(&bytes[start..end])
            .map_err(|_| AigerError::BadHeader(format!("{what} line contains non-UTF-8 bytes")))?;
        Ok((line_no, s))
    };

    let (_, header_line) = next_line("header")?;
    let h = parse_header(header_line, "aig")?;
    if u64::from(h.inputs) + u64::from(h.ands) != u64::from(h.max_var) {
        return Err(AigerError::BadHeader(format!(
            "binary format requires M = I + A (found M={}, I={}, A={})",
            h.max_var, h.inputs, h.ands
        )));
    }

    let mut aig = Aig::new();
    for _ in 0..h.inputs {
        aig.add_input();
    }

    // Output literals, one ASCII line each.
    let mut outputs: Vec<(usize, u32)> = Vec::with_capacity(h.outputs as usize);
    for _ in 0..h.outputs {
        let (ln, line) = next_line("output")?;
        outputs.push((ln, parse_lit(line.trim(), h.max_var, ln)?));
    }

    // Delta-encoded AND section.
    let mut read_varint = |what: &str| -> Result<u32, AigerError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let Some(&byte) = bytes.get(pos) else {
                return Err(AigerError::Truncated(format!(
                    "binary and section ended mid-varint ({what})"
                )));
            };
            pos += 1;
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift > 35 {
                return Err(AigerError::TooLarge(format!(
                    "varint {what} exceeds the 32-bit literal space"
                )));
            }
        }
        u32::try_from(value).map_err(|_| {
            AigerError::TooLarge(format!("varint {what} exceeds the 32-bit literal space"))
        })
    };
    for i in 0..h.ands {
        let lhs = (h.inputs + 1 + i) * 2;
        let delta0 = read_varint("delta0")?;
        let rhs0 = lhs
            .checked_sub(delta0)
            .ok_or_else(|| AigerError::BadLiteral {
                line: 0,
                msg: format!("and {lhs}: delta0 {delta0} underflows the lhs"),
            })?;
        if rhs0 >= lhs {
            return Err(AigerError::BadLiteral {
                line: 0,
                msg: format!("and {lhs}: rhs0 {rhs0} is not strictly below the lhs"),
            });
        }
        let delta1 = read_varint("delta1")?;
        let rhs1 = rhs0
            .checked_sub(delta1)
            .ok_or_else(|| AigerError::BadLiteral {
                line: 0,
                msg: format!("and {lhs}: delta1 {delta1} underflows rhs0 {rhs0}"),
            })?;
        aig.push_and(AigLit::from_raw(rhs0), AigLit::from_raw(rhs1));
    }
    for (ln, raw) in outputs {
        if raw / 2 > h.max_var {
            return Err(AigerError::BadLiteral {
                line: ln,
                msg: format!("output literal {raw} out of range"),
            });
        }
        aig.add_output(None, AigLit::from_raw(raw));
    }

    // Symbol table / comments: ASCII lines after the and section.
    let tail = std::str::from_utf8(&bytes[pos..]).map_err(|_| AigerError::BadSymbol {
        line: line_no + 1,
        msg: "symbol table contains non-UTF-8 bytes".into(),
    })?;
    let base = line_no;
    apply_symbols(
        &mut aig,
        tail.lines().enumerate().map(|(i, l)| (base + i + 1, l)),
        &h,
    )?;
    Ok(aig)
}

/// Parses AIGER input in either format, detected by the header magic
/// (`aag` → ASCII, `aig` → binary).
///
/// # Errors
///
/// Returns [`AigerError::BadHeader`] if the magic matches neither format,
/// and whatever the format reader returns otherwise.
pub fn parse_aiger(bytes: &[u8]) -> Result<Aig, AigerError> {
    if bytes.starts_with(b"aag ") {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| AigerError::BadHeader("ascii file contains non-UTF-8 bytes".into()))?;
        parse_aiger_ascii(text)
    } else if bytes.starts_with(b"aig ") {
        parse_aiger_binary(bytes)
    } else {
        Err(AigerError::BadHeader(
            "file starts with neither \"aag\" nor \"aig\"".into(),
        ))
    }
}
