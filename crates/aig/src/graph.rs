//! The And-Inverter Graph: complemented edges over two-input AND nodes,
//! structural hashing, and constant folding.

use std::collections::HashMap;
use std::fmt;

/// A complemented edge into an [`Aig`]: the AIGER literal encoding
/// (`2·var + complement`). Literal `0` is constant false, `1` constant
/// true; variable `v`'s positive edge is literal `2v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigLit(u32);

impl AigLit {
    /// Constant false (AIGER literal 0).
    pub const FALSE: AigLit = AigLit(0);
    /// Constant true (AIGER literal 1).
    pub const TRUE: AigLit = AigLit(1);

    /// Wraps a raw AIGER literal value.
    #[must_use]
    pub fn from_raw(raw: u32) -> AigLit {
        AigLit(raw)
    }

    /// The raw AIGER literal value (`2·var + complement`).
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The variable index this edge points at (0 is the constant).
    #[must_use]
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// True if the edge is complemented.
    #[must_use]
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// True if this edge is one of the two constants.
    #[must_use]
    pub fn is_const(self) -> bool {
        self.0 < 2
    }

    /// This edge with the given complement flag applied on top.
    #[must_use]
    pub fn xor_complement(self, complement: bool) -> AigLit {
        AigLit(self.0 ^ u32::from(complement))
    }
}

impl std::ops::Not for AigLit {
    type Output = AigLit;

    /// The complemented edge.
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

impl fmt::Display for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A latch-free combinational And-Inverter Graph.
///
/// Variables are densely numbered the way the binary AIGER format
/// requires: variable `0` is the constant, `1..=num_inputs()` are the
/// primary inputs, and the AND nodes follow in topological order (every
/// AND's fanins have strictly smaller variable indices). [`Aig::and`]
/// structurally hashes: requesting the same (unordered) fanin pair twice
/// returns the same node, and constant/equal/complement operand cases
/// fold away without allocating.
///
/// ```
/// use boolsubst_aig::{Aig, AigLit};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input_named("a");
/// let b = aig.add_input_named("b");
/// let f = aig.or(a, b);
/// let x = aig.and(a, b);
/// let y = aig.and(b, a);
/// assert_eq!(x, y); // structural hash
/// aig.add_output_named("f", f);
/// assert_eq!(aig.eval(&[false, true]), vec![true]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Aig {
    /// Fanins of each AND node; entry `i` defines variable
    /// `num_inputs + 1 + i`. Invariants: `fanin[0].raw() >= fanin[1].raw()`
    /// and both fanin variables are strictly smaller than the defined one.
    ands: Vec<[AigLit; 2]>,
    /// Number of primary inputs (variables `1..=inputs`).
    inputs: usize,
    /// Optional symbol-table names for the inputs.
    input_names: Vec<Option<String>>,
    /// Primary outputs: optional symbol name and driving edge.
    outputs: Vec<(Option<String>, AigLit)>,
    /// Structural hash: ordered raw fanin pair → defined positive edge.
    strash: HashMap<[u32; 2], AigLit>,
}

impl Aig {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Aig {
        Aig::default()
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inputs
    }

    /// Number of AND nodes.
    #[must_use]
    pub fn num_ands(&self) -> usize {
        self.ands.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The largest variable index in use (the AIGER header's `M`).
    #[must_use]
    pub fn max_var(&self) -> u32 {
        u32::try_from(self.inputs + self.ands.len()).expect("variable space fits u32")
    }

    /// Adds an unnamed primary input and returns its positive edge.
    ///
    /// # Panics
    ///
    /// Panics if an AND node has already been created: the dense variable
    /// layout requires all inputs to precede the ANDs.
    pub fn add_input(&mut self) -> AigLit {
        assert!(
            self.ands.is_empty(),
            "inputs must be added before AND nodes"
        );
        self.inputs += 1;
        self.input_names.push(None);
        AigLit((self.inputs as u32) << 1)
    }

    /// Adds a named primary input and returns its positive edge.
    ///
    /// # Panics
    ///
    /// Panics if an AND node has already been created.
    pub fn add_input_named(&mut self, name: impl Into<String>) -> AigLit {
        let lit = self.add_input();
        self.input_names[self.inputs - 1] = Some(name.into());
        lit
    }

    /// The symbol name of input `index` (0-based), if any.
    #[must_use]
    pub fn input_name(&self, index: usize) -> Option<&str> {
        self.input_names.get(index).and_then(Option::as_deref)
    }

    /// The positive edge of input `index` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn input_lit(&self, index: usize) -> AigLit {
        assert!(index < self.inputs, "input index out of range");
        AigLit(((index + 1) as u32) << 1)
    }

    /// True if `var` is a primary-input variable.
    #[must_use]
    pub fn is_input_var(&self, var: u32) -> bool {
        var >= 1 && (var as usize) <= self.inputs
    }

    /// The fanins of the AND node defining variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not an AND variable.
    #[must_use]
    pub fn and_fanins(&self, var: u32) -> [AigLit; 2] {
        let idx = (var as usize)
            .checked_sub(self.inputs + 1)
            .expect("not an AND variable");
        self.ands[idx]
    }

    /// Iterates over the AND nodes as `(defined_var, [fanin0, fanin1])`
    /// in topological order.
    pub fn ands(&self) -> impl Iterator<Item = (u32, [AigLit; 2])> + '_ {
        let base = self.inputs as u32 + 1;
        self.ands
            .iter()
            .enumerate()
            .map(move |(i, &f)| (base + u32::try_from(i).expect("and count fits u32"), f))
    }

    /// The primary outputs as `(symbol, edge)` pairs, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[(Option<String>, AigLit)] {
        &self.outputs
    }

    /// Declares a primary output.
    ///
    /// # Panics
    ///
    /// Panics if `lit` references a variable the graph does not define.
    pub fn add_output(&mut self, name: impl Into<Option<String>>, lit: AigLit) {
        assert!(lit.var() <= self.max_var(), "output references unknown var");
        self.outputs.push((name.into(), lit));
    }

    /// Declares a primary output with a `&str` symbol.
    ///
    /// # Panics
    ///
    /// Panics if `lit` references a variable the graph does not define.
    pub fn add_output_named(&mut self, name: &str, lit: AigLit) {
        self.add_output(Some(name.to_string()), lit);
    }

    /// The AND of two edges, with constant folding and structural hashing.
    ///
    /// # Panics
    ///
    /// Panics if either edge references a variable the graph does not
    /// define.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let max = self.max_var();
        assert!(
            a.var() <= max && b.var() <= max,
            "AND references unknown var"
        );
        // Constant and trivial folds.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE || a == b {
            return b;
        }
        if b == AigLit::TRUE {
            return a;
        }
        // Normalize: larger raw literal first (the binary AIGER fanin
        // order), so the hash key is canonical for the unordered pair.
        let (hi, lo) = if a.raw() >= b.raw() { (a, b) } else { (b, a) };
        let key = [hi.raw(), lo.raw()];
        if let Some(&lit) = self.strash.get(&key) {
            return lit;
        }
        let lit = self.push_and_unchecked(hi, lo);
        self.strash.insert(key, lit);
        lit
    }

    /// Appends an AND node *without* folding or hash lookup, preserving
    /// the fanin pair exactly as given (used by the AIGER readers so that
    /// write∘parse reproduces files byte-compatibly). The node is still
    /// registered in the structural hash for later [`Aig::and`] calls.
    ///
    /// # Panics
    ///
    /// Panics if a fanin references an undefined variable.
    pub fn push_and(&mut self, fanin0: AigLit, fanin1: AigLit) -> AigLit {
        let max = self.max_var();
        assert!(
            fanin0.var() <= max && fanin1.var() <= max,
            "AND references unknown var"
        );
        let lit = self.push_and_unchecked(fanin0, fanin1);
        let (hi, lo) = if fanin0.raw() >= fanin1.raw() {
            (fanin0, fanin1)
        } else {
            (fanin1, fanin0)
        };
        self.strash.entry([hi.raw(), lo.raw()]).or_insert(lit);
        lit
    }

    fn push_and_unchecked(&mut self, fanin0: AigLit, fanin1: AigLit) -> AigLit {
        self.ands.push([fanin0, fanin1]);
        AigLit(self.max_var() << 1)
    }

    /// The OR of two edges (De Morgan over [`Aig::and`]).
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// The XOR of two edges.
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let t = self.and(a, !b);
        let e = self.and(!a, b);
        self.or(t, e)
    }

    /// If-then-else: `c ? t : e`, with constant branches folded to a
    /// single AND/OR (the general form costs three gates and hides the
    /// absorption from the structural hash).
    pub fn mux(&mut self, c: AigLit, t: AigLit, e: AigLit) -> AigLit {
        if t == e {
            return t;
        }
        match (t, e) {
            (AigLit::TRUE, _) => self.or(c, e),
            (AigLit::FALSE, _) => self.and(!c, e),
            (_, AigLit::TRUE) => self.or(!c, t),
            (_, AigLit::FALSE) => self.and(c, t),
            _ => {
                let pos = self.and(c, t);
                let neg = self.and(!c, e);
                self.or(pos, neg)
            }
        }
    }

    /// Replaces the full symbol tables (used by the AIGER readers).
    ///
    /// # Panics
    ///
    /// Panics if either vector's length does not match the input/output
    /// counts.
    pub fn set_symbols(
        &mut self,
        input_names: Vec<Option<String>>,
        output_names: Vec<Option<String>>,
    ) {
        assert_eq!(input_names.len(), self.inputs, "input symbol count");
        assert_eq!(
            output_names.len(),
            self.outputs.len(),
            "output symbol count"
        );
        self.input_names = input_names;
        for (slot, name) in self.outputs.iter_mut().zip(output_names) {
            slot.0 = name;
        }
    }

    /// Evaluates every output under the given input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    #[must_use]
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.inputs, "wrong input count");
        let mut values = vec![false; self.inputs + self.ands.len() + 1];
        for (i, &v) in inputs.iter().enumerate() {
            values[i + 1] = v;
        }
        let edge = |values: &[bool], l: AigLit| {
            if l.is_const() {
                l == AigLit::TRUE
            } else {
                values[l.var() as usize] ^ l.is_complement()
            }
        };
        for (i, &[f0, f1]) in self.ands.iter().enumerate() {
            values[self.inputs + 1 + i] = edge(&values, f0) && edge(&values, f1);
        }
        self.outputs
            .iter()
            .map(|&(_, l)| edge(&values, l))
            .collect()
    }

    /// Structural sanity check used by tests: dense fanin ordering, no
    /// forward references, outputs in range.
    ///
    /// # Panics
    ///
    /// Panics (with a description) if an invariant is violated.
    pub fn check_invariants(&self) {
        for (var, [f0, f1]) in self.ands() {
            assert!(f0.var() < var, "AND {var} fanin0 not topologically prior");
            assert!(f1.var() < var, "AND {var} fanin1 not topologically prior");
        }
        for (_, l) in &self.outputs {
            assert!(l.var() <= self.max_var(), "output references unknown var");
        }
        assert_eq!(self.input_names.len(), self.inputs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_encoding() {
        let l = AigLit::from_raw(7);
        assert_eq!(l.var(), 3);
        assert!(l.is_complement());
        assert_eq!((!l).raw(), 6);
        assert!(AigLit::FALSE.is_const() && AigLit::TRUE.is_const());
        assert_eq!(!AigLit::FALSE, AigLit::TRUE);
    }

    #[test]
    fn constant_folding() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        assert_eq!(aig.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(aig.and(AigLit::TRUE, b), b);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), AigLit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_is_order_insensitive() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        assert_eq!(x, y);
        assert_eq!(aig.num_ands(), 1);
        // Complemented operands hash separately.
        let z = aig.and(!a, b);
        assert_ne!(x, z);
        assert_eq!(aig.num_ands(), 2);
    }

    #[test]
    fn eval_gates() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let and = aig.and(a, b);
        let or = aig.or(a, b);
        let xor = aig.xor(a, b);
        aig.add_output(None, and);
        aig.add_output(None, or);
        aig.add_output(None, xor);
        aig.add_output(None, AigLit::TRUE);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(aig.eval(&[va, vb]), vec![va && vb, va || vb, va ^ vb, true]);
        }
        aig.check_invariants();
    }

    #[test]
    fn mux_truth_table() {
        let mut aig = Aig::new();
        let c = aig.add_input();
        let t = aig.add_input();
        let e = aig.add_input();
        let m = aig.mux(c, t, e);
        aig.add_output(None, m);
        for i in 0u32..8 {
            let ins: Vec<bool> = (0..3).map(|k| (i >> k) & 1 == 1).collect();
            let want = if ins[0] { ins[1] } else { ins[2] };
            assert_eq!(aig.eval(&ins), vec![want]);
        }
    }
}
