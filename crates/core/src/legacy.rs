//! Deprecated free-function entry points, kept as thin shims over
//! [`crate::session::Session`].
//!
//! Everything here is `#[deprecated]`; this module is the only place in
//! the workspace allowed to reference the old names (CI builds the rest
//! of the tree with `-D deprecated`). The shims are exact: each one is a
//! one-line `Session` call, so migrating is mechanical — see the README's
//! migration table.

// The shims call each other's deprecated names in doc examples and the
// re-export below would otherwise warn against itself.
#![allow(deprecated)]

use crate::session::Session;
use crate::subst::{SubstOptions, SubstStats};
use boolsubst_network::Network;
use boolsubst_trace::Tracer;

/// Runs the Boolean substitution pass over the network.
///
/// Deprecated: use `Session::new(net, opts.clone()).run()`.
#[deprecated(since = "0.6.0", note = "use `Session::new(net, opts).run()`")]
pub fn boolean_substitute(net: &mut Network, opts: &SubstOptions) -> SubstStats {
    Session::new(net, opts.clone()).run()
}

/// Runs the substitution pass with a [`Tracer`] attached.
///
/// Deprecated: use `Session::new(net, opts.clone()).tracer(t).run()`.
#[deprecated(
    since = "0.6.0",
    note = "use `Session::new(net, opts).tracer(tracer).run()`"
)]
pub fn boolean_substitute_traced(
    net: &mut Network,
    opts: &SubstOptions,
    tracer: &mut Tracer,
) -> SubstStats {
    Session::new(net, opts.clone()).tracer(tracer).run()
}

/// Engine-backed run, historically distinct from [`boolean_substitute`];
/// the two have been the same code path since the engine became the
/// default.
///
/// Deprecated: use `Session::new(net, opts.clone()).run()`.
#[deprecated(since = "0.6.0", note = "use `Session::new(net, opts).run()`")]
pub fn boolean_substitute_engine(net: &mut Network, opts: &SubstOptions) -> SubstStats {
    Session::new(net, opts.clone()).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_cube::parse_sop;
    use boolsubst_network::write_blif;

    /// The shims must stay behaviourally identical to the `Session` path.
    #[test]
    fn shims_match_session() {
        fn small_net() -> Network {
            let mut net = Network::new("legacy_t");
            let a = net.add_input("a").expect("a");
            let b = net.add_input("b").expect("b");
            let c = net.add_input("c").expect("c");
            let f = net
                .add_node(
                    "f",
                    vec![a, b, c],
                    parse_sop(3, "ab + ac + bc'").expect("p"),
                )
                .expect("f");
            let d = net
                .add_node("d", vec![a, b, c], parse_sop(3, "ab + c").expect("p"))
                .expect("d");
            net.add_output("f", f).expect("o");
            net.add_output("d", d).expect("o");
            net
        }
        let opts = SubstOptions::extended();
        let mut via_session = small_net();
        let s = Session::new(&mut via_session, opts.clone()).run();
        for shim in [boolean_substitute, boolean_substitute_engine] {
            let mut via_shim = small_net();
            let t = shim(&mut via_shim, &opts);
            assert_eq!(write_blif(&via_session), write_blif(&via_shim));
            assert_eq!(s.substitutions, t.substitutions);
        }
    }
}
