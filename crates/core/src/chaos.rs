//! Deterministic fault injection for the checked-apply guards (`chaos`
//! feature only — nothing in this module exists in a default build).
//!
//! The chaos harness corrupts the engine at the seams the guards are
//! supposed to cover:
//!
//! * **quotient corruption** — frees a bound variable of a quotient cube
//!   right after division succeeds, emulating a wrong implication verdict
//!   (an over-removed wire enlarges the quotient's function);
//! * **cover corruption** — drops a cube from the assembled replacement
//!   cover just before it is installed, emulating cube bookkeeping rot;
//! * **signature poisoning** — flips a cached simulation-signature bit
//!   (via [`boolsubst_sim::SimFilter::chaos_poison_signature`]), emulating
//!   silent cache corruption the version stamps cannot see;
//! * **injected panics** — at pair entry and just after a successful
//!   rewrite, exercising panic isolation and mid-mutation rollback.
//!
//! All randomness is a seeded xorshift: a given configuration injects the
//! same faults in the same places on every run. State is thread-local so
//! parallel test binaries do not interfere.

use boolsubst_cube::{Cover, Cube};
use std::cell::RefCell;

/// Per-class injection rates. A rate of `N` means roughly one injection
/// per `N` opportunities (0 disables the class).
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosConfig {
    /// Rate for quotient corruption (after a successful division).
    pub quotient_rate: u32,
    /// Rate for replacement-cover corruption (before `replace_function`).
    pub cover_rate: u32,
    /// Rate for signature poisoning (before the engine's integrity audit).
    pub signature_rate: u32,
    /// Rate for panics at pair entry (before any mutation).
    pub panic_entry_rate: u32,
    /// Rate for panics right after a successful rewrite (mid-mutation from
    /// the sweep's point of view — the rollback path must fire).
    pub panic_post_apply_rate: u32,
    /// RNG seed; equal seeds inject identically.
    pub seed: u64,
}

/// How many faults each class actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounts {
    /// Quotient cubes enlarged.
    pub quotients_corrupted: usize,
    /// Replacement covers with a cube dropped.
    pub covers_corrupted: usize,
    /// Signature bits flipped.
    pub signatures_poisoned: usize,
    /// Panics raised.
    pub panics_injected: usize,
}

struct ChaosState {
    config: ChaosConfig,
    rng: u64,
    counts: ChaosCounts,
}

thread_local! {
    static STATE: RefCell<Option<ChaosState>> = const { RefCell::new(None) };
}

/// Arms fault injection on this thread with the given configuration.
pub fn configure(config: ChaosConfig) {
    STATE.with(|s| {
        *s.borrow_mut() = Some(ChaosState {
            config,
            rng: config.seed | 1,
            counts: ChaosCounts::default(),
        });
    });
}

/// Disarms injection and returns what was injected while armed.
pub fn disarm() -> ChaosCounts {
    STATE.with(|s| {
        s.borrow_mut()
            .take()
            .map(|st| st.counts)
            .unwrap_or_default()
    })
}

/// Injection counters so far (zeroes when disarmed).
#[must_use]
pub fn counts() -> ChaosCounts {
    STATE.with(|s| s.borrow().as_ref().map(|st| st.counts).unwrap_or_default())
}

/// The configuration this thread is armed with, if any. Chaos state is
/// thread-local, so the parallel sweep reads the committer's config here
/// and re-arms each worker thread with it (workers keep their own RNG
/// stream and counters).
#[must_use]
pub fn current_config() -> Option<ChaosConfig> {
    STATE.with(|s| s.borrow().as_ref().map(|st| st.config))
}

/// One xorshift step + rate roll: `Some(random)` when the class fires.
fn roll(pick_rate: impl Fn(&ChaosConfig) -> u32) -> Option<u64> {
    STATE.with(|s| {
        let mut guard = s.borrow_mut();
        let st = guard.as_mut()?;
        let rate = pick_rate(&st.config);
        if rate == 0 {
            return None;
        }
        st.rng ^= st.rng << 13;
        st.rng ^= st.rng >> 7;
        st.rng ^= st.rng << 17;
        (st.rng % u64::from(rate) == 0).then_some(st.rng)
    })
}

fn bump(f: impl Fn(&mut ChaosCounts) -> &mut usize) {
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            *f(&mut st.counts) += 1;
        }
    });
}

/// Where an injected panic fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicSite {
    /// Top of `try_pair_core`, before any mutation.
    PairEntry,
    /// Right after a successful rewrite was installed.
    PostApply,
}

/// Panics at `site` when the corresponding rate rolls an injection.
///
/// # Panics
///
/// That is the point.
pub fn maybe_panic(site: PanicSite) {
    let fired = match site {
        PanicSite::PairEntry => roll(|c| c.panic_entry_rate),
        PanicSite::PostApply => roll(|c| c.panic_post_apply_rate),
    };
    if fired.is_some() {
        bump(|c| &mut c.panics_injected);
        panic!("chaos: injected panic at {site:?}");
    }
}

/// Possibly enlarges one quotient cube by freeing a bound variable —
/// a wrong "this literal wire is redundant" verdict in miniature.
#[must_use]
pub fn corrupt_quotient(q: Cover) -> Cover {
    let Some(r) = roll(|c| c.quotient_rate) else {
        return q;
    };
    let mut cubes: Vec<Cube> = q.cubes().to_vec();
    for k in 0..cubes.len() {
        let ci = (r as usize + k) % cubes.len();
        let bound: Vec<usize> = cubes[ci].support().collect();
        if let Some(&v) = bound.get((r >> 7) as usize % bound.len().max(1)) {
            cubes[ci].free_var(v);
            bump(|c| &mut c.quotients_corrupted);
            return Cover::from_cubes(q.num_vars(), cubes);
        }
    }
    q
}

/// Possibly drops one cube from the assembled replacement cover —
/// emulating cube bookkeeping rot just before the rewrite is installed.
#[must_use]
pub fn corrupt_cover(cover: Cover) -> Cover {
    let Some(r) = roll(|c| c.cover_rate) else {
        return cover;
    };
    if cover.is_empty() {
        return cover;
    }
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    cubes.remove(r as usize % cubes.len());
    bump(|c| &mut c.covers_corrupted);
    Cover::from_cubes(cover.num_vars(), cubes)
}

/// `Some(random)` when the signature-poison class fires for this pair
/// (the engine then flips a cached signature bit of the pair's target).
#[must_use]
pub fn should_poison_signature() -> Option<u64> {
    let r = roll(|c| c.signature_rate);
    if r.is_some() {
        bump(|c| &mut c.signatures_poisoned);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_cube::parse_sop;

    #[test]
    fn disarmed_hooks_are_inert() {
        let _ = disarm();
        let q = parse_sop(3, "ab + c").expect("q");
        assert_eq!(corrupt_quotient(q.clone()), q);
        assert_eq!(corrupt_cover(q.clone()), q);
        assert_eq!(should_poison_signature(), None);
        maybe_panic(PanicSite::PairEntry);
        maybe_panic(PanicSite::PostApply);
        assert_eq!(counts(), ChaosCounts::default());
    }

    #[test]
    fn armed_classes_fire_deterministically() {
        configure(ChaosConfig {
            quotient_rate: 1,
            cover_rate: 1,
            seed: 42,
            ..ChaosConfig::default()
        });
        let q = parse_sop(3, "ab + c").expect("q");
        let corrupted = corrupt_quotient(q.clone());
        assert_ne!(corrupted, q, "rate-1 quotient corruption must fire");
        assert!(
            corrupted.literal_count() < q.literal_count(),
            "freeing a bound variable drops a literal"
        );
        let dropped = corrupt_cover(q.clone());
        assert_eq!(dropped.len(), q.len() - 1, "one cube must be dropped");
        let counts = disarm();
        assert_eq!(counts.quotients_corrupted, 1);
        assert_eq!(counts.covers_corrupted, 1);

        // Same seed, same faults.
        configure(ChaosConfig {
            quotient_rate: 1,
            cover_rate: 1,
            seed: 42,
            ..ChaosConfig::default()
        });
        assert_eq!(corrupt_quotient(q.clone()), corrupted);
        assert_eq!(corrupt_cover(q), dropped);
        let _ = disarm();
    }

    #[test]
    fn injected_panic_is_counted_and_catchable() {
        configure(ChaosConfig {
            panic_entry_rate: 1,
            seed: 7,
            ..ChaosConfig::default()
        });
        let caught = std::panic::catch_unwind(|| maybe_panic(PanicSite::PairEntry));
        assert!(caught.is_err(), "rate-1 panic must fire");
        assert_eq!(disarm().panics_injected, 1);
    }
}
