//! Explicit internal don't-care computation — the structures the paper's
//! implication engine exploits implicitly, materialized as covers so they
//! can drive two-level node minimization (a `full_simplify`-style pass).
//!
//! * **SDCs** (satisfiability don't cares): a fanin `y = g(x)` can never
//!   disagree with its function, so `y ⊕ g(x)` never occurs; simplifying a
//!   node in the joint (fanin + grand-fanin) space against these covers
//!   lets literals migrate between levels.
//! * **ODCs** (observability don't cares): fanin assignments under which
//!   the node's value cannot reach any primary output. Computed exactly
//!   with the BDD oracle by enumerating fanin assignments.

use boolsubst_bdd::{Bdd, Ref};
use boolsubst_cube::{simplify, Cover, Cube, Lit, Phase, SimplifyOptions};
use boolsubst_network::{Network, NodeId};

/// Options for the don't-care-driven simplification pass.
#[derive(Debug, Clone, Copy)]
pub struct DontCareOptions {
    /// Use observability don't cares (exact, BDD-based).
    pub use_odc: bool,
    /// Use satisfiability don't cares of the fanins (joint-space rewrite).
    pub use_sdc: bool,
    /// Skip nodes with more fanins than this for the ODC enumeration
    /// (cost is `2^fanins` BDD checks per node).
    pub max_odc_fanins: usize,
    /// Skip SDC rewrites whose joint space exceeds this many variables.
    pub max_sdc_space: usize,
}

impl Default for DontCareOptions {
    fn default() -> DontCareOptions {
        DontCareOptions {
            use_odc: true,
            use_sdc: true,
            max_odc_fanins: 8,
            max_sdc_space: 20,
        }
    }
}

/// Builds BDDs for every node over the primary inputs. Returns the
/// manager and a dense table indexed by [`NodeId::index`].
fn all_node_bdds(net: &Network) -> (Bdd, Vec<Option<Ref>>) {
    let n = net.inputs().len();
    let mut bdd = Bdd::new(n);
    let mut node_fn: Vec<Option<Ref>> = vec![None; net.id_bound()];
    for (i, &pi) in net.inputs().iter().enumerate() {
        node_fn[pi.index()] = Some(bdd.var(i));
    }
    for id in net.topo_order() {
        let node = net.node(id);
        let Some(cover) = node.cover() else { continue };
        let mut acc = bdd.zero();
        for cube in cover.cubes() {
            let mut term = bdd.one();
            for l in cube.lits() {
                let fan = node.fanins()[l.var];
                let f = node_fn[fan.index()].expect("topo order");
                let lit = match l.phase {
                    Phase::Pos => f,
                    Phase::Neg => bdd.not(f),
                };
                term = bdd.and(term, lit);
            }
            acc = bdd.or(acc, term);
        }
        node_fn[id.index()] = Some(acc);
    }
    (bdd, node_fn)
}

/// Observability don't-care cover for `node`, over its own fanin
/// variables: the fanin assignments `c` such that every reaching
/// primary-input assignment is insensitive to the node's value (or no
/// primary-input assignment reaches `c` at all).
///
/// Returns `None` when the node has more fanins than `max_fanins` or is a
/// primary input.
///
/// # Panics
///
/// Panics if the node id is invalid.
#[must_use]
pub fn odc_cover(net: &Network, node: NodeId, max_fanins: usize) -> Option<Cover> {
    let target = net.node(node);
    target.cover()?;
    let k = target.fanins().len();
    if k > max_fanins {
        return None;
    }
    let (mut bdd, node_fn) = all_node_bdds(net);

    // Sensitivity of the outputs to `node`: rebuild each PO function twice
    // — with the node forced to 0 and to 1 — by re-evaluating the
    // transitive fanout cone over the BDDs. External don't cares (the
    // `.exdc` network) mask each output's sensitivity.
    let care = {
        let lo = cone_with_forced(net, &mut bdd, &node_fn, node, false);
        let hi = cone_with_forced(net, &mut bdd, &node_fn, node, true);
        let exdc = external_dc_bdds(net, &mut bdd);
        // care(x) = ∃ output o: o[n=0](x) != o[n=1](x) ∧ ¬exdc_o(x)
        let mut care = bdd.zero();
        for ((name, l), (_, h)) in lo.iter().zip(&hi) {
            let mut diff = bdd.xor(*l, *h);
            if let Some(&dc) = exdc.iter().find_map(|(n, r)| (n == name).then_some(r)) {
                let ndc = bdd.not(dc);
                diff = bdd.and(diff, ndc);
            }
            care = bdd.or(care, diff);
        }
        care
    };

    // Enumerate fanin assignments; DC where no care-point maps onto them.
    let mut dc = Cover::new(k);
    let fanin_fns: Vec<Ref> = target
        .fanins()
        .iter()
        .map(|&f| node_fn[f.index()].expect("built"))
        .collect();
    for m in 0u32..(1u32 << k) {
        // reach(x) = ∧_i (G_i(x) == bit_i)
        let mut reach = bdd.one();
        for (i, &g) in fanin_fns.iter().enumerate() {
            let lit = if (m >> i) & 1 == 1 { g } else { bdd.not(g) };
            reach = bdd.and(reach, lit);
        }
        let reach_and_care = bdd.and(reach, care);
        if reach_and_care == bdd.zero() {
            let mut cube = Cube::universe(k);
            for i in 0..k {
                let phase = if (m >> i) & 1 == 1 {
                    Phase::Pos
                } else {
                    Phase::Neg
                };
                cube.restrict(Lit { var: i, phase });
            }
            dc.push(cube);
        }
    }
    dc.remove_contained_cubes();
    Some(dc)
}

/// BDDs of the external don't-care network's outputs (over the main
/// network's input ordering, matched by name). Empty when there is no
/// `.exdc` or its inputs don't line up.
fn external_dc_bdds(net: &Network, bdd: &mut Bdd) -> Vec<(String, Ref)> {
    let Some(dc) = net.exdc() else {
        return Vec::new();
    };
    let main_inputs: Vec<&str> = net.inputs().iter().map(|&i| net.node(i).name()).collect();
    let mut node_fn: Vec<Option<Ref>> = vec![None; dc.id_bound()];
    for &pi in dc.inputs() {
        let Some(pos) = main_inputs.iter().position(|n| *n == dc.node(pi).name()) else {
            return Vec::new();
        };
        node_fn[pi.index()] = Some(bdd.var(pos));
    }
    for id in dc.topo_order() {
        let node = dc.node(id);
        let Some(cover) = node.cover() else { continue };
        let mut acc = bdd.zero();
        for cube in cover.cubes() {
            let mut term = bdd.one();
            for l in cube.lits() {
                let fan = node.fanins()[l.var];
                let f = node_fn[fan.index()].expect("topo order");
                let lit = match l.phase {
                    Phase::Pos => f,
                    Phase::Neg => bdd.not(f),
                };
                term = bdd.and(term, lit);
            }
            acc = bdd.or(acc, term);
        }
        node_fn[id.index()] = Some(acc);
    }
    dc.outputs()
        .iter()
        .map(|(name, o)| (name.clone(), node_fn[o.index()].expect("built")))
        .collect()
}

/// Re-evaluates all primary outputs with `node` forced to a constant.
fn cone_with_forced(
    net: &Network,
    bdd: &mut Bdd,
    node_fn: &[Option<Ref>],
    node: NodeId,
    value: bool,
) -> Vec<(String, Ref)> {
    let mut forced: Vec<Option<Ref>> = node_fn.to_vec();
    forced[node.index()] = Some(if value { bdd.one() } else { bdd.zero() });
    // Re-evaluate only the transitive fanout of `node`, in topo order.
    let tfo = net.tfo(node);
    for id in net.topo_order() {
        if !tfo.contains(&id) {
            continue;
        }
        let n = net.node(id);
        let Some(cover) = n.cover() else { continue };
        let mut acc = bdd.zero();
        for cube in cover.cubes() {
            let mut term = bdd.one();
            for l in cube.lits() {
                let fan = n.fanins()[l.var];
                let f = forced[fan.index()].expect("topo order");
                let lit = match l.phase {
                    Phase::Pos => f,
                    Phase::Neg => bdd.not(f),
                };
                term = bdd.and(term, lit);
            }
            acc = bdd.or(acc, term);
        }
        forced[id.index()] = Some(acc);
    }
    net.outputs()
        .iter()
        .map(|(name, o)| (name.clone(), forced[o.index()].expect("built")))
        .collect()
}

/// Satisfiability don't-care cover of a node's internal fanins, in the
/// joint space of (fanins ∪ their fanins). Returns the space (node list)
/// and the SDC cover, or `None` if the space would exceed `max_space`.
///
/// # Panics
///
/// Panics if the node id is invalid.
#[must_use]
pub fn sdc_space_and_cover(
    net: &Network,
    node: NodeId,
    max_space: usize,
) -> Option<(Vec<NodeId>, Cover)> {
    let target = net.node(node);
    target.cover()?;
    let mut vars: Vec<NodeId> = target.fanins().to_vec();
    for &f in target.fanins() {
        for &g in net.node(f).fanins() {
            if !vars.contains(&g) {
                vars.push(g);
            }
        }
    }
    vars.sort_unstable();
    if vars.len() > max_space {
        return None;
    }
    let n = vars.len();
    let pos = |x: NodeId| vars.binary_search(&x).expect("in space");

    let mut sdc = Cover::new(n);
    for &f in target.fanins() {
        let fnode = net.node(f);
        let Some(g) = fnode.cover() else { continue };
        // y ⊕ g : y·g' + y'·g over the joint space.
        let map: Vec<usize> = fnode.fanins().iter().map(|&x| pos(x)).collect();
        let g_joint = g.remapped(n, &map);
        let y = pos(f);
        let mut y_cube = Cube::universe(n);
        y_cube.restrict(Lit::pos(y));
        let mut ny_cube = Cube::universe(n);
        ny_cube.restrict(Lit::neg(y));
        let g_compl = g_joint.complement();
        for c in g_compl.cubes() {
            sdc.push(c.and(&y_cube)); // y = 1 while g = 0
        }
        for c in g_joint.cubes() {
            sdc.push(c.and(&ny_cube)); // y = 0 while g = 1
        }
    }
    sdc.remove_contained_cubes();
    Some((vars, sdc))
}

/// Statistics from [`full_simplify`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DontCareStats {
    /// Nodes whose cover shrank using ODCs.
    pub odc_reductions: usize,
    /// Nodes rewritten in the SDC joint space.
    pub sdc_reductions: usize,
    /// Total SOP literals saved.
    pub literals_saved: usize,
}

/// `full_simplify`-style pass: minimizes every internal node against its
/// observability and satisfiability don't cares. Primary-output functions
/// are preserved by construction (and should be re-checked with
/// [`crate::verify::networks_equivalent`] in tests).
pub fn full_simplify(net: &mut Network, opts: &DontCareOptions) -> DontCareStats {
    let mut stats = DontCareStats::default();
    let ids: Vec<NodeId> = net.internal_ids().collect();
    for id in ids {
        if net.node_opt(id).is_none() {
            continue;
        }
        // --- ODC-based, same fanin space ---
        if opts.use_odc {
            if let Some(dc) = odc_cover(net, id, opts.max_odc_fanins) {
                if !dc.is_empty() {
                    let node = net.node(id);
                    let cover = node.cover().expect("internal").clone();
                    let fanins = node.fanins().to_vec();
                    let new_cover = simplify(&cover, &dc, SimplifyOptions::default());
                    if new_cover.literal_count() < cover.literal_count() {
                        stats.literals_saved += cover.literal_count() - new_cover.literal_count();
                        stats.odc_reductions += 1;
                        let support = new_cover.support();
                        let kept: Vec<NodeId> = support.iter().map(|&v| fanins[v]).collect();
                        let mut map = vec![0usize; fanins.len()];
                        for (k, &v) in support.iter().enumerate() {
                            map[v] = k;
                        }
                        let new_cover = new_cover.remapped(kept.len(), &map);
                        net.replace_function(id, kept, new_cover)
                            .expect("odc simplification fits");
                    }
                }
            }
        }
        // --- SDC-based, joint space (literals may move across levels) ---
        if opts.use_sdc {
            if let Some((vars, sdc)) = sdc_space_and_cover(net, id, opts.max_sdc_space) {
                if !sdc.is_empty() {
                    let node = net.node(id);
                    let cover = node.cover().expect("internal").clone();
                    let fanins = node.fanins().to_vec();
                    let n = vars.len();
                    let map: Vec<usize> = fanins
                        .iter()
                        .map(|&x| vars.binary_search(&x).expect("in space"))
                        .collect();
                    let joint = cover.remapped(n, &map);
                    let new_joint = simplify(&joint, &sdc, SimplifyOptions::default());
                    if new_joint.literal_count() < cover.literal_count() {
                        // Check the rewrite does not create a cycle (a
                        // grand-fanin could pass through another path).
                        let support = new_joint.support();
                        let kept: Vec<NodeId> = support.iter().map(|&v| vars[v]).collect();
                        let tfo = net.tfo(id);
                        if kept.iter().any(|f| tfo.contains(f) || *f == id) {
                            continue;
                        }
                        let mut rmap = vec![0usize; n];
                        for (k, &v) in support.iter().enumerate() {
                            rmap[v] = k;
                        }
                        let new_cover = new_joint.remapped(kept.len(), &rmap);
                        stats.literals_saved += cover.literal_count() - new_cover.literal_count();
                        stats.sdc_reductions += 1;
                        net.replace_function(id, kept, new_cover)
                            .expect("sdc simplification fits");
                    }
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::networks_equivalent;
    use boolsubst_cube::parse_sop;

    /// g = ab feeds f = g·a: inside f, g is only observed when a = 1, so
    /// g's cover can drop the literal a via ODCs.
    #[test]
    fn odc_lets_fanin_drop_literal() {
        let mut net = Network::new("odc");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let g = net
            .add_node("g", vec![a, b], parse_sop(2, "ab").expect("p"))
            .expect("g");
        let f = net
            .add_node("f", vec![g, a], parse_sop(2, "ab").expect("p"))
            .expect("f");
        net.add_output("f", f).expect("o");
        let dc = odc_cover(&net, g, 8).expect("small");
        // Fanin assignments with a = 0 are unobservable for g.
        assert!(
            dc.cubes()
                .iter()
                .any(|c| { matches!(c.var_state(0), boolsubst_cube::VarState::Neg) }),
            "expected a'-cubes in the ODC, got {dc}"
        );
        let golden = net.clone();
        let stats = full_simplify(&mut net, &DontCareOptions::default());
        net.check_invariants();
        assert!(networks_equivalent(&golden, &net));
        assert!(stats.literals_saved >= 1, "stats: {stats:?}");
    }

    #[test]
    fn sdc_space_contains_fanin_identities() {
        let mut net = Network::new("sdc");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let g = net
            .add_node("g", vec![a, b], parse_sop(2, "ab").expect("p"))
            .expect("g");
        let f = net
            .add_node("f", vec![g, a], parse_sop(2, "ab'").expect("p"))
            .expect("f");
        net.add_output("f", f).expect("o");
        let (vars, sdc) = sdc_space_and_cover(&net, f, 10).expect("small");
        assert!(vars.contains(&a) && vars.contains(&b) && vars.contains(&g));
        // g ⊕ ab never happens: g·(ab)' and g'·ab are don't cares.
        assert!(!sdc.is_empty());
        // f = g·a' is actually constant 0 (g = ab implies a): full
        // simplify should discover this via the SDCs.
        let golden = net.clone();
        full_simplify(&mut net, &DontCareOptions::default());
        net.check_invariants();
        assert!(networks_equivalent(&golden, &net));
        let f_cover = net.node(f).cover().expect("internal");
        assert!(
            f_cover.is_empty() || f_cover.literal_count() < 2,
            "f should collapse, got {f_cover}"
        );
    }

    #[test]
    fn full_simplify_preserves_random_networks() {
        use boolsubst_network::random_sim_equivalent;
        for seed in [3u64, 7, 11] {
            let mut net = {
                // Small random nets via the workloads generator would add a
                // dev-dependency cycle; build a modest net inline.
                let mut net = Network::new(format!("r{seed}"));
                let a = net.add_input("a").expect("a");
                let b = net.add_input("b").expect("b");
                let c = net.add_input("c").expect("c");
                let d = net.add_input("d").expect("d");
                let g1 = net
                    .add_node("g1", vec![a, b], parse_sop(2, "ab + a'b'").expect("p"))
                    .expect("g1");
                let g2 = net
                    .add_node("g2", vec![b, c], parse_sop(2, "a + b").expect("p"))
                    .expect("g2");
                let g3 = net
                    .add_node("g3", vec![g1, g2, d], parse_sop(3, "ab + c'").expect("p"))
                    .expect("g3");
                let g4 = net
                    .add_node("g4", vec![g1, c], parse_sop(2, "ab'").expect("p"))
                    .expect("g4");
                net.add_output("g3", g3).expect("o");
                net.add_output("g4", g4).expect("o");
                net
            };
            let golden = net.clone();
            full_simplify(&mut net, &DontCareOptions::default());
            net.check_invariants();
            assert!(networks_equivalent(&golden, &net), "seed {seed}");
            assert!(random_sim_equivalent(&golden, &net, 100, seed));
        }
    }

    #[test]
    fn external_dc_enables_more_simplification() {
        use boolsubst_network::parse_blif;
        // f = ab with exdc a'b': full_simplify may expand f towards b
        // (covering the don't care) — outputs must stay equivalent modulo
        // the DC.
        let net = parse_blif(
            ".model e\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.exdc\n.names a b f\n0- 1\n.end\n",
        )
        .expect("parse");
        let golden = net.clone();
        let mut opt = net.clone();
        full_simplify(&mut opt, &DontCareOptions::default());
        opt.check_invariants();
        assert!(
            crate::verify::networks_equivalent_modulo_dc(&golden, &opt),
            "DC-aware simplification left the care envelope"
        );
        // With the whole a'-half unconstrained, f can shrink to literal b.
        let f = opt.find("f").expect("f");
        let lits = opt.node(f).cover().expect("internal").literal_count();
        assert!(lits <= 2, "expected simplification, got {lits} literals");
    }

    #[test]
    fn options_can_disable_each_mechanism() {
        let mut net = Network::new("opts");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let g = net
            .add_node("g", vec![a, b], parse_sop(2, "ab").expect("p"))
            .expect("g");
        let f = net
            .add_node("f", vec![g, a], parse_sop(2, "ab").expect("p"))
            .expect("f");
        net.add_output("f", f).expect("o");
        let mut odc_only = net.clone();
        let s1 = full_simplify(
            &mut odc_only,
            &DontCareOptions {
                use_sdc: false,
                ..Default::default()
            },
        );
        assert_eq!(s1.sdc_reductions, 0);
        let mut sdc_only = net.clone();
        let s2 = full_simplify(
            &mut sdc_only,
            &DontCareOptions {
                use_odc: false,
                ..Default::default()
            },
        );
        assert_eq!(s2.odc_reductions, 0);
    }
}
