//! The incremental substitution engine: a persistent sweep session that
//! replaces the legacy per-pair recomputation with maintained state.
//!
//! [`crate::subst::boolean_substitute_legacy`] answers every structural
//! question from scratch: each (target, divisor) pair recomputes the
//! target's transitive fanout (a full-graph traversal), every target
//! enumerates *all* internal nodes as divisor candidates, and the GDC mode
//! re-materializes the entire network as a gate circuit per pair. All of
//! that is loop-invariant or nearly so, which makes the sweep quadratic in
//! practice.
//!
//! [`SubstEngine`] keeps session state instead:
//!
//! * a [`SideTables`] instance — incrementally maintained fanout lists,
//!   levels, and memoized transitive fanouts, patched locally after each
//!   accepted rewrite rather than recomputed per query;
//! * a **support-overlap candidate index** — the only divisors worth
//!   trying are fanouts of the target's fanins (exactly the legacy
//!   support-overlap filter, applied in reverse), so candidate enumeration
//!   is proportional to the local fanout neighbourhood, not the network;
//! * a per-target **shadow circuit** ([`ShadowBase`]) for the GDC mode —
//!   the network minus the target's cone is materialized once per target
//!   and each attempt patches only the dirty region;
//! * stage-level [`SubstStats`] observability.
//!
//! The engine is pinned to the legacy sweep: it visits the same surviving
//! pairs in the same order and therefore accepts bit-identical rewrites
//! (`tests/engine_parity.rs`). The index only skips pairs the legacy
//! filters reject before any side effect, and after an acceptance the
//! candidate set is re-enumerated from the target's *new* fanins, resuming
//! past the accepted divisor — reproducing the legacy visit sequence
//! exactly.

use crate::candidates::{build_source, CandidateSource, OverlapIndex, SourceCtx};
use crate::metrics::EngineMetrics;
use crate::netcircuit::ShadowBase;
use crate::subst::{
    try_pair_core, Acceptance, Discovery, GdcScope, SubstMode, SubstOptions, SubstStats,
};
use crate::txn::TxnSnapshot;
use boolsubst_algebraic::JointSpace;
use boolsubst_cube::Cover;
use boolsubst_guard::{Guard, GuardDecision};
use boolsubst_metrics::MetricsHandle;
use boolsubst_network::{Network, NodeId, SideTables};
use boolsubst_sim::SimFilter;
use boolsubst_trace::{GuardTier, Outcome, Stage, Tracer};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

pub(crate) fn nanos(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Node ids as the tracer's compact u32 representation.
pub(crate) fn id32(id: NodeId) -> u32 {
    u32::try_from(id.index()).unwrap_or(u32::MAX)
}

/// Cone-restricted guard compare for local-function-preserving rewrites:
/// runs the guard on the single-output TFI cone of every node the rewrite
/// changed (`target` always; `divisor` too when an extended rewrite
/// re-expressed it). The pre-rewrite cone is built straight from the
/// mutated network with the snapshot's captured images as an overlay, so
/// the whole-network clone the fallback path needs is never made here.
/// Returns the combined decision when every cone passes — the least
/// exact of the individual verdicts, so a sampled cone pass is never
/// reported as a proof — or `None` when any cone was refuted, ran out of
/// time, or could not be extracted; the caller falls back to the
/// whole-network compare.
fn cone_checked(
    guard: &mut Guard,
    snap: &TxnSnapshot,
    post: &Network,
    target: NodeId,
    divisor: NodeId,
) -> Option<GuardDecision> {
    let mut decision: Option<GuardDecision> = None;
    for root in [target, divisor] {
        let node = post.node_opt(root)?;
        let changed = match snap.image_of(root) {
            Some((fanins, cover)) => fanins != node.fanins() || Some(cover) != node.cover(),
            None => false, // never captured: the attempt could not touch it
        };
        if !changed {
            continue; // plain substitution: the divisor is untouched
        }
        // Union primary-input support of the pre and post cones, in the
        // shared input order, so the two cones compare positionally.
        let mut support = vec![false; post.id_bound()];
        for n in post.tfi(root) {
            support[n.index()] = true;
        }
        pre_support(post, snap, root, &mut support);
        let inputs: Vec<NodeId> = post
            .inputs()
            .iter()
            .copied()
            .filter(|i| support[i.index()])
            .collect();
        let pre = pre_cone(post, snap, root, &inputs)?;
        let post_cone = post.extract_cone(root, &inputs).ok()?;
        let d = guard.check(&pre, &post_cone);
        if !d.passed() {
            return None;
        }
        decision = Some(match decision {
            Some(prev) if !prev.exact() => prev,
            _ => d,
        });
    }
    decision
}

/// Resolves a node's pre-rewrite definition: the snapshot's captured
/// image when the attempt touched it, the live definition otherwise.
fn pre_def<'a>(
    net: &'a Network,
    snap: &'a TxnSnapshot,
    id: NodeId,
) -> (&'a [NodeId], Option<&'a Cover>) {
    match snap.image_of(id) {
        Some((fanins, cover)) => (fanins, Some(cover)),
        None => {
            let node = net.node(id);
            (node.fanins(), node.cover())
        }
    }
}

/// Marks the primary inputs of `root`'s pre-rewrite cone in `support`
/// (overlay walk over the mutated network).
fn pre_support(net: &Network, snap: &TxnSnapshot, root: NodeId, support: &mut [bool]) {
    let mut seen = vec![false; net.id_bound()];
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if seen[n.index()] {
            continue;
        }
        seen[n.index()] = true;
        let (fanins, cover) = pre_def(net, snap, n);
        if cover.is_none() {
            support[n.index()] = true;
            continue;
        }
        stack.extend(fanins.iter().copied());
    }
}

/// Builds the pre-rewrite TFI cone of `root` directly from the mutated
/// network plus the snapshot overlay — no whole-network clone. Mirrors
/// [`Network::extract_cone`] with definitions resolved through
/// [`pre_def`]. `None` when the walk reaches a primary input missing
/// from `inputs` or cone construction fails.
fn pre_cone(net: &Network, snap: &TxnSnapshot, root: NodeId, inputs: &[NodeId]) -> Option<Network> {
    let mut cone = Network::new(format!("{}:pre-cone", net.name()));
    let mut map: Vec<Option<NodeId>> = vec![None; net.id_bound()];
    for &pi in inputs {
        map[pi.index()] = Some(cone.add_input(net.node(pi).name()).ok()?);
    }
    let mut open = vec![false; net.id_bound()];
    let mut stack = vec![(root, false)];
    while let Some((n, emit)) = stack.pop() {
        let (fanins, cover) = pre_def(net, snap, n);
        if emit {
            let mut mapped = Vec::with_capacity(fanins.len());
            for &f in fanins {
                mapped.push(map[f.index()]?);
            }
            let cover = cover.expect("internal").clone();
            map[n.index()] = Some(cone.add_node(net.node(n).name(), mapped, cover).ok()?);
            continue;
        }
        if open[n.index()] || map[n.index()].is_some() {
            continue;
        }
        cover?; // a primary input the caller did not list
        open[n.index()] = true;
        stack.push((n, true));
        for &f in fanins {
            stack.push((f, false));
        }
    }
    let out = map[root.index()]?;
    cone.add_output(net.node(root).name(), out).ok()?;
    Some(cone)
}

/// Display names for every live node, indexed by raw slot id.
fn node_names(net: &Network) -> Vec<String> {
    let mut names = vec![String::new(); net.id_bound()];
    for id in net.node_ids() {
        names[id.index()] = net.node(id).name().to_string();
    }
    names
}

/// The cached per-target GDC snapshot, tagged with the network version it
/// is valid for.
pub(crate) struct ShadowEntry {
    pub(crate) target: NodeId,
    pub(crate) version: u64,
    pub(crate) base: ShadowBase,
}

/// A persistent Boolean-substitution session over one network.
///
/// Construct once, then [`run`](SubstEngine::run) the sweep; the side
/// tables, candidate index, and shadow circuits live for the whole session
/// and are patched across passes instead of rebuilt.
pub struct SubstEngine<'a> {
    pub(crate) net: &'a mut Network,
    pub(crate) opts: SubstOptions,
    pub(crate) side: SideTables,
    pub(crate) stats: SubstStats,
    pub(crate) shadow: Option<ShadowEntry>,
    /// Simulation-signature pre-filter (built when `opts.sim.enabled`);
    /// patched alongside the side tables after every acceptance.
    pub(crate) sim: Option<SimFilter>,
    /// Structured trace recorder; `None` unless attached via
    /// [`SubstEngine::with_tracer`]. The disabled path does no trace work
    /// beyond these `Option` checks, and attaching a tracer never changes
    /// the accepted rewrites.
    pub(crate) tracer: Option<&'a mut Tracer>,
    /// Post-apply equivalence guard (built when `opts.checked`). A
    /// rewrite the guard refutes is rolled back via [`TxnSnapshot`] and
    /// the pair quarantined; a healthy engine never trips it, so the
    /// checked sweep stays bit-identical to the unchecked one.
    pub(crate) guard: Option<Guard>,
    /// Pairs whose rewrites were refuted or whose attempts faulted; never
    /// retried for the rest of the session.
    pub(crate) quarantine: HashSet<(NodeId, NodeId)>,
    /// Resolved metric instruments; `None` unless attached via
    /// [`SubstEngine::attach_metrics`]. Like the tracer, the detached
    /// path does nothing beyond these `Option` checks and an attached
    /// handle never changes the accepted rewrites.
    pub(crate) metrics: Option<EngineMetrics>,
    /// The divisor-discovery strategy, resolved from
    /// [`SubstOptions::discovery`] at session start (the resolved choice
    /// is in `stats.discovery`). All candidate enumeration goes through
    /// this source; it is notified after every commit so incremental
    /// indexes stay synchronised.
    pub(crate) source: Box<dyn CandidateSource>,
}

/// [`Discovery::Auto`] switches to signature discovery at this many
/// internal nodes — below it the quadratic overlap index is cheap enough
/// and bit-identical to the paper's sweep.
const AUTO_SIGNATURE_NODES: usize = 10_000;

impl<'a> SubstEngine<'a> {
    /// Opens a session: builds the structural side tables for the
    /// network's current state.
    pub fn new(net: &'a mut Network, opts: SubstOptions) -> SubstEngine<'a> {
        let mut opts = opts;
        // Callers who set `deadline` directly (rather than through
        // `with_deadline`) still get the deadline-aware tier C budget.
        if opts.guard.deadline.is_none() {
            opts.guard.deadline = opts.deadline;
        }
        let side = SideTables::build(net);
        let mut stats = SubstStats::default();
        let t0 = Instant::now();
        let sim = opts.sim.enabled.then(|| SimFilter::new(net, &opts.sim));
        if sim.is_some() {
            stats.sim_nanos += nanos(t0);
        }
        let guard = opts.checked.then(|| Guard::new(opts.guard));
        // Resolve the discovery strategy once per session: signature-class
        // discovery keys off the sim filter's signatures, so without a
        // filter it degrades to the overlap index, and `Auto` only pays
        // for bucket maintenance where the quadratic enumeration hurts.
        let discovery = match opts.discovery {
            Discovery::Overlap => Discovery::Overlap,
            Discovery::Signature if sim.is_some() => Discovery::Signature,
            Discovery::Signature => Discovery::Overlap,
            Discovery::Auto => {
                if sim.is_some() && net.internal_ids().count() >= AUTO_SIGNATURE_NODES {
                    Discovery::Signature
                } else {
                    Discovery::Overlap
                }
            }
        };
        stats.discovery = discovery;
        SubstEngine {
            net,
            opts,
            side,
            stats,
            shadow: None,
            sim,
            tracer: None,
            guard,
            quarantine: HashSet::new(),
            metrics: None,
            source: build_source(discovery),
        }
    }

    /// Opens a session with a trace recorder attached: every pair
    /// attempt, pass, shadow build, and sim refinement is recorded on
    /// `tracer`, labelled with the network's node names.
    pub fn with_tracer(
        net: &'a mut Network,
        opts: SubstOptions,
        tracer: &'a mut Tracer,
    ) -> SubstEngine<'a> {
        let mut engine = SubstEngine::new(net, opts);
        tracer.set_node_names(node_names(engine.net));
        tracer.set_discovery(engine.stats.discovery.name());
        engine.tracer = Some(tracer);
        engine
    }

    /// Attaches a metrics registry: resolves every engine instrument
    /// (including per-worker sweep slots for `opts.threads` workers) and
    /// forwards the handle to the guard and sim filter so their tier and
    /// funnel counters land in the same registry. Attachment never
    /// changes the accepted rewrites (pinned by
    /// `metrics_attachment_is_invisible`).
    pub fn attach_metrics(&mut self, handle: &MetricsHandle) {
        let metrics = EngineMetrics::resolve(handle, self.opts.threads.get());
        let nodes = i64::try_from(self.net.node_ids().count()).unwrap_or(i64::MAX);
        metrics.nodes.set(nodes);
        metrics.peak_nodes.max(nodes);
        if let Some(guard) = self.guard.as_mut() {
            guard.attach_metrics(handle);
        }
        if let Some(sim) = self.sim.as_mut() {
            sim.attach_metrics(handle);
        }
        self.metrics = Some(metrics);
    }

    /// Replaces the checked-mode guard with one carried over from an
    /// earlier run, preserving its lazily-built pattern pools and learned
    /// SAT cost model across jobs. The guard adopts this engine's
    /// [`SubstOptions::guard`] config first (dropping stale-shaped pools
    /// if the pool tunables differ). No-op when the engine is unchecked —
    /// an unchecked run has no guard to reuse.
    pub fn install_guard(&mut self, mut guard: Guard) {
        if self.opts.checked {
            guard.adopt_config(self.opts.guard);
            self.guard = Some(guard);
        }
    }

    /// Takes the guard out of a finished checked engine so a caller can
    /// carry its warmed pools into the next run (see
    /// [`SubstEngine::install_guard`]). `None` for unchecked engines.
    pub fn take_guard(&mut self) -> Option<Guard> {
        self.guard.take()
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &SubstStats {
        &self.stats
    }

    /// Runs up to `opts.max_passes` sweeps, stopping early when a pass
    /// accepts nothing. Returns the accumulated statistics.
    pub fn run(&mut self) -> SubstStats {
        for _ in 0..self.opts.max_passes.get() {
            if self.deadline_expired() {
                break;
            }
            self.stats.passes += 1;
            let before = self.stats.substitutions;
            let gain_before = self.stats.literal_gain;
            if let Some(t) = self.tracer.as_deref_mut() {
                t.begin_pass(u32::try_from(self.stats.passes).unwrap_or(u32::MAX));
            }
            if let Some(m) = &self.metrics {
                m.passes.inc();
            }
            self.run_pass();
            if let Some(t) = self.tracer.as_deref_mut() {
                t.end_pass(
                    (self.stats.substitutions - before) as u64,
                    self.stats.literal_gain - gain_before,
                );
            }
            if let Some(m) = self.metrics.as_mut() {
                let stats = self.stats;
                m.sync(&stats);
            }
            if self.stats.substitutions == before {
                break;
            }
        }
        if let Some(sim) = &self.sim {
            self.stats.sim_patterns = sim.patterns();
            self.stats.sim_words = sim.words();
            self.stats.sim_refinements = sim.refinements();
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            // Extended rewrites mint fresh core nodes mid-run; refresh the
            // name table so exported spans label them properly.
            t.set_node_names(node_names(self.net));
        }
        if let Some(m) = self.metrics.as_mut() {
            let stats = self.stats;
            m.sync(&stats);
        }
        self.stats
    }

    /// One sweep over all targets, largest cover first (matching the
    /// legacy order).
    fn run_pass(&mut self) {
        let t0 = Instant::now();
        let mut targets: Vec<NodeId> = self.net.internal_ids().collect();
        targets.sort_by_key(|&id| {
            std::cmp::Reverse(self.net.node(id).cover().map_or(0, Cover::literal_count))
        });
        let dt = nanos(t0);
        self.stats.enumerate_nanos += dt;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.stage(Stage::Enumerate, dt);
        }
        if let Some(m) = &self.metrics {
            m.targets_total
                .set(i64::try_from(targets.len()).unwrap_or(i64::MAX));
            m.targets_done.set(0);
        }
        for target in targets {
            if self.deadline_expired() {
                return;
            }
            if self.net.node_opt(target).is_none() {
                if let Some(m) = &self.metrics {
                    m.targets_done.add(1);
                }
                continue;
            }
            self.visit_target(target);
            if let Some(m) = &self.metrics {
                m.targets_done.add(1);
            }
        }
    }

    /// True (and latches `stats.interrupted`) once the wall-clock
    /// deadline has passed. The sweep only consults this between pair
    /// attempts, so an expiring deadline always leaves a valid network —
    /// just one with fewer rewrites applied.
    pub(crate) fn deadline_expired(&mut self) -> bool {
        if self.stats.interrupted {
            return true;
        }
        if self.opts.deadline.is_some_and(|d| Instant::now() >= d) {
            self.stats.interrupted = true;
        }
        self.stats.interrupted
    }

    /// Adds a pair to the quarantine set (once), counting it in stats.
    pub(crate) fn quarantine_pair(&mut self, target: NodeId, divisor: NodeId) {
        if self.quarantine.insert((target, divisor)) {
            self.stats.quarantined += 1;
        }
    }

    /// Rolls the live network back to `snap` and restores the acceptance
    /// counters captured before the attempt (`stats0`); work counters
    /// (divisions tried, filter tallies, timings) are kept, since that
    /// work really happened.
    fn recover(&mut self, snap: &TxnSnapshot, stats0: &SubstStats) {
        // Rollback only replays covers captured from live nodes and
        // deletes nodes minted after the snapshot; the sweep never
        // deletes pre-existing nodes, so this cannot fail in practice.
        let rolled = snap.rollback(self.net);
        debug_assert!(rolled.is_ok(), "rollback failed: {rolled:?}");
        self.stats.substitutions = stats0.substitutions;
        self.stats.pos_substitutions = stats0.pos_substitutions;
        self.stats.extended_decompositions = stats0.extended_decompositions;
        self.stats.literal_gain = stats0.literal_gain;
    }

    /// Reconstructs the pre-rewrite network (rollback applied to a clone
    /// of the post state) and asks the guard whether the rewrite
    /// preserved every primary-output function. Records the verdict (and
    /// which tier produced it) in the stats block and on the tracer.
    /// `None` means no guard is installed (unchecked run): the rewrite
    /// stands on the division proof alone.
    ///
    /// Outside GDC mode every division strategy is pure cover algebra
    /// over the joint space, so an accepted rewrite preserves each
    /// changed node's function over the primary inputs *exactly* —
    /// comparing just the changed nodes' single-output TFI cones is both
    /// sound (identical cones imply identical outputs, everything else
    /// being untouched) and complete. The guard therefore runs on the
    /// cone pair first; only a cone that fails to pass falls back to the
    /// whole-network compare, which preserves the original verdict
    /// semantics (circuit-level observability may still save a rewrite a
    /// cone compare refutes). GDC rewrites exploit observability across
    /// the whole circuit by design, so they always take the full compare.
    fn guard_verdict(
        &mut self,
        snap: &TxnSnapshot,
        target: NodeId,
        divisor: NodeId,
    ) -> Option<GuardDecision> {
        let guard = self.guard.as_mut()?;
        let t0 = Instant::now();
        let sat_runs0 = guard.sat_runs();
        let cone_pass = (self.opts.mode != SubstMode::ExtendedGdc)
            .then(|| cone_checked(guard, snap, self.net, target, divisor))
            .flatten();
        let decision = match cone_pass {
            Some(d) => d,
            None => {
                // Whole-network fallback: reconstruct the pre-state
                // (rollback applied to a clone of the post state).
                let mut pre = self.net.clone();
                if snap.rollback(&mut pre).is_err() {
                    // No pre-state to compare against: reject conservatively.
                    return Some(GuardDecision::RefutedSim {
                        output: "<pre-state reconstruction failed>".to_string(),
                    });
                }
                guard.check(&pre, self.net)
            }
        };
        self.stats.guard_sat_runs += usize::try_from(guard.sat_runs() - sat_runs0).unwrap_or(0);
        if decision == GuardDecision::PassSampled {
            self.stats.guard_pass_sampled += 1;
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            let tier = GuardTier::from_name(decision.tier_name()).unwrap_or(GuardTier::Sampled);
            t.guard_check(
                id32(target),
                id32(divisor),
                tier,
                decision.passed(),
                decision.exact(),
                nanos(t0),
            );
        }
        Some(decision)
    }

    /// Divisor candidates for `target` from the hard-wired support-overlap
    /// index: the fanouts of its fanins, restricted to ids below `bound`
    /// and above `cursor`, sorted ascending.
    #[deprecated(
        since = "0.7.0",
        note = "use `SubstOptions::with_discovery` and the `crate::candidates::CandidateSource` trait; the engine enumerates through its configured source"
    )]
    #[must_use]
    pub fn candidates(&self, target: NodeId, bound: usize, cursor: Option<NodeId>) -> Vec<NodeId> {
        let ctx = SourceCtx {
            net: &*self.net,
            side: &self.side,
            sim: self.sim.as_ref(),
        };
        OverlapIndex::enumerate(&ctx, target, bound, cursor)
    }

    /// Books into `stats.filtered_by_index` the internal nodes the legacy
    /// sweep would have visited in the same range that the overlap index
    /// skipped.
    #[deprecated(
        since = "0.7.0",
        note = "use `SubstOptions::with_discovery` and the `crate::candidates::CandidateSource` trait; the engine enumerates through its configured source"
    )]
    pub fn count_skipped(&mut self, candidates: usize, bound: usize, cursor: Option<NodeId>) {
        let ctx = SourceCtx {
            net: &*self.net,
            side: &self.side,
            sim: self.sim.as_ref(),
        };
        self.stats.filtered_by_index +=
            OverlapIndex::count_skipped(&ctx, candidates, bound, cursor);
    }

    /// One candidate enumeration through the configured
    /// [`CandidateSource`]: flushes the sim filter first when signature
    /// discovery needs current bucket keys, books the per-source funnel
    /// counters (`discovery_proposed`, `discovery_bucket_hits`,
    /// `filtered_by_index`) and the enumerate stage time.
    pub(crate) fn discover(
        &mut self,
        target: NodeId,
        bound: usize,
        cursor: Option<NodeId>,
    ) -> Vec<NodeId> {
        if self.stats.discovery == Discovery::Signature {
            if let Some(sim) = self.sim.as_mut() {
                // Bucket keys must never bake in half-simulated tail
                // words; fold pending refinement patterns in first.
                let ts = Instant::now();
                sim.flush(self.net);
                let dts = nanos(ts);
                self.stats.sim_nanos += dts;
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.stage(Stage::Sim, dts);
                }
            }
        }
        let t0 = Instant::now();
        let (cands, bucket_hits, skipped) = {
            let ctx = SourceCtx {
                net: &*self.net,
                side: &self.side,
                sim: self.sim.as_ref(),
            };
            let iter = self.source.candidates(&ctx, target, bound, cursor);
            let bucket_hits = iter.bucket_hits();
            let cands = iter.into_vec();
            let skipped = self.source.skipped(&ctx, cands.len(), bound, cursor);
            (cands, bucket_hits, skipped)
        };
        self.stats.discovery_proposed += cands.len();
        self.stats.discovery_bucket_hits += bucket_hits;
        self.stats.filtered_by_index += skipped;
        let dt = nanos(t0);
        self.stats.enumerate_nanos += dt;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.stage(Stage::Enumerate, dt);
        }
        cands
    }

    fn visit_target(&mut self, target: NodeId) {
        if self.opts.threads.get() > 1 {
            // Epoch-parallel speculative sweep; bit-identical rewrites,
            // see `crate::parallel`.
            return self.visit_target_parallel(target);
        }
        let bound = self.net.id_bound();
        match self.opts.acceptance {
            Acceptance::FirstGain => {
                let mut cursor: Option<NodeId> = None;
                'resume: loop {
                    let cands = self.discover(target, bound, cursor);
                    for divisor in cands {
                        if self.deadline_expired() {
                            return;
                        }
                        let before = self.stats.substitutions;
                        self.attempt(target, divisor);
                        if self.stats.substitutions != before {
                            // The target's fanins changed: re-enumerate
                            // candidates and resume past this divisor,
                            // like the legacy loop continuing in place.
                            cursor = Some(divisor);
                            continue 'resume;
                        }
                    }
                    break;
                }
            }
            Acceptance::BestGain => {
                let cands = self.discover(target, bound, None);
                // Dry-run every candidate on a scratch copy, then apply
                // only the best one for real.
                let mut best: Option<(NodeId, i64)> = None;
                for &divisor in &cands {
                    if self.deadline_expired() {
                        return;
                    }
                    let mut scratch = self.net.clone();
                    let mut scratch_stats = SubstStats::default();
                    let dry = if self.opts.checked {
                        // Dry runs mutate only the scratch clone, so a
                        // panicking attempt is discarded wholesale; the
                        // pair is quarantined so the real sweep skips it.
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            crate::subst::try_pair(
                                &mut scratch,
                                target,
                                divisor,
                                &self.opts,
                                &mut scratch_stats,
                            )
                        }));
                        match caught {
                            Ok(gain) => gain,
                            Err(_) => {
                                self.stats.engine_faults += 1;
                                self.quarantine_pair(target, divisor);
                                None
                            }
                        }
                    } else {
                        crate::subst::try_pair(
                            &mut scratch,
                            target,
                            divisor,
                            &self.opts,
                            &mut scratch_stats,
                        )
                    };
                    if let Some(gain) = dry {
                        if best.is_none_or(|(_, g)| gain > g) {
                            best = Some((divisor, gain));
                        }
                    }
                }
                if let Some((divisor, _)) = best {
                    self.attempt(target, divisor);
                }
            }
        }
    }

    /// Rebuilds the per-target shadow snapshot if the cached one is for a
    /// different target or a stale network version.
    fn ensure_shadow(&mut self, target: NodeId) {
        let valid = self
            .shadow
            .as_ref()
            .is_some_and(|e| e.target == target && e.version == self.net.version());
        if valid {
            self.stats.shadow_cache_hits += 1;
            return;
        }
        let t0 = Instant::now();
        let tfo = self.side.tfo(self.net, target).clone();
        let base = ShadowBase::prepare(self.net, target, &tfo);
        self.shadow = Some(ShadowEntry {
            target,
            version: self.net.version(),
            base,
        });
        self.stats.shadow_cache_misses += 1;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.shadow_build(id32(target), nanos(t0));
        }
    }

    /// One engine-side pair attempt: cached filters, then the shared
    /// division core, then local side-table patching on acceptance.
    /// Books a filter reject: counts the stage time and, when tracing,
    /// closes the open pair span with the reject outcome.
    fn filter_reject(&mut self, t0: Instant, outcome: Outcome) {
        let dt = nanos(t0);
        self.stats.filter_nanos += dt;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.stage(Stage::Filter, dt);
            t.end_pair_with(outcome, 0);
        }
        if let Some(m) = &self.metrics {
            m.pair_ns.observe(dt);
        }
    }

    pub(crate) fn attempt(&mut self, target: NodeId, divisor: NodeId) -> Option<i64> {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.begin_pair(id32(target), id32(divisor));
        }
        if let Some(m) = &self.metrics {
            m.pairs.inc();
        }
        let t0 = Instant::now();
        self.stats.candidates_enumerated += 1;
        if self.quarantine.contains(&(target, divisor)) {
            self.filter_reject(t0, Outcome::GuardRejected);
            return None;
        }
        // Candidates are fanouts, hence internal; only the self-pair and
        // existing-fanin checks remain from the legacy structural filter.
        if target == divisor || self.net.node(target).fanins().contains(&divisor) {
            self.stats.filtered_structural += 1;
            self.filter_reject(t0, Outcome::RejectedStructural);
            return None;
        }
        if self.side.in_tfo(self.net, divisor, target) {
            self.stats.filtered_tfo += 1;
            self.filter_reject(t0, Outcome::RejectedTfo);
            return None;
        }
        // Candidates come from fanout lists, so a missing cover means the
        // index and the network disagree — reject rather than panic.
        let Some(d_cover_len) = self.net.node(divisor).cover().map(Cover::len) else {
            self.stats.filtered_structural += 1;
            self.filter_reject(t0, Outcome::RejectedStructural);
            return None;
        };
        if d_cover_len == 0 || d_cover_len > self.opts.max_divisor_cubes.get() {
            self.stats.filtered_divisor_size += 1;
            self.filter_reject(t0, Outcome::RejectedDivisorSize);
            return None;
        }
        let space = JointSpace::union_of_fanins(self.net, &[target, divisor]);
        if space.len() > self.opts.max_joint_vars {
            self.stats.filtered_joint_space += 1;
            self.filter_reject(t0, Outcome::RejectedJointSpace);
            return None;
        }
        let dt = nanos(t0);
        self.stats.filter_nanos += dt;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.stage(Stage::Filter, dt);
        }

        if self.opts.mode == SubstMode::ExtendedGdc {
            self.ensure_shadow(target);
        }
        let mut sim_fault = false;
        if let Some(sim) = self.sim.as_mut() {
            // Fold any patterns harvested by earlier refinements into the
            // signatures before they are screened against.
            let ts = Instant::now();
            sim.flush(self.net);
            if self.opts.checked {
                #[cfg(feature = "chaos")]
                if let Some(r) = crate::chaos::should_poison_signature() {
                    sim.chaos_poison_signature(target, usize::try_from(r).unwrap_or(0));
                }
                // Integrity audit: recompute this pair's signature rows
                // from their fanins and compare against the cache. A
                // mismatch means the incremental patching went wrong
                // somewhere — repair by rebuilding from scratch.
                if !sim.audit(self.net, &[target, divisor]) {
                    sim.rebuild(self.net);
                    sim_fault = true;
                }
            }
            let dts = nanos(ts);
            self.stats.sim_nanos += dts;
            if let Some(t) = self.tracer.as_deref_mut() {
                t.stage(Stage::Sim, dts);
            }
        }
        if sim_fault {
            self.stats.engine_faults += 1;
            self.quarantine_pair(target, divisor);
            if let Some(t) = self.tracer.as_deref_mut() {
                t.end_pair_with(Outcome::EngineFault, 0);
            }
            return None;
        }
        // The pair survived every cheap filter: the division proof runs.
        self.stats.discovery_proofs_run += 1;
        let t1 = Instant::now();
        let v0 = self.net.version();
        let old_tgt = self.net.node(target).fanins().to_vec();
        let old_div = self.net.node(divisor).fanins().to_vec();
        let old_bound = self.net.id_bound();
        let false_passes0 = self.stats.sim_false_passes;
        let sim_nanos0 = self.stats.sim_nanos;
        let rar_checks0 = self.stats.rar_checks;
        // Checked mode snapshots the minimal pre-state (the two covers
        // this pair can rewrite plus the id bound for minted nodes) so a
        // faulting or guard-refuted attempt can be undone in O(changed).
        let snap = self
            .opts
            .checked
            .then(|| TxnSnapshot::capture(self.net, &[target, divisor]));
        let stats0 = self.stats;
        let mut verdict: Option<Outcome> = None;
        let mut result = {
            let mut core = || {
                let scope = match &self.shadow {
                    Some(e) if self.opts.mode == SubstMode::ExtendedGdc => {
                        GdcScope::Shadow(&e.base)
                    }
                    _ => GdcScope::Rebuild,
                };
                try_pair_core(
                    &mut *self.net,
                    target,
                    divisor,
                    &space,
                    &self.opts,
                    &mut self.stats,
                    &scope,
                    self.sim.as_ref(),
                    self.tracer.as_deref_mut(),
                )
            };
            if snap.is_some() {
                match catch_unwind(AssertUnwindSafe(core)) {
                    Ok(r) => r,
                    Err(_) => {
                        verdict = Some(Outcome::EngineFault);
                        None
                    }
                }
            } else {
                core()
            }
        };
        if let Some(snap) = &snap {
            if verdict == Some(Outcome::EngineFault) {
                // A panic escaped the division core, possibly mid-rewrite:
                // restore the pre-state and never retry the pair.
                self.recover(snap, &stats0);
                self.stats.engine_faults += 1;
                self.quarantine_pair(target, divisor);
            } else if result.is_some() {
                match self.guard_verdict(snap, target, divisor) {
                    Some(GuardDecision::OutOfTime) => {
                        // The remaining deadline window cannot afford an
                        // exact verdict: undo the unproven rewrite and
                        // latch the interrupt. The pair is innocent (no
                        // quarantine, no rejection count) — the clock ran
                        // out, and the sweep exits with a verified
                        // partial result as if the deadline had expired
                        // between attempts.
                        self.recover(snap, &stats0);
                        self.stats.interrupted = true;
                        verdict = Some(Outcome::GuardRejected);
                        result = None;
                    }
                    Some(decision) if !decision.passed() => {
                        // The rewrite changed a primary-output function:
                        // undo it and quarantine the pair, then keep
                        // sweeping.
                        self.recover(snap, &stats0);
                        self.stats.guard_rejections += 1;
                        self.quarantine_pair(target, divisor);
                        verdict = Some(Outcome::GuardRejected);
                        result = None;
                    }
                    _ => {}
                }
            }
        }
        let dt1 = nanos(t1);
        self.stats.divide_nanos += dt1;
        if let Some(t) = self.tracer.as_deref_mut() {
            // The core's screen time lands in `sim_nanos`; attribute it to
            // the sim stage and only the remainder to division proper.
            let sim_delta = self.stats.sim_nanos - sim_nanos0;
            t.stage(Stage::Sim, sim_delta);
            t.stage(Stage::Divide, dt1.saturating_sub(sim_delta));
            t.set_rar_checks((self.stats.rar_checks - rar_checks0) as u64);
        }

        if result.is_none() && self.stats.sim_false_passes > false_passes0 {
            // Counterexample-guided refinement: the screen passed a pair
            // the proofs rejected — try to harvest a distinguishing
            // pattern so similar pairs are refuted without proof work.
            if let Some(sim) = self.sim.as_mut() {
                let ts = Instant::now();
                let refinements0 = sim.refinements();
                sim.refine_from_false_pass(self.net, target, divisor);
                let dts = nanos(ts);
                self.stats.sim_nanos += dts;
                let grew = sim.refinements() > refinements0;
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.stage(Stage::Sim, dts);
                    t.sim_refine(id32(target), id32(divisor), grew, dts);
                }
            }
        }

        if self.net.version() != v0 {
            let t2 = Instant::now();
            self.side.sync_new_nodes(self.net);
            let div_changed = self.net.node(divisor).fanins() != old_div.as_slice();
            if div_changed {
                self.side.apply_replace(self.net, divisor, &old_div);
            }
            self.side.apply_replace(self.net, target, &old_tgt);
            if div_changed || self.net.id_bound() != old_bound {
                // Extended rewrite: snapshot nodes changed, drop the base.
                self.shadow = None;
            } else if let Some(e) = &mut self.shadow {
                // Target-only rewrite: the snapshot excludes the target,
                // so it is still exact — just retag its version.
                e.version = self.net.version();
            }
            let dt2 = nanos(t2);
            self.stats.apply_nanos += dt2;
            if let Some(t) = self.tracer.as_deref_mut() {
                t.stage(Stage::Apply, dt2);
            }
            let mut changed: Vec<NodeId> = Vec::new();
            if let Some(sim) = self.sim.as_mut() {
                let ts = Instant::now();
                changed = sim.patch(self.net, &self.side, &[target, divisor]);
                let dts = nanos(ts);
                self.stats.sim_nanos += dts;
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.stage(Stage::Sim, dts);
                }
            }
            // Carry the discovery source across the edit (commit or
            // recovered rollback alike — the changed-row list is exact
            // either way), then spot-audit the touched rows in checked
            // mode the same way the sim table is audited: a key mismatch
            // is a fault, and the source has self-repaired.
            let ctx = SourceCtx {
                net: &*self.net,
                side: &self.side,
                sim: self.sim.as_ref(),
            };
            self.source.note_commit(&ctx, v0, &changed);
            if self.opts.checked {
                let mut rows = changed.clone();
                rows.extend([target, divisor]);
                if !self.source.audit(&ctx, &rows) {
                    self.stats.engine_faults += 1;
                }
            }
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            match verdict {
                // The core may have noted an acceptance before the guard
                // or panic handler overturned it; the explicit close wins.
                Some(outcome) => t.end_pair_with(outcome, 0),
                None => t.end_pair(result.unwrap_or(0)),
            }
        }
        if result.is_some() {
            self.stats.discovery_accepted += 1;
        }
        if let Some(m) = &self.metrics {
            m.pair_ns.observe(nanos(t0));
            if let Some(gain) = result {
                m.accepts.inc();
                m.literal_gain.add(gain);
                let nodes = i64::try_from(self.net.node_ids().count()).unwrap_or(i64::MAX);
                m.nodes.set(nodes);
                m.peak_nodes.max(nodes);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::subst::boolean_substitute_legacy;
    use boolsubst_cube::parse_sop;
    use boolsubst_network::write_blif;

    fn small_net() -> Network {
        let mut net = Network::new("engine_t");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let c = net.add_input("c").expect("c");
        let f = net
            .add_node(
                "f",
                vec![a, b, c],
                parse_sop(3, "ab + ac + bc'").expect("p"),
            )
            .expect("f");
        let d = net
            .add_node("d", vec![a, b, c], parse_sop(3, "ab + c").expect("p"))
            .expect("d");
        net.add_output("f", f).expect("o");
        net.add_output("d", d).expect("o");
        net
    }

    #[test]
    fn engine_matches_legacy_on_paper_example() {
        for opts in crate::subst::all_configs() {
            let mut legacy_net = small_net();
            let legacy = boolean_substitute_legacy(&mut legacy_net, &opts);
            let mut engine_net = small_net();
            let engine = Session::new(&mut engine_net, opts.clone()).run();
            assert_eq!(
                engine.substitutions, legacy.substitutions,
                "{:?}",
                opts.mode
            );
            assert_eq!(engine.literal_gain, legacy.literal_gain, "{:?}", opts.mode);
            assert_eq!(
                engine.divisions_tried, legacy.divisions_tried,
                "{:?}",
                opts.mode
            );
            assert_eq!(
                write_blif(&engine_net),
                write_blif(&legacy_net),
                "{:?} rewrites diverged",
                opts.mode
            );
        }
    }

    #[test]
    fn engine_reports_stage_stats() {
        let mut net = small_net();
        let stats = SubstEngine::new(&mut net, SubstOptions::basic()).run();
        assert!(stats.passes >= 1);
        assert!(stats.candidates_enumerated >= 1);
        assert!(stats.divisions_tried >= 1);
        // Display formats without panicking and mentions the key stages.
        let text = stats.to_string();
        assert!(text.contains("divisions tried"));
        assert!(text.contains("literal gain"));
    }
}
