//! Transactional snapshots for checked substitution.
//!
//! A [`TxnSnapshot`] captures, before a pair attempt is allowed to mutate
//! the network, exactly the state that attempt may touch: the target's and
//! divisor's fanins + covers plus the slot-table bound (so freshly minted
//! helper nodes from an extended decomposition can be deleted again). That
//! keeps both capture and [`TxnSnapshot::rollback`] O(changed nodes) — the
//! rest of the network is never copied.
//!
//! Rollback is non-consuming: the guarded engine first rolls a snapshot
//! back *into a clone* to reconstruct the pre-state for the guard's
//! equivalence check, and — only if the guard refutes the move — rolls the
//! same snapshot back on the real network.

use boolsubst_cube::Cover;
use boolsubst_network::{Network, NetworkError, NodeId};

/// Pre-image of one internal node: enough to restore it bit-exactly.
#[derive(Debug, Clone)]
struct NodeImage {
    id: NodeId,
    fanins: Vec<NodeId>,
    cover: Cover,
}

/// Minimal journal of the state one substitution attempt may mutate.
#[derive(Debug, Clone)]
pub struct TxnSnapshot {
    /// Network version at capture time (attempt-did-nothing detection).
    version: u64,
    /// Slot-table bound at capture time: any live node at index ≥ this was
    /// minted by the attempt and must be deleted on rollback.
    id_bound: usize,
    /// Pre-images of the nodes the attempt may rewrite.
    images: Vec<NodeImage>,
}

impl TxnSnapshot {
    /// Captures pre-images of `ids` (primary inputs and duplicates are
    /// skipped) plus the slot-table bound.
    #[must_use]
    pub fn capture(net: &Network, ids: &[NodeId]) -> TxnSnapshot {
        let mut images: Vec<NodeImage> = Vec::with_capacity(ids.len());
        for &id in ids {
            if images.iter().any(|img| img.id == id) {
                continue;
            }
            let node = net.node(id);
            let Some(cover) = node.cover() else {
                continue; // primary input: substitution never rewrites it
            };
            images.push(NodeImage {
                id,
                fanins: node.fanins().to_vec(),
                cover: cover.clone(),
            });
        }
        TxnSnapshot {
            version: net.version(),
            id_bound: net.id_bound(),
            images,
        }
    }

    /// Network version at capture time.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Captured pre-image of `id`: its fanins and cover at capture time.
    /// `None` when `id` was not captured — the attempt was not allowed to
    /// touch it, so its live definition *is* its pre-image. Lets the
    /// guard resolve pre-rewrite definitions as an overlay over the
    /// mutated network without cloning it.
    #[must_use]
    pub fn image_of(&self, id: NodeId) -> Option<(&[NodeId], &Cover)> {
        self.images
            .iter()
            .find(|img| img.id == id)
            .map(|img| (img.fanins.as_slice(), &img.cover))
    }

    /// Whether `net` has been mutated since this snapshot was captured.
    #[must_use]
    pub fn dirty(&self, net: &Network) -> bool {
        net.version() != self.version
    }

    /// Restores every snapshotted node and deletes nodes minted after the
    /// capture, leaving `net` function-identical to the captured state.
    /// Non-consuming, so the same snapshot can be replayed onto a clone
    /// (pre-state reconstruction) and onto the real network (undo).
    ///
    /// # Errors
    ///
    /// Returns the first unrecoverable [`NetworkError`] if the network has
    /// diverged beyond what this snapshot journals (e.g. a snapshotted node
    /// was deleted, or a minted node was exported as a primary output) —
    /// which no engine code path does.
    pub fn rollback(&self, net: &mut Network) -> Result<(), NetworkError> {
        // Restore functions first: minted helper nodes may still be
        // referenced by the mutated divisor, so they only become removable
        // once the original fanins are back. Restores can depend on each
        // other through the cycle check, so iterate to a fixpoint.
        let mut pending: Vec<&NodeImage> = self.images.iter().collect();
        while !pending.is_empty() {
            let before = pending.len();
            let mut failed: Option<NetworkError> = None;
            pending.retain(|img| {
                match net.replace_function(img.id, img.fanins.clone(), img.cover.clone()) {
                    Ok(()) => false,
                    Err(e) => {
                        failed = Some(e);
                        true
                    }
                }
            });
            if pending.len() == before {
                return Err(failed.expect("non-empty pending implies an error"));
            }
        }

        // Delete minted nodes, newest first so consumers go before
        // producers (helper chains are appended in dependency order).
        let mut minted: Vec<NodeId> = net
            .internal_ids()
            .filter(|id| id.index() >= self.id_bound)
            .collect();
        minted.sort_by_key(|id| std::cmp::Reverse(id.index()));
        for id in minted {
            net.remove_node(id)?;
        }
        net.truncate_dead_tail(self.id_bound);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_cube::parse_sop;
    use boolsubst_network::write_blif;

    /// f = ab + ac, d = b + c: the paper's running example, small enough
    /// to mutate by hand in every shape the engine produces.
    fn sample() -> (Network, NodeId, NodeId) {
        let mut net = Network::new("txn");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let c = net.add_input("c").expect("c");
        let f = net
            .add_node("f", vec![a, b, c], parse_sop(3, "ab + ac").expect("f"))
            .expect("f");
        let d = net
            .add_node("d", vec![b, c], parse_sop(2, "a + b").expect("d"))
            .expect("d");
        net.add_output("f", f).expect("of");
        net.add_output("d", d).expect("od");
        (net, f, d)
    }

    #[test]
    fn rollback_restores_a_sop_rewrite() {
        let (mut net, f, d) = sample();
        let golden = write_blif(&net);
        let snap = TxnSnapshot::capture(&net, &[f, d]);
        assert!(!snap.dirty(&net));

        // SOP-substitution shape: f := a·d.
        let a = net.inputs()[0];
        net.replace_function(f, vec![a, d], parse_sop(2, "ab").expect("q"))
            .expect("rewrite");
        assert!(snap.dirty(&net));

        snap.rollback(&mut net).expect("rollback");
        assert_eq!(write_blif(&net), golden);
        net.check_invariants();
    }

    #[test]
    fn rollback_deletes_minted_nodes_and_restores_id_bound() {
        let (mut net, f, d) = sample();
        let golden = write_blif(&net);
        let bound = net.id_bound();
        let snap = TxnSnapshot::capture(&net, &[f, d]);

        // Extended-decomposition shape: mint a helper, rewire the divisor
        // through it, then rewrite the target over the divisor.
        let a = net.inputs()[0];
        let b = net.inputs()[1];
        let fresh = net
            .add_node(net.fresh_name(), vec![a, b], parse_sop(2, "ab").expect("h"))
            .expect("fresh");
        net.replace_function(d, vec![fresh, a], parse_sop(2, "a + b").expect("d2"))
            .expect("rewire divisor");
        net.replace_function(f, vec![d, a], parse_sop(2, "ab").expect("f2"))
            .expect("rewire target");
        assert!(net.id_bound() > bound);

        snap.rollback(&mut net).expect("rollback");
        assert_eq!(write_blif(&net), golden);
        assert_eq!(net.id_bound(), bound, "fresh-name determinism restored");
        net.check_invariants();

        // The snapshot survives replay: rolling back an already-restored
        // network is a function-preserving no-op.
        snap.rollback(&mut net).expect("replay");
        assert_eq!(write_blif(&net), golden);
    }

    #[test]
    fn rollback_into_clone_reconstructs_pre_state() {
        let (mut net, f, d) = sample();
        let golden = write_blif(&net);
        let snap = TxnSnapshot::capture(&net, &[f, d]);
        let a = net.inputs()[0];
        net.replace_function(f, vec![a, d], parse_sop(2, "ab").expect("q"))
            .expect("rewrite");

        // The guarded engine's pre-state reconstruction: clone the mutated
        // network, roll the clone back, leave the original untouched.
        let mutated = write_blif(&net);
        let mut pre = net.clone();
        snap.rollback(&mut pre).expect("rollback clone");
        assert_eq!(write_blif(&pre), golden);
        assert_eq!(write_blif(&net), mutated, "original left mutated");
    }

    #[test]
    fn capture_skips_inputs_and_duplicates() {
        let (net, f, _) = sample();
        let a = net.inputs()[0];
        let snap = TxnSnapshot::capture(&net, &[a, f, f]);
        assert_eq!(snap.images.len(), 1, "input and duplicate skipped");
    }
}
