//! Basic Boolean division `f = d·q + r` via redundancy addition and
//! removal, at the level of covers (Section III of the paper).
//!
//! The three steps:
//! 1. split the dividend into the *kept* part `f'` (cubes contained by
//!    some divisor cube) and the remainder `r` — after this, `d` is an SOS
//!    of `f'`;
//! 2. AND `f'` with `d` — redundant *a priori* by Lemma 1, no redundancy
//!    test needed;
//! 3. run ATPG-style redundancy removal inside the `f'` region; whatever
//!    survives is the quotient `q`.

use crate::sos::is_sos_of;
use boolsubst_atpg::{
    remove_redundant_wires_with, CandidateWire, Circuit, GateId, ImplyOptions, RemovalOptions,
};
use boolsubst_cube::{Cover, Cube, Lit, Phase};

/// Options controlling a division run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DivisionOptions {
    /// Implication options (learning depth) used during redundancy
    /// removal.
    pub imply: ImplyOptions,
    /// Extra removal passes over surviving candidate wires (each removal
    /// can expose more redundancy). 0 behaves as 1.
    pub max_passes: usize,
    /// When non-zero, undecided wires get a bounded *exact* test search
    /// with this decision budget (the extreme end of the paper's
    /// implication-effort knob).
    pub exact_budget: usize,
    /// When non-zero, redundancy removal stops after this many fault
    /// checks per division (sound early exit: the quotient is merely less
    /// simplified). 0 means unlimited.
    pub max_checks: usize,
}

impl DivisionOptions {
    /// Paper configuration: plain direct implications, two passes.
    #[must_use]
    pub fn paper_default() -> DivisionOptions {
        DivisionOptions {
            imply: ImplyOptions::default(),
            max_passes: 2,
            exact_budget: 0,
            max_checks: 0,
        }
    }

    /// Exact configuration: implications plus a bounded exact search for
    /// every undecided wire. Slowest, best quality; exact on small cones.
    #[must_use]
    pub fn exact(budget: usize) -> DivisionOptions {
        DivisionOptions {
            imply: ImplyOptions::default(),
            max_passes: 2,
            exact_budget: budget,
            max_checks: 0,
        }
    }
}

/// Result of a basic Boolean division `f = d·q + r`.
#[derive(Debug, Clone)]
pub struct DivisionResult {
    /// The quotient `q` (empty cover means the division failed — no cube
    /// of `f` was contained by a divisor cube).
    pub quotient: Cover,
    /// The remainder `r`.
    pub remainder: Cover,
    /// Number of wires removed by the RAR step.
    pub wires_removed: usize,
    /// Number of fault checks performed.
    pub checks: usize,
    /// Whether redundancy removal stopped early on the per-division check
    /// budget ([`DivisionOptions::max_checks`]).
    pub budget_exhausted: bool,
}

impl DivisionResult {
    /// True if the division produced a usable quotient.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        !self.quotient.is_empty()
    }

    /// Literal cost of the divided form: `lits(q) + |q| + lits(r)` in SOP
    /// terms, counting one literal per quotient cube for the divisor
    /// input.
    #[must_use]
    pub fn sop_cost(&self) -> usize {
        self.quotient.literal_count() + self.quotient.len() + self.remainder.literal_count()
    }

    /// Exact check that `d·q + r ≡ f` (used in tests and debug runs).
    #[must_use]
    pub fn verify(&self, f: &Cover, d: &Cover) -> bool {
        let mut rebuilt = self.quotient.and(d);
        rebuilt.extend_cover(&self.remainder);
        rebuilt.equivalent(f)
    }
}

/// The gate-level region built for a division, retaining the cube/literal
/// correspondence needed to read the simplified quotient back.
pub(crate) struct Region {
    pub circuit: Circuit,
    /// Literal input gates: `lit_gate[v]` = (positive gate, negative gate).
    pub lit_gates: Vec<(GateId, GateId)>,
    /// AND gate of each kept cube, aligned with `kept.cubes()`.
    pub kept_gates: Vec<GateId>,
    /// OR gate over the kept cubes (`f'`).
    pub fprime_or: GateId,
    /// The bold AND joining `f'` and the divisor.
    pub bold: GateId,
}

impl Region {
    /// Builds the specialized division configuration: literals, divisor
    /// cubes + OR, kept cubes + OR, bold AND, remainder cubes and the
    /// output OR (observation point).
    pub(crate) fn build(kept: &Cover, divisor: &Cover, remainder: &Cover) -> Region {
        let n = kept.num_vars();
        let mut circuit = Circuit::new();
        let mut lit_gates = Vec::with_capacity(n);
        for _ in 0..n {
            let p = circuit.add_input();
            let ng = circuit.add_not(p);
            lit_gates.push((p, ng));
        }
        let lit_gate = |lg: &Vec<(GateId, GateId)>, l: Lit| match l.phase {
            Phase::Pos => lg[l.var].0,
            Phase::Neg => lg[l.var].1,
        };

        let divisor_gates: Vec<GateId> = divisor
            .cubes()
            .iter()
            .map(|c| {
                let ins = c.lits().map(|l| lit_gate(&lit_gates, l)).collect();
                circuit.add_and(ins)
            })
            .collect();
        let d_or = circuit.add_or(divisor_gates.clone());

        let kept_gates: Vec<GateId> = kept
            .cubes()
            .iter()
            .map(|c| {
                let ins = c.lits().map(|l| lit_gate(&lit_gates, l)).collect();
                circuit.add_and(ins)
            })
            .collect();
        let fprime_or = circuit.add_or(kept_gates.clone());
        let bold = circuit.add_and(vec![fprime_or, d_or]);

        let mut f_out_ins = vec![bold];
        for c in remainder.cubes() {
            let ins = c.lits().map(|l| lit_gate(&lit_gates, l)).collect();
            f_out_ins.push(circuit.add_and(ins));
        }
        let f_out = circuit.add_or(f_out_ins);
        circuit.add_output(f_out);

        let _ = divisor_gates;
        Region {
            circuit,
            lit_gates,
            kept_gates,
            fprime_or,
            bold,
        }
    }

    /// Candidate wires inside the `f'` region: every literal wire into a
    /// kept cube, every cube wire into the `f'` OR, and the `f'` wire into
    /// the bold AND (its removal means `q = 1`).
    pub(crate) fn candidate_wires(&self, kept: &Cover) -> Vec<CandidateWire> {
        let mut out = Vec::new();
        for (cube, &gate) in kept.cubes().iter().zip(&self.kept_gates) {
            for l in cube.lits() {
                let driver = match l.phase {
                    Phase::Pos => self.lit_gates[l.var].0,
                    Phase::Neg => self.lit_gates[l.var].1,
                };
                out.push(CandidateWire { sink: gate, driver });
            }
            out.push(CandidateWire {
                sink: self.fprime_or,
                driver: gate,
            });
        }
        out.push(CandidateWire {
            sink: self.bold,
            driver: self.fprime_or,
        });
        out
    }

    /// Reads the simplified quotient back from the circuit.
    pub(crate) fn read_quotient(&self, num_vars: usize) -> Cover {
        // If the f' wire into the bold AND was removed, the quotient is 1.
        if !self.circuit.fanins(self.bold).contains(&self.fprime_or) {
            return Cover::one(num_vars);
        }
        let mut q = Cover::new(num_vars);
        for &cube_gate in self.circuit.fanins(self.fprime_or) {
            let mut cube = Cube::universe(num_vars);
            for &lit_in in self.circuit.fanins(cube_gate) {
                // Map the gate back to a literal.
                if let Some(v) = self.lit_gates.iter().position(|&(p, _)| p == lit_in) {
                    cube.restrict(Lit::pos(v));
                } else if let Some(v) = self.lit_gates.iter().position(|&(_, ng)| ng == lit_in) {
                    cube.restrict(Lit::neg(v));
                }
            }
            q.push(cube);
        }
        q.remove_contained_cubes();
        q
    }
}

/// Splits `f` into (kept, remainder) with respect to divisor `d`: kept
/// cubes are those contained by at least one divisor cube, so `d` is an
/// SOS of the kept part (Lemma 1 applies).
#[must_use]
pub fn split_remainder(f: &Cover, d: &Cover) -> (Cover, Cover) {
    let n = f.num_vars();
    let mut kept = Cover::new(n);
    let mut remainder = Cover::new(n);
    for c in f.cubes() {
        if d.some_cube_contains(c) {
            kept.push(c.clone());
        } else {
            remainder.push(c.clone());
        }
    }
    (kept, remainder)
}

/// Basic Boolean division of cover `f` by divisor cover `d` in a shared
/// variable space, per Section III-B of the paper. The implications are
/// confined to the division region (the paper's local configuration).
///
/// # Panics
///
/// Panics if the universes differ or `d` is empty.
#[must_use]
pub fn basic_divide_covers(f: &Cover, d: &Cover, opts: &DivisionOptions) -> DivisionResult {
    assert_eq!(f.num_vars(), d.num_vars(), "universe mismatch");
    assert!(!d.is_empty(), "division by the empty cover");
    let (kept, remainder) = split_remainder(f, d);
    if kept.is_empty() {
        return DivisionResult {
            quotient: Cover::new(f.num_vars()),
            remainder,
            wires_removed: 0,
            checks: 0,
            budget_exhausted: false,
        };
    }
    debug_assert!(
        is_sos_of(d, &kept),
        "divisor must be an SOS of the kept part"
    );

    let mut region = Region::build(&kept, d, &remainder);
    let candidates = region.candidate_wires(&kept);
    let outcome = remove_redundant_wires_with(
        &mut region.circuit,
        &candidates,
        &RemovalOptions {
            imply: opts.imply,
            exact_budget: opts.exact_budget,
            max_checks: opts.max_checks,
        },
        opts.max_passes.max(1) + 1,
    );
    let quotient = region.read_quotient(f.num_vars());
    DivisionResult {
        quotient,
        remainder,
        wires_removed: outcome.removed.len(),
        checks: outcome.checks,
        budget_exhausted: outcome.budget_exhausted,
    }
}

/// Result of a product-of-sums division `f = (d + q) · r` (both `q` and
/// `r` viewed as products of sum terms).
#[derive(Debug, Clone)]
pub struct PosDivisionResult {
    /// Sum terms of the quotient: `f = (d + q) · r` with
    /// `q = Σ` these terms... represented as the *complement-domain* SOP
    /// cover `q̃` with `q = q̃'`.
    pub quotient_compl: Cover,
    /// Complement-domain remainder `r̃` with `r = r̃'`.
    pub remainder_compl: Cover,
    /// Wires removed during the dual run.
    pub wires_removed: usize,
}

impl PosDivisionResult {
    /// True if the POS division produced a usable quotient.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        !self.quotient_compl.is_empty()
    }

    /// Exact check that `(d + q)·r ≡ f` where `q = quotient_compl'` and
    /// `r = remainder_compl'`.
    #[must_use]
    pub fn verify(&self, f: &Cover, d: &Cover) -> bool {
        let q = self.quotient_compl.complement();
        let r = self.remainder_compl.complement();
        let rebuilt = d.or(&q).and(&r);
        rebuilt.equivalent(f)
    }
}

/// Product-of-sums Boolean division (the paper's POS symmetric case,
/// Lemma 2): divides `f` by `d` with both viewed in product-of-sum form,
/// producing `f = (d + q)·r`.
///
/// Implemented through the exact duality `f = (d + q)·r ⇔ f' = d'·q' +
/// r'`: complement both covers, run the SOP machinery, and interpret the
/// results in the complement domain.
///
/// # Panics
///
/// Panics if the universes differ or `d` is a tautology (whose complement
/// would be an empty divisor).
#[must_use]
pub fn pos_divide_covers(f: &Cover, d: &Cover, opts: &DivisionOptions) -> PosDivisionResult {
    pos_divide_precomplemented(&f.complement(), &d.complement(), opts)
}

/// [`pos_divide_covers`] for callers that already hold the complements
/// `fc = f'` and `dc = d'` (the substitution loop computes both to gate
/// the attempt, so re-deriving them here would double the complementation
/// cost per candidate pair).
///
/// # Panics
///
/// Panics if the universes differ or `dc` is empty (a tautological
/// divisor).
#[must_use]
pub fn pos_divide_precomplemented(
    fc: &Cover,
    dc: &Cover,
    opts: &DivisionOptions,
) -> PosDivisionResult {
    assert!(!dc.is_empty(), "POS division by a tautological divisor");
    let r = basic_divide_covers(fc, dc, opts);
    PosDivisionResult {
        quotient_compl: r.quotient,
        remainder_compl: r.remainder,
        wires_removed: r.wires_removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_cube::parse_sop;

    fn divide(n: usize, fs: &str, ds: &str) -> (Cover, Cover, DivisionResult) {
        let f = parse_sop(n, fs).expect("f");
        let d = parse_sop(n, ds).expect("d");
        let r = basic_divide_covers(&f, &d, &DivisionOptions::paper_default());
        assert!(
            r.verify(&f, &d),
            "f != d·q + r for f={fs}, d={ds}: q={}, r={}",
            r.quotient,
            r.remainder
        );
        (f, d, r)
    }

    #[test]
    fn paper_section1_example() {
        // f = ab + ac + bc', d = ab + c. Boolean division should reach
        // f = (a + b)d + ... with 4 literals total (q = a + b, r = 0
        // after also absorbing bc'? The paper reports f = (a + b)d).
        let (_f, _d, r) = divide(3, "ab + ac + bc'", "ab + c");
        assert!(r.succeeded());
        // Known optimum: q = a + b, r = bc' absorbed? The paper's result
        // is q = a + b with remainder folded; our RAR removes enough to
        // reach cost ≤ algebraic (q=a, r=bc' : cost 1+1+2=4).
        assert!(
            r.sop_cost() <= 4,
            "cost {} too high: q={} r={}",
            r.sop_cost(),
            r.quotient,
            r.remainder
        );
    }

    #[test]
    fn fig2_walkthrough() {
        // Fig. 2: f = ab + ac (kept) with divisor d = ab + c; quotient
        // shrinks to a.
        let (_f, _d, r) = divide(3, "ab + ac", "ab + c");
        assert!(r.succeeded());
        assert_eq!(r.remainder.len(), 0);
        assert!(r.quotient.literal_count() <= 2, "q = {}", r.quotient);
    }

    #[test]
    fn division_with_remainder() {
        // f = ab + c'd', d = ab + c : cube c'd' is not contained by any
        // divisor cube → remainder.
        let (_f, _d, r) = divide(4, "ab + c'd'", "ab + c");
        assert!(r.succeeded());
        assert_eq!(r.remainder.to_string(), "c'd'");
    }

    #[test]
    fn zero_quotient_when_no_containment() {
        let f = parse_sop(3, "a'b'").expect("f");
        let d = parse_sop(3, "ab + c").expect("d");
        let r = basic_divide_covers(&f, &d, &DivisionOptions::paper_default());
        assert!(!r.succeeded());
        assert_eq!(r.remainder.to_string(), "a'b'");
    }

    #[test]
    fn divide_by_self_gives_one() {
        let (_f, _d, r) = divide(3, "ab + c", "ab + c");
        assert!(r.succeeded());
        assert!(
            r.quotient
                .cubes()
                .iter()
                .any(boolsubst_cube::Cube::is_universe),
            "quotient should be 1, got {}",
            r.quotient
        );
    }

    #[test]
    fn boolean_beats_algebraic_on_intro_example() {
        // Algebraic division of f = ab + ac + bc' by d = ab + c gives
        // q = a (5 lits with remainder). Boolean gets 4.
        let (f, d, r) = divide(3, "ab + ac + bc'", "ab + c");
        let alg = boolsubst_algebraic_weak_divide_cost(&f, &d);
        assert!(
            r.sop_cost() <= alg,
            "boolean {} vs algebraic {alg}",
            r.sop_cost()
        );
    }

    /// SOP cost of the algebraic division (for comparison in tests).
    fn boolsubst_algebraic_weak_divide_cost(f: &Cover, d: &Cover) -> usize {
        // Inline small weak division to avoid a dev-dependency cycle:
        // quotient = cubes of f containing d's cubes... use the simplest
        // correct definition via the algebraic crate is unavailable here,
        // so emulate: q = ⋂ f/di.
        let n = f.num_vars();
        let mut q: Option<Vec<boolsubst_cube::Cube>> = None;
        for dc in d.cubes() {
            let mut part = Vec::new();
            for c in f.cubes() {
                if dc.contains(c) {
                    let mut x = c.clone();
                    for v in dc.support() {
                        x.free_var(v);
                    }
                    part.push(x);
                }
            }
            q = Some(match q {
                None => part,
                Some(prev) => prev.into_iter().filter(|c| part.contains(c)).collect(),
            });
        }
        let q = Cover::from_cubes(n, q.unwrap_or_default());
        let product = q.and(d);
        let mut r = Cover::new(n);
        for c in f.cubes() {
            if !product.cubes().iter().any(|p| p == c) {
                r.push(c.clone());
            }
        }
        if q.is_empty() {
            f.literal_count()
        } else {
            q.literal_count() + q.len() + r.literal_count()
        }
    }

    #[test]
    fn pos_division_intro_example() {
        // The paper's POS example: with f and d in product-of-sum form,
        // substitution works symmetrically. Take f = (a + b)(a + c)(b + c')
        // and d = (a + b)(c): complement-domain machinery must verify.
        let f = parse_sop(3, "ab + ac + bc'").expect("f");
        let d = parse_sop(3, "ab + c").expect("d");
        let r = pos_divide_covers(&f, &d, &DivisionOptions::paper_default());
        assert!(r.verify(&f, &d), "POS reconstruction failed");
    }

    #[test]
    fn pos_division_pure_sum_terms() {
        // f = (a + b)(c + d), d = (a + b): q should be trivial, r = (c+d).
        let f = parse_sop(4, "ac + ad + bc + bd").expect("f");
        let d = parse_sop(4, "a + b").expect("d");
        let r = pos_divide_covers(&f, &d, &DivisionOptions::paper_default());
        assert!(r.succeeded());
        assert!(r.verify(&f, &d));
    }

    #[test]
    fn division_result_is_never_worse_than_trivial() {
        for (n, fs, ds) in [
            (4, "ab + ac + ad", "b + c + d"),
            (4, "abc + abd' + ab'c", "c + d'"),
            (5, "ab + cd + e", "ab + cd"),
            (3, "ab + ab' + a'b", "a + b"),
        ] {
            let f = parse_sop(n, fs).expect("f");
            let d = parse_sop(n, ds).expect("d");
            let r = basic_divide_covers(&f, &d, &DivisionOptions::paper_default());
            assert!(r.verify(&f, &d), "verify failed on {fs} / {ds}");
            if r.succeeded() {
                assert!(
                    r.sop_cost() <= f.literal_count() + d.literal_count(),
                    "pathological cost on {fs} / {ds}"
                );
            }
        }
    }

    /// A tight per-division check budget stops removal early but keeps
    /// the `f = d·q + r` identity: the quotient is merely less simplified.
    #[test]
    fn check_budget_exhaustion_is_sound_and_reported() {
        let f = parse_sop(3, "ab + ac + bc'").expect("f");
        let d = parse_sop(3, "ab + c").expect("d");
        let tight = basic_divide_covers(
            &f,
            &d,
            &DivisionOptions {
                max_checks: 1,
                ..DivisionOptions::paper_default()
            },
        );
        assert!(tight.budget_exhausted, "budget must be reported");
        assert_eq!(tight.checks, 1);
        assert!(tight.verify(&f, &d), "early-stopped division stays exact");

        let full = basic_divide_covers(&f, &d, &DivisionOptions::paper_default());
        assert!(!full.budget_exhausted);
        assert!(
            full.sop_cost() <= tight.sop_cost(),
            "the budget can only cost quality, never correctness"
        );
    }

    /// The exact-search backstop honours the same check budget.
    #[test]
    fn exact_mode_respects_check_budget() {
        let f = parse_sop(4, "ab + ac + bc' + a'd").expect("f");
        let d = parse_sop(4, "ab + c").expect("d");
        let tight = basic_divide_covers(
            &f,
            &d,
            &DivisionOptions {
                max_checks: 2,
                ..DivisionOptions::exact(64)
            },
        );
        assert!(tight.budget_exhausted);
        assert_eq!(tight.checks, 2);
        assert!(tight.verify(&f, &d));
    }

    #[test]
    fn learning_can_only_help() {
        let f = parse_sop(4, "ab + ac + bc' + a'd").expect("f");
        let d = parse_sop(4, "ab + c").expect("d");
        let plain = basic_divide_covers(&f, &d, &DivisionOptions::paper_default());
        let learned = basic_divide_covers(
            &f,
            &d,
            &DivisionOptions {
                imply: ImplyOptions { learn_depth: 1 },
                max_passes: 2,
                exact_budget: 0,
                max_checks: 0,
            },
        );
        assert!(learned.verify(&f, &d));
        assert!(learned.wires_removed >= plain.wires_removed);
    }
}
