//! Resolved metric instruments for the engine and the speculative
//! sweep.
//!
//! [`EngineMetrics`] is the engine-side counterpart of the guard's and
//! sim filter's attachments: every instrument is resolved once when a
//! [`MetricsHandle`] is attached (see `SubstEngine::attach_metrics`),
//! so the sweep hot path only ever touches atomics. Per-worker
//! instruments are resolved eagerly for every configured worker — the
//! `sweep.worker.<i>.*` keys exist (at zero) even for workers that
//! never get to run, keeping the exposition schema stable across runs.
//!
//! Two update disciplines coexist:
//!
//! - **hot**: pair counts, acceptances, gain, the pair-latency
//!   histogram, and the sweep utilization counters are bumped inline
//!   (one relaxed atomic op each) so the heartbeat sees live progress;
//! - **synced**: per-stage nanosecond attribution and the sim funnel
//!   are folded in from [`SubstStats`] deltas once per pass via
//!   [`EngineMetrics::sync`] — zero added cost on the per-pair path.

use boolsubst_metrics::{Counter, Gauge, Histogram, MetricsHandle};

use crate::subst::SubstStats;

/// Utilization instruments for one speculative-sweep worker.
#[derive(Debug, Clone)]
pub(crate) struct WorkerMetrics {
    /// Time spent inside `speculate_pair` proofs.
    pub(crate) proof_ns: Counter,
    /// Time spent blocked on the shared result-list lock.
    pub(crate) wait_ns: Counter,
    /// Drain wall time not attributable to proofs or lock waits
    /// (cursor traffic, scheduling, spin-down after the bound drops).
    pub(crate) idle_ns: Counter,
    /// Pairs this worker speculatively evaluated.
    pub(crate) pairs: Counter,
}

/// The engine's resolved instrument bundle; see the module docs.
#[derive(Debug)]
pub(crate) struct EngineMetrics {
    pub(crate) pairs: Counter,
    pub(crate) accepts: Counter,
    pub(crate) literal_gain: Gauge,
    pub(crate) passes: Counter,
    pub(crate) pair_ns: Histogram,
    pub(crate) targets_total: Gauge,
    pub(crate) targets_done: Gauge,
    pub(crate) nodes: Gauge,
    pub(crate) peak_nodes: Gauge,
    pub(crate) sweep_epochs: Counter,
    pub(crate) sweep_commit_ns: Counter,
    pub(crate) sweep_proof_ns: Counter,
    pub(crate) sweep_wait_ns: Counter,
    pub(crate) sweep_idle_ns: Counter,
    pub(crate) workers: Vec<WorkerMetrics>,
    stage_enumerate_ns: Counter,
    stage_filter_ns: Counter,
    stage_sim_ns: Counter,
    stage_divide_ns: Counter,
    stage_apply_ns: Counter,
    rar_checks: Counter,
    discovery_proposed: Counter,
    discovery_bucket_hits: Counter,
    discovery_proofs_run: Counter,
    discovery_accepted: Counter,
    sim_screened: Counter,
    sim_refuted: Counter,
    sim_false_passes: Counter,
    quarantined: Gauge,
    engine_faults: Gauge,
    shadow_cache_hits: Counter,
    shadow_cache_misses: Counter,
    last: SubstStats,
}

impl EngineMetrics {
    /// Resolves every engine instrument (including `workers` slots for
    /// worker indices `0..threads`) against `handle`.
    pub(crate) fn resolve(handle: &MetricsHandle, threads: usize) -> EngineMetrics {
        let workers = (0..threads)
            .map(|w| WorkerMetrics {
                proof_ns: handle.counter(&format!("sweep.worker.{w}.proof_ns")),
                wait_ns: handle.counter(&format!("sweep.worker.{w}.wait_ns")),
                idle_ns: handle.counter(&format!("sweep.worker.{w}.idle_ns")),
                pairs: handle.counter(&format!("sweep.worker.{w}.pairs")),
            })
            .collect();
        EngineMetrics {
            pairs: handle.counter("engine.pairs"),
            accepts: handle.counter("engine.accepts"),
            literal_gain: handle.gauge("engine.literal_gain"),
            passes: handle.counter("engine.passes"),
            pair_ns: handle.histogram("engine.pair_ns"),
            targets_total: handle.gauge("engine.targets_total"),
            targets_done: handle.gauge("engine.targets_done"),
            nodes: handle.gauge("engine.nodes"),
            peak_nodes: handle.gauge("engine.peak_nodes"),
            sweep_epochs: handle.counter("sweep.epochs"),
            sweep_commit_ns: handle.counter("sweep.commit_ns"),
            sweep_proof_ns: handle.counter("sweep.proof_ns"),
            sweep_wait_ns: handle.counter("sweep.wait_ns"),
            sweep_idle_ns: handle.counter("sweep.idle_ns"),
            workers,
            stage_enumerate_ns: handle.counter("engine.stage.enumerate_ns"),
            stage_filter_ns: handle.counter("engine.stage.filter_ns"),
            stage_sim_ns: handle.counter("engine.stage.sim_ns"),
            stage_divide_ns: handle.counter("engine.stage.divide_ns"),
            stage_apply_ns: handle.counter("engine.stage.apply_ns"),
            rar_checks: handle.counter("engine.rar_checks"),
            discovery_proposed: handle.counter("discovery.proposed"),
            discovery_bucket_hits: handle.counter("discovery.bucket_hits"),
            discovery_proofs_run: handle.counter("discovery.proofs_run"),
            discovery_accepted: handle.counter("discovery.accepted"),
            sim_screened: handle.counter("sim.pairs_screened"),
            sim_refuted: handle.counter("sim.pairs_refuted"),
            sim_false_passes: handle.counter("sim.false_passes"),
            quarantined: handle.gauge("engine.quarantined"),
            engine_faults: handle.gauge("engine.faults"),
            shadow_cache_hits: handle.counter("engine.shadow_cache_hits"),
            shadow_cache_misses: handle.counter("engine.shadow_cache_misses"),
            last: SubstStats::default(),
        }
    }

    /// Folds the growth of `stats` since the previous sync into the
    /// delta-based instruments (per-pass cadence; see module docs).
    pub(crate) fn sync(&mut self, stats: &SubstStats) {
        let du = |new: usize, old: usize| u64::try_from(new.saturating_sub(old)).unwrap_or(0);
        self.stage_enumerate_ns.add(
            stats
                .enumerate_nanos
                .saturating_sub(self.last.enumerate_nanos),
        );
        self.stage_filter_ns
            .add(stats.filter_nanos.saturating_sub(self.last.filter_nanos));
        self.stage_sim_ns
            .add(stats.sim_nanos.saturating_sub(self.last.sim_nanos));
        self.stage_divide_ns
            .add(stats.divide_nanos.saturating_sub(self.last.divide_nanos));
        self.stage_apply_ns
            .add(stats.apply_nanos.saturating_sub(self.last.apply_nanos));
        self.rar_checks
            .add(du(stats.rar_checks, self.last.rar_checks));
        self.discovery_proposed
            .add(du(stats.discovery_proposed, self.last.discovery_proposed));
        self.discovery_bucket_hits.add(du(
            stats.discovery_bucket_hits,
            self.last.discovery_bucket_hits,
        ));
        self.discovery_proofs_run.add(du(
            stats.discovery_proofs_run,
            self.last.discovery_proofs_run,
        ));
        self.discovery_accepted
            .add(du(stats.discovery_accepted, self.last.discovery_accepted));
        self.sim_screened
            .add(du(stats.sim_pairs_screened, self.last.sim_pairs_screened));
        self.sim_refuted
            .add(du(stats.sim_pairs_refuted, self.last.sim_pairs_refuted));
        self.sim_false_passes
            .add(du(stats.sim_false_passes, self.last.sim_false_passes));
        self.shadow_cache_hits
            .add(du(stats.shadow_cache_hits, self.last.shadow_cache_hits));
        self.shadow_cache_misses
            .add(du(stats.shadow_cache_misses, self.last.shadow_cache_misses));
        self.quarantined
            .set(i64::try_from(stats.quarantined).unwrap_or(i64::MAX));
        self.engine_faults
            .set(i64::try_from(stats.engine_faults).unwrap_or(i64::MAX));
        self.last = *stats;
    }
}
