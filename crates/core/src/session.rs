//! The unified substitution entry point: one builder for every way of
//! running the sweep.
//!
//! Historically the crate grew one free function per feature —
//! `boolean_substitute`, `boolean_substitute_traced`,
//! `boolean_substitute_engine` — each a thin spelling of "construct a
//! [`SubstEngine`], maybe attach things, run". [`Session`] collapses them
//! into a single builder:
//!
//! ```
//! use boolsubst_core::{Session, SubstOptions};
//! # use boolsubst_network::Network;
//! # use boolsubst_cube::parse_sop;
//! # let mut net = Network::new("t");
//! # let a = net.add_input("a").unwrap();
//! # let b = net.add_input("b").unwrap();
//! # let f = net.add_node("f", vec![a, b], parse_sop(2, "ab").unwrap()).unwrap();
//! # net.add_output("f", f).unwrap();
//! let stats = Session::new(&mut net, SubstOptions::extended())
//!     .threads(4)
//!     .run();
//! ```
//!
//! The old free functions survive as `#[deprecated]` shims in
//! [`crate::legacy`].

use crate::engine::SubstEngine;
use crate::subst::{SubstOptions, SubstStats};
use boolsubst_guard::Guard;
use boolsubst_metrics::MetricsHandle;
use boolsubst_network::Network;
use boolsubst_trace::Tracer;

/// A configured substitution run over one network: options, an optional
/// trace recorder, an optional metrics registry, and a thread count,
/// executed by [`Session::run`].
///
/// The builder borrows the network mutably for its whole life, so a
/// `Session` cannot outlive or alias the network it rewrites. Attaching a
/// tracer or a metrics handle never changes the accepted rewrites, and
/// `threads(1)` (the default) is the plain sequential engine.
pub struct Session<'n, 't> {
    net: &'n mut Network,
    opts: SubstOptions,
    tracer: Option<&'t mut Tracer>,
    metrics: Option<MetricsHandle>,
    cached_guard: Option<Guard>,
}

impl<'n, 't> Session<'n, 't> {
    /// Starts configuring a run of `opts` over `net`.
    pub fn new(net: &'n mut Network, opts: SubstOptions) -> Session<'n, 't> {
        Session {
            net,
            opts,
            tracer: None,
            metrics: None,
            cached_guard: None,
        }
    }

    /// Attaches a structured trace recorder: every pair attempt, pass,
    /// shadow build, and sim refinement is recorded on `tracer`, labelled
    /// with the network's node names.
    #[must_use]
    pub fn tracer(mut self, tracer: &'t mut Tracer) -> Session<'n, 't> {
        self.tracer = Some(tracer);
        self
    }

    /// Attaches a metrics registry: pair/accept/gain counters, per-stage
    /// and per-guard-tier latency, the sim funnel, and per-worker sweep
    /// utilization are all resolved against `handle` and updated live
    /// during the run. Readers (heartbeat tickers, exposition sinks) can
    /// clone the handle and read concurrently.
    #[must_use]
    pub fn metrics(mut self, handle: &MetricsHandle) -> Session<'n, 't> {
        self.metrics = Some(handle.clone());
        self
    }

    /// Sets the worker-thread count (shorthand for
    /// [`SubstOptions::with_threads`]); `0` is clamped to `1`.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Session<'n, 't> {
        self.opts = self.opts.with_threads(threads);
        self
    }

    /// Seeds the checked-mode guard with one carried over from a previous
    /// run (see [`Session::run_returning_guard`]). The guard's lazily
    /// built pattern pools — keyed by primary-input count — and its
    /// learned SAT cost model survive across jobs, so a long-running
    /// service does not rebuild them per request. The guard adopts this
    /// run's [`SubstOptions::guard`] config (stale-shaped pools are
    /// dropped automatically); ignored when `checked` is off.
    #[must_use]
    pub fn cached_guard(mut self, guard: Guard) -> Session<'n, 't> {
        self.cached_guard = Some(guard);
        self
    }

    /// Runs the sweep to completion and returns the accumulated
    /// statistics. The network is left valid and functionally equivalent
    /// after every possible outcome (acceptance, rejection, deadline
    /// interrupt, checked-mode rollback).
    pub fn run(self) -> SubstStats {
        self.run_returning_guard().0
    }

    /// Like [`Session::run`], but also returns the guard so its warmed
    /// pattern pools can be fed into the next run via
    /// [`Session::cached_guard`]. `None` when the run was unchecked.
    pub fn run_returning_guard(self) -> (SubstStats, Option<Guard>) {
        let mut engine = match self.tracer {
            Some(tracer) => SubstEngine::with_tracer(self.net, self.opts, tracer),
            None => SubstEngine::new(self.net, self.opts),
        };
        if let Some(guard) = self.cached_guard {
            engine.install_guard(guard);
        }
        if let Some(handle) = &self.metrics {
            engine.attach_metrics(handle);
        }
        let stats = engine.run();
        (stats, engine.take_guard())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subst::SubstOptions;
    use boolsubst_cube::parse_sop;
    use boolsubst_network::write_blif;
    use boolsubst_trace::Tracer;

    fn small_net() -> Network {
        let mut net = Network::new("session_t");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let c = net.add_input("c").expect("c");
        let f = net
            .add_node(
                "f",
                vec![a, b, c],
                parse_sop(3, "ab + ac + bc'").expect("p"),
            )
            .expect("f");
        let d = net
            .add_node("d", vec![a, b, c], parse_sop(3, "ab + c").expect("p"))
            .expect("d");
        net.add_output("f", f).expect("o");
        net.add_output("d", d).expect("o");
        net
    }

    #[test]
    fn session_matches_bare_engine() {
        let mut a = small_net();
        let sa = Session::new(&mut a, SubstOptions::extended()).run();
        let mut b = small_net();
        let sb = SubstEngine::new(&mut b, SubstOptions::extended()).run();
        assert_eq!(write_blif(&a), write_blif(&b));
        assert_eq!(sa.substitutions, sb.substitutions);
        assert_eq!(sa.literal_gain, sb.literal_gain);
    }

    #[test]
    fn metrics_attachment_is_invisible() {
        use boolsubst_metrics::MetricsHandle;
        for opts in crate::subst::all_configs() {
            for threads in [1usize, 4] {
                let mut plain = small_net();
                let sp = Session::new(&mut plain, opts.clone())
                    .threads(threads)
                    .run();
                let handle = MetricsHandle::new();
                let mut metered = small_net();
                let sm = Session::new(&mut metered, opts.clone())
                    .threads(threads)
                    .metrics(&handle)
                    .run();
                assert_eq!(
                    write_blif(&plain),
                    write_blif(&metered),
                    "{:?} threads={threads}: metrics changed the rewrites",
                    opts.mode
                );
                assert_eq!(sp.substitutions, sm.substitutions, "{:?}", opts.mode);
                assert_eq!(sp.literal_gain, sm.literal_gain, "{:?}", opts.mode);
                assert!(
                    handle.counter_value("engine.pairs").unwrap_or(0) > 0,
                    "metrics saw no pairs"
                );
                assert_eq!(
                    handle.counter_value("engine.accepts"),
                    Some(u64::try_from(sm.substitutions).unwrap())
                );
            }
        }
    }

    #[test]
    fn cached_guard_reuse_is_invisible_to_the_result() {
        let opts = || SubstOptions::extended().with_checked(true);
        let mut fresh = small_net();
        let sf = Session::new(&mut fresh, opts()).run();

        let mut first = small_net();
        let (s1, guard) = Session::new(&mut first, opts()).run_returning_guard();
        let guard = guard.expect("checked run returns its guard");
        let first_checks = guard.checks();
        assert!(first_checks > 0, "guard saw no checks");

        let mut reused = small_net();
        let (s2, guard2) = Session::new(&mut reused, opts())
            .cached_guard(guard)
            .run_returning_guard();
        assert_eq!(
            write_blif(&fresh),
            write_blif(&reused),
            "a warmed guard changed the rewrites"
        );
        assert_eq!(sf.substitutions, s1.substitutions);
        assert_eq!(s1.substitutions, s2.substitutions);
        let guard2 = guard2.expect("guard survives the second run");
        assert!(
            guard2.checks() > first_checks,
            "reused guard must accumulate checks across jobs"
        );
    }

    #[test]
    fn unchecked_run_returns_no_guard() {
        let mut net = small_net();
        let (_, guard) = Session::new(&mut net, SubstOptions::extended()).run_returning_guard();
        assert!(guard.is_none());
    }

    #[test]
    fn session_tracer_is_invisible_to_the_result() {
        let mut a = small_net();
        let sa = Session::new(&mut a, SubstOptions::extended()).run();
        let mut b = small_net();
        let mut tracer = Tracer::new("ext");
        let sb = Session::new(&mut b, SubstOptions::extended())
            .tracer(&mut tracer)
            .run();
        assert_eq!(write_blif(&a), write_blif(&b));
        assert_eq!(sa.substitutions, sb.substitutions);
        assert!(tracer.pairs() > 0, "tracer saw no pairs");
    }
}
