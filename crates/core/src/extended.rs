//! Extended Boolean division (Section IV): the divisor itself may be
//! decomposed. Every wire of the dividend *votes* — via fault implications
//! — for the set of divisor cubes whose implied value is 0; the vote table
//! is filtered by the SOS validity condition, and the best *core divisor*
//! is selected by a maximal-clique search on the intersection graph.

use crate::division::{basic_divide_covers, DivisionOptions, DivisionResult};
use boolsubst_atpg::{check_fault, Circuit, Fault, FaultStatus, GateId, Value, Wire};
use boolsubst_cube::{Cover, Lit, Phase};

/// A dividend wire: literal `lit` inside cube `cube_index` of `f`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DividendWire {
    /// Index of the cube within the dividend cover.
    pub cube_index: usize,
    /// The literal the wire feeds.
    pub lit: Lit,
}

/// One row of the vote table (Table I of the paper).
#[derive(Debug, Clone)]
pub struct VoteRow {
    /// The voting wire.
    pub wire: DividendWire,
    /// Indices of divisor cubes with implied value 0 for this wire's
    /// stuck-at fault — the wire's candidate core divisor.
    pub candidates: Vec<usize>,
    /// True if the fault was untestable outright (wire removable without
    /// any divisor).
    pub always_removable: bool,
    /// True if the row survives the SOS validity filter (some candidate
    /// cube contains the wire's cube).
    pub sos_valid: bool,
}

/// The vote table: the paper's Table I, kept in full so the figure
/// binaries can print both the raw and the filtered versions.
#[derive(Debug, Clone)]
pub struct VoteTable {
    /// All rows, including filtered-out ones.
    pub rows: Vec<VoteRow>,
}

impl VoteTable {
    /// Rows that survive the SOS filter and are not trivially removable.
    #[must_use]
    pub fn valid_rows(&self) -> Vec<&VoteRow> {
        self.rows
            .iter()
            .filter(|r| r.sos_valid && !r.always_removable && !r.candidates.is_empty())
            .collect()
    }
}

/// Result of an extended division.
#[derive(Debug, Clone)]
pub struct ExtendedDivision {
    /// Indices (into the divisor cover) of the chosen core-divisor cubes.
    pub core_cube_indices: Vec<usize>,
    /// The core divisor cover.
    pub core: Cover,
    /// Number of wires the vote predicted removable with this core.
    pub expected_removals: usize,
    /// The basic division of the dividend by the core divisor.
    pub division: DivisionResult,
    /// The vote table (for diagnostics and the Table I reproduction).
    pub vote_table: VoteTable,
}

/// Builds the voting circuit of Fig. 3(a): the dividend `f` as a two-level
/// AND–OR structure observed at its output, plus the divisor's cube gates
/// (sharing the literal inputs) so implied values on the `k_i` can be
/// sampled.
struct VoteCircuit {
    circuit: Circuit,
    lit_gates: Vec<(GateId, GateId)>,
    f_cube_gates: Vec<GateId>,
    divisor_cube_gates: Vec<GateId>,
}

impl VoteCircuit {
    fn build(f: &Cover, d: &Cover) -> VoteCircuit {
        let n = f.num_vars();
        let mut circuit = Circuit::new();
        let mut lit_gates = Vec::with_capacity(n);
        for _ in 0..n {
            let p = circuit.add_input();
            let ng = circuit.add_not(p);
            lit_gates.push((p, ng));
        }
        let lit_gate = |lg: &Vec<(GateId, GateId)>, l: Lit| match l.phase {
            Phase::Pos => lg[l.var].0,
            Phase::Neg => lg[l.var].1,
        };
        let f_cube_gates: Vec<GateId> = f
            .cubes()
            .iter()
            .map(|c| {
                let ins = c.lits().map(|l| lit_gate(&lit_gates, l)).collect();
                circuit.add_and(ins)
            })
            .collect();
        let f_or = circuit.add_or(f_cube_gates.clone());
        circuit.add_output(f_or);
        let divisor_cube_gates: Vec<GateId> = d
            .cubes()
            .iter()
            .map(|c| {
                let ins = c.lits().map(|l| lit_gate(&lit_gates, l)).collect();
                circuit.add_and(ins)
            })
            .collect();
        // Keep the divisor's OR for structural fidelity with Fig. 3(a);
        // it also lets backward implications relate the cubes.
        let _d_or = circuit.add_or(divisor_cube_gates.clone());
        VoteCircuit {
            circuit,
            lit_gates,
            f_cube_gates,
            divisor_cube_gates,
        }
    }
}

/// Computes the vote table for dividend `f` and divisor `d`: one row per
/// literal wire of `f`, listing the divisor cubes implied to 0 by the
/// wire's stuck-at-1 fault (Section IV, Table I).
///
/// # Panics
///
/// Panics if the universes differ.
#[must_use]
pub fn compute_vote_table(f: &Cover, d: &Cover, opts: &DivisionOptions) -> VoteTable {
    compute_vote_table_masked(f, d, opts, None)
}

/// [`compute_vote_table`] with an optional per-cube skip mask: no fault
/// check is run (and no row emitted) for the wires of a cube with
/// `skip_cube[ci]` set.
///
/// Intended for callers holding a *proof* that cube `ci` of `f` is not
/// contained in any cube of `d` (e.g. a simulation-signature witness): such
/// a cube's rows could never be `sos_valid`, so [`VoteTable::valid_rows`]
/// — and therefore core selection — is identical to the unmasked table,
/// with the per-wire ATPG work saved. Do **not** combine a mask with
/// [`CoreSelection::NoSosFilter`], which resurrects invalid rows.
///
/// Whenever a mask is supplied (even an all-`false` one) the same
/// reasoning is applied syntactically as well: cubes contained in no
/// divisor cube are skipped outright, since `sos_valid` demands a
/// candidate cube that *syntactically* contains the wire's cube. The
/// unmasked [`compute_vote_table`] keeps every row so that
/// `NoSosFilter` callers still see the full table.
///
/// # Panics
///
/// Panics if the universes differ or the mask length is not `f.len()`.
#[must_use]
pub fn compute_vote_table_masked(
    f: &Cover,
    d: &Cover,
    opts: &DivisionOptions,
    skip_cube: Option<&[bool]>,
) -> VoteTable {
    assert_eq!(f.num_vars(), d.num_vars(), "universe mismatch");
    if let Some(mask) = skip_cube {
        assert_eq!(mask.len(), f.len(), "skip mask length mismatch");
    }
    let vc = VoteCircuit::build(f, d);
    let mut rows = Vec::new();
    for (ci, cube) in f.cubes().iter().enumerate() {
        if skip_cube.is_some_and(|mask| mask[ci] || !d.cubes().iter().any(|k| k.contains(cube))) {
            continue;
        }
        let cube_gate = vc.f_cube_gates[ci];
        for lit in cube.lits() {
            let driver = match lit.phase {
                Phase::Pos => vc.lit_gates[lit.var].0,
                Phase::Neg => vc.lit_gates[lit.var].1,
            };
            let Some(pin) = vc
                .circuit
                .fanins(cube_gate)
                .iter()
                .position(|&g| g == driver)
            else {
                continue;
            };
            let fault = Fault::sa1(Wire {
                gate: cube_gate,
                pin,
            });
            let wire = DividendWire {
                cube_index: ci,
                lit,
            };
            match check_fault(&vc.circuit, fault, opts.imply) {
                FaultStatus::Untestable(_) => rows.push(VoteRow {
                    wire,
                    candidates: Vec::new(),
                    always_removable: true,
                    sos_valid: false,
                }),
                FaultStatus::PossiblyTestable(values) => {
                    let candidates: Vec<usize> = vc
                        .divisor_cube_gates
                        .iter()
                        .enumerate()
                        .filter_map(|(ki, &g)| (values[g.index()] == Value::Zero).then_some(ki))
                        .collect();
                    // SOS validity: some candidate cube contains this
                    // wire's cube, so the wire's cube stays in the kept
                    // region once the candidate is the core divisor.
                    let sos_valid = candidates.iter().any(|&ki| d.cubes()[ki].contains(cube));
                    rows.push(VoteRow {
                        wire,
                        candidates,
                        always_removable: false,
                        sos_valid,
                    });
                }
            }
        }
    }
    VoteTable { rows }
}

/// A clique found on the candidate-intersection graph, with its common
/// core divisor.
#[derive(Debug, Clone)]
pub struct CliqueChoice {
    /// Indices into `VoteTable::valid_rows()` of the member wires.
    pub members: Vec<usize>,
    /// The common intersection of the members' candidate sets.
    pub core_cube_indices: Vec<usize>,
    /// Number of member wires whose cube is contained by some common
    /// core cube (the validated score).
    pub score: usize,
}

/// Enumerates maximal cliques of the intersection graph (Bron–Kerbosch,
/// bounded) and validates each clique's *common* candidate intersection
/// (pairwise-nonempty does not imply common-nonempty) plus the per-wire
/// SOS condition against the common core.
#[must_use]
pub fn enumerate_cliques(table: &VoteTable, limit: usize) -> Vec<CliqueChoice> {
    let rows = table.valid_rows();
    let m = rows.len();
    let mut adj = vec![vec![false; m]; m];
    for i in 0..m {
        for j in i + 1..m {
            let shared = rows[i]
                .candidates
                .iter()
                .any(|k| rows[j].candidates.contains(k));
            adj[i][j] = shared;
            adj[j][i] = shared;
        }
    }
    let mut cliques: Vec<Vec<usize>> = Vec::new();
    bron_kerbosch(
        &adj,
        &mut Vec::new(),
        (0..m).collect(),
        Vec::new(),
        &mut cliques,
        limit,
    );
    let mut out = Vec::new();
    for members in cliques {
        let mut common: Option<Vec<usize>> = None;
        for &i in &members {
            let cand = &rows[i].candidates;
            common = Some(match common {
                None => cand.clone(),
                Some(prev) => prev.into_iter().filter(|k| cand.contains(k)).collect(),
            });
        }
        let core_cube_indices = common.unwrap_or_default();
        if core_cube_indices.is_empty() {
            continue;
        }
        // Provisional score: clique size. The caller re-validates each
        // member's SOS condition against the common core (it owns the
        // dividend cover, which is needed for that check).
        let score = members.len();
        out.push(CliqueChoice {
            members,
            core_cube_indices,
            score,
        });
    }
    out
}

fn bron_kerbosch(
    adj: &[Vec<bool>],
    r: &mut Vec<usize>,
    mut p: Vec<usize>,
    mut x: Vec<usize>,
    out: &mut Vec<Vec<usize>>,
    limit: usize,
) {
    if out.len() >= limit {
        return;
    }
    if p.is_empty() && x.is_empty() {
        if !r.is_empty() {
            out.push(r.clone());
        }
        return;
    }
    // Pivot: vertex of P ∪ X with the most neighbours in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&v| adj[u][v]).count());
    let candidates: Vec<usize> = match pivot {
        Some(u) => p.iter().copied().filter(|&v| !adj[u][v]).collect(),
        None => p.clone(),
    };
    for v in candidates {
        r.push(v);
        let p2: Vec<usize> = p.iter().copied().filter(|&w| adj[v][w]).collect();
        let x2: Vec<usize> = x.iter().copied().filter(|&w| adj[v][w]).collect();
        bron_kerbosch(adj, r, p2, x2, out, limit);
        r.pop();
        p.retain(|&w| w != v);
        x.push(v);
    }
}

/// Upper bound on the number of cliques examined per extended division.
pub const CLIQUE_LIMIT: usize = 512;

/// Strategy for choosing the core divisor from the vote table — the
/// ablation knob around the paper's maximal-clique reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoreSelection {
    /// Maximal cliques plus row/pairwise candidate subsets, final choice
    /// by actual division cost (the library default).
    #[default]
    CliqueAndSubsets,
    /// Only maximal-clique common intersections (the paper's literal
    /// formulation).
    CliquesOnly,
    /// Each row's own candidate set, best row wins (no clique search).
    GreedyRow,
    /// Like the default but skipping the SOS validity filter — shows why
    /// the paper's Table I filtering step matters.
    NoSosFilter,
}

/// Extended Boolean division: selects a core divisor `d_c ⊆ d` via the
/// vote/clique mechanism, then performs a basic division of `f` by `d_c`.
/// Returns `None` when no useful core divisor exists.
///
/// # Panics
///
/// Panics if the universes differ or `d` is empty.
#[must_use]
pub fn extended_divide_covers(
    f: &Cover,
    d: &Cover,
    opts: &DivisionOptions,
) -> Option<ExtendedDivision> {
    assert!(!d.is_empty(), "division by the empty cover");
    extended_divide_covers_with(f, d, opts, CoreSelection::default())
}

/// [`extended_divide_covers`] with an explicit core-selection strategy
/// (used by the ablation studies).
///
/// # Panics
///
/// Panics if the universes differ or `d` is empty.
#[must_use]
pub fn extended_divide_covers_with(
    f: &Cover,
    d: &Cover,
    opts: &DivisionOptions,
    selection: CoreSelection,
) -> Option<ExtendedDivision> {
    assert!(!d.is_empty(), "division by the empty cover");
    let mut table = compute_vote_table(f, d, opts);
    if selection == CoreSelection::NoSosFilter {
        for row in &mut table.rows {
            if !row.always_removable && !row.candidates.is_empty() {
                row.sos_valid = true;
            }
        }
    }
    select_core_and_divide_with(f, d, table, opts, selection)
}

/// [`extended_divide_covers`] with a per-cube skip mask (see
/// [`compute_vote_table_masked`] for the mask contract): fault checks are
/// run only for unmasked cubes, and the selected core — hence the division
/// result — is identical to the unmasked call. Always uses the default
/// [`CoreSelection`] (a mask is unsound under `NoSosFilter`).
///
/// # Panics
///
/// Panics if the universes differ, `d` is empty, or the mask length is
/// not `f.len()`.
#[must_use]
pub fn extended_divide_covers_masked(
    f: &Cover,
    d: &Cover,
    opts: &DivisionOptions,
    skip_cube: &[bool],
) -> Option<ExtendedDivision> {
    assert!(!d.is_empty(), "division by the empty cover");
    let table = compute_vote_table_masked(f, d, opts, Some(skip_cube));
    select_core_and_divide_with(f, d, table, opts, CoreSelection::default())
}

/// Core-divisor selection and final division for an already-computed vote
/// table (shared by the single-divisor and pooled entry points).
fn select_core_and_divide(
    f: &Cover,
    d: &Cover,
    table: VoteTable,
    opts: &DivisionOptions,
) -> Option<ExtendedDivision> {
    select_core_and_divide_with(f, d, table, opts, CoreSelection::default())
}

fn select_core_and_divide_with(
    f: &Cover,
    d: &Cover,
    table: VoteTable,
    opts: &DivisionOptions,
    selection: CoreSelection,
) -> Option<ExtendedDivision> {
    let rows = table.valid_rows();
    if rows.is_empty() {
        return None;
    }
    let cliques = if selection == CoreSelection::GreedyRow {
        Vec::new()
    } else {
        enumerate_cliques(&table, CLIQUE_LIMIT)
    };

    // Candidate cores: common intersections of the maximal cliques, each
    // row's own candidate set, and pairwise intersections of row sets. A
    // maximal clique's common intersection can be strictly worse than a
    // sub-clique's larger intersection, so both granularities are scored.
    let mut cores: Vec<Vec<usize>> = Vec::new();
    let push_core = |mut core: Vec<usize>, cores: &mut Vec<Vec<usize>>| {
        core.sort_unstable();
        core.dedup();
        if !core.is_empty() && !cores.contains(&core) {
            cores.push(core);
        }
    };
    for clique in &cliques {
        push_core(clique.core_cube_indices.clone(), &mut cores);
    }
    if selection != CoreSelection::CliquesOnly {
        for (i, row) in rows.iter().enumerate() {
            push_core(row.candidates.clone(), &mut cores);
            if selection != CoreSelection::GreedyRow {
                for other in rows.iter().skip(i + 1) {
                    let inter: Vec<usize> = row
                        .candidates
                        .iter()
                        .copied()
                        .filter(|k| other.candidates.contains(k))
                        .collect();
                    push_core(inter, &mut cores);
                }
            }
            if cores.len() > 64 {
                break;
            }
        }
    }

    // Score each core by the number of wires expected removed (core ⊆
    // candidates(w)) whose cube stays in the kept region (SOS vs. core).
    let mut scored: Vec<(Vec<usize>, usize, usize)> = cores
        .into_iter()
        .filter_map(|core| {
            let score = rows
                .iter()
                .filter(|row| {
                    core.iter().all(|k| row.candidates.contains(k))
                        && core
                            .iter()
                            .any(|&k| d.cubes()[k].contains(&f.cubes()[row.wire.cube_index]))
                })
                .count();
            if score == 0 {
                return None;
            }
            let lits: usize = core.iter().map(|&k| d.cubes()[k].literal_count()).sum();
            Some((core, score, lits))
        })
        .collect();
    scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)));
    scored.truncate(8);

    // Decide among the finalists by actually dividing.
    let mut best: Option<(Vec<usize>, usize, DivisionResult)> = None;
    for (core_idx, score, _) in scored {
        let core = Cover::from_cubes(
            f.num_vars(),
            core_idx.iter().map(|&k| d.cubes()[k].clone()).collect(),
        );
        let division = basic_divide_covers(f, &core, opts);
        if !division.succeeded() {
            continue;
        }
        let better = match &best {
            None => true,
            Some((_, _, bd)) => division.sop_cost() < bd.sop_cost(),
        };
        if better {
            best = Some((core_idx, score, division));
        }
    }
    let (core_cube_indices, expected_removals, division) = best?;
    let core = Cover::from_cubes(
        f.num_vars(),
        core_cube_indices
            .iter()
            .map(|&k| d.cubes()[k].clone())
            .collect(),
    );
    Some(ExtendedDivision {
        core_cube_indices,
        core,
        expected_removals,
        division,
        vote_table: table,
    })
}

/// Pooled vote computation (the paper's Fig. 3(c) generalization): one
/// implication sweep over the dividend's wires, with the cube gates of
/// *several* candidate divisor nodes observing simultaneously. Returns one
/// vote table per divisor, at the cost of a single fault sweep.
///
/// # Panics
///
/// Panics if any universe differs.
#[must_use]
pub fn compute_vote_tables_pooled(
    f: &Cover,
    divisors: &[Cover],
    opts: &DivisionOptions,
) -> Vec<VoteTable> {
    let n = f.num_vars();
    let mut circuit = Circuit::new();
    let mut lit_gates: Vec<(GateId, GateId)> = Vec::with_capacity(n);
    for _ in 0..n {
        let p = circuit.add_input();
        let ng = circuit.add_not(p);
        lit_gates.push((p, ng));
    }
    let lit_gate = |lg: &Vec<(GateId, GateId)>, l: Lit| match l.phase {
        Phase::Pos => lg[l.var].0,
        Phase::Neg => lg[l.var].1,
    };
    let f_cube_gates: Vec<GateId> = f
        .cubes()
        .iter()
        .map(|c| {
            let ins = c.lits().map(|l| lit_gate(&lit_gates, l)).collect();
            circuit.add_and(ins)
        })
        .collect();
    let f_or = circuit.add_or(f_cube_gates.clone());
    circuit.add_output(f_or);
    let mut divisor_gates: Vec<Vec<GateId>> = Vec::with_capacity(divisors.len());
    for d in divisors {
        assert_eq!(d.num_vars(), n, "universe mismatch");
        let gates: Vec<GateId> = d
            .cubes()
            .iter()
            .map(|c| {
                let ins = c.lits().map(|l| lit_gate(&lit_gates, l)).collect();
                circuit.add_and(ins)
            })
            .collect();
        let _ = circuit.add_or(gates.clone());
        divisor_gates.push(gates);
    }

    let mut tables: Vec<VoteTable> = divisors
        .iter()
        .map(|_| VoteTable { rows: Vec::new() })
        .collect();
    for (ci, cube) in f.cubes().iter().enumerate() {
        let cube_gate = f_cube_gates[ci];
        for lit in cube.lits() {
            let driver = lit_gate(&lit_gates, lit);
            let Some(pin) = circuit.fanins(cube_gate).iter().position(|&g| g == driver) else {
                continue;
            };
            let fault = Fault::sa1(Wire {
                gate: cube_gate,
                pin,
            });
            let wire = DividendWire {
                cube_index: ci,
                lit,
            };
            match check_fault(&circuit, fault, opts.imply) {
                FaultStatus::Untestable(_) => {
                    for table in &mut tables {
                        table.rows.push(VoteRow {
                            wire,
                            candidates: Vec::new(),
                            always_removable: true,
                            sos_valid: false,
                        });
                    }
                }
                FaultStatus::PossiblyTestable(values) => {
                    for ((table, gates), d) in tables.iter_mut().zip(&divisor_gates).zip(divisors) {
                        let candidates: Vec<usize> = gates
                            .iter()
                            .enumerate()
                            .filter_map(|(ki, &g)| (values[g.index()] == Value::Zero).then_some(ki))
                            .collect();
                        let sos_valid = candidates.iter().any(|&ki| d.cubes()[ki].contains(cube));
                        table.rows.push(VoteRow {
                            wire,
                            candidates,
                            always_removable: false,
                            sos_valid,
                        });
                    }
                }
            }
        }
    }
    tables
}

/// Extended division against a *pool* of divisor candidates: computes all
/// vote tables in one implication sweep, selects a core per divisor, and
/// returns the divisor index whose division is cheapest.
///
/// # Panics
///
/// Panics if any universe differs.
#[must_use]
pub fn extended_divide_pooled(
    f: &Cover,
    divisors: &[Cover],
    opts: &DivisionOptions,
) -> Option<(usize, ExtendedDivision)> {
    let tables = compute_vote_tables_pooled(f, divisors, opts);
    let mut best: Option<(usize, ExtendedDivision)> = None;
    for (i, (d, table)) in divisors.iter().zip(tables).enumerate() {
        if d.is_empty() {
            continue;
        }
        let Some(ext) = select_core_and_divide(f, d, table, opts) else {
            continue;
        };
        let better = match &best {
            None => true,
            Some((_, b)) => ext.division.sop_cost() < b.division.sop_cost(),
        };
        if better {
            best = Some((i, ext));
        }
    }
    best
}

/// Extended division in *product-of-sums* form (the paper's symmetric
/// case: "instead of focusing on the cubes that have implication value
/// zero, we focus on the sum terms that have implication value one").
/// Implemented through the exact complement-domain duality: the returned
/// core and quotient/remainder are complement-domain covers, i.e. the
/// actual POS factors are their complements.
///
/// Returns `None` when no useful core exists or the divisor is a
/// tautology (no complement-domain divisor).
///
/// # Panics
///
/// Panics if the universes differ.
#[must_use]
pub fn extended_divide_covers_pos(
    f: &Cover,
    d: &Cover,
    opts: &DivisionOptions,
) -> Option<ExtendedDivision> {
    let fc = f.complement();
    let dc = d.complement();
    if dc.is_empty() || fc.is_empty() {
        return None;
    }
    extended_divide_covers(&fc, &dc, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_cube::parse_sop;

    #[test]
    fn vote_table_detects_divisor_zeros() {
        // Paper-style setup: f = ab + ac, d = ab + c. Wire b (in cube ab):
        // s-a-1 activates b=0, a=1, other cube ac must be 0 → c=0; then
        // divisor cubes: ab has b=0 → 0; c = 0 → 0. Both cubes implied 0.
        let f = parse_sop(3, "ab + ac").expect("f");
        let d = parse_sop(3, "ab + c").expect("d");
        let table = compute_vote_table(&f, &d, &DivisionOptions::paper_default());
        assert_eq!(table.rows.len(), 4);
        let row_b = table
            .rows
            .iter()
            .find(|r| r.wire.cube_index == 0 && r.wire.lit == Lit::pos(1))
            .expect("row for wire b");
        assert!(!row_b.always_removable);
        assert!(row_b.candidates.contains(&0), "ab cube should be implied 0");
        assert!(row_b.candidates.contains(&1), "c cube should be implied 0");
        assert!(row_b.sos_valid);
    }

    #[test]
    fn extended_division_selects_core_and_divides() {
        // f = ab + ac, divisor pool d = ab + c + de (de is junk): the core
        // should not need de.
        let f = parse_sop(5, "ab + ac").expect("f");
        let d = parse_sop(5, "ab + c + de").expect("d");
        let ext = extended_divide_covers(&f, &d, &DivisionOptions::paper_default())
            .expect("extended division finds a core");
        assert!(ext.division.verify(&f, &ext.core));
        assert!(!ext.core_cube_indices.contains(&2), "junk cube de chosen");
        assert!(ext.expected_removals >= 1);
    }

    #[test]
    fn extended_finds_subexpression_inside_bigger_divisor() {
        // The paper's Section I scenario: divisor g = ae + be + cd does
        // not divide f = ab + ac algebraically (quotient 0), but the
        // subexpression ... here: divisor h = abx + cx' — decomposing
        // exposes cores. Use the concrete paper example instead:
        // f = ab + ac, existing node d = ab + c + e. Extended division
        // should extract core ab + c.
        let f = parse_sop(5, "ab + ac").expect("f");
        let d = parse_sop(5, "ab + c + e").expect("d");
        let ext =
            extended_divide_covers(&f, &d, &DivisionOptions::paper_default()).expect("core found");
        // Core must contain the cubes ab and c (indices 0 and 1) to
        // remove the most wires; e (index 2) must be dropped.
        assert!(ext.core_cube_indices.contains(&0));
        assert!(ext.core_cube_indices.contains(&1));
        assert!(!ext.core_cube_indices.contains(&2));
        assert!(ext.division.verify(&f, &ext.core));
        // Final result mirrors Fig. 3(b): q = a with core ab + c.
        assert!(ext.division.sop_cost() <= 3);
    }

    #[test]
    fn pooled_matches_single_divisor_runs() {
        let f = parse_sop(5, "ab + ac + bc'").expect("f");
        let divisors = vec![
            parse_sop(5, "ab + c + de").expect("d0"),
            parse_sop(5, "c'd").expect("d1"),
            parse_sop(5, "ab + c").expect("d2"),
        ];
        let opts = DivisionOptions::paper_default();
        let (best_idx, pooled) =
            extended_divide_pooled(&f, &divisors, &opts).expect("pool finds a core");
        assert!(pooled.division.verify(&f, &pooled.core));
        // The best pooled choice must match the best of the individual
        // runs (same cost).
        let mut best_single = usize::MAX;
        for d in &divisors {
            if let Some(e) = extended_divide_covers(&f, d, &opts) {
                best_single = best_single.min(e.division.sop_cost());
            }
        }
        assert_eq!(pooled.division.sop_cost(), best_single);
        assert_ne!(best_idx, 1, "the disjoint divisor cannot win");
    }

    #[test]
    fn pooled_empty_pool_is_none() {
        let f = parse_sop(3, "ab").expect("f");
        assert!(extended_divide_pooled(&f, &[], &DivisionOptions::paper_default()).is_none());
    }

    #[test]
    fn pos_extended_division_verifies_in_complement_domain() {
        // f = (a+b)(a+c)(b+c') — complement f' = a'b' + a'c' + b'c — and a
        // divisor whose POS structure embeds a useful core.
        let f = parse_sop(5, "ab + ac + bc'").expect("f");
        let d = parse_sop(5, "ab + c + de").expect("d");
        if let Some(ext) = extended_divide_covers_pos(&f, &d, &DivisionOptions::paper_default()) {
            // The division is exact in the complement domain:
            let fc = f.complement();
            assert!(ext.division.verify(&fc, &ext.core));
            // Which means the POS identity holds in the original domain:
            // f = (core' + q')·r' ... spot-check by re-complementing.
            let mut rebuilt = ext.division.quotient.and(&ext.core);
            rebuilt.extend_cover(&ext.division.remainder);
            assert!(rebuilt.complement().equivalent(&f));
        }
    }

    #[test]
    fn no_core_for_disjoint_divisor() {
        let f = parse_sop(4, "ab").expect("f");
        let d = parse_sop(4, "c'd").expect("d");
        assert!(extended_divide_covers(&f, &d, &DivisionOptions::paper_default()).is_none());
    }

    #[test]
    fn clique_common_intersection_validated() {
        // Construct a vote table by hand where pairwise intersections are
        // nonempty but the triple intersection is empty; ensure such a
        // clique is rejected.
        let rows = vec![
            VoteRow {
                wire: DividendWire {
                    cube_index: 0,
                    lit: Lit::pos(0),
                },
                candidates: vec![0, 1],
                always_removable: false,
                sos_valid: true,
            },
            VoteRow {
                wire: DividendWire {
                    cube_index: 1,
                    lit: Lit::pos(1),
                },
                candidates: vec![1, 2],
                always_removable: false,
                sos_valid: true,
            },
            VoteRow {
                wire: DividendWire {
                    cube_index: 2,
                    lit: Lit::pos(2),
                },
                candidates: vec![0, 2],
                always_removable: false,
                sos_valid: true,
            },
        ];
        let table = VoteTable { rows };
        let cliques = enumerate_cliques(&table, 100);
        for c in &cliques {
            assert!(
                !c.core_cube_indices.is_empty(),
                "clique with empty common intersection survived"
            );
            assert!(
                c.members.len() <= 2,
                "the 3-clique has empty common intersection"
            );
        }
    }
}
