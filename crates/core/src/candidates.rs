//! The divisor-discovery seam: [`CandidateSource`] and its two
//! implementations.
//!
//! Candidate enumeration used to be hard-wired into
//! [`crate::engine::SubstEngine`] as the support-overlap index. This
//! module extracts it behind a trait so a run can choose *how* divisors
//! are proposed — [`OverlapIndex`] reproduces the pre-redesign behaviour
//! bit-identically, while [`SignatureClasses`] proposes from the sim
//! filter's signature-class buckets ("sim-resub", arXiv 2007.02579) in a
//! near-linear pass. The strategy is selected with
//! [`crate::SubstOptions::with_discovery`]; the engine resolves
//! [`Discovery::Auto`] and the sim-filter requirement at session start
//! and reports the choice in [`crate::SubstStats::discovery`].
//!
//! # Contract
//!
//! A source only ever *proposes*; every proposed pair still runs the full
//! filter chain and division proof, so a wrong or missing proposal can
//! cost opportunity, never correctness. In exchange the engine promises:
//!
//! * [`CandidateSource::candidates`] is called with a flushed sim filter
//!   (when one is attached) and a side table synchronised with the
//!   network;
//! * after every committed rewrite, [`CandidateSource::note_commit`] is
//!   called exactly once with the pre-commit network version and the
//!   changed signature rows, before the next `candidates` call;
//! * rollbacks (guard rejections, faults) get no notification — a source
//!   holding derived state must detect the version gap and rebuild, the
//!   same discipline [`boolsubst_sim::SimTable`] enforces with its
//!   version stamp.

use crate::subst::Discovery;
use boolsubst_network::{Network, NodeId, SideTables};
use boolsubst_sim::{SignatureBuckets, SimFilter};

/// The read-only engine state a source may consult while proposing.
///
/// Borrowed fresh for every call, so a source never holds references into
/// the engine across mutations.
pub struct SourceCtx<'a> {
    /// The network being swept.
    pub net: &'a Network,
    /// Maintained fanout lists / levels / transitive-fanout memos.
    pub side: &'a SideTables,
    /// The simulation filter, when [`crate::SubstOptions::sim`] enabled
    /// it. Guaranteed flushed during [`CandidateSource::candidates`].
    pub sim: Option<&'a SimFilter>,
}

/// Divisor candidates for one target, in ascending id order, plus the
/// per-source funnel observation that produced them.
#[derive(Debug)]
pub struct CandidateIter {
    inner: std::vec::IntoIter<NodeId>,
    bucket_hits: usize,
}

impl CandidateIter {
    /// Wraps an already sorted-and-deduplicated candidate list.
    #[must_use]
    pub fn new(divisors: Vec<NodeId>, bucket_hits: usize) -> CandidateIter {
        CandidateIter {
            inner: divisors.into_iter(),
            bucket_hits,
        }
    }

    /// Signature rows consulted while proposing — bucket members scanned
    /// plus structurally-enumerated candidates screened (zero for
    /// signature-free sources such as [`OverlapIndex`]).
    #[must_use]
    pub fn bucket_hits(&self) -> usize {
        self.bucket_hits
    }

    /// The remaining candidates as a plain vector.
    #[must_use]
    pub fn into_vec(self) -> Vec<NodeId> {
        self.inner.collect()
    }
}

impl Iterator for CandidateIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for CandidateIter {}

/// A divisor-discovery strategy (see the module docs for the contract).
pub trait CandidateSource {
    /// Stable label for traces and stats ("overlap", "signature").
    fn name(&self) -> &'static str;

    /// Proposes divisor candidates for `target`, restricted to ids below
    /// `bound` (the id snapshot taken at target-visit time) and, when
    /// `cursor` is set, strictly above it (the resume point after an
    /// acceptance). Candidates must come back sorted ascending — the
    /// engine's visit order and the parallel sweep's ordered-commit
    /// protocol both depend on it.
    fn candidates(
        &mut self,
        ctx: &SourceCtx<'_>,
        target: NodeId,
        bound: usize,
        cursor: Option<NodeId>,
    ) -> CandidateIter;

    /// How many eligible pairs the source skipped without proposing, for
    /// [`crate::SubstStats::filtered_by_index`]. The default claims
    /// nothing — only a source enumerating against a known universe (like
    /// [`OverlapIndex`]) can say.
    fn skipped(
        &self,
        ctx: &SourceCtx<'_>,
        proposed: usize,
        bound: usize,
        cursor: Option<NodeId>,
    ) -> usize {
        let _ = (ctx, proposed, bound, cursor);
        0
    }

    /// Called once after every committed rewrite, before the next
    /// [`CandidateSource::candidates`] call. `pre_version` is the network
    /// version the commit started from and `changed` the signature rows
    /// it moved (possibly empty — substitution preserves the target's
    /// function).
    fn note_commit(&mut self, ctx: &SourceCtx<'_>, pre_version: u64, changed: &[NodeId]) {
        let _ = (ctx, pre_version, changed);
    }

    /// Checked-mode integrity audit, called after every commit with the
    /// rows that edit touched (the rewritten pair plus the changed
    /// signature rows): `true` when the source's derived state is
    /// consistent for those rows. Cost must stay proportional to `rows` —
    /// this runs per commit, the same discipline as
    /// [`boolsubst_sim::SimFilter::audit`]. A failing source must
    /// self-repair before returning; the engine books the fault.
    fn audit(&mut self, ctx: &SourceCtx<'_>, rows: &[NodeId]) -> bool {
        let _ = (ctx, rows);
        true
    }
}

/// The pre-redesign support-overlap index: divisor candidates are the
/// fanouts of the target's fanins, which is exactly the set passing the
/// legacy support-overlap filter. Stateless; pinned bit-identical to the
/// hard-wired enumeration by `tests/engine_parity.rs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct OverlapIndex;

impl OverlapIndex {
    pub(crate) fn enumerate(
        ctx: &SourceCtx<'_>,
        target: NodeId,
        bound: usize,
        cursor: Option<NodeId>,
    ) -> Vec<NodeId> {
        let net = ctx.net;
        let mut out: Vec<NodeId> = Vec::new();
        for &f in net.node(target).fanins() {
            for &o in ctx.side.fanouts(net, f) {
                if o.index() < bound && cursor.is_none_or(|c| o > c) {
                    out.push(o);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    pub(crate) fn count_skipped(
        ctx: &SourceCtx<'_>,
        proposed: usize,
        bound: usize,
        cursor: Option<NodeId>,
    ) -> usize {
        let eligible = ctx
            .net
            .internal_ids()
            .filter(|id| id.index() < bound && cursor.is_none_or(|c| *id > c))
            .count();
        eligible.saturating_sub(proposed)
    }
}

impl CandidateSource for OverlapIndex {
    fn name(&self) -> &'static str {
        "overlap"
    }

    fn candidates(
        &mut self,
        ctx: &SourceCtx<'_>,
        target: NodeId,
        bound: usize,
        cursor: Option<NodeId>,
    ) -> CandidateIter {
        CandidateIter::new(OverlapIndex::enumerate(ctx, target, bound, cursor), 0)
    }

    fn skipped(
        &self,
        ctx: &SourceCtx<'_>,
        proposed: usize,
        bound: usize,
        cursor: Option<NodeId>,
    ) -> usize {
        OverlapIndex::count_skipped(ctx, proposed, bound, cursor)
    }
}

/// Signature-class discovery: divisors come from two complementary
/// signature-screened pools, so the division proof runs only on pairs the
/// pattern pool could not refute.
///
/// * the [`SignatureBuckets`] equal / complement / containment classes —
///   *global* candidates the support-overlap neighbourhood never sees,
///   maintained incrementally across commits and capped per class so a
///   large equality class (multiplier partial-product arrays) costs
///   `O(class · cap)` instead of `O(class²)`;
/// * the overlap neighbourhood (fanouts of the target's fanins), each
///   candidate screened cube-wise against the target's cover
///   ([`SimFilter::screen_cover`]) — the *local* algebraic-division wins
///   [`OverlapIndex`] would propose, minus the pairs whose SOP strategies
///   the engine's own refute-only screen would have killed pre-proof.
///
/// Requires an attached sim filter; without one it degrades to
/// [`OverlapIndex`] enumeration (the engine's option resolution prevents
/// that combination, but a direct trait user is not left broken).
#[derive(Debug, Default)]
pub struct SignatureClasses {
    buckets: SignatureBuckets,
}

impl SignatureClasses {
    /// An empty index; the first [`CandidateSource::candidates`] call
    /// builds it.
    #[must_use]
    pub fn new() -> SignatureClasses {
        SignatureClasses::default()
    }
}

impl CandidateSource for SignatureClasses {
    fn name(&self) -> &'static str {
        "signature"
    }

    fn candidates(
        &mut self,
        ctx: &SourceCtx<'_>,
        target: NodeId,
        bound: usize,
        cursor: Option<NodeId>,
    ) -> CandidateIter {
        let Some(sim) = ctx.sim else {
            return CandidateIter::new(OverlapIndex::enumerate(ctx, target, bound, cursor), 0);
        };
        self.buckets.ensure(ctx.net, sim);
        let p = self.buckets.propose(ctx.net, sim, target, bound, cursor);
        let mut divisors = p.divisors;
        let mut consulted = p.bucket_hits;
        let node = ctx.net.node(target);
        let cover = node.cover();
        for o in OverlapIndex::enumerate(ctx, target, bound, cursor) {
            consulted += 1;
            let keep = match cover {
                Some(cover) if o != target => {
                    let sc = sim.screen_cover(ctx.net, cover, node.fanins(), o);
                    // A pair whose kept split is refuted against both the
                    // divisor and its complement has no live SOP strategy;
                    // anything else still reaches the proof. Refute-only,
                    // so the drop can cost opportunity, never correctness.
                    !(sc.refutes_containment_in_divisor() && sc.refutes_containment_in_complement())
                }
                _ => true,
            };
            if keep {
                divisors.push(o);
            }
        }
        divisors.sort_unstable();
        divisors.dedup();
        CandidateIter::new(divisors, consulted)
    }

    fn note_commit(&mut self, ctx: &SourceCtx<'_>, pre_version: u64, changed: &[NodeId]) {
        if let Some(sim) = ctx.sim {
            self.buckets
                .apply_commit(ctx.net, sim, pre_version, changed);
        }
    }

    fn audit(&mut self, ctx: &SourceCtx<'_>, rows: &[NodeId]) -> bool {
        let Some(sim) = ctx.sim else {
            return true;
        };
        // Row-proportional spot-check; a mismatch rebuilds the index
        // (deterministic repair, mirroring the sim filter's audit path)
        // so the sweep continues on sound state.
        self.buckets.audit_rows(ctx.net, sim, rows)
    }
}

/// Boxes the source implementation for a resolved [`Discovery`] choice.
pub(crate) fn build_source(discovery: Discovery) -> Box<dyn CandidateSource> {
    match discovery {
        Discovery::Overlap | Discovery::Auto => Box::new(OverlapIndex),
        Discovery::Signature => Box::new(SignatureClasses::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_cube::parse_sop;

    fn sample() -> (Network, NodeId, NodeId) {
        let mut net = Network::new("cand_t");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let c = net.add_input("c").expect("c");
        let f = net
            .add_node(
                "f",
                vec![a, b, c],
                parse_sop(3, "ab + ac + bc'").expect("p"),
            )
            .expect("f");
        let d = net
            .add_node("d", vec![a, b, c], parse_sop(3, "ab + c").expect("p"))
            .expect("d");
        net.add_output("f", f).expect("o");
        net.add_output("d", d).expect("o");
        (net, f, d)
    }

    /// The trait impl must reproduce the deprecated engine entry points
    /// exactly — same candidates, same skipped count.
    #[test]
    #[allow(deprecated)]
    fn overlap_source_matches_deprecated_engine_shims() {
        let (mut net, f, d) = sample();
        let bound = net.id_bound();
        let mut engine = crate::engine::SubstEngine::new(&mut net, crate::SubstOptions::basic());
        for target in [f, d] {
            for cursor in [None, Some(f)] {
                let via_shim = engine.candidates(target, bound, cursor);
                let skipped0 = engine.stats().filtered_by_index;
                engine.count_skipped(via_shim.len(), bound, cursor);
                let shim_skipped = engine.stats().filtered_by_index - skipped0;
                let ctx = SourceCtx {
                    net: &*engine.net,
                    side: &engine.side,
                    sim: None,
                };
                let mut source = OverlapIndex;
                let iter = source.candidates(&ctx, target, bound, cursor);
                assert_eq!(iter.bucket_hits(), 0);
                let via_trait = iter.into_vec();
                assert_eq!(via_trait, via_shim);
                assert_eq!(
                    source.skipped(&ctx, via_trait.len(), bound, cursor),
                    shim_skipped
                );
            }
        }
    }
}
