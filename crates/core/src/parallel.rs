//! The epoch-parallel speculative sweep: proofs fan out, commits stay
//! serial, results stay bit-identical to the sequential engine.
//!
//! # Protocol
//!
//! Between two accepted rewrites the sequential engine never mutates the
//! network — every rejected pair attempt is read-only. That window is an
//! **epoch**: the committer (the engine thread) enumerates one candidate
//! slice exactly as the sequential sweep would, then a scoped pool of
//! workers speculatively evaluates the pairs against the shared, frozen
//! `&Network` using the read-only halves of the machinery:
//!
//! * [`SideTables::in_tfo_frozen`] for the cycle filter (no memo writes),
//! * [`SimView`] over the shared signature table for the refute-only
//!   screen (no refinement, so nothing is ever pending),
//! * [`plan_pair_core`] for the proof pipeline, producing a [`SubstPlan`]
//!   instead of mutating.
//!
//! Workers pull indices from an atomic cursor and publish a monotone
//! "lowest accepting index" bound; indices above the bound are skipped
//! (their evaluation is dead — the sequential sweep would never have
//! reached them in this enumeration). Every index at or below the final
//! bound is guaranteed evaluated.
//!
//! # Commit
//!
//! The committer then replays the epoch in pair order: the stat deltas of
//! every rejected pair below the winner are merged (they are exactly what
//! the sequential engine would have recorded — the network is identical),
//! and the winning pair is re-run **live** through the ordinary
//! [`SubstEngine::attempt`] path. That re-validates the plan against the
//! live network and reuses the whole txn/guard/side-patching machinery,
//! so a stale or refuted speculation (e.g. a checked-mode guard
//! rejection) is dropped exactly as the sequential engine would drop it,
//! and the sweep resumes at the next pair of the same enumeration.
//!
//! # Determinism contract
//!
//! Under [`Acceptance::FirstGain`] the winner is the *lowest-index*
//! accepting pair of each epoch, so the commit sequence — and therefore
//! the final network — is bit-identical to the sequential engine for any
//! thread count (`tests/parallel_parity.rs`, `tests/engine_parity.rs`).
//! This is why `FirstGain` needs ordered commit: accepting any other
//! index first would rewrite the target before pairs the sequential
//! sweep evaluates earlier. Counters not derived from commits
//! (`sim_false_passes`, `sim_refinements`, `rar_checks`) may differ from
//! a 1-thread run because parallel sweeps do not refine the pattern pool
//! mid-pass; they are identical across parallel runs of any width.
//!
//! Worker panics are always caught (parallel mode implies per-pair panic
//! isolation): the pair is booked as an engine fault, quarantined, and
//! the committer keeps going — a dying worker cannot poison the shared
//! state because speculation never mutates it.

use crate::engine::{id32, nanos, ShadowEntry, SubstEngine};
use crate::netcircuit::ShadowBase;
use crate::subst::{
    plan_pair_core, Acceptance, GdcScope, PlanKind, SubstMode, SubstOptions, SubstPlan, SubstStats,
};
use boolsubst_algebraic::JointSpace;
use boolsubst_cube::Cover;
use boolsubst_network::{Network, NodeId, SideTables};
use boolsubst_sim::SimView;
use boolsubst_trace::{Outcome, PairRecord, Stage, StageNanos};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Epochs smaller than this are evaluated inline by the committer: a
/// thread spawn costs more than a couple of pair proofs.
const PAR_MIN_PAIRS: usize = 16;

/// How one speculated pair ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpecVerdict {
    /// A division strategy produced a positive-gain plan.
    Accept,
    /// Every strategy rejected (or a filter did).
    Reject,
    /// The evaluation panicked; the pair must be quarantined.
    Fault,
}

/// One worker-evaluated pair: the verdict, the stat delta the sequential
/// engine would have recorded for it, and (when tracing) a replayable
/// span record.
struct PairEval {
    verdict: SpecVerdict,
    delta: SubstStats,
    rec: Option<PairRecord>,
}

/// Speculatively evaluates one (target, divisor) pair read-only against
/// the epoch snapshot, mirroring [`SubstEngine::attempt`]'s filter chain
/// and stat accounting exactly — minus every mutation (no sim flush or
/// refinement, no memo writes, no network edit). Always panic-isolated.
#[allow(clippy::too_many_arguments)]
fn speculate_pair(
    net: &Network,
    side: &SideTables,
    quarantine: &HashSet<(NodeId, NodeId)>,
    shadow: Option<&ShadowBase>,
    sim: Option<SimView<'_>>,
    opts: &SubstOptions,
    target: NodeId,
    divisor: NodeId,
    record: bool,
    worker: u32,
) -> PairEval {
    let t_all = Instant::now();
    let mut delta = SubstStats::default();
    let mut stages = StageNanos::default();
    let mut gain = 0i64;
    delta.candidates_enumerated += 1;

    let t0 = Instant::now();
    let mut space: Option<JointSpace> = None;
    let filtered: Option<Outcome> = 'filters: {
        if quarantine.contains(&(target, divisor)) {
            break 'filters Some(Outcome::GuardRejected);
        }
        if target == divisor || net.node(target).fanins().contains(&divisor) {
            delta.filtered_structural += 1;
            break 'filters Some(Outcome::RejectedStructural);
        }
        if side.in_tfo_frozen(net, divisor, target) {
            delta.filtered_tfo += 1;
            break 'filters Some(Outcome::RejectedTfo);
        }
        let Some(d_cover_len) = net.node(divisor).cover().map(Cover::len) else {
            delta.filtered_structural += 1;
            break 'filters Some(Outcome::RejectedStructural);
        };
        if d_cover_len == 0 || d_cover_len > opts.max_divisor_cubes.get() {
            delta.filtered_divisor_size += 1;
            break 'filters Some(Outcome::RejectedDivisorSize);
        }
        let js = JointSpace::union_of_fanins(net, &[target, divisor]);
        if js.len() > opts.max_joint_vars {
            delta.filtered_joint_space += 1;
            break 'filters Some(Outcome::RejectedJointSpace);
        }
        space = Some(js);
        None
    };
    let dt0 = nanos(t0);
    delta.filter_nanos += dt0;
    stages.add(Stage::Filter, dt0);

    let (verdict, outcome) = if let Some(outcome) = filtered {
        (SpecVerdict::Reject, outcome)
    } else {
        let space = space.expect("space is set when every filter passes");
        // Mirrors `attempt`: the pair survived every cheap filter.
        delta.discovery_proofs_run += 1;
        let t1 = Instant::now();
        let sim_nanos0 = delta.sim_nanos;
        let planned = catch_unwind(AssertUnwindSafe(|| {
            let scope = match shadow {
                Some(base) => GdcScope::Shadow(base),
                None => GdcScope::Rebuild,
            };
            plan_pair_core(
                net,
                target,
                divisor,
                &space,
                opts,
                &mut delta,
                &scope,
                sim.map(|v| v.filter()),
                None,
            )
        }));
        let dt1 = nanos(t1);
        delta.divide_nanos += dt1;
        let sim_delta = delta.sim_nanos - sim_nanos0;
        stages.add(Stage::Sim, sim_delta);
        stages.add(Stage::Divide, dt1.saturating_sub(sim_delta));
        match planned {
            Ok(Some(plan)) => {
                gain = plan.gain();
                let outcome = match &plan {
                    SubstPlan::Replace {
                        kind: PlanKind::Pos,
                        ..
                    } => Outcome::AcceptedPos,
                    SubstPlan::Replace { .. } => Outcome::AcceptedSop,
                    SubstPlan::Extended(_) => Outcome::AcceptedExtended,
                };
                (SpecVerdict::Accept, outcome)
            }
            Ok(None) => {
                let outcome = if delta.sim_pairs_refuted > 0 {
                    Outcome::RejectedSimRefuted
                } else {
                    Outcome::RejectedNoGain
                };
                (SpecVerdict::Reject, outcome)
            }
            Err(_) => (SpecVerdict::Fault, Outcome::EngineFault),
        }
    };
    let rec = record.then(|| PairRecord {
        target: id32(target),
        divisor: id32(divisor),
        dur_ns: nanos(t_all),
        stages,
        outcome,
        gain,
        rar_checks: u64::try_from(delta.rar_checks).unwrap_or(u64::MAX),
        worker,
    });
    PairEval {
        verdict,
        delta,
        rec,
    }
}

impl SubstEngine<'_> {
    /// Parallel replacement for the sequential target visit; dispatched
    /// from `visit_target` when `opts.threads > 1`.
    pub(crate) fn visit_target_parallel(&mut self, target: NodeId) {
        match self.opts.acceptance {
            Acceptance::FirstGain => self.parallel_first_gain(target),
            Acceptance::BestGain => self.parallel_best_gain(target),
        }
    }

    /// If the GDC shadow snapshot is missing or stale, builds it now so
    /// workers can share it — but does *not* book the cache miss yet.
    /// Returns the build duration; the miss is booked when (if) the
    /// first filter-surviving pair consumes it, which is the moment the
    /// sequential engine's lazy `ensure_shadow` would have built it.
    fn prepare_epoch_shadow(&mut self, target: NodeId) -> Option<u64> {
        if self.opts.mode != SubstMode::ExtendedGdc {
            return None;
        }
        let valid = self
            .shadow
            .as_ref()
            .is_some_and(|e| e.target == target && e.version == self.net.version());
        if valid {
            return None;
        }
        let t0 = Instant::now();
        let tfo = self.side.tfo(self.net, target).clone();
        let base = ShadowBase::prepare(self.net, target, &tfo);
        self.shadow = Some(ShadowEntry {
            target,
            version: self.net.version(),
            base,
        });
        Some(nanos(t0))
    }

    /// Merges one speculated (and sequentially-consumed) pair into the
    /// live stats: the delta, the shadow-cache accounting the sequential
    /// `ensure_shadow` would have done, fault quarantine, and the traced
    /// span replay.
    fn merge_speculated(
        &mut self,
        target: NodeId,
        divisor: NodeId,
        eval: PairEval,
        pending_build: &mut Option<u64>,
    ) {
        // A pair that reached the division core is one the sequential
        // engine would have called `ensure_shadow` for.
        let survivor = eval.delta.divisions_tried > 0;
        self.stats.merge(&eval.delta);
        if self.opts.mode == SubstMode::ExtendedGdc && survivor {
            if let Some(ns) = pending_build.take() {
                self.stats.shadow_cache_misses += 1;
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.shadow_build(id32(target), ns);
                }
            } else {
                self.stats.shadow_cache_hits += 1;
            }
        }
        if eval.verdict == SpecVerdict::Fault {
            self.stats.engine_faults += 1;
            self.quarantine_pair(target, divisor);
        }
        if let Some(rec) = eval.rec.as_ref() {
            if let Some(t) = self.tracer.as_deref_mut() {
                t.record_pair(rec);
            }
        }
    }

    /// One epoch: speculative evaluation of `cands` against the frozen
    /// network. Returns one slot per candidate; a `None` slot was skipped
    /// because its index lies beyond the epoch's lowest accepting index
    /// (the sequential sweep would never have evaluated it either).
    fn speculate_epoch(&self, target: NodeId, cands: &[NodeId]) -> Vec<Option<PairEval>> {
        let record = self.tracer.is_some();
        let net: &Network = self.net;
        let side = &self.side;
        let quarantine = &self.quarantine;
        let opts = &self.opts;
        let shadow: Option<&ShadowBase> = match &self.shadow {
            Some(e) if opts.mode == SubstMode::ExtendedGdc => Some(&e.base),
            _ => None,
        };
        let sim = self.sim.as_ref().map(SimView::freeze);
        let metrics = self.metrics.as_ref();
        if let Some(m) = metrics {
            m.sweep_epochs.inc();
        }
        let workers = opts.threads.get().min(cands.len());
        if workers <= 1 || cands.len() < PAR_MIN_PAIRS {
            // Tiny epoch: a spawn costs more than the proofs. Inline
            // evaluation with the same early exit is bit-identical.
            let mut out: Vec<Option<PairEval>> = Vec::with_capacity(cands.len());
            for &divisor in cands {
                let tp = metrics.map(|_| Instant::now());
                let eval = speculate_pair(
                    net, side, quarantine, shadow, sim, opts, target, divisor, record, 0,
                );
                if let (Some(m), Some(tp)) = (metrics, tp) {
                    let dt = nanos(tp);
                    m.workers[0].proof_ns.add(dt);
                    m.workers[0].pairs.inc();
                    m.sweep_proof_ns.add(dt);
                }
                let stop = eval.verdict == SpecVerdict::Accept;
                out.push(Some(eval));
                if stop {
                    break;
                }
            }
            out.resize_with(cands.len(), || None);
            return out;
        }
        let next = AtomicUsize::new(0);
        let best = AtomicUsize::new(usize::MAX);
        let found = Mutex::new(Vec::<(usize, PairEval)>::with_capacity(cands.len()));
        #[cfg(feature = "chaos")]
        let chaos_cfg = crate::chaos::current_config();
        let drain = |worker: usize| {
            // Chaos state is thread-local: re-arm each spawned worker
            // with the committer's configuration so injected faults
            // reach speculation too. The committer (worker 0)
            // participates inline with its own already-armed stream.
            #[cfg(feature = "chaos")]
            if worker != 0 {
                if let Some(cfg) = chaos_cfg {
                    crate::chaos::configure(cfg);
                }
            }
            let t_drain = metrics.map(|_| Instant::now());
            let mut proof_ns = 0u64;
            let mut wait_ns = 0u64;
            let mut pairs = 0u64;
            loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= cands.len() {
                    break;
                }
                // Skip work the sequential sweep would never reach.
                // `best` only ever decreases, so every index at or
                // below the final winner is evaluated before it could
                // be skipped.
                if idx > best.load(Ordering::Acquire) {
                    continue;
                }
                let tp = metrics.map(|_| Instant::now());
                let eval = speculate_pair(
                    net,
                    side,
                    quarantine,
                    shadow,
                    sim,
                    opts,
                    target,
                    cands[idx],
                    record,
                    u32::try_from(worker).unwrap_or(u32::MAX),
                );
                if let Some(tp) = tp {
                    proof_ns += nanos(tp);
                    pairs += 1;
                }
                if eval.verdict == SpecVerdict::Accept {
                    best.fetch_min(idx, Ordering::AcqRel);
                }
                let tw = metrics.map(|_| Instant::now());
                let mut slots = found.lock().expect("worker result lock");
                if let Some(tw) = tw {
                    wait_ns += nanos(tw);
                }
                slots.push((idx, eval));
            }
            if let (Some(m), Some(t_drain)) = (metrics, t_drain) {
                // Whatever the drain's wall clock did not spend proving
                // or blocked on the result lock is idle overhead: cursor
                // traffic, scheduling, spin-down after the bound drops.
                let idle = nanos(t_drain)
                    .saturating_sub(proof_ns)
                    .saturating_sub(wait_ns);
                let wm = &m.workers[worker];
                wm.proof_ns.add(proof_ns);
                wm.wait_ns.add(wait_ns);
                wm.idle_ns.add(idle);
                wm.pairs.add(pairs);
                m.sweep_proof_ns.add(proof_ns);
                m.sweep_wait_ns.add(wait_ns);
                m.sweep_idle_ns.add(idle);
            }
        };
        std::thread::scope(|s| {
            let drain = &drain;
            for w in 1..workers {
                s.spawn(move || drain(w));
            }
            drain(0);
        });
        let mut out: Vec<Option<PairEval>> = Vec::new();
        out.resize_with(cands.len(), || None);
        for (idx, eval) in found.into_inner().expect("worker result lock") {
            out[idx] = Some(eval);
        }
        out
    }

    /// The parallel first-gain visit: epochs of speculation, ordered
    /// commits, sequential re-validation of each winner.
    fn parallel_first_gain(&mut self, target: NodeId) {
        let bound = self.net.id_bound();
        let mut cursor: Option<NodeId> = None;
        'resume: loop {
            if self.deadline_expired() {
                return;
            }
            let cands = self.discover(target, bound, cursor);
            // Commit-side guard rejections consume pairs without touching
            // the network, so the sweep continues inside the *same*
            // enumeration from `start` — exactly like the sequential
            // candidate loop continuing in place.
            let mut start = 0usize;
            loop {
                if start >= cands.len() {
                    break 'resume;
                }
                if self.deadline_expired() {
                    return;
                }
                let mut pending_build = self.prepare_epoch_shadow(target);
                let slice = &cands[start..];
                let mut evals = self.speculate_epoch(target, slice);
                let winner = evals.iter().position(|e| {
                    e.as_ref()
                        .is_some_and(|ev| ev.verdict == SpecVerdict::Accept)
                });
                let merge_upto = winner.unwrap_or(slice.len());
                for (i, divisor) in slice.iter().copied().enumerate().take(merge_upto) {
                    let eval = evals[i]
                        .take()
                        .expect("pairs below the winner are evaluated");
                    self.merge_speculated(target, divisor, eval, &mut pending_build);
                }
                let Some(w) = winner else {
                    // No acceptance anywhere in the enumeration: the
                    // visit is over (any unconsumed shadow build stays
                    // uncounted, as the sequential engine never built it).
                    break 'resume;
                };
                let divisor = slice[w];
                // Sequentially re-validate and apply the winner through
                // the ordinary attempt path (txn, guard, side patching,
                // live tracing). If the winner is the epoch's first
                // filter survivor, the sequential engine would have built
                // the shadow *here* — swap the warm-cache hit `attempt`
                // books for the miss it would have counted.
                let pending_was = pending_build.take();
                if let Some(ns) = pending_was {
                    if let Some(t) = self.tracer.as_deref_mut() {
                        t.shadow_build(id32(target), ns);
                    }
                }
                let before = self.stats.substitutions;
                let tc = self.metrics.as_ref().map(|_| Instant::now());
                self.attempt(target, divisor);
                if let (Some(m), Some(tc)) = (&self.metrics, tc) {
                    m.sweep_commit_ns.add(nanos(tc));
                }
                if pending_was.is_some() {
                    self.stats.shadow_cache_hits -= 1;
                    self.stats.shadow_cache_misses += 1;
                }
                if self.stats.substitutions != before {
                    // Committed: the target's fanins changed, re-enumerate
                    // and resume past this divisor.
                    cursor = Some(divisor);
                    continue 'resume;
                }
                // Speculation accepted but the live attempt did not
                // (checked-mode guard rejection or fault): the pair is
                // quarantined; keep consuming the same enumeration.
                start += w + 1;
            }
        }
    }

    /// The parallel best-gain visit: dry-runs fan out over scratch
    /// clones (their stats are discarded, as in the sequential loop),
    /// then the lowest-index best gain is applied for real.
    fn parallel_best_gain(&mut self, target: NodeId) {
        let bound = self.net.id_bound();
        let cands = self.discover(target, bound, None);
        if self.deadline_expired() {
            return;
        }
        let results = {
            let net: &Network = self.net;
            let opts = &self.opts;
            let metrics = self.metrics.as_ref();
            if let Some(m) = metrics {
                m.sweep_epochs.inc();
            }
            let next = AtomicUsize::new(0);
            let found = Mutex::new(Vec::<(usize, Result<Option<i64>, ()>)>::with_capacity(
                cands.len(),
            ));
            #[cfg(feature = "chaos")]
            let chaos_cfg = crate::chaos::current_config();
            let workers = opts.threads.get().min(cands.len()).max(1);
            let drain = |worker: usize| {
                #[cfg(feature = "chaos")]
                if worker != 0 {
                    if let Some(cfg) = chaos_cfg {
                        crate::chaos::configure(cfg);
                    }
                }
                let t_drain = metrics.map(|_| Instant::now());
                let mut proof_ns = 0u64;
                let mut wait_ns = 0u64;
                let mut pairs = 0u64;
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= cands.len() {
                        break;
                    }
                    let divisor = cands[idx];
                    let tp = metrics.map(|_| Instant::now());
                    let mut scratch = net.clone();
                    let mut scratch_stats = SubstStats::default();
                    let dry = catch_unwind(AssertUnwindSafe(|| {
                        crate::subst::try_pair(
                            &mut scratch,
                            target,
                            divisor,
                            opts,
                            &mut scratch_stats,
                        )
                    }))
                    .map_err(|_| ());
                    if let Some(tp) = tp {
                        proof_ns += nanos(tp);
                        pairs += 1;
                    }
                    let tw = metrics.map(|_| Instant::now());
                    let mut slots = found.lock().expect("dry-run result lock");
                    if let Some(tw) = tw {
                        wait_ns += nanos(tw);
                    }
                    slots.push((idx, dry));
                }
                if let (Some(m), Some(t_drain)) = (metrics, t_drain) {
                    let idle = nanos(t_drain)
                        .saturating_sub(proof_ns)
                        .saturating_sub(wait_ns);
                    let wm = &m.workers[worker];
                    wm.proof_ns.add(proof_ns);
                    wm.wait_ns.add(wait_ns);
                    wm.idle_ns.add(idle);
                    wm.pairs.add(pairs);
                    m.sweep_proof_ns.add(proof_ns);
                    m.sweep_wait_ns.add(wait_ns);
                    m.sweep_idle_ns.add(idle);
                }
            };
            std::thread::scope(|s| {
                let drain = &drain;
                for w in 1..workers {
                    s.spawn(move || drain(w));
                }
                drain(0);
            });
            let mut results = found.into_inner().expect("dry-run result lock");
            results.sort_unstable_by_key(|&(idx, _)| idx);
            results
        };
        let mut best: Option<(NodeId, i64)> = None;
        for (idx, dry) in results {
            match dry {
                Err(()) => {
                    // A panicking dry run touched only its scratch clone;
                    // book the fault and never retry the pair.
                    self.stats.engine_faults += 1;
                    self.quarantine_pair(target, cands[idx]);
                }
                Ok(Some(gain)) => {
                    if best.is_none_or(|(_, g)| gain > g) {
                        best = Some((cands[idx], gain));
                    }
                }
                Ok(None) => {}
            }
        }
        if let Some((divisor, _)) = best {
            let tc = self.metrics.as_ref().map(|_| Instant::now());
            self.attempt(target, divisor);
            if let (Some(m), Some(tc)) = (&self.metrics, tc) {
                m.sweep_commit_ns.add(nanos(tc));
            }
        }
    }
}
