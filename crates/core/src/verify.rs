//! Exact equivalence checking of networks through the BDD oracle.

use boolsubst_bdd::{Bdd, Ref};
use boolsubst_cube::Phase;
use boolsubst_network::Network;

/// Builds BDDs (over the primary inputs, in declaration order) for every
/// primary output of the network.
///
/// # Panics
///
/// Panics on networks whose BDDs exceed the manager's `u32` node space.
#[must_use]
pub fn network_bdds(net: &Network) -> (Bdd, Vec<(String, Ref)>) {
    let n = net.inputs().len();
    let mut bdd = Bdd::new(n);
    let mut node_fn: Vec<Option<Ref>> = vec![None; net.id_bound()];
    for (i, &pi) in net.inputs().iter().enumerate() {
        node_fn[pi.index()] = Some(bdd.var(i));
    }
    for id in net.topo_order() {
        let node = net.node(id);
        let Some(cover) = node.cover() else { continue };
        let mut acc = bdd.zero();
        for cube in cover.cubes() {
            let mut term = bdd.one();
            for l in cube.lits() {
                let fan = node.fanins()[l.var];
                let f = node_fn[fan.index()].expect("topo order");
                let lit = match l.phase {
                    Phase::Pos => f,
                    Phase::Neg => bdd.not(f),
                };
                term = bdd.and(term, lit);
            }
            acc = bdd.or(acc, term);
        }
        node_fn[id.index()] = Some(acc);
    }
    let outputs = net
        .outputs()
        .iter()
        .map(|(name, o)| (name.clone(), node_fn[o.index()].expect("driver built")))
        .collect();
    (bdd, outputs)
}

/// Exact equivalence of two networks: same primary-input names, same
/// output names, and identical BDDs per output (inputs matched by name).
///
/// # Panics
///
/// Panics if either network has duplicate output names.
#[must_use]
pub fn networks_equivalent(a: &Network, b: &Network) -> bool {
    let a_inputs: Vec<&str> = a.inputs().iter().map(|&i| a.node(i).name()).collect();
    let b_inputs: Vec<&str> = b.inputs().iter().map(|&i| b.node(i).name()).collect();
    if a_inputs.len() != b_inputs.len() {
        return false;
    }
    // Build b with inputs re-ordered to match a (by name).
    let Some(perm): Option<Vec<usize>> = a_inputs
        .iter()
        .map(|n| b_inputs.iter().position(|m| m == n))
        .collect()
    else {
        return false;
    };

    // Build both networks' functions in one shared manager, with variable
    // i meaning a's i-th input (b's inputs permuted to match by name).
    let n = a_inputs.len();
    let mut bdd = Bdd::new(n);
    let mut node_fn_a: Vec<Option<boolsubst_bdd::Ref>> = vec![None; a.id_bound()];
    for (i, &pi) in a.inputs().iter().enumerate() {
        node_fn_a[pi.index()] = Some(bdd.var(i));
    }
    let mut node_fn_b: Vec<Option<boolsubst_bdd::Ref>> = vec![None; b.id_bound()];
    for (bi, &pi) in b.inputs().iter().enumerate() {
        let ai = perm.iter().position(|&p| p == bi).expect("bijection");
        node_fn_b[pi.index()] = Some(bdd.var(ai));
    }
    let build = |bdd: &mut Bdd, net: &Network, node_fn: &mut Vec<Option<Ref>>| {
        for id in net.topo_order() {
            let node = net.node(id);
            let Some(cover) = node.cover() else { continue };
            let mut acc = bdd.zero();
            for cube in cover.cubes() {
                let mut term = bdd.one();
                for l in cube.lits() {
                    let fan = node.fanins()[l.var];
                    let f = node_fn[fan.index()].expect("topo order");
                    let lit = match l.phase {
                        Phase::Pos => f,
                        Phase::Neg => bdd.not(f),
                    };
                    term = bdd.and(term, lit);
                }
                acc = bdd.or(acc, term);
            }
            node_fn[id.index()] = Some(acc);
        }
    };
    build(&mut bdd, a, &mut node_fn_a);
    build(&mut bdd, b, &mut node_fn_b);

    let outs = |net: &Network, node_fn: &[Option<Ref>]| -> Option<Vec<(String, Ref)>> {
        let mut v: Vec<(String, Ref)> = net
            .outputs()
            .iter()
            .map(|(name, o)| (name.clone(), node_fn[o.index()].expect("built")))
            .collect();
        v.sort_by(|x, y| x.0.cmp(&y.0));
        for w in v.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate output name {}", w[0].0);
        }
        Some(v)
    };
    let (Some(oa), Some(ob)) = (outs(a, &node_fn_a), outs(b, &node_fn_b)) else {
        return false;
    };
    oa == ob
}

/// Equivalence *modulo external don't cares*: outputs may differ only on
/// input combinations marked don't-care by either network's attached
/// `.exdc` network (matched to outputs by name). Falls back to exact
/// equivalence when neither network carries don't cares.
///
/// # Panics
///
/// Panics if either network has duplicate output names.
#[must_use]
pub fn networks_equivalent_modulo_dc(a: &Network, b: &Network) -> bool {
    if a.exdc().is_none() && b.exdc().is_none() {
        return networks_equivalent(a, b);
    }
    let a_inputs: Vec<&str> = a.inputs().iter().map(|&i| a.node(i).name()).collect();
    let b_inputs: Vec<&str> = b.inputs().iter().map(|&i| b.node(i).name()).collect();
    if a_inputs.len() != b_inputs.len() {
        return false;
    }
    if !b_inputs.iter().all(|n| a_inputs.contains(n)) {
        return false;
    }
    let n = a_inputs.len();
    let mut bdd = Bdd::new(n);
    let var_of_name = |name: &str| -> usize {
        a_inputs
            .iter()
            .position(|m| *m == name)
            .expect("checked subset")
    };

    // Builds all output BDDs of `net` with inputs mapped by name.
    let build_outputs = |bdd: &mut Bdd, net: &Network| -> Option<Vec<(String, Ref)>> {
        let mut node_fn: Vec<Option<Ref>> = vec![None; net.id_bound()];
        for &pi in net.inputs() {
            let name = net.node(pi).name();
            if !a_inputs.contains(&name) {
                return None;
            }
            node_fn[pi.index()] = Some(bdd.var(var_of_name(name)));
        }
        for id in net.topo_order() {
            let node = net.node(id);
            let Some(cover) = node.cover() else { continue };
            let mut acc = bdd.zero();
            for cube in cover.cubes() {
                let mut term = bdd.one();
                for l in cube.lits() {
                    let fan = node.fanins()[l.var];
                    let f = node_fn[fan.index()].expect("topo order");
                    let lit = match l.phase {
                        Phase::Pos => f,
                        Phase::Neg => bdd.not(f),
                    };
                    term = bdd.and(term, lit);
                }
                acc = bdd.or(acc, term);
            }
            node_fn[id.index()] = Some(acc);
        }
        Some(
            net.outputs()
                .iter()
                .map(|(name, o)| (name.clone(), node_fn[o.index()].expect("built")))
                .collect(),
        )
    };

    let Some(oa) = build_outputs(&mut bdd, a) else {
        return false;
    };
    let Some(ob) = build_outputs(&mut bdd, b) else {
        return false;
    };
    let dc_a = a.exdc().and_then(|dc| build_outputs(&mut bdd, dc));
    let dc_b = b.exdc().and_then(|dc| build_outputs(&mut bdd, dc));
    if (a.exdc().is_some() && dc_a.is_none()) || (b.exdc().is_some() && dc_b.is_none()) {
        return false; // exdc over foreign inputs
    }

    let find = |v: &Option<Vec<(String, Ref)>>, name: &str| -> Option<Ref> {
        v.as_ref()
            .and_then(|v| v.iter().find(|(n, _)| n == name).map(|&(_, r)| r))
    };
    let mut names: Vec<&String> = oa.iter().map(|(n, _)| n).collect();
    names.sort();
    names.dedup();
    for name in names {
        let Some(fa) = find(&Some(oa.clone()), name) else {
            return false;
        };
        let Some(fb) = find(&Some(ob.clone()), name) else {
            return false;
        };
        let mut dc = bdd.zero();
        if let Some(d) = find(&dc_a, name) {
            dc = bdd.or(dc, d);
        }
        if let Some(d) = find(&dc_b, name) {
            dc = bdd.or(dc, d);
        }
        let diff = bdd.xor(fa, fb);
        let ndc = bdd.not(dc);
        let bad = bdd.and(diff, ndc);
        if bad != bdd.zero() {
            return false;
        }
    }
    // Both must expose the same output names.
    let mut na: Vec<&String> = oa.iter().map(|(n, _)| n).collect();
    let mut nb: Vec<&String> = ob.iter().map(|(n, _)| n).collect();
    na.sort();
    nb.sort();
    na == nb
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_cube::parse_sop;
    use boolsubst_network::parse_blif;

    #[test]
    fn equivalent_restructurings() {
        let x = parse_blif(
            ".model x\n.inputs a b c\n.outputs f\n.names a b g\n11 1\n.names g c f\n1- 1\n-1 1\n.end\n",
        )
        .expect("x");
        // Same function, flat.
        let y =
            parse_blif(".model y\n.inputs a b c\n.outputs f\n.names a b c f\n11- 1\n--1 1\n.end\n")
                .expect("y");
        assert!(networks_equivalent(&x, &y));
    }

    #[test]
    fn different_functions_detected() {
        let x =
            parse_blif(".model x\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n").expect("x");
        let y =
            parse_blif(".model y\n.inputs a b\n.outputs f\n.names a b f\n1- 1\n.end\n").expect("y");
        assert!(!networks_equivalent(&x, &y));
    }

    #[test]
    fn input_order_immaterial() {
        let x =
            parse_blif(".model x\n.inputs a b\n.outputs f\n.names a b f\n10 1\n.end\n").expect("x");
        let y =
            parse_blif(".model y\n.inputs b a\n.outputs f\n.names a b f\n10 1\n.end\n").expect("y");
        assert!(networks_equivalent(&x, &y));
    }

    #[test]
    fn modulo_dc_equivalence() {
        // f = ab with DC at a'b' : g = ab + a'b' is equivalent modulo DC
        // but not exactly.
        let x = parse_blif(
            ".model x\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.exdc\n.names a b f\n00 1\n.end\n",
        )
        .expect("x");
        let y = parse_blif(".model y\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 1\n.end\n")
            .expect("y");
        assert!(!networks_equivalent(&x, &y));
        assert!(networks_equivalent_modulo_dc(&x, &y));
        // A difference outside the DC is still caught.
        let z =
            parse_blif(".model z\n.inputs a b\n.outputs f\n.names a b f\n1- 1\n.end\n").expect("z");
        assert!(!networks_equivalent_modulo_dc(&x, &z));
    }

    #[test]
    fn modulo_dc_without_dc_is_exact() {
        let x = parse_blif(".model x\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n").expect("x");
        let y = parse_blif(".model y\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n").expect("y");
        assert!(networks_equivalent_modulo_dc(&x, &y));
    }

    #[test]
    fn empty_covers_are_constant_zero() {
        // A .names block with no rows is constant 0; both checkers must
        // treat it as a function, not a degenerate case.
        let x = parse_blif(".model x\n.inputs a\n.outputs f\n.names a f\n.end\n").expect("x");
        let y = parse_blif(".model y\n.inputs a\n.outputs f\n.names f\n.end\n").expect("y");
        assert!(networks_equivalent(&x, &y));
        assert!(networks_equivalent_modulo_dc(&x, &y));
        let one = parse_blif(".model o\n.inputs a\n.outputs f\n.names f\n1\n.end\n").expect("o");
        assert!(!networks_equivalent(&x, &one));
    }

    #[test]
    fn constant_nodes_compare_by_function() {
        // Constant 1 vs the tautology cover a + a' — equivalent; constant
        // 1 vs constant 0 — not.
        let one = parse_blif(".model a\n.inputs a\n.outputs f\n.names f\n1\n.end\n").expect("a");
        let taut =
            parse_blif(".model b\n.inputs a\n.outputs f\n.names a f\n1 1\n0 1\n.end\n").expect("b");
        let zero = parse_blif(".model c\n.inputs a\n.outputs f\n.names f\n.end\n").expect("c");
        assert!(networks_equivalent(&one, &taut));
        assert!(!networks_equivalent(&one, &zero));
        assert!(networks_equivalent_modulo_dc(&one, &taut));
        assert!(!networks_equivalent_modulo_dc(&one, &zero));
    }

    #[test]
    fn output_declaration_order_is_immaterial() {
        // Outputs are matched by name, so declaring them in a different
        // order must not affect the verdict.
        let x = parse_blif(
            ".model x\n.inputs a b\n.outputs f g\n.names a b f\n11 1\n.names a b g\n1- 1\n.end\n",
        )
        .expect("x");
        let y = parse_blif(
            ".model y\n.inputs a b\n.outputs g f\n.names a b f\n11 1\n.names a b g\n1- 1\n.end\n",
        )
        .expect("y");
        assert!(networks_equivalent(&x, &y));
        assert!(networks_equivalent_modulo_dc(&x, &y));
    }

    #[test]
    fn mismatched_output_names_are_not_equivalent() {
        // Same functions, different interface: must be rejected, not
        // matched positionally.
        let x =
            parse_blif(".model x\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n").expect("x");
        let y =
            parse_blif(".model y\n.inputs a b\n.outputs h\n.names a b h\n11 1\n.end\n").expect("y");
        assert!(!networks_equivalent(&x, &y));
        assert!(!networks_equivalent_modulo_dc(&x, &y));
        // Extra output on one side: also a mismatch.
        let z = parse_blif(
            ".model z\n.inputs a b\n.outputs f g\n.names a b f\n11 1\n.names a b g\n1- 1\n.end\n",
        )
        .expect("z");
        assert!(!networks_equivalent(&x, &z));
        assert!(!networks_equivalent_modulo_dc(&x, &z));
    }

    #[test]
    fn mismatched_input_interfaces_are_not_equivalent() {
        let x =
            parse_blif(".model x\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n").expect("x");
        // Different input names (even with the same output function shape).
        let y =
            parse_blif(".model y\n.inputs a c\n.outputs f\n.names a c f\n11 1\n.end\n").expect("y");
        assert!(!networks_equivalent(&x, &y));
        // Different input count.
        let z = parse_blif(".model z\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n").expect("z");
        assert!(!networks_equivalent(&x, &z));
        assert!(!networks_equivalent_modulo_dc(&x, &z));
    }

    #[test]
    fn network_bdds_match_eval() {
        let mut net = Network::new("m");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let c = net.add_input("c").expect("c");
        let g = net
            .add_node("g", vec![a, b], parse_sop(2, "ab' + a'b").expect("p"))
            .expect("g");
        let f = net
            .add_node("f", vec![g, c], parse_sop(2, "ab + a'b'").expect("p"))
            .expect("f");
        net.add_output("f", f).expect("o");
        let (bdd, outs) = network_bdds(&net);
        for m in 0u32..8 {
            let ins: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(bdd.eval(outs[0].1, &ins), net.eval_outputs(&ins)[0]);
        }
    }
}
