#![warn(missing_docs)]
//! # boolsubst-core — Boolean division and substitution via RAR
//!
//! The paper's primary contribution (Chang & Cheng, DAC'98 / TCAD'99):
//!
//! * [`sos`] — the SOS/POS notions and Lemmas 1–2 that make the added
//!   division gates redundant *a priori*;
//! * [`division`] — basic Boolean division `f = d·q + r` (SOP and POS
//!   forms) through redundancy addition and removal;
//! * [`extended`] — extended division: implication voting, the vote table
//!   (Table I), clique-based core-divisor selection (Fig. 4), divisor
//!   decomposition;
//! * [`subst`] — the network-level substitution driver with the paper's
//!   three configurations (`basic`, `ext`, `ext-GDC`);
//! * [`engine`] — the incremental sweep engine: cached side tables,
//!   pluggable candidate discovery, shadow circuits, stage stats;
//! * [`candidates`] — the [`CandidateSource`] divisor-discovery seam:
//!   [`OverlapIndex`] (the support-overlap index, bit-identical default)
//!   and [`SignatureClasses`] (sim-resub signature-class proposal),
//!   selected by [`SubstOptions::with_discovery`];
//! * [`session`] — the [`Session`] builder, the one blessed entry point
//!   for running a sweep (tracing, thread count, options);
//! * [`legacy`] — `#[deprecated]` shims for the pre-`Session` free
//!   functions;
//! * [`netcircuit`] — whole-network gate materialization for the global
//!   don't-care mode;
//! * [`txn`] — transactional snapshots powering the checked-apply mode's
//!   O(changed nodes) rollback;
//! * [`verify`] — the BDD equivalence oracle every test leans on.
//!
//! ```
//! use boolsubst_cube::parse_sop;
//! use boolsubst_core::{basic_divide_covers, DivisionOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Section I example: f = ab + ac + bc', d = ab + c.
//! let f = parse_sop(3, "ab + ac + bc'")?;
//! let d = parse_sop(3, "ab + c")?;
//! let r = basic_divide_covers(&f, &d, &DivisionOptions::paper_default());
//! assert!(r.verify(&f, &d));        // f == d·q + r, exactly
//! assert!(r.sop_cost() <= 4);       // Boolean division beats algebraic
//! # Ok(())
//! # }
//! ```

pub mod candidates;
pub mod division;
pub mod dontcare;
pub mod engine;
pub mod extended;
pub mod legacy;
mod metrics;
pub mod netcircuit;
pub mod paper;
mod parallel;
pub mod session;
pub mod sos;
pub mod subst;
pub mod txn;
pub mod verify;

#[cfg(feature = "chaos")]
pub mod chaos;

pub use candidates::{CandidateIter, CandidateSource, OverlapIndex, SignatureClasses, SourceCtx};
pub use division::{
    basic_divide_covers, pos_divide_covers, pos_divide_precomplemented, split_remainder,
    DivisionOptions, DivisionResult, PosDivisionResult,
};
pub use dontcare::{full_simplify, odc_cover, sdc_space_and_cover, DontCareOptions, DontCareStats};
pub use engine::SubstEngine;
pub use extended::{
    compute_vote_table, compute_vote_table_masked, compute_vote_tables_pooled, enumerate_cliques,
    extended_divide_covers, extended_divide_covers_masked, extended_divide_covers_pos,
    extended_divide_covers_with, extended_divide_pooled, CliqueChoice, CoreSelection, DividendWire,
    ExtendedDivision, VoteRow, VoteTable, CLIQUE_LIMIT,
};
pub use netcircuit::{network_from_circuit, NetCircuit, NetworkRegion, ShadowBase};
pub use session::Session;
pub use sos::{is_pos_of_compl, is_sos_of, lemma1_holds, lemma2_holds};
pub use subst::{
    all_configs, boolean_substitute_legacy, Acceptance, Discovery, SubstMode, SubstOptions,
    SubstStats,
};

#[allow(deprecated)]
pub use legacy::{boolean_substitute, boolean_substitute_engine, boolean_substitute_traced};
pub use txn::TxnSnapshot;
pub use verify::{network_bdds, networks_equivalent, networks_equivalent_modulo_dc};
