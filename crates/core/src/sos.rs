//! The paper's central structural notions: *sum-of-subproducts* (SOS) and
//! *product-of-subsums* (POS), with Lemmas 1 and 2.
//!
//! `d` is an **SOS** of `f` when every cube of `f` is contained by at
//! least one cube of `d` — then `f · d ≡ f` (Lemma 1), so an AND gate with
//! `d` can be added to `f` *known a priori to be redundant*. Dually, `d`
//! is a **POS** of `f` (both in product-of-sum form) when every sum term
//! of `f` contains at least one sum term of `d` — then `f + d ≡ f`
//! (Lemma 2).

use boolsubst_cube::Cover;

/// True if `d` is a sum-of-subproducts of `f`: every cube of `f` is
/// contained by some cube of `d`.
///
/// # Panics
///
/// Panics if the universes differ.
#[must_use]
pub fn is_sos_of(d: &Cover, f: &Cover) -> bool {
    assert_eq!(d.num_vars(), f.num_vars(), "universe mismatch");
    f.cubes().iter().all(|c| d.some_cube_contains(c))
}

/// True if `d` is a product-of-subsums of `f`, with both covers given as
/// the SOP of the *complement* (the natural representation of a
/// product-of-sums in cube calculus: `f = (Σ terms)' `). Structurally this
/// is the SOS relation between the complement covers.
///
/// # Panics
///
/// Panics if the universes differ.
#[must_use]
pub fn is_pos_of_compl(d_compl: &Cover, f_compl: &Cover) -> bool {
    is_sos_of(d_compl, f_compl)
}

/// Lemma 1: if `d` is an SOS of `f` then `f · d ≡ f`. Returns whether the
/// identity holds for this pair (exactly — not just the SOS sufficient
/// condition). Mostly used by property tests.
///
/// # Panics
///
/// Panics if the universes differ.
#[must_use]
pub fn lemma1_holds(d: &Cover, f: &Cover) -> bool {
    f.and(d).equivalent(f)
}

/// Lemma 2 (dual): if `d` is a POS of `f` then `f + d ≡ f`, i.e. `d ⇒ f`.
///
/// # Panics
///
/// Panics if the universes differ.
#[must_use]
pub fn lemma2_holds(d: &Cover, f: &Cover) -> bool {
    f.or(d).equivalent(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_cube::parse_sop;

    #[test]
    fn paper_sos_examples() {
        // d = ab + c is an SOS of f' = ab + ac: ab ⊂ ab, ac ⊂ c.
        let d = parse_sop(3, "ab + c").expect("d");
        let f = parse_sop(3, "ab + ac").expect("f");
        assert!(is_sos_of(&d, &f));
        // Adding more cubes to the SOS keeps the relation.
        let d2 = parse_sop(3, "ab + c + a'b'").expect("d2");
        assert!(is_sos_of(&d2, &f));
        // bc' is not contained by ab or c: not an SOS.
        let f2 = parse_sop(3, "ab + ac + bc'").expect("f2");
        assert!(!is_sos_of(&d, &f2));
    }

    #[test]
    fn lemma1_on_sos_pairs() {
        let cases = [
            (3, "ab + c", "ab + ac"),
            (4, "a + b'", "ac + b'd"),
            (2, "1", "ab + a'b'"),
        ];
        for (n, ds, fs) in cases {
            let d = parse_sop(n, ds).expect("d");
            let f = parse_sop(n, fs).expect("f");
            assert!(is_sos_of(&d, &f), "{ds} should be SOS of {fs}");
            assert!(lemma1_holds(&d, &f), "Lemma 1 failed for {ds}, {fs}");
        }
    }

    #[test]
    fn lemma1_converse_not_required() {
        // f·d ≡ f can hold without the structural SOS condition
        // (Boolean containment is weaker): f = a, d = ab + ab'.
        let d = parse_sop(2, "ab + ab'").expect("d");
        let f = parse_sop(2, "a").expect("f");
        assert!(!is_sos_of(&d, &f));
        assert!(lemma1_holds(&d, &f));
    }

    #[test]
    fn lemma2_on_pos_pairs() {
        // In complement representation: d' SOS of f' ⇔ d POS of f ⇒
        // f + d ≡ f.
        let f = parse_sop(3, "ab + ac").expect("f");
        let d = parse_sop(3, "ab").expect("d"); // d ⇒ f
        assert!(lemma2_holds(&d, &f));
        let d2 = parse_sop(3, "a'").expect("d2");
        assert!(!lemma2_holds(&d2, &f));
    }
}
