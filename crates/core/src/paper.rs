//! # Paper-to-code map
//!
//! Where each part of Chang & Cheng, *"Efficient Boolean Division and
//! Substitution Using Redundancy Addition and Removing"* (DAC'98 /
//! TCAD'99), lives in this workspace. This module contains no code — it is
//! the annotated table of contents for readers coming from the paper.
//!
//! | Paper | Here |
//! |---|---|
//! | §I — motivation: Boolean vs. algebraic substitution, the 6→4 literal example | [`crate::basic_divide_covers`]; pinned in `tests/paper_examples.rs::section1_literal_counts` |
//! | §I — "extended division" teaser (divisor `ab + c + …` decomposed) | [`crate::extended_divide_covers`]; `tests/paper_examples.rs::fig4_core_choice` |
//! | §II — RAR review (Fig. 1) | `boolsubst_atpg`: [`boolsubst_atpg::check_fault`], [`boolsubst_atpg::remove_redundant_wires`]; demo binary `fig1_rar` |
//! | §II — "most RAR techniques only add one wire at a time … little success with multiple wires" | [`boolsubst_atpg::rar_optimize`] (the general single-wire optimizer) vs. the division configuration; quantified in `ablation_rar_vs_division` |
//! | §III-A — SOS/POS definitions, Lemmas 1–2 | [`crate::sos`]: [`crate::is_sos_of`], [`crate::lemma1_holds`], [`crate::lemma2_holds`] |
//! | §III-B — basic division (Fig. 2): remainder split, a-priori-redundant AND, redundancy removal | [`crate::division`]: [`crate::split_remainder`], [`crate::basic_divide_covers`], the `Region` builder; demo binary `fig2_basic_division` |
//! | §III-B — "the most time-consuming step is only redundancy removal" | [`boolsubst_atpg::remove_redundant_wires_with`] and its [`boolsubst_atpg::RemovalOptions`] |
//! | §III-B — implication effort as a run-time/quality knob (recursive learning cited as the exhaustive extreme) | [`boolsubst_atpg::ImplyOptions::learn_depth`], [`crate::DivisionOptions::exact`] (bounded exact search); measured in `ablation_effort` |
//! | §III-B — POS symmetry ("completely symmetric to us") | [`crate::pos_divide_covers`] (complement-domain duality); example `pos_substitution` |
//! | §IV — extended division: voting via implications (Fig. 3(a)) | [`crate::compute_vote_table`] |
//! | §IV — Table I: vote table + SOS validity filter | [`crate::VoteTable`], [`crate::VoteRow::sos_valid`]; demo binary `fig3_table1_votes` |
//! | §IV — Fig. 4: candidate-intersection graph, maximal cliques | [`crate::enumerate_cliques`] (Bron–Kerbosch); demo binary `fig4_clique`; selection strategies in [`crate::CoreSelection`] |
//! | §IV — divisor decomposition `d = d_core + d_rest` | `plan_extended` inside [`crate::subst`]; visible in the `extended_division` example |
//! | §IV — multi-node divisors (Fig. 3(c)) | [`crate::extended_divide_pooled`] (one implication sweep over a divisor pool) |
//! | §IV — POS extended division ("the rest of the algorithm applies similarly") | [`crate::extended_divide_covers_pos`] |
//! | §V — configurations 1/2/3 (basic / ext / ext-GDC) | [`crate::SubstOptions::basic`], [`crate::SubstOptions::extended`], [`crate::SubstOptions::extended_gdc`] |
//! | §V — GDC: implications beyond the local region | [`crate::netcircuit::NetworkRegion`] (whole-network materialization, PO observation) |
//! | §V — Scripts A/B/C, `script.algebraic` | `boolsubst_workloads::scripts`; binaries `table2`–`table5` |
//! | §V — "locally greedy … takes the first division that has a positive gain" (the Table V anomaly explanation) | [`crate::Acceptance`]; measured in `ablation_acceptance` |
//! | §V — internal don't cares "naturally taken into account" | implicitly by the implication engine; made explicit in [`crate::dontcare`] (SDC/ODC + `full_simplify`) |
//!
//! The evaluation tables and their measured counterparts are indexed in
//! `DESIGN.md` §4 and recorded in `EXPERIMENTS.md`.
