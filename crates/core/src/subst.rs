//! The Boolean substitution driver: sweeps (target, divisor) node pairs,
//! divides with the RAR engine, and greedily accepts any rewrite with a
//! positive factored-literal gain — the paper's three experimental
//! configurations (`basic`, `ext`, `ext-GDC`) plus the POS-form attempts.

use crate::division::{basic_divide_covers, pos_divide_precomplemented, DivisionOptions};
use crate::extended::extended_divide_covers;
use crate::netcircuit::{NetworkRegion, ShadowBase};
use boolsubst_algebraic::{factored_literals, JointSpace};
use boolsubst_atpg::{remove_redundant_wires_with, RemovalOptions};
use boolsubst_cube::{Cover, Lit, Phase};
use boolsubst_guard::{GuardConfig, TierPolicy};
use boolsubst_network::{Network, NodeId};
use boolsubst_sat::SatOptions;
use boolsubst_sim::{CoverScreen, SimConfig, SimFilter};
use boolsubst_trace::json::JsonObj;
use boolsubst_trace::{Outcome, Tracer};
use std::fmt;
use std::num::NonZeroUsize;
use std::time::Instant;

/// Which of the paper's configurations to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubstMode {
    /// Basic division only (divisor used as-is).
    Basic,
    /// Extended division (divisor may be decomposed), local implications.
    Extended,
    /// Extended division with *global* internal don't cares: the
    /// redundancy-removal implications range over the whole circuit.
    ExtendedGdc,
}

impl SubstMode {
    /// Stable lowercase label, matching the CLI's `--mode` values.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SubstMode::Basic => "basic",
            SubstMode::Extended => "ext",
            SubstMode::ExtendedGdc => "ext-gdc",
        }
    }
}

/// How the sweep discovers candidate divisors for each target — the
/// strategy behind the [`crate::candidates::CandidateSource`] seam.
///
/// [`Discovery::Overlap`] is the original support-overlap index and is
/// pinned bit-identical to the pre-`CandidateSource` sweep
/// (`tests/engine_parity.rs`). [`Discovery::Signature`] is the
/// simulation-guided proposer of arXiv 2007.02579: divisors come from
/// equal / complement / containment signature classes over the sim
/// filter's pattern pool, so the division proof runs only on near-certain
/// survivors. Signature discovery visits a different (usually much
/// smaller) pair set, so its rewrites are *sound* — every acceptance
/// still passes the full division proof (and the guard, in checked mode)
/// — but not bit-identical to overlap discovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Discovery {
    /// Fanouts-of-fanins support-overlap enumeration (the default; the
    /// pre-redesign behaviour, bit-identical).
    #[default]
    Overlap,
    /// Signature-class proposal over the sim filter's pattern pool.
    /// Requires [`SubstOptions::sim`] enabled; resolved to `Overlap`
    /// otherwise.
    Signature,
    /// Pick per run: `Signature` on large networks (≥ 10 000 internal
    /// nodes) with the sim filter enabled, `Overlap` otherwise.
    Auto,
}

impl Discovery {
    /// Stable lowercase label, matching the CLI's `--discovery` values.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Discovery::Overlap => "overlap",
            Discovery::Signature => "signature",
            Discovery::Auto => "auto",
        }
    }

    /// Parses a `--discovery` CLI value.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Discovery> {
        match name {
            "overlap" => Some(Discovery::Overlap),
            "signature" => Some(Discovery::Signature),
            "auto" => Some(Discovery::Auto),
            _ => None,
        }
    }
}

/// When to accept a substitution during the sweep — the paper's
/// implementation is locally greedy ("takes the first division that has a
/// positive gain"), which it blames for the Table V `ext-GDC` anomaly;
/// [`Acceptance::BestGain`] is the ablation alternative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Acceptance {
    /// Accept the first divisor with positive gain (the paper's policy).
    #[default]
    FirstGain,
    /// Evaluate every divisor for the target, apply only the best.
    BestGain,
}

/// Options for a substitution run (see [`crate::session::Session`]).
///
/// Construct with one of the mode constructors ([`SubstOptions::basic`],
/// [`SubstOptions::extended`], [`SubstOptions::extended_gdc`],
/// [`SubstOptions::extended_exact`]) and refine with the `with_*` builder
/// methods:
///
/// ```
/// use boolsubst_core::SubstOptions;
/// let opts = SubstOptions::basic().with_checked(true).with_threads(4);
/// ```
///
/// Deliberately *not* `Copy`: the options block keeps growing non-trivial
/// fields, so clones are explicit at every hand-off.
#[derive(Debug, Clone)]
pub struct SubstOptions {
    /// Configuration (paper: `basic` / `ext` / `ext GDC`).
    pub mode: SubstMode,
    /// Division options (learning depth, removal passes).
    pub division: DivisionOptions,
    /// Also attempt product-of-sum-form substitution when the SOP attempt
    /// yields no gain.
    pub try_pos: bool,
    /// Skip divisors with more cubes than this. Non-zero by type: a
    /// zero bound would reject every divisor and sweep nothing.
    pub max_divisor_cubes: NonZeroUsize,
    /// Skip pairs whose joint variable space exceeds this.
    pub max_joint_vars: usize,
    /// Sweeps over all pairs. Non-zero by type: a zero-pass run is
    /// unrepresentable (the old `usize` field was silently clamped to 1).
    pub max_passes: NonZeroUsize,
    /// Acceptance policy (paper: first positive gain).
    pub acceptance: Acceptance,
    /// Divisor-discovery strategy (engine path only). The default,
    /// [`Discovery::Overlap`], is pinned bit-identical to the pre-redesign
    /// sweep; [`Discovery::Signature`] proposes divisors from signature
    /// classes and requires the sim filter.
    pub discovery: Discovery,
    /// Simulation-signature pre-filter (engine path only). Refute-only:
    /// the screen never rejects a pair the proofs would accept, so the
    /// accepted rewrites are identical with the filter on or off.
    pub sim: SimConfig,
    /// Checked apply (engine path only): every accepted rewrite is
    /// re-verified by the post-apply guard pipeline against the
    /// reconstructed pre-state, refuted moves are rolled back and the pair
    /// quarantined, and per-pair work runs under panic isolation. On a
    /// healthy engine the guards never fire, so the output is bit-identical
    /// to an unchecked run (`tests/engine_parity.rs`). Default off.
    pub checked: bool,
    /// Guard pipeline tunables for checked mode: which exact tiers may
    /// run (`sim → BDD → SAT`), the BDD node limit, and the SAT conflict
    /// budget. Ignored when [`SubstOptions::checked`] is off.
    pub guard: GuardConfig,
    /// Wall-clock deadline (engine path only): once reached, the sweep
    /// stops between pair attempts and returns the valid partial result
    /// with [`SubstStats::interrupted`] set. Each attempt is atomic, so
    /// the network is never left mid-rewrite. Default none.
    pub deadline: Option<Instant>,
    /// Worker threads for the speculative sweep (engine path only).
    /// `1` (the default) runs the plain sequential engine; `N > 1` runs
    /// the epoch-parallel sweep, which under [`Acceptance::FirstGain`]
    /// commits in pair order and is bit-identical to the sequential
    /// result (`tests/parallel_parity.rs`). Parallel runs always use
    /// per-pair panic isolation for worker proofs.
    pub threads: NonZeroUsize,
}

/// `NonZeroUsize` from a builder argument, clamping 0 up to 1 — the same
/// forgiving behaviour the old `usize` fields had via `.max(1)`.
fn at_least_one(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n.max(1)).expect("max(1) is non-zero")
}

impl SubstOptions {
    /// The paper's `basic` configuration.
    #[must_use]
    pub fn basic() -> SubstOptions {
        SubstOptions {
            mode: SubstMode::Basic,
            division: DivisionOptions::paper_default(),
            try_pos: true,
            max_divisor_cubes: at_least_one(24),
            max_joint_vars: 48,
            max_passes: at_least_one(1),
            acceptance: Acceptance::FirstGain,
            discovery: Discovery::Overlap,
            sim: SimConfig::default(),
            checked: false,
            guard: GuardConfig::default(),
            deadline: None,
            threads: at_least_one(1),
        }
    }

    /// The paper's `ext.` configuration.
    #[must_use]
    pub fn extended() -> SubstOptions {
        SubstOptions {
            mode: SubstMode::Extended,
            ..SubstOptions::basic()
        }
    }

    /// The paper's `ext. GDC` configuration (global don't cares).
    #[must_use]
    pub fn extended_gdc() -> SubstOptions {
        SubstOptions {
            mode: SubstMode::ExtendedGdc,
            ..SubstOptions::basic()
        }
    }

    /// Extension beyond the paper: extended division with a bounded exact
    /// test search deciding the wires implications leave open.
    #[must_use]
    pub fn extended_exact(budget: usize) -> SubstOptions {
        SubstOptions {
            mode: SubstMode::Extended,
            division: DivisionOptions::exact(budget),
            ..SubstOptions::basic()
        }
    }

    /// Sets the acceptance policy ([`Acceptance::FirstGain`] is the
    /// paper's; [`Acceptance::BestGain`] is the ablation alternative).
    #[must_use]
    pub fn with_acceptance(mut self, acceptance: Acceptance) -> SubstOptions {
        self.acceptance = acceptance;
        self
    }

    /// Sets the divisor-discovery strategy. [`Discovery::Signature`] and
    /// [`Discovery::Auto`] require [`SubstOptions::sim`] enabled; without
    /// the filter the engine resolves them back to [`Discovery::Overlap`]
    /// (the resolved choice is reported in [`SubstStats::discovery`]).
    #[must_use]
    pub fn with_discovery(mut self, discovery: Discovery) -> SubstOptions {
        self.discovery = discovery;
        self
    }

    /// Enables or disables checked apply (guard re-verification, rollback,
    /// quarantine, panic isolation).
    #[must_use]
    pub fn with_checked(mut self, checked: bool) -> SubstOptions {
        self.checked = checked;
        self
    }

    /// Replaces the checked-mode guard configuration wholesale.
    #[must_use]
    pub fn with_guard(mut self, guard: GuardConfig) -> SubstOptions {
        self.guard = guard;
        self
    }

    /// Sets which exact guard tiers may run after the simulation screen
    /// (`sim` / `bdd` / `sat` / `auto`).
    #[must_use]
    pub fn with_guard_tier(mut self, tier: TierPolicy) -> SubstOptions {
        self.guard.tier = tier;
        self
    }

    /// Sets the tier C conflict budget; `0` disables the SAT tier.
    #[must_use]
    pub fn with_sat_conflicts(mut self, conflicts: u64) -> SubstOptions {
        self.guard.sat = SatOptions {
            conflict_budget: conflicts,
        };
        self
    }

    /// Sets a wall-clock deadline for the sweep. The same instant is
    /// threaded into the guard config so a tier C SAT check derives its
    /// conflict budget from the remaining time — one miter can never
    /// overrun the deadline the sweep is checking between attempts.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> SubstOptions {
        self.deadline = Some(deadline);
        self.guard.deadline = Some(deadline);
        self
    }

    /// Replaces the simulation pre-filter configuration.
    #[must_use]
    pub fn with_sim(mut self, sim: SimConfig) -> SubstOptions {
        self.sim = sim;
        self
    }

    /// Sets the worker-thread count for the speculative sweep; `0` is
    /// clamped to `1` (sequential).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> SubstOptions {
        self.threads = at_least_one(threads);
        self
    }

    /// Sets the number of sweeps over all pairs; `0` is clamped to `1`.
    #[must_use]
    pub fn with_max_passes(mut self, passes: usize) -> SubstOptions {
        self.max_passes = at_least_one(passes);
        self
    }

    /// Sets the divisor cube-count bound; `0` is clamped to `1`.
    #[must_use]
    pub fn with_max_divisor_cubes(mut self, cubes: usize) -> SubstOptions {
        self.max_divisor_cubes = at_least_one(cubes);
        self
    }

    /// Sets the joint-variable-space bound.
    #[must_use]
    pub fn with_max_joint_vars(mut self, vars: usize) -> SubstOptions {
        self.max_joint_vars = vars;
        self
    }

    /// Enables or disables the product-of-sums fallback attempt.
    #[must_use]
    pub fn with_try_pos(mut self, try_pos: bool) -> SubstOptions {
        self.try_pos = try_pos;
        self
    }

    /// Replaces the division options (learning depth, budgets).
    #[must_use]
    pub fn with_division(mut self, division: DivisionOptions) -> SubstOptions {
        self.division = division;
        self
    }
}

/// The paper's three experimental configurations — `basic`, `ext`, and
/// `ext-GDC` — as one canonical list. Tests and benches iterate over this
/// instead of hand-copying option triples, so a new default knob lands in
/// every parity matrix automatically.
#[must_use]
pub fn all_configs() -> [SubstOptions; 3] {
    [
        SubstOptions::basic(),
        SubstOptions::extended(),
        SubstOptions::extended_gdc(),
    ]
}

/// Statistics of a substitution run, with stage-level observability.
///
/// The acceptance-relevant fields (`substitutions`, `pos_substitutions`,
/// `extended_decompositions`, `literal_gain`, `divisions_tried`) are
/// identical between [`crate::session::Session`] (the
/// [`crate::engine::SubstEngine`] path) and [`boolean_substitute_legacy`]. The stage counters describe
/// *how* each path got there and differ by construction: the legacy sweep
/// enumerates every (target, divisor) pair and rejects most of them one
/// filter at a time, while the engine's support-overlap index never
/// surfaces those pairs in the first place (`filtered_by_index`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SubstStats {
    /// Division attempts (pairs surviving every filter).
    pub divisions_tried: usize,
    /// Accepted substitutions (SOP form).
    pub substitutions: usize,
    /// Accepted substitutions in product-of-sum form.
    pub pos_substitutions: usize,
    /// Extended divisions that decomposed a divisor.
    pub extended_decompositions: usize,
    /// Total factored-literal gain.
    pub literal_gain: i64,
    /// Sweeps over the network actually run.
    pub passes: usize,
    /// The divisor-discovery strategy the engine actually ran with, after
    /// resolving [`Discovery::Auto`] and the sim-filter requirement. When
    /// stats from runs with different strategies are [`SubstStats::merge`]d
    /// the receiver's label wins.
    pub discovery: Discovery,
    /// Divisors the discovery source proposed across every enumeration
    /// (the top of the per-source funnel: proposed → bucket-hits →
    /// proofs-run → accepted).
    pub discovery_proposed: usize,
    /// Signature-bucket members scanned while proposing (equal/complement
    /// class members plus containment-test survivors' bucket peers). Zero
    /// under [`Discovery::Overlap`], which has no buckets.
    pub discovery_bucket_hits: usize,
    /// Proposed pairs that survived every cheap filter and reached the
    /// division proof.
    pub discovery_proofs_run: usize,
    /// Proposed pairs whose division proof succeeded and whose rewrite was
    /// committed (equals `substitutions` plus accepted extended moves).
    pub discovery_accepted: usize,
    /// Candidate pairs individually examined.
    pub candidates_enumerated: usize,
    /// Pairs the support-overlap index skipped without examining
    /// (engine path only; approximate across mid-target re-enumerations).
    pub filtered_by_index: usize,
    /// Pairs rejected as self/input/existing-fanin pairs.
    pub filtered_structural: usize,
    /// Pairs rejected because the divisor lies in the target's transitive
    /// fanout (substituting would create a cycle).
    pub filtered_tfo: usize,
    /// Pairs rejected by the divisor cube-count bound.
    pub filtered_divisor_size: usize,
    /// Pairs rejected by the joint-variable-space bound.
    pub filtered_joint_space: usize,
    /// Pairs rejected because the supports do not overlap (legacy path
    /// only — the engine's index implies overlap).
    pub filtered_support: usize,
    /// Fault checks run by whole-network (GDC) redundancy removal.
    pub rar_checks: usize,
    /// GDC attempts that reused the per-target shadow-circuit snapshot.
    pub shadow_cache_hits: usize,
    /// GDC shadow-circuit snapshots built from scratch.
    pub shadow_cache_misses: usize,
    /// Pairs screened by the simulation filter (engine path with
    /// [`SubstOptions::sim`] enabled).
    pub sim_pairs_screened: usize,
    /// Pairs rejected purely by signature witnesses — every applicable
    /// strategy refuted, no proof work run.
    pub sim_pairs_refuted: usize,
    /// Pairs the screen let through to at least one proof stage that the
    /// full check then rejected anyway (refinement fuel).
    pub sim_false_passes: usize,
    /// Counterexample patterns harvested into the pattern pool.
    pub sim_refinements: usize,
    /// Dividend cubes whose extended-division fault checks were skipped:
    /// the vote table is seeded only from wires surviving the screen.
    pub sim_ext_wires_skipped: usize,
    /// Patterns in the pool at the end of the run.
    pub sim_patterns: usize,
    /// Signature width in 64-bit words.
    pub sim_words: usize,
    /// Wall time enumerating targets and candidates (engine path).
    pub enumerate_nanos: u64,
    /// Wall time in the cheap per-pair filters (engine path).
    pub filter_nanos: u64,
    /// Wall time dividing and evaluating gains (engine path).
    pub divide_nanos: u64,
    /// Wall time patching side tables after acceptances (engine path).
    pub apply_nanos: u64,
    /// Wall time screening pairs, refining the pool, and patching
    /// signatures (engine path).
    pub sim_nanos: u64,
    /// Accepted rewrites the checked-mode guard refuted and rolled back.
    pub guard_rejections: usize,
    /// Checked-mode guard verdicts that degraded to a sampled pass: every
    /// exact tier (BDD, SAT) was out of budget, so the rewrite stands on
    /// the random pool alone. Zero means every accepted rewrite was
    /// *proved* equivalence-preserving.
    pub guard_pass_sampled: usize,
    /// Checked-mode guard checks that escalated to the tier C SAT miter.
    pub guard_sat_runs: usize,
    /// Per-pair faults survived in checked mode: panics caught and rolled
    /// back, typed apply errors, and detected signature corruption.
    pub engine_faults: usize,
    /// (target, divisor) pairs quarantined after a guard rejection or
    /// engine fault (skipped for the rest of the run).
    pub quarantined: usize,
    /// Divisions whose redundancy removal stopped early on the per-pair
    /// check budget ([`DivisionOptions::max_checks`]).
    pub check_budget_exhausted: usize,
    /// The run stopped early on [`SubstOptions::deadline`]: the network is
    /// valid and equivalent, but the sweep did not finish.
    pub interrupted: bool,
}

impl fmt::Display for SubstStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn ms(nanos: u64) -> f64 {
            nanos as f64 / 1.0e6
        }
        writeln!(f, "substitution statistics")?;
        writeln!(f, "  passes                 {:>8}", self.passes)?;
        writeln!(
            f,
            "  discovery              {:>8}  (proposed {}, bucket-hits {}, proofs-run {}, accepted {})",
            self.discovery.name(),
            self.discovery_proposed,
            self.discovery_bucket_hits,
            self.discovery_proofs_run,
            self.discovery_accepted,
        )?;
        writeln!(
            f,
            "  candidates examined    {:>8}",
            self.candidates_enumerated
        )?;
        writeln!(f, "  skipped by index       {:>8}", self.filtered_by_index)?;
        writeln!(
            f,
            "  filtered               {:>8}  (structural {}, tfo {}, divisor-size {}, joint-space {}, support {})",
            self.filtered_structural
                + self.filtered_tfo
                + self.filtered_divisor_size
                + self.filtered_joint_space
                + self.filtered_support,
            self.filtered_structural,
            self.filtered_tfo,
            self.filtered_divisor_size,
            self.filtered_joint_space,
            self.filtered_support,
        )?;
        writeln!(f, "  divisions tried        {:>8}", self.divisions_tried)?;
        writeln!(
            f,
            "  accepted               {:>8}  (pos {}, extended {})",
            self.substitutions, self.pos_substitutions, self.extended_decompositions,
        )?;
        writeln!(f, "  literal gain           {:>8}", self.literal_gain)?;
        writeln!(f, "  RAR checks (GDC)       {:>8}", self.rar_checks)?;
        writeln!(
            f,
            "  shadow circuit         {:>8}  hits / {} misses",
            self.shadow_cache_hits, self.shadow_cache_misses,
        )?;
        writeln!(
            f,
            "  sim screen             {:>8}  (refuted {}, false-pass {}, refined {}, ext-wires skipped {})",
            self.sim_pairs_screened,
            self.sim_pairs_refuted,
            self.sim_false_passes,
            self.sim_refinements,
            self.sim_ext_wires_skipped,
        )?;
        writeln!(
            f,
            "  sim pool               {:>8}  patterns x {} words",
            self.sim_patterns, self.sim_words,
        )?;
        if self.guard_rejections
            + self.engine_faults
            + self.quarantined
            + self.check_budget_exhausted
            + self.guard_pass_sampled
            + self.guard_sat_runs
            > 0
            || self.interrupted
        {
            writeln!(
                f,
                "  checked apply          {:>8}  guard-rejected (faults {}, quarantined {}, budget-stops {}{})",
                self.guard_rejections,
                self.engine_faults,
                self.quarantined,
                self.check_budget_exhausted,
                if self.interrupted { ", INTERRUPTED" } else { "" },
            )?;
            writeln!(
                f,
                "  guard escalation       {:>8}  sat-tier runs, {} sampled passes",
                self.guard_sat_runs, self.guard_pass_sampled,
            )?;
        }
        write!(
            f,
            "  time (ms)              enumerate {:.2}, filter {:.2}, divide {:.2}, apply {:.2}, sim {:.2}",
            ms(self.enumerate_nanos),
            ms(self.filter_nanos),
            ms(self.divide_nanos),
            ms(self.apply_nanos),
            ms(self.sim_nanos),
        )
    }
}

impl SubstStats {
    /// Accumulates `other` into `self` field by field, saturating on
    /// overflow. Lets callers combine runs (benchmark reps, the three
    /// paper modes) without hand-listing every counter at each call site.
    /// The pool-snapshot fields (`sim_patterns`, `sim_words`) sum like the
    /// rest — a merged value reads as "total pool capacity touched".
    pub fn merge(&mut self, other: &SubstStats) {
        self.divisions_tried = self.divisions_tried.saturating_add(other.divisions_tried);
        self.substitutions = self.substitutions.saturating_add(other.substitutions);
        self.pos_substitutions = self
            .pos_substitutions
            .saturating_add(other.pos_substitutions);
        self.extended_decompositions = self
            .extended_decompositions
            .saturating_add(other.extended_decompositions);
        self.literal_gain = self.literal_gain.saturating_add(other.literal_gain);
        self.passes = self.passes.saturating_add(other.passes);
        // `discovery` is a label, not a counter: the receiver's wins.
        self.discovery_proposed = self
            .discovery_proposed
            .saturating_add(other.discovery_proposed);
        self.discovery_bucket_hits = self
            .discovery_bucket_hits
            .saturating_add(other.discovery_bucket_hits);
        self.discovery_proofs_run = self
            .discovery_proofs_run
            .saturating_add(other.discovery_proofs_run);
        self.discovery_accepted = self
            .discovery_accepted
            .saturating_add(other.discovery_accepted);
        self.candidates_enumerated = self
            .candidates_enumerated
            .saturating_add(other.candidates_enumerated);
        self.filtered_by_index = self
            .filtered_by_index
            .saturating_add(other.filtered_by_index);
        self.filtered_structural = self
            .filtered_structural
            .saturating_add(other.filtered_structural);
        self.filtered_tfo = self.filtered_tfo.saturating_add(other.filtered_tfo);
        self.filtered_divisor_size = self
            .filtered_divisor_size
            .saturating_add(other.filtered_divisor_size);
        self.filtered_joint_space = self
            .filtered_joint_space
            .saturating_add(other.filtered_joint_space);
        self.filtered_support = self.filtered_support.saturating_add(other.filtered_support);
        self.rar_checks = self.rar_checks.saturating_add(other.rar_checks);
        self.shadow_cache_hits = self
            .shadow_cache_hits
            .saturating_add(other.shadow_cache_hits);
        self.shadow_cache_misses = self
            .shadow_cache_misses
            .saturating_add(other.shadow_cache_misses);
        self.sim_pairs_screened = self
            .sim_pairs_screened
            .saturating_add(other.sim_pairs_screened);
        self.sim_pairs_refuted = self
            .sim_pairs_refuted
            .saturating_add(other.sim_pairs_refuted);
        self.sim_false_passes = self.sim_false_passes.saturating_add(other.sim_false_passes);
        self.sim_refinements = self.sim_refinements.saturating_add(other.sim_refinements);
        self.sim_ext_wires_skipped = self
            .sim_ext_wires_skipped
            .saturating_add(other.sim_ext_wires_skipped);
        self.sim_patterns = self.sim_patterns.saturating_add(other.sim_patterns);
        self.sim_words = self.sim_words.saturating_add(other.sim_words);
        self.guard_rejections = self.guard_rejections.saturating_add(other.guard_rejections);
        self.guard_pass_sampled = self
            .guard_pass_sampled
            .saturating_add(other.guard_pass_sampled);
        self.guard_sat_runs = self.guard_sat_runs.saturating_add(other.guard_sat_runs);
        self.engine_faults = self.engine_faults.saturating_add(other.engine_faults);
        self.quarantined = self.quarantined.saturating_add(other.quarantined);
        self.check_budget_exhausted = self
            .check_budget_exhausted
            .saturating_add(other.check_budget_exhausted);
        self.interrupted |= other.interrupted;
        self.enumerate_nanos = self.enumerate_nanos.saturating_add(other.enumerate_nanos);
        self.filter_nanos = self.filter_nanos.saturating_add(other.filter_nanos);
        self.divide_nanos = self.divide_nanos.saturating_add(other.divide_nanos);
        self.apply_nanos = self.apply_nanos.saturating_add(other.apply_nanos);
        self.sim_nanos = self.sim_nanos.saturating_add(other.sim_nanos);
    }

    /// Single-line JSON object with every counter, via the shared
    /// [`JsonObj`] writer. Field names match the struct fields.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn u(v: usize) -> u64 {
            u64::try_from(v).unwrap_or(u64::MAX)
        }
        JsonObj::new()
            .u64("divisions_tried", u(self.divisions_tried))
            .u64("substitutions", u(self.substitutions))
            .u64("pos_substitutions", u(self.pos_substitutions))
            .u64("extended_decompositions", u(self.extended_decompositions))
            .i64("literal_gain", self.literal_gain)
            .u64("passes", u(self.passes))
            .str("discovery", self.discovery.name())
            .u64("discovery_proposed", u(self.discovery_proposed))
            .u64("discovery_bucket_hits", u(self.discovery_bucket_hits))
            .u64("discovery_proofs_run", u(self.discovery_proofs_run))
            .u64("discovery_accepted", u(self.discovery_accepted))
            .u64("candidates_enumerated", u(self.candidates_enumerated))
            .u64("filtered_by_index", u(self.filtered_by_index))
            .u64("filtered_structural", u(self.filtered_structural))
            .u64("filtered_tfo", u(self.filtered_tfo))
            .u64("filtered_divisor_size", u(self.filtered_divisor_size))
            .u64("filtered_joint_space", u(self.filtered_joint_space))
            .u64("filtered_support", u(self.filtered_support))
            .u64("rar_checks", u(self.rar_checks))
            .u64("shadow_cache_hits", u(self.shadow_cache_hits))
            .u64("shadow_cache_misses", u(self.shadow_cache_misses))
            .u64("sim_pairs_screened", u(self.sim_pairs_screened))
            .u64("sim_pairs_refuted", u(self.sim_pairs_refuted))
            .u64("sim_false_passes", u(self.sim_false_passes))
            .u64("sim_refinements", u(self.sim_refinements))
            .u64("sim_ext_wires_skipped", u(self.sim_ext_wires_skipped))
            .u64("sim_patterns", u(self.sim_patterns))
            .u64("sim_words", u(self.sim_words))
            .u64("guard_rejections", u(self.guard_rejections))
            .u64("guard_pass_sampled", u(self.guard_pass_sampled))
            .u64("guard_sat_runs", u(self.guard_sat_runs))
            .u64("engine_faults", u(self.engine_faults))
            .u64("quarantined", u(self.quarantined))
            .u64("check_budget_exhausted", u(self.check_budget_exhausted))
            .u64("interrupted", u64::from(self.interrupted))
            .u64("enumerate_nanos", self.enumerate_nanos)
            .u64("filter_nanos", self.filter_nanos)
            .u64("divide_nanos", self.divide_nanos)
            .u64("apply_nanos", self.apply_nanos)
            .u64("sim_nanos", self.sim_nanos)
            .finish()
    }
}

/// Projects a cover onto its support: drops unused variables and returns
/// the surviving fanins (`fanins[v]` for each support variable `v`) plus
/// the remapped cover.
fn project(cover: &Cover, fanins: &[NodeId]) -> (Vec<NodeId>, Cover) {
    let support = cover.support();
    let kept: Vec<NodeId> = support.iter().map(|&v| fanins[v]).collect();
    let mut map = vec![0usize; cover.num_vars()];
    for (new_idx, &v) in support.iter().enumerate() {
        map[v] = new_idx;
    }
    let remapped = cover.remapped(kept.len(), &map);
    (kept, remapped)
}

/// Builds the new cover for `target` after substitution: `q·x + r` over
/// `space ∪ {divisor}`, pruning unused variables. Returns (fanins, cover).
fn assemble(
    space: &JointSpace,
    divisor: NodeId,
    quotient: &Cover,
    remainder: &Cover,
    divisor_phase: Phase,
) -> (Vec<NodeId>, Cover) {
    let n = space.len();
    let mut new_cover = Cover::new(n + 1);
    for c in quotient.cubes() {
        let mut c = c.extended(n + 1);
        c.restrict(Lit {
            var: n,
            phase: divisor_phase,
        });
        new_cover.push(c);
    }
    new_cover.extend_cover(&remainder.extended(n + 1));
    new_cover.remove_contained_cubes();
    let mut fanins = space.vars.clone();
    fanins.push(divisor);
    project(&new_cover, &fanins)
}

fn factored_gain(net: &Network, target: NodeId, new_cover: &Cover) -> i64 {
    // A target without a cover is a primary input, which the filters
    // reject; zero gain turns the impossible case into a safe reject.
    let Some(old) = net.node(target).cover() else {
        return 0;
    };
    factored_literals(old) as i64 - factored_literals(new_cover) as i64
}

/// How the GDC mode materializes the whole-network circuit for one
/// division attempt.
pub(crate) enum GdcScope<'a> {
    /// Rebuild the circuit from scratch per attempt (the pre-engine
    /// behaviour, kept as the parity baseline).
    Rebuild,
    /// Clone a per-target snapshot and patch only the dirty region.
    Shadow(&'a ShadowBase),
}

/// One substitution attempt of `divisor` into `target` with the legacy
/// per-pair filters. Applies the first strategy with positive gain (the
/// paper's locally greedy acceptance) and returns the gain, or `None` if
/// nothing helped.
pub(crate) fn try_pair(
    net: &mut Network,
    target: NodeId,
    divisor: NodeId,
    opts: &SubstOptions,
    stats: &mut SubstStats,
) -> Option<i64> {
    stats.candidates_enumerated += 1;
    if target == divisor
        || net.node(target).is_input()
        || net.node(divisor).is_input()
        || net.node(target).fanins().contains(&divisor)
    {
        stats.filtered_structural += 1;
        return None;
    }
    if net.in_tfo(divisor, target) {
        stats.filtered_tfo += 1;
        return None;
    }
    let Some(d_cover_len) = net.node(divisor).cover().map(Cover::len) else {
        // Unreachable after the is_input filter; reject rather than panic.
        stats.filtered_structural += 1;
        return None;
    };
    if d_cover_len == 0 || d_cover_len > opts.max_divisor_cubes.get() {
        stats.filtered_divisor_size += 1;
        return None;
    }
    let space = JointSpace::union_of_fanins(net, &[target, divisor]);
    if space.len() > opts.max_joint_vars {
        stats.filtered_joint_space += 1;
        return None;
    }
    // Cheap relevance filter: supports must overlap.
    let t_fanins = net.node(target).fanins();
    if !net
        .node(divisor)
        .fanins()
        .iter()
        .any(|f| t_fanins.contains(f))
    {
        stats.filtered_support += 1;
        return None;
    }
    try_pair_core(
        net,
        target,
        divisor,
        &space,
        opts,
        stats,
        &GdcScope::Rebuild,
        None,
        None,
    )
}

/// Notes the decided outcome on the attached tracer, if any.
fn note(tracer: &mut Option<&mut Tracer>, outcome: Outcome) {
    if let Some(t) = tracer.as_deref_mut() {
        t.note_outcome(outcome);
    }
}

/// Books a typed apply failure (a `replace_function`/plan error that
/// previously aborted the process) as an engine fault and rejects the
/// pair. Every such site is validate-then-mutate or internally rolled
/// back, so the network is unchanged when this runs.
fn fault_reject(stats: &mut SubstStats, tracer: &mut Option<&mut Tracer>) -> Option<i64> {
    stats.engine_faults += 1;
    note(tracer, Outcome::EngineFault);
    None
}

/// What kind of single-node rewrite a [`SubstPlan::Replace`] is — decides
/// the stat counters, the tracer outcome, and (for the chaos harness)
/// which fault-injection sites fire on apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanKind {
    /// SOP division by the divisor as-is (basic or GDC scope).
    Sop,
    /// SOP division by the divisor's complement.
    SopCompl,
    /// Product-of-sums-form substitution.
    Pos,
}

/// A fully evaluated substitution decision, produced read-only by
/// [`plan_pair_core`] and applied by [`apply_plan`]. Splitting planning
/// from application is what lets the parallel sweep speculate proofs on
/// shared `&Network` references and serialize only the commits.
pub(crate) enum SubstPlan {
    /// Replace `target`'s function with `cover` over `fanins`.
    Replace {
        /// Node being rewritten.
        target: NodeId,
        /// New fanin list (projected to the cover's support).
        fanins: Vec<NodeId>,
        /// New cover for `target`.
        cover: Cover,
        /// Factored-literal gain (strictly positive).
        gain: i64,
        /// Which strategy produced the rewrite.
        kind: PlanKind,
    },
    /// Extended division: create a core node and rewrite both the target
    /// and the divisor.
    Extended(ExtendedPlan),
}

impl SubstPlan {
    /// The plan's factored-literal gain (strictly positive by
    /// construction).
    pub(crate) fn gain(&self) -> i64 {
        match self {
            SubstPlan::Replace { gain, .. } => *gain,
            SubstPlan::Extended(plan) => plan.gain,
        }
    }
}

/// The filter-free heart of a substitution attempt: divides `target` by
/// `divisor` over the precomputed joint `space` and applies the first
/// strategy with positive gain. Callers guarantee the pair already passed
/// the structural, cycle, size, and support-overlap filters.
///
/// Composition of [`plan_pair_core`] (read-only evaluation) and
/// [`apply_plan`] (the mutation); the sequential engine and the legacy
/// sweep both go through here, the parallel sweep calls the two halves
/// separately.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_pair_core(
    net: &mut Network,
    target: NodeId,
    divisor: NodeId,
    space: &JointSpace,
    opts: &SubstOptions,
    stats: &mut SubstStats,
    gdc: &GdcScope<'_>,
    sim: Option<&SimFilter>,
    mut tracer: Option<&mut Tracer>,
) -> Option<i64> {
    let plan = plan_pair_core(
        net,
        target,
        divisor,
        space,
        opts,
        stats,
        gdc,
        sim,
        tracer.as_deref_mut(),
    )?;
    apply_plan(net, plan, stats, tracer)
}

/// The read-only half of a substitution attempt: evaluates every division
/// strategy in the fixed order (SOP, complement-SOP, extended, POS) and
/// returns the first plan with positive factored-literal gain — without
/// mutating the network. Because planning never mutates, "first strategy
/// that would be applied" and "first strategy with positive gain" are the
/// same thing, so [`try_pair_core`] behaves exactly as the pre-split code.
///
/// When `sim` is given, the dividend is screened against the divisor's
/// simulation signature first and refuted strategies skip their proof
/// work. The screen is refute-only (a witness pattern is a concrete
/// counterexample), so every skipped strategy would have returned no gain
/// anyway: the accepted rewrites — and the pinned acceptance stats — are
/// identical with and without a filter.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_pair_core(
    net: &Network,
    target: NodeId,
    divisor: NodeId,
    space: &JointSpace,
    opts: &SubstOptions,
    stats: &mut SubstStats,
    gdc: &GdcScope<'_>,
    sim: Option<&SimFilter>,
    tracer: Option<&mut Tracer>,
) -> Option<SubstPlan> {
    #[cfg(feature = "chaos")]
    crate::chaos::maybe_panic(crate::chaos::PanicSite::PairEntry);
    let f = space.cover_of(net, target);
    let d = space.cover_of(net, divisor);
    stats.divisions_tried += 1;

    // Refute-only screen of the SOP dividend: per cube, a witness pattern
    // with cube = 1 ∧ d = 0 disproves containment in any divisor cube
    // (kills the kept split of basic/GDC division and the cube's vote-table
    // row); cube = 1 ∧ d = 1 disproves containment in the complement.
    let screen = sim.map(|s| {
        let t0 = Instant::now();
        let sc = s.screen_cover(net, &f, &space.vars, divisor);
        stats.sim_nanos += crate::engine::nanos(t0);
        stats.sim_pairs_screened += 1;
        sc
    });
    let skip_sop = screen
        .as_ref()
        .is_some_and(CoverScreen::refutes_containment_in_divisor);
    let skip_compl = screen
        .as_ref()
        .is_some_and(CoverScreen::refutes_containment_in_complement);
    let mut ran_proof = false;

    // --- SOP basic division (local or GDC scope) ---
    let division = if skip_sop {
        None
    } else if opts.mode == SubstMode::ExtendedGdc {
        ran_proof = true;
        divide_in_network(
            net,
            target,
            divisor,
            space,
            &f,
            &d,
            &opts.division,
            gdc,
            stats,
        )
    } else {
        ran_proof = true;
        let r = basic_divide_covers(&f, &d, &opts.division);
        r.succeeded().then_some((r.quotient, r.remainder))
    };
    if let Some((quotient, remainder)) = division {
        #[cfg(feature = "chaos")]
        let quotient = crate::chaos::corrupt_quotient(quotient);
        let (fanins, cover) = assemble(space, divisor, &quotient, &remainder, Phase::Pos);
        let gain = factored_gain(net, target, &cover);
        if gain > 0 {
            #[cfg(feature = "chaos")]
            let cover = crate::chaos::corrupt_cover(cover);
            return Some(SubstPlan::Replace {
                target,
                fanins,
                cover,
                gain,
                kind: PlanKind::Sop,
            });
        }
    }

    // --- SOP division by the divisor's complement (the `-d` flavour) ---
    // The complement is shared with the POS attempt below; divisors are
    // capped at `max_divisor_cubes`, so it is the cheap one of the pair.
    let mut d_compl_cache: Option<Cover> = None;
    if !skip_compl {
        let d_compl = &*d_compl_cache.insert(d.complement());
        if !d_compl.is_empty() && d_compl.len() <= opts.max_divisor_cubes.get() {
            ran_proof = true;
            let r = basic_divide_covers(&f, d_compl, &opts.division);
            if r.succeeded() {
                let (fanins, cover) =
                    assemble(space, divisor, &r.quotient, &r.remainder, Phase::Neg);
                let gain = factored_gain(net, target, &cover);
                if gain > 0 {
                    return Some(SubstPlan::Replace {
                        target,
                        fanins,
                        cover,
                        gain,
                        kind: PlanKind::SopCompl,
                    });
                }
            }
        }
    }

    // --- Extended division: decompose the divisor ---
    // A fully refuted dividend (skip_sop) cannot have any sos-valid
    // vote-table row, so extended division is skipped outright; otherwise
    // refuted cubes are masked out of the fault-check work.
    if opts.mode != SubstMode::Basic && !skip_sop {
        ran_proof = true;
        let ext = match &screen {
            Some(sc) => {
                stats.sim_ext_wires_skipped += sc.wit_div0.iter().filter(|&&w| w).count();
                crate::extended::extended_divide_covers_masked(&f, &d, &opts.division, &sc.wit_div0)
            }
            None => extended_divide_covers(&f, &d, &opts.division),
        };
        if let Some(ext) = ext {
            // Core == whole divisor means basic already covered it.
            if ext.core_cube_indices.len() < d.len() && ext.division.succeeded() {
                if let Some(plan) = plan_extended(net, target, divisor, space, &ext) {
                    return Some(SubstPlan::Extended(plan));
                }
            }
        }
    }

    // --- POS-form attempt ---
    if opts.try_pos {
        let fc = f.complement();
        let dc = d_compl_cache.unwrap_or_else(|| d.complement());
        if !dc.is_empty()
            && dc.len() <= opts.max_divisor_cubes.get()
            && fc.len() <= 4 * f.len().max(4)
        {
            // POS divides f' by d'. A kept cube of f' must lie inside a
            // cube of d', so a witness with f'-cube = 1 ∧ d = 1 refutes it
            // (a d'-cube at 1 forces d = 0): screening f' against d with
            // the div1 witnesses screens the POS kept split exactly.
            let pos_refuted = sim.is_some_and(|s| {
                let t0 = Instant::now();
                let sc = s.screen_cover(net, &fc, &space.vars, divisor);
                stats.sim_nanos += crate::engine::nanos(t0);
                sc.refutes_containment_in_complement()
            });
            if pos_refuted {
                return finish_unhelped(stats, sim.is_some(), ran_proof, tracer);
            }
            ran_proof = true;
            let r = pos_divide_precomplemented(&fc, &dc, &opts.division);
            if r.succeeded() {
                // f = (d + q)·r ⇔ f' = d'·q̃ + r̃; rebuild f as the
                // complement of the divided complement, with x_d'.
                let n = space.len();
                let mut compl_form = Cover::new(n + 1);
                for c in r.quotient_compl.cubes() {
                    let mut c = c.extended(n + 1);
                    c.restrict(Lit {
                        var: n,
                        phase: Phase::Neg,
                    });
                    compl_form.push(c);
                }
                compl_form.extend_cover(&r.remainder_compl.extended(n + 1));
                let new_cover = compl_form.complement();
                if new_cover.len() <= 4 * f.len().max(4) {
                    let mut fanins = space.vars.clone();
                    fanins.push(divisor);
                    let support = new_cover.support();
                    let kept: Vec<NodeId> = support.iter().map(|&v| fanins[v]).collect();
                    let mut map = vec![0usize; n + 1];
                    for (new_idx, &v) in support.iter().enumerate() {
                        map[v] = new_idx;
                    }
                    let new_cover = new_cover.remapped(kept.len(), &map);
                    let gain = factored_gain(net, target, &new_cover);
                    if gain > 0 {
                        return Some(SubstPlan::Replace {
                            target,
                            fanins: kept,
                            cover: new_cover,
                            gain,
                            kind: PlanKind::Pos,
                        });
                    }
                }
            }
        }
    }
    finish_unhelped(stats, sim.is_some(), ran_proof, tracer)
}

/// The mutating half of a substitution attempt: applies a plan produced
/// by [`plan_pair_core`], books the acceptance counters and the tracer
/// outcome, and returns the gain. A typed apply error (which a healthy
/// engine never produces) is booked as an engine fault; every apply site
/// is validate-then-mutate or internally rolled back, so the network is
/// unchanged on that path.
pub(crate) fn apply_plan(
    net: &mut Network,
    plan: SubstPlan,
    stats: &mut SubstStats,
    mut tracer: Option<&mut Tracer>,
) -> Option<i64> {
    match plan {
        SubstPlan::Replace {
            target,
            fanins,
            cover,
            gain,
            kind,
        } => {
            if net.replace_function(target, fanins, cover).is_err() {
                return fault_reject(stats, &mut tracer);
            }
            stats.substitutions += 1;
            stats.literal_gain += gain;
            match kind {
                PlanKind::Sop => {
                    note(&mut tracer, Outcome::AcceptedSop);
                    #[cfg(feature = "chaos")]
                    crate::chaos::maybe_panic(crate::chaos::PanicSite::PostApply);
                }
                PlanKind::SopCompl => note(&mut tracer, Outcome::AcceptedSop),
                PlanKind::Pos => {
                    stats.pos_substitutions += 1;
                    note(&mut tracer, Outcome::AcceptedPos);
                }
            }
            Some(gain)
        }
        SubstPlan::Extended(plan) => {
            let gain = plan.gain;
            if plan.apply(net).is_err() {
                return fault_reject(stats, &mut tracer);
            }
            stats.substitutions += 1;
            stats.extended_decompositions += 1;
            stats.literal_gain += gain;
            note(&mut tracer, Outcome::AcceptedExtended);
            Some(gain)
        }
    }
}

/// Books a pair that produced no gain: with a filter present it either
/// counts as a pure signature refutation (no proof stage ran) or as a
/// false pass (at least one proof ran and rejected — refinement fuel for
/// the engine). A pure refutation is noted on the tracer; a false pass
/// keeps the default no-gain outcome.
fn finish_unhelped(
    stats: &mut SubstStats,
    screened: bool,
    ran_proof: bool,
    mut tracer: Option<&mut Tracer>,
) -> Option<SubstPlan> {
    if screened {
        if ran_proof {
            stats.sim_false_passes += 1;
        } else {
            stats.sim_pairs_refuted += 1;
            note(&mut tracer, Outcome::RejectedSimRefuted);
        }
    }
    None
}

/// A planned extended-division rewrite: create the core node, re-express
/// the divisor as `core + rest`, substitute the core into the target.
/// Produced by [`plan_extended`]; applied with [`ExtendedPlan::apply`].
/// Splitting planning from application lets the sweep evaluate the gain
/// without mutating the network.
pub(crate) struct ExtendedPlan {
    /// Total factored-literal gain across target, divisor, and core
    /// (always positive — zero-gain plans are not produced).
    pub gain: i64,
    target: NodeId,
    divisor: NodeId,
    space_vars: Vec<NodeId>,
    core: Cover,
    rest: Cover,
    quotient: Cover,
    remainder: Cover,
}

impl ExtendedPlan {
    /// Applies the rewrite; returns the id of the fresh core node.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`boolsubst_network::NetworkError`] if any of
    /// the three edits is inapplicable (which a healthy engine never
    /// produces). The plan is applied transactionally: on error the partial
    /// edits are undone first, so the network is left exactly as it was —
    /// a fail-stop path must not become a silent partial mutation.
    pub fn apply(self, net: &mut Network) -> Result<NodeId, boolsubst_network::NetworkError> {
        let n = self.space_vars.len();
        let divisor_pre = {
            let node = net.node(self.divisor);
            node.cover().map(|c| (node.fanins().to_vec(), c.clone()))
        };
        let id_bound = net.id_bound();

        // 1. Core node over its support. Nothing mutated yet on error.
        let (core_fanins, core_local) = project(&self.core, &self.space_vars);
        let name = net.fresh_name();
        let m = net.add_node(name, core_fanins, core_local)?;

        // 2. Divisor = rest + x_core.
        let mut div_fanins = self.space_vars.clone();
        div_fanins.push(m);
        let mut div_cover = Cover::new(n + 1);
        for c in self.rest.cubes() {
            div_cover.push(c.extended(n + 1));
        }
        let mut xc = boolsubst_cube::Cube::universe(n + 1);
        xc.restrict(Lit::pos(n));
        div_cover.push(xc);
        let (kept, div_cover) = project(&div_cover, &div_fanins);
        if let Err(e) = net.replace_function(self.divisor, kept, div_cover) {
            // Only the fresh node exists; it has no fanouts yet.
            let _ = net.remove_node(m);
            net.truncate_dead_tail(id_bound);
            return Err(e);
        }

        // 3. Target = q·x_core + r.
        let mut tgt_fanins = self.space_vars;
        tgt_fanins.push(m);
        let mut tgt_cover = Cover::new(n + 1);
        for c in self.quotient.cubes() {
            let mut c = c.extended(n + 1);
            c.restrict(Lit::pos(n));
            tgt_cover.push(c);
        }
        tgt_cover.extend_cover(&self.remainder.extended(n + 1));
        let (kept, tgt_cover) = project(&tgt_cover, &tgt_fanins);
        if let Err(e) = net.replace_function(self.target, kept, tgt_cover) {
            // Undo the divisor rewrite, then drop the now-orphaned core.
            if let Some((fanins, cover)) = divisor_pre {
                let _ = net.replace_function(self.divisor, fanins, cover);
            }
            let _ = net.remove_node(m);
            net.truncate_dead_tail(id_bound);
            return Err(e);
        }
        Ok(m)
    }
}

/// Plans an extended-division rewrite; returns `None` when the total
/// factored-literal gain would not be positive.
fn plan_extended(
    net: &Network,
    target: NodeId,
    divisor: NodeId,
    space: &JointSpace,
    ext: &crate::extended::ExtendedDivision,
) -> Option<ExtendedPlan> {
    let d_cover = space.cover_of(net, divisor);
    let rest: Cover = Cover::from_cubes(
        space.len(),
        d_cover
            .cubes()
            .iter()
            .enumerate()
            .filter(|&(i, _c)| !ext.core_cube_indices.contains(&i))
            .map(|(_i, c)| c.clone())
            .collect(),
    );
    // New target function: q·x_core + r.
    let core = ext.core.clone();
    let quotient = ext.division.quotient.clone();
    let remainder = ext.division.remainder.clone();

    // Gain accounting (factored literals):
    //   target: old − new (new counts one literal per quotient cube for
    //           x_core);
    //   divisor: old − (rest + 1 literal for x_core);
    //   core node: −lits(core)  ... but those literals previously lived
    //   inside the divisor, so the divisor side nets to −1.
    let target_old = factored_literals(net.node(target).cover()?) as i64;
    let n = space.len();
    let mut new_target = Cover::new(n + 1);
    for c in quotient.cubes() {
        let mut c = c.extended(n + 1);
        c.restrict(Lit::pos(n));
        new_target.push(c);
    }
    new_target.extend_cover(&remainder.extended(n + 1));
    let target_new = factored_literals(&new_target) as i64;

    let divisor_old = factored_literals(net.node(divisor).cover()?) as i64;
    let mut new_divisor = Cover::new(n + 1);
    for c in rest.cubes() {
        new_divisor.push(c.extended(n + 1));
    }
    {
        let mut xc = boolsubst_cube::Cube::universe(n + 1);
        xc.restrict(Lit::pos(n));
        new_divisor.push(xc);
    }
    let divisor_new = factored_literals(&new_divisor) as i64;
    let core_cost = factored_literals(&core) as i64;

    let gain = (target_old - target_new) + (divisor_old - divisor_new) - core_cost;
    if gain <= 0 {
        return None;
    }

    Some(ExtendedPlan {
        gain,
        target,
        divisor,
        space_vars: space.vars.clone(),
        core,
        rest,
        quotient,
        remainder,
    })
}

/// Basic division with whole-network implication scope (the GDC mode):
/// materializes the full circuit with the target in the division
/// configuration, observes the primary outputs, and removes every provably
/// redundant region wire. The circuit comes either from a per-pair rebuild
/// or from patching a per-target shadow snapshot, per `gdc`; both produce
/// isomorphic circuits, so the removal verdicts agree.
#[allow(clippy::too_many_arguments)]
fn divide_in_network(
    net: &Network,
    target: NodeId,
    divisor: NodeId,
    space: &JointSpace,
    f: &Cover,
    d: &Cover,
    opts: &DivisionOptions,
    gdc: &GdcScope<'_>,
    stats: &mut SubstStats,
) -> Option<(Cover, Cover)> {
    let (kept, remainder) = crate::division::split_remainder(f, d);
    if kept.is_empty() {
        return None;
    }
    let mut region = match gdc {
        GdcScope::Rebuild => {
            NetworkRegion::build(net, target, divisor, space.vars.clone(), &kept, &remainder)
        }
        GdcScope::Shadow(base) => base.region(net, divisor, space.vars.clone(), &kept, &remainder),
    };
    let candidates = region.candidate_wires(&kept);
    let outcome = remove_redundant_wires_with(
        &mut region.netc.circuit,
        &candidates,
        &RemovalOptions {
            imply: opts.imply,
            exact_budget: opts.exact_budget,
            max_checks: opts.max_checks,
        },
        opts.max_passes.max(1) + 1,
    );
    stats.rar_checks += outcome.checks;
    if outcome.budget_exhausted {
        stats.check_budget_exhausted += 1;
    }
    let quotient = region.read_quotient();
    (!quotient.is_empty()).then_some((quotient, remainder))
}

/// The pre-engine per-pair sweep: every (target, divisor) pair is visited
/// and every structural query recomputed on the spot. Kept as the parity
/// baseline the engine is pinned against (and for A/B benchmarking).
pub fn boolean_substitute_legacy(net: &mut Network, opts: &SubstOptions) -> SubstStats {
    let mut stats = SubstStats::default();
    for _ in 0..opts.max_passes.get() {
        stats.passes += 1;
        let before = stats.substitutions;
        let mut targets: Vec<NodeId> = net.internal_ids().collect();
        targets.sort_by_key(|&id| {
            std::cmp::Reverse(net.node(id).cover().map_or(0, Cover::literal_count))
        });
        for target in targets {
            if net.node_opt(target).is_none() {
                continue;
            }
            let divisors: Vec<NodeId> = net.internal_ids().collect();
            match opts.acceptance {
                Acceptance::FirstGain => {
                    for divisor in divisors {
                        if net.node_opt(target).is_none() || net.node_opt(divisor).is_none() {
                            continue;
                        }
                        let _ = try_pair(net, target, divisor, opts, &mut stats);
                    }
                }
                Acceptance::BestGain => {
                    // Dry-run every divisor on a scratch copy, then apply
                    // only the best one for real.
                    let mut best: Option<(NodeId, i64)> = None;
                    for &divisor in &divisors {
                        let mut scratch = net.clone();
                        let mut scratch_stats = SubstStats::default();
                        if let Some(gain) =
                            try_pair(&mut scratch, target, divisor, opts, &mut scratch_stats)
                        {
                            if best.is_none_or(|(_, g)| gain > g) {
                                best = Some((divisor, gain));
                            }
                        }
                    }
                    if let Some((divisor, _)) = best {
                        let _ = try_pair(net, target, divisor, opts, &mut stats);
                    }
                }
            }
        }
        if stats.substitutions == before {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::verify::networks_equivalent;
    use boolsubst_cube::parse_sop;

    /// The paper's running example as a network: f = ab + ac + bc' with an
    /// existing node d = ab + c.
    fn paper_net() -> (Network, NodeId, NodeId) {
        let mut net = Network::new("paper");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let c = net.add_input("c").expect("c");
        let f = net
            .add_node(
                "f",
                vec![a, b, c],
                parse_sop(3, "ab + ac + bc'").expect("p"),
            )
            .expect("f");
        let d = net
            .add_node("d", vec![a, b, c], parse_sop(3, "ab + c").expect("p"))
            .expect("d");
        net.add_output("f", f).expect("o");
        net.add_output("d", d).expect("o");
        (net, f, d)
    }

    #[test]
    fn basic_substitution_beats_algebraic_on_paper_example() {
        let (mut net, f, _d) = paper_net();
        let before = net.clone();
        let stats = Session::new(&mut net, SubstOptions::basic()).run();
        assert!(stats.substitutions >= 1, "no substitution accepted");
        net.check_invariants();
        assert!(networks_equivalent(&before, &net), "function changed");
        // Paper: Boolean substitution reaches 4 literals for f
        // (f = (a + b)d), algebraic only 5.
        let f_lits = factored_literals(net.node(f).cover().expect("cover"));
        assert!(f_lits <= 4, "f has {f_lits} literals");
    }

    #[test]
    fn extended_decomposes_divisor() {
        // Paper Section I scenario: the ideal divisor ab + c does not
        // exist; instead a node d = ab + c + e does. Basic division cannot
        // exploit it (the extra cube e gets in the way), but extended
        // division extracts the core ab + c, decomposes d = core + e, and
        // rewrites f = core + z.
        let mut net = Network::new("ext");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let c = net.add_input("c").expect("c");
        let e = net.add_input("e").expect("e");
        let z = net.add_input("z").expect("z");
        let f = net
            .add_node(
                "f",
                vec![a, b, c, z],
                parse_sop(4, "ab + c + d").expect("p"),
            )
            .expect("f");
        let d = net
            .add_node(
                "d",
                vec![a, b, c, e],
                parse_sop(4, "ab + c + d").expect("p"),
            )
            .expect("d");
        net.add_output("f", f).expect("o");
        net.add_output("d", d).expect("o");
        let before = net.clone();
        let stats = Session::new(&mut net, SubstOptions::extended()).run();
        net.check_invariants();
        assert!(networks_equivalent(&before, &net), "function changed");
        assert!(
            stats.extended_decompositions >= 1,
            "extended decomposition not used: {stats:?}"
        );
        assert!(stats.literal_gain >= 1);
        // A fresh core node must exist now.
        assert!(net.internal_ids().count() >= 3);
    }

    #[test]
    fn pos_substitution_found() {
        // f = (a + b)(c + d) as SOP; divisor g = (a + b) i.e. a + b.
        // SOP basic division works here too, so force the POS path by a
        // divisor only useful in POS form: f = (a+b)(c+d), d = a + b.
        // Note basic SOP division of f by d: kept cubes contained by a or
        // b... every cube (ac, ad, bc, bd) is contained by a or b, so SOP
        // division succeeds as well; accept either, but the result must
        // stay equivalent and smaller.
        let mut net = Network::new("pos");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let c = net.add_input("c").expect("c");
        let d = net.add_input("d").expect("d");
        let f = net
            .add_node(
                "f",
                vec![a, b, c, d],
                parse_sop(4, "ac + ad + bc + bd").expect("p"),
            )
            .expect("f");
        let g = net
            .add_node("g", vec![a, b], parse_sop(2, "a + b").expect("p"))
            .expect("g");
        net.add_output("f", f).expect("o");
        net.add_output("g", g).expect("o");
        let before = net.clone();
        let stats = Session::new(&mut net, SubstOptions::basic()).run();
        assert!(stats.substitutions >= 1);
        net.check_invariants();
        assert!(networks_equivalent(&before, &net));
        let f_lits = factored_literals(net.node(f).cover().expect("cover"));
        assert!(f_lits <= 3, "f has {f_lits} literals");
    }

    #[test]
    fn gdc_mode_preserves_outputs() {
        let (mut net, ..) = paper_net();
        let before = net.clone();
        let stats = Session::new(&mut net, SubstOptions::extended_gdc()).run();
        net.check_invariants();
        assert!(
            networks_equivalent(&before, &net),
            "GDC mode changed an output function"
        );
        assert!(stats.substitutions >= 1);
    }

    #[test]
    fn no_substitution_into_unrelated_nodes() {
        let mut net = Network::new("unrelated");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let c = net.add_input("c").expect("c");
        let d = net.add_input("d").expect("d");
        let f = net
            .add_node("f", vec![a, b], parse_sop(2, "ab").expect("p"))
            .expect("f");
        let g = net
            .add_node("g", vec![c, d], parse_sop(2, "a + b").expect("p"))
            .expect("g");
        net.add_output("f", f).expect("o");
        net.add_output("g", g).expect("o");
        let stats = Session::new(&mut net, SubstOptions::extended()).run();
        assert_eq!(stats.substitutions, 0);
    }
}
