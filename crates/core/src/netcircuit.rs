//! Materializing a [`Network`] as a gate-level [`Circuit`], optionally
//! with one node rebuilt in the paper's division configuration — the
//! machinery behind the *global internal don't cares* (GDC) mode, where
//! redundancy-removal implications range over the whole circuit and the
//! observation points are the primary outputs.

use boolsubst_atpg::{Circuit, GateId};
use boolsubst_cube::{Cover, Cube, Lit, Phase};
use boolsubst_network::{Network, NodeId};
use std::collections::{HashMap, HashSet};

/// A network materialized as gates.
#[derive(Debug)]
pub struct NetCircuit {
    /// The gate-level circuit (observation points = primary outputs).
    pub circuit: Circuit,
    /// Output gate of each node, indexed by [`NodeId::index`].
    pub node_gate: Vec<Option<GateId>>,
}

/// Handles into the division structure embedded in a [`NetCircuit`].
#[derive(Debug)]
pub struct NetworkRegion {
    /// The materialized circuit.
    pub netc: NetCircuit,
    /// Joint-space variables (sorted node ids); cover variable `i` of the
    /// kept/remainder covers corresponds to `var_nodes[i]`.
    pub var_nodes: Vec<NodeId>,
    /// Literal gates for the joint space: `lit_gates[i]` = (pos, neg).
    pub lit_gates: Vec<(GateId, Option<GateId>)>,
    /// AND gate per kept cube.
    pub kept_gates: Vec<GateId>,
    /// OR over the kept cubes.
    pub fprime_or: GateId,
    /// The bold AND joining `f'` with the divisor node's output.
    pub bold: GateId,
}

/// The mutable state of circuit materialization: the circuit under
/// construction, the node → output-gate map, and the shared NOT cache.
/// Clone-able so a per-target prefix can be snapshotted once and patched
/// per division attempt (see [`ShadowBase`]).
#[derive(Debug, Clone)]
pub(crate) struct BuilderState {
    circuit: Circuit,
    node_gate: Vec<Option<GateId>>,
    not_cache: HashMap<GateId, GateId>,
}

impl BuilderState {
    fn new(net: &Network) -> BuilderState {
        let mut b = BuilderState {
            circuit: Circuit::new(),
            node_gate: vec![None; net.id_bound()],
            not_cache: HashMap::new(),
        };
        // Create input gates in primary-input declaration order so that
        // `Circuit::eval` assignments align with `Network::eval_outputs`.
        for &pi in net.inputs() {
            let g = b.circuit.add_input();
            b.node_gate[pi.index()] = Some(g);
        }
        b
    }

    fn lit_gate(&mut self, node: NodeId, phase: Phase) -> GateId {
        let g = self.node_gate[node.index()].expect("fanin built before use");
        match phase {
            Phase::Pos => g,
            Phase::Neg => {
                if let Some(&n) = self.not_cache.get(&g) {
                    n
                } else {
                    let n = self.circuit.add_not(g);
                    self.not_cache.insert(g, n);
                    n
                }
            }
        }
    }

    /// Builds the standard AND–OR structure for a node's cover; returns
    /// the output gate.
    fn build_node(&mut self, net: &Network, id: NodeId) -> GateId {
        let node = net.node(id);
        if node.is_input() {
            return self.node_gate[id.index()].expect("inputs pre-created");
        }
        let cover = node.cover().expect("internal").clone();
        let fanins = node.fanins().to_vec();
        let cube_gates: Vec<GateId> = cover
            .cubes()
            .iter()
            .map(|c| {
                let ins: Vec<GateId> = c
                    .lits()
                    .map(|l| self.lit_gate(fanins[l.var], l.phase))
                    .collect();
                self.circuit.add_and(ins)
            })
            .collect();
        self.circuit.add_or(cube_gates)
    }
}

/// Topological order of the network with the extra edge
/// `divisor → target` (callers guarantee this cannot cycle, since the
/// divisor is not in the target's transitive fanout).
fn order_with_edge(net: &Network, divisor: NodeId, target: NodeId) -> Vec<NodeId> {
    let bound = net.id_bound();
    let mut indegree = vec![0usize; bound];
    let mut live = 0usize;
    for id in net.node_ids() {
        live += 1;
        indegree[id.index()] = net.node(id).fanins().len();
    }
    indegree[target.index()] += 1; // the extra edge
    let fanouts = net.fanouts();
    let mut queue: Vec<NodeId> = net
        .node_ids()
        .filter(|id| indegree[id.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(live);
    while let Some(id) = queue.pop() {
        order.push(id);
        let relax = |o: NodeId, indegree: &mut Vec<usize>, queue: &mut Vec<NodeId>| {
            indegree[o.index()] -= 1;
            if indegree[o.index()] == 0 {
                queue.push(o);
            }
        };
        for &o in &fanouts[id.index()] {
            relax(o, &mut indegree, &mut queue);
        }
        if id == divisor {
            relax(target, &mut indegree, &mut queue);
        }
    }
    assert_eq!(order.len(), live, "extra edge created a cycle");
    order
}

/// Gate handles produced by [`build_division`].
struct DivisionGates {
    lit_gates: Vec<(GateId, Option<GateId>)>,
    kept_gates: Vec<GateId>,
    fprime_or: GateId,
    bold: GateId,
    target_out: GateId,
}

/// Appends the paper's division configuration for the target:
/// `target = (OR(kept) AND divisor) OR remainder`, with per-region NOT
/// gates for negative joint-space literals (deliberately *not* shared
/// through the global NOT cache — region NOTs are removal candidates).
fn build_division(
    state: &mut BuilderState,
    var_nodes: &[NodeId],
    divisor: NodeId,
    kept: &Cover,
    remainder: &Cover,
) -> DivisionGates {
    let mut lit_gates: Vec<(GateId, Option<GateId>)> = var_nodes
        .iter()
        .map(|&v| {
            let pos = state.node_gate[v.index()].expect("joint var built first");
            (pos, None)
        })
        .collect();
    let lit = |state: &mut BuilderState, lg: &mut Vec<(GateId, Option<GateId>)>, l: Lit| {
        let (pos, neg) = lg[l.var];
        match l.phase {
            Phase::Pos => pos,
            Phase::Neg => {
                if let Some(n) = neg {
                    n
                } else {
                    let n = state.circuit.add_not(pos);
                    lg[l.var].1 = Some(n);
                    n
                }
            }
        }
    };
    let kept_gates: Vec<GateId> = kept
        .cubes()
        .iter()
        .map(|c| {
            let ins: Vec<GateId> = c.lits().map(|l| lit(state, &mut lit_gates, l)).collect();
            state.circuit.add_and(ins)
        })
        .collect();
    let fprime_or = state.circuit.add_or(kept_gates.clone());
    let d_gate = state.node_gate[divisor.index()].expect("divisor built before target");
    let bold = state.circuit.add_and(vec![fprime_or, d_gate]);
    let mut f_ins = vec![bold];
    for c in remainder.cubes() {
        let ins: Vec<GateId> = c.lits().map(|l| lit(state, &mut lit_gates, l)).collect();
        f_ins.push(state.circuit.add_and(ins));
    }
    let target_out = state.circuit.add_or(f_ins);
    DivisionGates {
        lit_gates,
        kept_gates,
        fprime_or,
        bold,
        target_out,
    }
}

/// A per-target snapshot of the materialized circuit for the GDC mode:
/// every node *except* the target and its transitive fanout, built once.
/// Each division attempt clones the snapshot and appends only the dirty
/// region — the division structure plus the target's fanout cone — instead
/// of rebuilding the whole network per (target, divisor) pair.
///
/// The snapshot stays valid as long as no node outside the target is
/// edited: accepting a plain (target-only) substitution does not
/// invalidate it, because the target is not part of the snapshot.
#[derive(Debug, Clone)]
pub struct ShadowBase {
    state: BuilderState,
    target: NodeId,
    /// The target's transitive fanout in topological order, rebuilt on
    /// every attempt (the division rewires the target, so its cone gets
    /// fresh gates).
    tfo_order: Vec<NodeId>,
}

impl ShadowBase {
    /// Builds the snapshot: all nodes outside `{target} ∪ tfo` in
    /// topological order. `tfo` must be the target's transitive fanout —
    /// its complement is fanin-closed, so every snapshot node's fanins are
    /// in the snapshot.
    #[must_use]
    pub fn prepare(net: &Network, target: NodeId, tfo: &HashSet<NodeId>) -> ShadowBase {
        let mut state = BuilderState::new(net);
        let mut tfo_order = Vec::new();
        for id in net.topo_order() {
            if id == target {
                continue;
            }
            if tfo.contains(&id) {
                tfo_order.push(id);
                continue;
            }
            let g = state.build_node(net, id);
            state.node_gate[id.index()] = Some(g);
        }
        ShadowBase {
            state,
            target,
            tfo_order,
        }
    }

    /// Materializes one division attempt on top of the snapshot: clone,
    /// append the division structure for the target, rebuild the target's
    /// fanout cone, attach the primary outputs. The result is isomorphic
    /// to [`NetworkRegion::build`] for the same pair (gate numbering
    /// differs; structure and therefore RAR verdicts do not).
    #[must_use]
    pub fn region(
        &self,
        net: &Network,
        divisor: NodeId,
        var_nodes: Vec<NodeId>,
        kept: &Cover,
        remainder: &Cover,
    ) -> NetworkRegion {
        let mut state = self.state.clone();
        let gates = build_division(&mut state, &var_nodes, divisor, kept, remainder);
        state.node_gate[self.target.index()] = Some(gates.target_out);
        for &id in &self.tfo_order {
            let g = state.build_node(net, id);
            state.node_gate[id.index()] = Some(g);
        }
        for (_, o) in net.outputs() {
            let g = state.node_gate[o.index()].expect("output driver built");
            state.circuit.add_output(g);
        }
        NetworkRegion {
            netc: NetCircuit {
                circuit: state.circuit,
                node_gate: state.node_gate,
            },
            var_nodes,
            lit_gates: gates.lit_gates,
            kept_gates: gates.kept_gates,
            fprime_or: gates.fprime_or,
            bold: gates.bold,
        }
    }
}

impl NetCircuit {
    /// Materializes the whole network; observation points are the primary
    /// outputs.
    #[must_use]
    pub fn build(net: &Network) -> NetCircuit {
        let mut b = BuilderState::new(net);
        for id in net.topo_order() {
            let g = b.build_node(net, id);
            b.node_gate[id.index()] = Some(g);
        }
        for (_, o) in net.outputs() {
            let g = b.node_gate[o.index()].expect("output driver built");
            b.circuit.add_output(g);
        }
        NetCircuit {
            circuit: b.circuit,
            node_gate: b.node_gate,
        }
    }
}

impl NetworkRegion {
    /// Materializes the network with `target` rebuilt in the division
    /// configuration: `target = (OR(kept) AND divisor_node) OR remainder`,
    /// where `kept`/`remainder` are covers over the joint space
    /// `var_nodes`. Observation points are the primary outputs, so
    /// redundancy checks see the paper's *global* internal don't cares.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is in the transitive fanout of `target`, if a
    /// joint-space variable is not buildable before `target`, or if ids
    /// are invalid.
    #[must_use]
    pub fn build(
        net: &Network,
        target: NodeId,
        divisor: NodeId,
        var_nodes: Vec<NodeId>,
        kept: &Cover,
        remainder: &Cover,
    ) -> NetworkRegion {
        assert!(
            !net.tfo(target).contains(&divisor),
            "divisor must not depend on target"
        );
        let mut b = BuilderState::new(net);
        let order = order_with_edge(net, divisor, target);
        let mut gates: Option<DivisionGates> = None;
        for id in order {
            if id != target {
                let g = b.build_node(net, id);
                b.node_gate[id.index()] = Some(g);
                continue;
            }
            let dg = build_division(&mut b, &var_nodes, divisor, kept, remainder);
            b.node_gate[target.index()] = Some(dg.target_out);
            gates = Some(dg);
        }
        for (_, o) in net.outputs() {
            let g = b.node_gate[o.index()].expect("output driver built");
            b.circuit.add_output(g);
        }
        let gates = gates.expect("target processed");
        NetworkRegion {
            netc: NetCircuit {
                circuit: b.circuit,
                node_gate: b.node_gate,
            },
            var_nodes,
            lit_gates: gates.lit_gates,
            kept_gates: gates.kept_gates,
            fprime_or: gates.fprime_or,
            bold: gates.bold,
        }
    }

    /// Candidate wires of the embedded `f'` region (same set as the local
    /// division region).
    #[must_use]
    pub fn candidate_wires(&self, kept: &Cover) -> Vec<boolsubst_atpg::CandidateWire> {
        use boolsubst_atpg::CandidateWire;
        let mut out = Vec::new();
        for (cube, &gate) in kept.cubes().iter().zip(&self.kept_gates) {
            for l in cube.lits() {
                let driver = match l.phase {
                    Phase::Pos => self.lit_gates[l.var].0,
                    Phase::Neg => self.lit_gates[l.var].1.expect("negative literal gate"),
                };
                out.push(CandidateWire { sink: gate, driver });
            }
            out.push(CandidateWire {
                sink: self.fprime_or,
                driver: gate,
            });
        }
        out.push(CandidateWire {
            sink: self.bold,
            driver: self.fprime_or,
        });
        out
    }

    /// Reads the surviving quotient back as a cover over the joint space.
    #[must_use]
    pub fn read_quotient(&self) -> Cover {
        let n = self.var_nodes.len();
        if !self
            .netc
            .circuit
            .fanins(self.bold)
            .contains(&self.fprime_or)
        {
            return Cover::one(n);
        }
        let mut q = Cover::new(n);
        for &cube_gate in self.netc.circuit.fanins(self.fprime_or) {
            let mut cube = Cube::universe(n);
            for &lit_in in self.netc.circuit.fanins(cube_gate) {
                if let Some(v) = self.lit_gates.iter().position(|&(p, _)| p == lit_in) {
                    cube.restrict(Lit::pos(v));
                } else if let Some(v) = self
                    .lit_gates
                    .iter()
                    .position(|&(_, ng)| ng == Some(lit_in))
                {
                    cube.restrict(Lit::neg(v));
                }
            }
            q.push(cube);
        }
        q.remove_contained_cubes();
        q
    }
}

/// Converts a gate-level circuit back into a [`Network`]: every gate
/// becomes a node (`AND` = one cube, `OR` = one cube per fanin, `NOT` =
/// the complemented literal), inputs become primary inputs named
/// `x0, x1, …` and observation points become outputs `z0, z1, …`.
/// Sweeping afterwards collapses the single-literal nodes this introduces.
///
/// # Panics
///
/// Panics if the circuit is malformed.
#[must_use]
pub fn network_from_circuit(circuit: &Circuit) -> Network {
    use boolsubst_atpg::GateKind;
    let mut net = Network::new("from_circuit");
    let mut node_of: Vec<Option<NodeId>> = vec![None; circuit.len()];
    let mut input_count = 0usize;
    for g in circuit.gate_ids() {
        let id = match circuit.kind(g) {
            GateKind::Input => {
                let id = net
                    .add_input(format!("x{input_count}"))
                    .expect("fresh input name");
                input_count += 1;
                id
            }
            GateKind::Const0 => net
                .add_node(format!("g{}", g.index()), Vec::new(), Cover::new(0))
                .expect("fresh node"),
            GateKind::Const1 => net
                .add_node(format!("g{}", g.index()), Vec::new(), Cover::one(0))
                .expect("fresh node"),
            kind => {
                // Distinct fanins (a gate may list one driver twice after
                // rewiring; the cover view needs unique variables).
                let mut fanins: Vec<NodeId> = Vec::new();
                let mut vars: Vec<usize> = Vec::new();
                for &f in circuit.fanins(g) {
                    let fid = node_of[f.index()].expect("topological order");
                    let v = match fanins.iter().position(|&x| x == fid) {
                        Some(v) => v,
                        None => {
                            fanins.push(fid);
                            fanins.len() - 1
                        }
                    };
                    vars.push(v);
                }
                let n = fanins.len();
                let cover = match kind {
                    GateKind::And => {
                        let mut cube = Cube::universe(n);
                        for &v in &vars {
                            cube.restrict(Lit::pos(v));
                        }
                        Cover::from_cubes(n, vec![cube])
                    }
                    GateKind::Or => {
                        let mut cover = Cover::new(n);
                        for &v in &vars {
                            let mut cube = Cube::universe(n);
                            cube.restrict(Lit::pos(v));
                            cover.push(cube);
                        }
                        cover.remove_contained_cubes();
                        cover
                    }
                    GateKind::Not => {
                        let mut cube = Cube::universe(n);
                        cube.restrict(Lit::neg(vars[0]));
                        Cover::from_cubes(n, vec![cube])
                    }
                    GateKind::Buf => {
                        let mut cube = Cube::universe(n);
                        cube.restrict(Lit::pos(vars[0]));
                        Cover::from_cubes(n, vec![cube])
                    }
                    _ => unreachable!("inputs and constants handled above"),
                };
                net.add_node(format!("g{}", g.index()), fanins, cover)
                    .expect("fresh node")
            }
        };
        node_of[g.index()] = Some(id);
    }
    for (k, &o) in circuit.outputs().iter().enumerate() {
        net.add_output(format!("z{k}"), node_of[o.index()].expect("built"))
            .expect("fresh output");
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_cube::parse_sop;

    fn sample_net() -> (Network, NodeId, NodeId) {
        let mut net = Network::new("s");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let c = net.add_input("c").expect("c");
        let d = net
            .add_node("d", vec![a, b, c], parse_sop(3, "ab + c").expect("p"))
            .expect("d");
        let f = net
            .add_node(
                "f",
                vec![a, b, c],
                parse_sop(3, "ab + ac + bc'").expect("p"),
            )
            .expect("f");
        net.add_output("f", f).expect("o");
        net.add_output("d", d).expect("o");
        (net, f, d)
    }

    #[test]
    fn circuit_network_roundtrip() {
        let (net, ..) = sample_net();
        let nc = NetCircuit::build(&net);
        let back = network_from_circuit(&nc.circuit);
        back.check_invariants();
        for m in 0u32..8 {
            let ins: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(
                back.eval_outputs(&ins),
                net.eval_outputs(&ins),
                "mismatch at {m:03b}"
            );
        }
    }

    #[test]
    fn whole_network_circuit_matches_eval() {
        let (net, ..) = sample_net();
        let nc = NetCircuit::build(&net);
        for m in 0u32..8 {
            let ins: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let want = net.eval_outputs(&ins);
            let vals = nc.circuit.eval(&ins);
            let got: Vec<bool> = nc
                .circuit
                .outputs()
                .iter()
                .map(|o| vals[o.index()])
                .collect();
            assert_eq!(got, want, "mismatch at {m:03b}");
        }
    }

    #[test]
    fn region_build_preserves_function() {
        let (net, f, d) = sample_net();
        // Joint space = {a, b, c}; kept = ab + ac, remainder = bc'.
        let vars: Vec<NodeId> = net.inputs().to_vec();
        let kept = parse_sop(3, "ab + ac").expect("p");
        let rem = parse_sop(3, "bc'").expect("p");
        let region = NetworkRegion::build(&net, f, d, vars, &kept, &rem);
        // Before any removal, the circuit must behave like the network
        // (the bold AND is redundant by Lemma 1).
        for m in 0u32..8 {
            let ins: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let want = net.eval_outputs(&ins);
            let vals = region.netc.circuit.eval(&ins);
            let got: Vec<bool> = region
                .netc
                .circuit
                .outputs()
                .iter()
                .map(|o| vals[o.index()])
                .collect();
            assert_eq!(got, want, "mismatch at {m:03b}");
        }
        // Read-back without removals reproduces the kept cubes.
        let q = region.read_quotient();
        assert!(q.equivalent(&kept));
    }
}
