//! Large-circuit generator: ISCAS/EPFL-shaped instances in the
//! 10k–100k-node range for exercising the front-end and the engine at
//! scale. Construction is streaming — every family appends nodes in one
//! topological pass, O(target) time and memory — and deterministic in
//! `(family, target_nodes, seed)`.
//!
//! The arithmetic families are built from many *independent* blocks
//! (each over its own primary inputs), so BDD equivalence checking of a
//! 100k-node instance stays linear: the shared-manager BDD never sees a
//! function wider than one block.

use crate::generator::Rng;
use boolsubst_cube::{Cover, Cube, Lit};
use boolsubst_network::{Network, NodeId};

/// A large-circuit family, shaped after a class of real benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Wide ripple-carry adders (EPFL arithmetic shape): long carry
    /// chains, XOR3/MAJ nodes, many independent 64-bit blocks.
    Adder,
    /// Array multipliers (8×8 blocks): partial products plus ripple
    /// accumulation — dense, reconvergent, adder-tree heavy.
    Multiplier,
    /// Control logic (ISCAS shape): address-decode AND planes feeding
    /// OR merge layers and shallow output cones over a shared bus.
    Controller,
    /// Random logic cones: layered random covers over small per-cone
    /// input subsets, with the sharing bias of
    /// [`crate::generator::random_network`].
    RandomCones,
}

impl Family {
    /// All families, in a fixed order (for sweeps).
    pub const ALL: [Family; 4] = [
        Family::Adder,
        Family::Multiplier,
        Family::Controller,
        Family::RandomCones,
    ];

    /// The family's CLI/display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::Adder => "adder",
            Family::Multiplier => "multiplier",
            Family::Controller => "controller",
            Family::RandomCones => "cones",
        }
    }

    /// Parses a CLI name (`adder`, `multiplier`/`mult`, `controller`/
    /// `ctrl`, `cones`/`random`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Family> {
        match s.to_ascii_lowercase().as_str() {
            "adder" | "add" => Some(Family::Adder),
            "multiplier" | "mult" | "mul" => Some(Family::Multiplier),
            "controller" | "ctrl" | "control" => Some(Family::Controller),
            "cones" | "random" | "rnd" => Some(Family::RandomCones),
            _ => None,
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn cover1(n: usize, cubes: &[&[Lit]]) -> Cover {
    Cover::from_cubes(n, cubes.iter().map(|ls| Cube::from_lits(n, ls)).collect())
}

fn xor3() -> Cover {
    cover1(
        3,
        &[
            &[Lit::pos(0), Lit::neg(1), Lit::neg(2)],
            &[Lit::neg(0), Lit::pos(1), Lit::neg(2)],
            &[Lit::neg(0), Lit::neg(1), Lit::pos(2)],
            &[Lit::pos(0), Lit::pos(1), Lit::pos(2)],
        ],
    )
}

fn maj3() -> Cover {
    cover1(
        3,
        &[
            &[Lit::pos(0), Lit::pos(1)],
            &[Lit::pos(0), Lit::pos(2)],
            &[Lit::pos(1), Lit::pos(2)],
        ],
    )
}

fn xor2() -> Cover {
    cover1(
        2,
        &[&[Lit::pos(0), Lit::neg(1)], &[Lit::neg(0), Lit::pos(1)]],
    )
}

fn and2() -> Cover {
    cover1(2, &[&[Lit::pos(0), Lit::pos(1)]])
}

/// Builder tracking the gate budget while a family streams nodes in.
struct LargeBuilder {
    net: Network,
    gates: usize,
    next_id: usize,
}

impl LargeBuilder {
    fn new(name: String) -> LargeBuilder {
        LargeBuilder {
            net: Network::new(name),
            gates: 0,
            next_id: 0,
        }
    }

    fn gate(&mut self, fanins: Vec<NodeId>, cover: Cover) -> NodeId {
        let k = self.next_id;
        self.next_id += 1;
        self.gates += 1;
        self.net
            .add_node(format!("n{k}"), fanins, cover)
            .expect("generated gate is well-formed")
    }

    fn input(&mut self, name: String) -> NodeId {
        self.net.add_input(name).expect("fresh input name")
    }
}

/// One 64-bit ripple-carry adder block over fresh inputs (≈128 gates).
///
/// Inputs are declared interleaved (`cin, a0, b0, a1, b1, …`) so the
/// BDD oracle — which orders variables by declaration — sees the
/// linear-size adder ordering, not the exponential `a* … b*` one.
fn adder_block(b: &mut LargeBuilder, block: usize, width: usize) {
    let mut carry = b.input(format!("cin{block}"));
    let bits: Vec<(NodeId, NodeId)> = (0..width)
        .map(|i| {
            let ai = b.input(format!("a{block}_{i}"));
            let xi = b.input(format!("b{block}_{i}"));
            (ai, xi)
        })
        .collect();
    for (i, &(ai, xi)) in bits.iter().enumerate() {
        let s = b.gate(vec![ai, xi, carry], xor3());
        let co = b.gate(vec![ai, xi, carry], maj3());
        b.net
            .add_output(format!("s{block}_{i}"), s)
            .expect("output");
        carry = co;
    }
    b.net
        .add_output(format!("cout{block}"), carry)
        .expect("output");
}

/// One `width`×`width` array-multiplier block over fresh inputs
/// (partial products + ripple accumulation; ≈250 gates at width 8).
fn multiplier_block(b: &mut LargeBuilder, block: usize, width: usize) {
    let a: Vec<NodeId> = (0..width)
        .map(|i| b.input(format!("a{block}_{i}")))
        .collect();
    let x: Vec<NodeId> = (0..width)
        .map(|i| b.input(format!("b{block}_{i}")))
        .collect();
    let mut acc: Vec<Option<NodeId>> = vec![None; 2 * width];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &xj) in x.iter().enumerate() {
            let pp = b.gate(vec![ai, xj], and2());
            // Ripple the partial product into the accumulator with
            // half adders, pushing the carry up the columns.
            let mut carry = Some(pp);
            let mut k = i + j;
            while let Some(c) = carry {
                if k == acc.len() {
                    // Structural carry out of the top column: logically
                    // always 0, but the half-adder chain still emits it.
                    acc.push(None);
                }
                match acc[k] {
                    None => {
                        acc[k] = Some(c);
                        carry = None;
                    }
                    Some(prev) => {
                        let s = b.gate(vec![prev, c], xor2());
                        let co = b.gate(vec![prev, c], and2());
                        acc[k] = Some(s);
                        carry = Some(co);
                        k += 1;
                    }
                }
            }
        }
    }
    for (k, slot) in acc.iter().enumerate() {
        if let Some(id) = slot {
            b.net
                .add_output(format!("p{block}_{k}"), *id)
                .expect("output");
        }
    }
}

/// One control block: a `bus`-bit bus, an AND decode plane, an OR merge
/// layer, and shallow output cones (≈170 gates at the default sizes).
fn controller_block(b: &mut LargeBuilder, rng: &mut Rng, block: usize, bus: usize) {
    let pis: Vec<NodeId> = (0..bus).map(|i| b.input(format!("c{block}_{i}"))).collect();
    let decodes = bus * 4;
    let mut decode_ids = Vec::with_capacity(decodes);
    for _ in 0..decodes {
        // Address decode: AND of 3–5 distinct bus literals.
        let lits = 3 + rng.below(3);
        let mut vars: Vec<usize> = Vec::new();
        while vars.len() < lits {
            let v = rng.below(bus);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        vars.sort_unstable();
        let cube_lits: Vec<Lit> = vars
            .iter()
            .enumerate()
            .map(|(k, _)| {
                if rng.below(2) == 0 {
                    Lit::pos(k)
                } else {
                    Lit::neg(k)
                }
            })
            .collect();
        let fanins: Vec<NodeId> = vars.iter().map(|&v| pis[v]).collect();
        let n = fanins.len();
        decode_ids.push(b.gate(fanins, cover1(n, &[&cube_lits])));
    }
    let merges = decodes / 3;
    let mut merge_ids = Vec::with_capacity(merges);
    for _ in 0..merges {
        // Merge: OR of 2–4 distinct decode lines.
        let k = 2 + rng.below(3);
        let mut picks: Vec<NodeId> = Vec::new();
        while picks.len() < k {
            let cand = decode_ids[rng.below(decode_ids.len())];
            if !picks.contains(&cand) {
                picks.push(cand);
            }
        }
        let n = picks.len();
        let cubes: Vec<Vec<Lit>> = (0..n).map(|v| vec![Lit::pos(v)]).collect();
        let cube_refs: Vec<&[Lit]> = cubes.iter().map(Vec::as_slice).collect();
        merge_ids.push(b.gate(picks, cover1(n, &cube_refs)));
    }
    for o in 0..merges / 2 {
        // Output cone: 2-cube AND-OR over two merge lines and a bus bit.
        let m0 = merge_ids[rng.below(merge_ids.len())];
        let mut m1 = merge_ids[rng.below(merge_ids.len())];
        while m1 == m0 {
            m1 = merge_ids[rng.below(merge_ids.len())];
        }
        let pi = pis[rng.below(bus)];
        let cover = cover1(
            3,
            &[&[Lit::pos(0), Lit::pos(2)], &[Lit::pos(1), Lit::neg(2)]],
        );
        let id = b.gate(vec![m0, m1, pi], cover);
        b.net
            .add_output(format!("z{block}_{o}"), id)
            .expect("output");
    }
}

/// One random-logic cone over a fresh 14-input bus: four layers of
/// random 2–4-fanin covers with a containment-sharing bias
/// (≈150 gates).
fn cone_block(b: &mut LargeBuilder, rng: &mut Rng, block: usize, gates: usize) {
    let bus = 14;
    let pis: Vec<NodeId> = (0..bus).map(|i| b.input(format!("x{block}_{i}"))).collect();
    let mut pool = pis;
    let mut made = Vec::new();
    for _ in 0..gates {
        let arity = 2 + rng.below(3);
        let mut fanins: Vec<NodeId> = Vec::new();
        while fanins.len() < arity {
            // Bias towards recent nodes to get depth, like the small
            // generator, but the pool is local to this cone.
            let idx = if rng.below(100) < 50 && pool.len() > bus {
                bus + rng.below(pool.len() - bus)
            } else {
                rng.below(pool.len())
            };
            if !fanins.contains(&pool[idx]) {
                fanins.push(pool[idx]);
            }
        }
        let n = fanins.len();
        let mut cover = Cover::new(n);
        for _ in 0..1 + rng.below(3) {
            let mut cube = Cube::universe(n);
            for _ in 0..1 + rng.below(n) {
                let v = rng.below(n);
                let lit = if rng.below(100) < 35 {
                    Lit::neg(v)
                } else {
                    Lit::pos(v)
                };
                cube.restrict(lit);
            }
            if !cube.is_empty() {
                cover.push(cube);
            }
        }
        // Sharing bias: specialise an existing cube with one extra literal.
        if rng.below(100) < 40 && !cover.is_empty() {
            let mut special = cover.cubes()[rng.below(cover.len())].clone();
            special.restrict(if rng.below(2) == 0 {
                Lit::pos(rng.below(n))
            } else {
                Lit::neg(rng.below(n))
            });
            if !special.is_empty() {
                cover.push(special);
            }
        }
        cover.remove_contained_cubes();
        if cover.is_empty() {
            cover.push(Cube::from_lits(n, &[Lit::pos(0)]));
        }
        let id = b.gate(fanins, cover);
        pool.push(id);
        made.push(id);
    }
    // Outputs: this cone's sinks.
    let fanouts = b.net.fanouts();
    let mut o = 0;
    for id in made {
        if fanouts[id.index()].is_empty() {
            b.net
                .add_output(format!("z{block}_{o}"), id)
                .expect("output");
            o += 1;
        }
    }
}

/// Generates a large instance of `family` with at least `target_nodes`
/// internal gates (construction stops at the first block boundary past
/// the target). Deterministic in all three arguments; streaming, one
/// topological pass, O(target) time and memory.
///
/// # Panics
///
/// Panics if `target_nodes == 0`.
#[must_use]
pub fn large_network(family: Family, target_nodes: usize, seed: u64) -> Network {
    assert!(target_nodes > 0, "target_nodes must be positive");
    let mut b = LargeBuilder::new(format!("{}_{target_nodes}_s{seed}", family.name()));
    let mut rng = Rng::new(seed ^ 0xA076_1D64_78BD_642F);
    let mut block = 0usize;
    while b.gates < target_nodes {
        match family {
            Family::Adder => adder_block(&mut b, block, 64),
            Family::Multiplier => multiplier_block(&mut b, block, 8),
            Family::Controller => controller_block(&mut b, &mut rng, block, 20),
            Family::RandomCones => cone_block(&mut b, &mut rng, block, 150),
        }
        block += 1;
    }
    b.net
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_network::write_blif;

    #[test]
    fn all_families_build_valid_networks() {
        for family in Family::ALL {
            let net = large_network(family, 600, 7);
            net.check_invariants();
            let gates = net.internal_ids().count();
            assert!(gates >= 600, "{family}: only {gates} gates");
            assert!(!net.outputs().is_empty(), "{family}: no outputs");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for family in Family::ALL {
            let a = large_network(family, 400, 11);
            let b = large_network(family, 400, 11);
            assert_eq!(write_blif(&a), write_blif(&b), "{family} not deterministic");
        }
    }

    #[test]
    fn adder_blocks_add() {
        // One 64-bit block: drive a=1, b=0, cin=1 → s = 0b10, i.e.
        // s0=0, s1=1, rest 0, cout=0.
        let net = large_network(Family::Adder, 1, 3);
        let mut inputs = vec![false; net.inputs().len()];
        for (i, &pi) in net.inputs().iter().enumerate() {
            let name = net.node(pi).name();
            if name == "a0_0" || name == "cin0" {
                inputs[i] = true;
            }
        }
        let outs = net.eval_outputs(&inputs);
        for ((name, _), value) in net.outputs().iter().zip(&outs) {
            let expect = name == "s0_1";
            assert_eq!(*value, expect, "{name}");
        }
    }

    #[test]
    fn multiplier_blocks_multiply() {
        // One 8×8 block: 3 × 5 = 15 = 0b1111.
        let net = large_network(Family::Multiplier, 1, 3);
        let mut inputs = vec![false; net.inputs().len()];
        for (i, &pi) in net.inputs().iter().enumerate() {
            let name = net.node(pi).name();
            if ["a0_0", "a0_1", "b0_0", "b0_2"].contains(&name) {
                inputs[i] = true;
            }
        }
        let outs = net.eval_outputs(&inputs);
        let mut product = 0u64;
        for ((name, _), value) in net.outputs().iter().zip(&outs) {
            if *value {
                let bit: u32 = name
                    .strip_prefix("p0_")
                    .expect("product output")
                    .parse()
                    .expect("bit index");
                product |= 1 << bit;
            }
        }
        assert_eq!(product, 15);
    }

    #[test]
    fn family_names_parse() {
        for family in Family::ALL {
            assert_eq!(Family::parse(family.name()), Some(family));
        }
        assert_eq!(Family::parse("MULT"), Some(Family::Multiplier));
        assert_eq!(Family::parse("bogus"), None);
    }

    #[test]
    fn scales_past_ten_thousand() {
        let net = large_network(Family::Adder, 10_000, 1);
        let gates = net.internal_ids().count();
        assert!(gates >= 10_000);
        net.check_invariants();
    }
}
