//! The benchmark substrate: constructors for classic MCNC/ISCAS-style
//! circuit *functions* (adders, symmetric counters, comparators, decoders,
//! parity and majority logic, ALU slices), used in place of the original
//! benchmark files, which are not distributable here. See DESIGN.md §3 for
//! why this substitution preserves the experiments' shape.

use boolsubst_cube::{Cover, Cube, Lit};
use boolsubst_network::{Network, NodeId};

fn cover1(n: usize, cubes: &[&[Lit]]) -> Cover {
    Cover::from_cubes(n, cubes.iter().map(|ls| Cube::from_lits(n, ls)).collect())
}

/// n-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`; outputs `s0..`,
/// `cout`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn ripple_adder(n: usize) -> Network {
    assert!(n > 0, "adder width must be positive");
    let mut net = Network::new(format!("add{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")).expect("input"))
        .collect();
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")).expect("input"))
        .collect();
    let mut carry = net.add_input("cin").expect("input");
    for i in 0..n {
        // s = a ⊕ b ⊕ c ; co = ab + ac + bc (over fanins [a, b, c])
        let xor3 = cover1(
            3,
            &[
                &[Lit::pos(0), Lit::neg(1), Lit::neg(2)],
                &[Lit::neg(0), Lit::pos(1), Lit::neg(2)],
                &[Lit::neg(0), Lit::neg(1), Lit::pos(2)],
                &[Lit::pos(0), Lit::pos(1), Lit::pos(2)],
            ],
        );
        let maj = cover1(
            3,
            &[
                &[Lit::pos(0), Lit::pos(1)],
                &[Lit::pos(0), Lit::pos(2)],
                &[Lit::pos(1), Lit::pos(2)],
            ],
        );
        let s = net
            .add_node(format!("s{i}"), vec![a[i], b[i], carry], xor3)
            .expect("sum node");
        let co = net
            .add_node(format!("c{}", i + 1), vec![a[i], b[i], carry], maj)
            .expect("carry node");
        net.add_output(format!("s{i}"), s).expect("output");
        carry = co;
    }
    net.add_output("cout", carry).expect("output");
    net
}

/// rd-style symmetric function (rd53, rd73, rd84 families): the outputs
/// are the binary digits of the popcount of `n` inputs, built as a tree of
/// full/half adders.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 16`.
#[must_use]
pub fn symmetric_rd(n: usize) -> Network {
    assert!((1..=16).contains(&n), "rd input count out of range");
    let mut net = Network::new(format!("rd{n}"));
    // Column-compression: maintain buckets of bits per weight.
    let mut columns: Vec<Vec<NodeId>> = vec![Vec::new()];
    for i in 0..n {
        let pi = net.add_input(format!("x{i}")).expect("input");
        columns[0].push(pi);
    }
    let xor2 = cover1(
        2,
        &[&[Lit::pos(0), Lit::neg(1)], &[Lit::neg(0), Lit::pos(1)]],
    );
    let and2 = cover1(2, &[&[Lit::pos(0), Lit::pos(1)]]);
    let xor3 = cover1(
        3,
        &[
            &[Lit::pos(0), Lit::neg(1), Lit::neg(2)],
            &[Lit::neg(0), Lit::pos(1), Lit::neg(2)],
            &[Lit::neg(0), Lit::neg(1), Lit::pos(2)],
            &[Lit::pos(0), Lit::pos(1), Lit::pos(2)],
        ],
    );
    let maj3 = cover1(
        3,
        &[
            &[Lit::pos(0), Lit::pos(1)],
            &[Lit::pos(0), Lit::pos(2)],
            &[Lit::pos(1), Lit::pos(2)],
        ],
    );
    let mut counter = 0usize;
    let mut w = 0usize;
    while w < columns.len() {
        while columns[w].len() > 1 {
            if columns[w].len() >= 3 {
                let x = columns[w].remove(0);
                let y = columns[w].remove(0);
                let z = columns[w].remove(0);
                let s = net
                    .add_node(format!("fa_s{counter}"), vec![x, y, z], xor3.clone())
                    .expect("fa sum");
                let c = net
                    .add_node(format!("fa_c{counter}"), vec![x, y, z], maj3.clone())
                    .expect("fa carry");
                counter += 1;
                columns[w].push(s);
                if columns.len() <= w + 1 {
                    columns.push(Vec::new());
                }
                columns[w + 1].push(c);
            } else {
                let x = columns[w].remove(0);
                let y = columns[w].remove(0);
                let s = net
                    .add_node(format!("ha_s{counter}"), vec![x, y], xor2.clone())
                    .expect("ha sum");
                let c = net
                    .add_node(format!("ha_c{counter}"), vec![x, y], and2.clone())
                    .expect("ha carry");
                counter += 1;
                columns[w].push(s);
                if columns.len() <= w + 1 {
                    columns.push(Vec::new());
                }
                columns[w + 1].push(c);
            }
        }
        w += 1;
    }
    for (w, col) in columns.iter().enumerate() {
        if let Some(&bit) = col.first() {
            net.add_output(format!("o{w}"), bit).expect("output");
        }
    }
    net
}

/// n-input odd-parity tree (the 9symml / parity family).
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn parity(n: usize) -> Network {
    assert!(n >= 2, "parity needs at least two inputs");
    let mut net = Network::new(format!("parity{n}"));
    let xor2 = cover1(
        2,
        &[&[Lit::pos(0), Lit::neg(1)], &[Lit::neg(0), Lit::pos(1)]],
    );
    let mut level: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("x{i}")).expect("input"))
        .collect();
    let mut counter = 0usize;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let g = net
                    .add_node(format!("p{counter}"), vec![pair[0], pair[1]], xor2.clone())
                    .expect("xor node");
                counter += 1;
                next.push(g);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    net.add_output("parity", level[0]).expect("output");
    net
}

/// n-bit magnitude comparator: outputs `lt`, `eq` for inputs `a`, `b`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn comparator(n: usize) -> Network {
    assert!(n > 0, "comparator width must be positive");
    let mut net = Network::new(format!("cmp{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")).expect("input"))
        .collect();
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")).expect("input"))
        .collect();
    // eq_i = a_i xnor b_i ; lt_i = a_i' b_i
    let xnor = cover1(
        2,
        &[&[Lit::pos(0), Lit::pos(1)], &[Lit::neg(0), Lit::neg(1)]],
    );
    let ltc = cover1(2, &[&[Lit::neg(0), Lit::pos(1)]]);
    let mut eq_chain: Option<NodeId> = None;
    let mut lt_acc: Option<NodeId> = None;
    for i in (0..n).rev() {
        let eq_i = net
            .add_node(format!("eq{i}"), vec![a[i], b[i]], xnor.clone())
            .expect("eq node");
        let lt_i = net
            .add_node(format!("ltb{i}"), vec![a[i], b[i]], ltc.clone())
            .expect("lt node");
        // lt := lt_so_far + eq_so_far·lt_i ; eq := eq_so_far·eq_i
        match (eq_chain, lt_acc) {
            (None, None) => {
                eq_chain = Some(eq_i);
                lt_acc = Some(lt_i);
            }
            (Some(eqp), Some(ltp)) => {
                let lt_new = net
                    .add_node(
                        format!("lt{i}"),
                        vec![ltp, eqp, lt_i],
                        cover1(3, &[&[Lit::pos(0)], &[Lit::pos(1), Lit::pos(2)]]),
                    )
                    .expect("lt chain");
                let eq_new = net
                    .add_node(
                        format!("eqc{i}"),
                        vec![eqp, eq_i],
                        cover1(2, &[&[Lit::pos(0), Lit::pos(1)]]),
                    )
                    .expect("eq chain");
                eq_chain = Some(eq_new);
                lt_acc = Some(lt_new);
            }
            _ => unreachable!("chains advance together"),
        }
    }
    net.add_output("lt", lt_acc.expect("nonempty"))
        .expect("output");
    net.add_output("eq", eq_chain.expect("nonempty"))
        .expect("output");
    net
}

/// k-to-2^k decoder with enable.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 6`.
#[must_use]
pub fn decoder(k: usize) -> Network {
    assert!((1..=6).contains(&k), "decoder size out of range");
    let mut net = Network::new(format!("dec{k}"));
    let sel: Vec<NodeId> = (0..k)
        .map(|i| net.add_input(format!("s{i}")).expect("input"))
        .collect();
    let en = net.add_input("en").expect("input");
    for m in 0..(1usize << k) {
        let mut lits = vec![Lit::pos(k)]; // enable is fanin k
        for (i, _) in sel.iter().enumerate() {
            lits.push(if (m >> i) & 1 == 1 {
                Lit::pos(i)
            } else {
                Lit::neg(i)
            });
        }
        let mut fanins = sel.clone();
        fanins.push(en);
        let g = net
            .add_node(format!("y{m}"), fanins, cover1(k + 1, &[&lits]))
            .expect("decoder node");
        net.add_output(format!("y{m}"), g).expect("output");
    }
    net
}

/// 2^k-to-1 multiplexer tree.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 5`.
#[must_use]
pub fn mux_tree(k: usize) -> Network {
    assert!((1..=5).contains(&k), "mux size out of range");
    let mut net = Network::new(format!("mux{k}"));
    let sel: Vec<NodeId> = (0..k)
        .map(|i| net.add_input(format!("s{i}")).expect("input"))
        .collect();
    let mut level: Vec<NodeId> = (0..(1usize << k))
        .map(|i| net.add_input(format!("d{i}")).expect("input"))
        .collect();
    // mux(s, a, b) = s'a + sb over fanins [s, a, b]
    let mux = cover1(
        3,
        &[&[Lit::neg(0), Lit::pos(1)], &[Lit::pos(0), Lit::pos(2)]],
    );
    let mut counter = 0;
    for s in &sel {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            let g = net
                .add_node(
                    format!("m{counter}"),
                    vec![*s, pair[0], pair[1]],
                    mux.clone(),
                )
                .expect("mux node");
            counter += 1;
            next.push(g);
        }
        level = next;
    }
    net.add_output("out", level[0]).expect("output");
    net
}

/// A small ALU slice: two n-bit operands, 2-bit opcode selecting
/// AND/OR/XOR/ADD, one n-bit result (plus carry).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn alu_slice(n: usize) -> Network {
    assert!(n > 0, "alu width must be positive");
    let mut net = Network::new(format!("alu{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")).expect("input"))
        .collect();
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")).expect("input"))
        .collect();
    let op0 = net.add_input("op0").expect("input");
    let op1 = net.add_input("op1").expect("input");
    let and2 = cover1(2, &[&[Lit::pos(0), Lit::pos(1)]]);
    let or2 = cover1(2, &[&[Lit::pos(0)], &[Lit::pos(1)]]);
    let xor2 = cover1(
        2,
        &[&[Lit::pos(0), Lit::neg(1)], &[Lit::neg(0), Lit::pos(1)]],
    );
    let maj3 = cover1(
        3,
        &[
            &[Lit::pos(0), Lit::pos(1)],
            &[Lit::pos(0), Lit::pos(2)],
            &[Lit::pos(1), Lit::pos(2)],
        ],
    );
    let xor3 = cover1(
        3,
        &[
            &[Lit::pos(0), Lit::neg(1), Lit::neg(2)],
            &[Lit::neg(0), Lit::pos(1), Lit::neg(2)],
            &[Lit::neg(0), Lit::neg(1), Lit::pos(2)],
            &[Lit::pos(0), Lit::pos(1), Lit::pos(2)],
        ],
    );
    let zero = net
        .add_node("zero", Vec::new(), Cover::new(0))
        .expect("constant zero");
    let mut carry = zero;
    for i in 0..n {
        let g_and = net
            .add_node(format!("and{i}"), vec![a[i], b[i]], and2.clone())
            .expect("and");
        let g_or = net
            .add_node(format!("or{i}"), vec![a[i], b[i]], or2.clone())
            .expect("or");
        let g_xor = net
            .add_node(format!("xor{i}"), vec![a[i], b[i]], xor2.clone())
            .expect("xor");
        let g_sum = net
            .add_node(format!("sum{i}"), vec![a[i], b[i], carry], xor3.clone())
            .expect("sum");
        let g_carry = net
            .add_node(format!("cry{i}"), vec![a[i], b[i], carry], maj3.clone())
            .expect("carry");
        carry = g_carry;
        // result = op1'op0'·and + op1'op0·or + op1 op0'·xor + op1 op0·sum
        let res_cover = cover1(
            6,
            &[
                &[Lit::neg(0), Lit::neg(1), Lit::pos(2)],
                &[Lit::neg(0), Lit::pos(1), Lit::pos(3)],
                &[Lit::pos(0), Lit::neg(1), Lit::pos(4)],
                &[Lit::pos(0), Lit::pos(1), Lit::pos(5)],
            ],
        );
        let r = net
            .add_node(
                format!("r{i}"),
                vec![op1, op0, g_and, g_or, g_xor, g_sum],
                res_cover,
            )
            .expect("result");
        net.add_output(format!("r{i}"), r).expect("output");
    }
    net.add_output("cout", carry).expect("output");
    net
}

/// n-input priority encoder: outputs the index (binary) of the
/// highest-numbered asserted input plus a `valid` flag.
///
/// # Panics
///
/// Panics if `n < 2` or `n > 16`.
#[must_use]
pub fn priority_encoder(n: usize) -> Network {
    assert!((2..=16).contains(&n), "priority encoder size out of range");
    let mut net = Network::new(format!("prio{n}"));
    let ins: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("x{i}")).expect("input"))
        .collect();
    // grant_i = x_i · x_{i+1}' · … · x_{n-1}'  (highest index wins)
    let mut grants = Vec::with_capacity(n);
    for i in 0..n {
        let fanins: Vec<NodeId> = ins[i..].to_vec();
        let mut lits = vec![Lit::pos(0)];
        for j in 1..fanins.len() {
            lits.push(Lit::neg(j));
        }
        let g = net
            .add_node(
                format!("grant{i}"),
                fanins.clone(),
                cover1(fanins.len(), &[&lits]),
            )
            .expect("grant node");
        grants.push(g);
    }
    let bits = n.next_power_of_two().trailing_zeros() as usize;
    for b in 0..bits.max(1) {
        // output bit b = OR of grants whose index has bit b set
        let sources: Vec<NodeId> = (0..n)
            .filter(|i| (i >> b) & 1 == 1)
            .map(|i| grants[i])
            .collect();
        if sources.is_empty() {
            continue;
        }
        let cubes: Vec<Vec<Lit>> = (0..sources.len()).map(|k| vec![Lit::pos(k)]).collect();
        let cube_refs: Vec<&[Lit]> = cubes.iter().map(Vec::as_slice).collect();
        let node = net
            .add_node(
                format!("y{b}"),
                sources.clone(),
                cover1(sources.len(), &cube_refs),
            )
            .expect("encoder bit");
        net.add_output(format!("y{b}"), node).expect("output");
    }
    // valid = OR of all inputs.
    let cubes: Vec<Vec<Lit>> = (0..n).map(|k| vec![Lit::pos(k)]).collect();
    let cube_refs: Vec<&[Lit]> = cubes.iter().map(Vec::as_slice).collect();
    let valid = net
        .add_node("valid", ins.clone(), cover1(n, &cube_refs))
        .expect("valid node");
    net.add_output("valid", valid).expect("output");
    net
}

/// n-bit binary-to-Gray converter followed by a Gray-to-binary stage —
/// the composition is the identity, so the circuit is rich in structural
/// redundancy for don't-care extraction.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 16`.
#[must_use]
pub fn gray_roundtrip(n: usize) -> Network {
    assert!((1..=16).contains(&n), "gray width out of range");
    let mut net = Network::new(format!("gray{n}"));
    let ins: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")).expect("input"))
        .collect();
    let xor2 = cover1(
        2,
        &[&[Lit::pos(0), Lit::neg(1)], &[Lit::neg(0), Lit::pos(1)]],
    );
    // Gray: g_i = b_i ⊕ b_{i+1} (msb copies through).
    let mut gray = Vec::with_capacity(n);
    for i in 0..n {
        if i + 1 < n {
            let g = net
                .add_node(format!("g{i}"), vec![ins[i], ins[i + 1]], xor2.clone())
                .expect("gray node");
            gray.push(g);
        } else {
            gray.push(ins[i]);
        }
    }
    // Back: r_i = g_i ⊕ r_{i+1}, r_{n-1} = g_{n-1}.
    let mut prev: Option<NodeId> = None;
    for i in (0..n).rev() {
        let r = match prev {
            None => gray[i],
            Some(p) => net
                .add_node(format!("r{i}"), vec![gray[i], p], xor2.clone())
                .expect("binary node"),
        };
        prev = Some(r);
        net.add_output(format!("r{i}"), r).expect("output");
    }
    net
}

/// BCD to 7-segment decoder (classic `con1`-style two-level block,
/// segments a–g; inputs above 9 are don't-care-ish but mapped to blank).
#[must_use]
pub fn seven_segment() -> Network {
    let mut net = Network::new("seg7");
    let ins: Vec<NodeId> = (0..4)
        .map(|i| net.add_input(format!("d{i}")).expect("input"))
        .collect();
    // Segment truth table for digits 0-9 (bit i of the mask = digit i).
    let segments: [(&str, u16); 7] = [
        ("sa", 0b11_1110_1101),
        ("sb", 0b11_1001_1111),
        ("sc", 0b11_1111_1011),
        ("sd", 0b11_0110_1101),
        ("se", 0b01_0100_0101),
        ("sf", 0b11_0111_0001),
        ("sg", 0b11_0111_1100),
    ];
    for (name, mask) in segments {
        let mut cover = Cover::new(4);
        for digit in 0..10u32 {
            if (mask >> digit) & 1 == 1 {
                let lits: Vec<Lit> = (0..4)
                    .map(|b| {
                        if (digit >> b) & 1 == 1 {
                            Lit::pos(b)
                        } else {
                            Lit::neg(b)
                        }
                    })
                    .collect();
                cover.push(Cube::from_lits(4, &lits));
            }
        }
        let node = net
            .add_node(name, ins.clone(), cover)
            .expect("segment node");
        net.add_output(name, node).expect("output");
    }
    net
}

/// Carry-select style adder block: two n-bit ripple chains (carry 0 and
/// carry 1) with a mux — twice the logic, heavy sharing potential.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 8`.
#[must_use]
pub fn carry_select_adder(n: usize) -> Network {
    assert!((1..=8).contains(&n), "adder width out of range");
    let mut net = Network::new(format!("csel{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")).expect("input"))
        .collect();
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")).expect("input"))
        .collect();
    let cin = net.add_input("cin").expect("input");
    let xor3 = cover1(
        3,
        &[
            &[Lit::pos(0), Lit::neg(1), Lit::neg(2)],
            &[Lit::neg(0), Lit::pos(1), Lit::neg(2)],
            &[Lit::neg(0), Lit::neg(1), Lit::pos(2)],
            &[Lit::pos(0), Lit::pos(1), Lit::pos(2)],
        ],
    );
    let maj3 = cover1(
        3,
        &[
            &[Lit::pos(0), Lit::pos(1)],
            &[Lit::pos(0), Lit::pos(2)],
            &[Lit::pos(1), Lit::pos(2)],
        ],
    );
    let mux = cover1(
        3,
        &[&[Lit::neg(0), Lit::pos(1)], &[Lit::pos(0), Lit::pos(2)]],
    );
    let zero = net.add_node("k0", Vec::new(), Cover::new(0)).expect("zero");
    let one = net.add_node("k1", Vec::new(), Cover::one(0)).expect("one");
    let mut chains: Vec<Vec<NodeId>> = Vec::new(); // [carry0 sums, carry1 sums]
    let mut final_carries = Vec::new();
    for (tag, mut carry) in [("p0", zero), ("p1", one)] {
        let mut sums = Vec::new();
        for i in 0..n {
            let s = net
                .add_node(format!("{tag}s{i}"), vec![a[i], b[i], carry], xor3.clone())
                .expect("sum");
            let c = net
                .add_node(format!("{tag}c{i}"), vec![a[i], b[i], carry], maj3.clone())
                .expect("carry");
            sums.push(s);
            carry = c;
        }
        final_carries.push(carry);
        chains.push(sums);
    }
    for (i, (c0, c1)) in chains[0].iter().zip(&chains[1]).enumerate() {
        let m = net
            .add_node(format!("s{i}"), vec![cin, *c0, *c1], mux.clone())
            .expect("mux");
        net.add_output(format!("s{i}"), m).expect("output");
    }
    let mc = net
        .add_node("cout", vec![cin, final_carries[0], final_carries[1]], mux)
        .expect("mux carry");
    net.add_output("cout", mc).expect("output");
    net
}

/// The ISCAS-85 C17 benchmark — the classic six-NAND-gate circuit, encoded
/// exactly (NAND as the SOP `a' + b'` over two fanins).
#[must_use]
pub fn c17() -> Network {
    let mut net = Network::new("c17");
    let n1 = net.add_input("1").expect("input");
    let n2 = net.add_input("2").expect("input");
    let n3 = net.add_input("3").expect("input");
    let n6 = net.add_input("6").expect("input");
    let n7 = net.add_input("7").expect("input");
    let nand = cover1(2, &[&[Lit::neg(0)], &[Lit::neg(1)]]);
    let g10 = net.add_node("10", vec![n1, n3], nand.clone()).expect("g10");
    let g11 = net.add_node("11", vec![n3, n6], nand.clone()).expect("g11");
    let g16 = net
        .add_node("16", vec![n2, g11], nand.clone())
        .expect("g16");
    let g19 = net
        .add_node("19", vec![g11, n7], nand.clone())
        .expect("g19");
    let g22 = net
        .add_node("22", vec![g10, g16], nand.clone())
        .expect("g22");
    let g23 = net.add_node("23", vec![g16, g19], nand).expect("g23");
    net.add_output("22", g22).expect("output");
    net.add_output("23", g23).expect("output");
    net
}

/// The named standard suite used by the table binaries.
#[must_use]
pub fn standard_suite() -> Vec<Network> {
    vec![
        ripple_adder(4),
        ripple_adder(8),
        symmetric_rd(5),
        symmetric_rd(7),
        parity(9),
        comparator(6),
        decoder(4),
        mux_tree(4),
        alu_slice(4),
        priority_encoder(8),
        gray_roundtrip(6),
        seven_segment(),
        carry_select_adder(4),
        c17(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_adds() {
        let net = ripple_adder(3);
        net.check_invariants();
        for a in 0u32..8 {
            for b in 0u32..8 {
                for cin in 0u32..2 {
                    let mut ins = Vec::new();
                    for i in 0..3 {
                        ins.push((a >> i) & 1 == 1);
                    }
                    for i in 0..3 {
                        ins.push((b >> i) & 1 == 1);
                    }
                    ins.push(cin == 1);
                    let outs = net.eval_outputs(&ins);
                    let mut sum = 0u32;
                    for (i, &s) in outs.iter().take(3).enumerate() {
                        sum |= u32::from(s) << i;
                    }
                    sum |= u32::from(outs[3]) << 3;
                    assert_eq!(sum, a + b + cin, "a={a} b={b} cin={cin}");
                }
            }
        }
    }

    #[test]
    fn rd53_counts() {
        let net = symmetric_rd(5);
        net.check_invariants();
        assert_eq!(net.outputs().len(), 3);
        for m in 0u32..32 {
            let ins: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            let outs = net.eval_outputs(&ins);
            let mut count = 0u32;
            for (i, &o) in outs.iter().enumerate() {
                count |= u32::from(o) << i;
            }
            assert_eq!(count, m.count_ones(), "popcount mismatch at {m:05b}");
        }
    }

    #[test]
    fn parity_is_odd_parity() {
        let net = parity(9);
        net.check_invariants();
        for m in [0u32, 1, 0b101, 0b111111111, 0b10101] {
            let ins: Vec<bool> = (0..9).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(net.eval_outputs(&ins)[0], m.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn comparator_compares() {
        let net = comparator(3);
        net.check_invariants();
        for a in 0u32..8 {
            for b in 0u32..8 {
                let mut ins = Vec::new();
                for i in 0..3 {
                    ins.push((a >> i) & 1 == 1);
                }
                for i in 0..3 {
                    ins.push((b >> i) & 1 == 1);
                }
                let outs = net.eval_outputs(&ins);
                assert_eq!(outs[0], a < b, "lt a={a} b={b}");
                assert_eq!(outs[1], a == b, "eq a={a} b={b}");
            }
        }
    }

    #[test]
    fn decoder_one_hot() {
        let net = decoder(3);
        net.check_invariants();
        for m in 0u32..8 {
            let mut ins: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            ins.push(true);
            let outs = net.eval_outputs(&ins);
            for (i, &o) in outs.iter().enumerate() {
                assert_eq!(o, i as u32 == m);
            }
            // Disabled: all outputs low.
            let mut ins_off = ins;
            ins_off[3] = false;
            assert!(net.eval_outputs(&ins_off).iter().all(|&o| !o));
        }
    }

    #[test]
    fn mux_selects() {
        let net = mux_tree(3);
        net.check_invariants();
        for sel in 0u32..8 {
            let mut ins: Vec<bool> = (0..3).map(|i| (sel >> i) & 1 == 1).collect();
            let data: Vec<bool> = (0..8).map(|i| i == sel).collect();
            ins.extend(&data);
            assert!(net.eval_outputs(&ins)[0], "sel {sel}");
        }
    }

    #[test]
    fn alu_ops() {
        let net = alu_slice(2);
        net.check_invariants();
        for a in 0u32..4 {
            for b in 0u32..4 {
                for op in 0u32..4 {
                    let mut ins = Vec::new();
                    for i in 0..2 {
                        ins.push((a >> i) & 1 == 1);
                    }
                    for i in 0..2 {
                        ins.push((b >> i) & 1 == 1);
                    }
                    ins.push(op & 1 == 1); // op0
                    ins.push(op >> 1 == 1); // op1
                    let outs = net.eval_outputs(&ins);
                    let mut r = 0u32;
                    for (i, &o) in outs.iter().take(2).enumerate() {
                        r |= u32::from(o) << i;
                    }
                    let want = match op {
                        0 => a & b,
                        1 => a | b,
                        2 => a ^ b,
                        _ => (a + b) & 3,
                    };
                    assert_eq!(r, want, "a={a} b={b} op={op}");
                }
            }
        }
    }

    #[test]
    fn priority_encoder_encodes() {
        let net = priority_encoder(4);
        net.check_invariants();
        for m in 1u32..16 {
            let ins: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let outs = net.eval_outputs(&ins);
            let highest = 31 - m.leading_zeros();
            let mut got = 0u32;
            for (b, &o) in outs.iter().take(2).enumerate() {
                got |= u32::from(o) << b;
            }
            assert_eq!(got, highest, "m={m:04b}");
            assert!(outs[2], "valid must be set for {m:04b}");
        }
        assert!(!net.eval_outputs(&[false; 4])[2]);
    }

    #[test]
    fn gray_roundtrip_is_identity() {
        let net = gray_roundtrip(5);
        net.check_invariants();
        for m in 0u32..32 {
            let ins: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            let outs = net.eval_outputs(&ins);
            // Outputs were registered from msb down: r4, r3, ... r0.
            for (k, &o) in outs.iter().enumerate() {
                let bit = 4 - k;
                assert_eq!(o, (m >> bit) & 1 == 1, "m={m:05b} bit {bit}");
            }
        }
    }

    #[test]
    fn seven_segment_digits() {
        let net = seven_segment();
        net.check_invariants();
        // Digit 8 lights every segment; digit 1 lights only b and c.
        let dig = |d: u32| -> Vec<bool> {
            let ins: Vec<bool> = (0..4).map(|i| (d >> i) & 1 == 1).collect();
            net.eval_outputs(&ins)
        };
        assert!(dig(8).iter().all(|&s| s));
        let one = dig(1);
        assert_eq!(one, vec![false, true, true, false, false, false, false]);
    }

    #[test]
    fn carry_select_matches_addition() {
        let net = carry_select_adder(3);
        net.check_invariants();
        for a in 0u32..8 {
            for b in 0u32..8 {
                for cin in 0u32..2 {
                    let mut ins = Vec::new();
                    for i in 0..3 {
                        ins.push((a >> i) & 1 == 1);
                    }
                    for i in 0..3 {
                        ins.push((b >> i) & 1 == 1);
                    }
                    ins.push(cin == 1);
                    let outs = net.eval_outputs(&ins);
                    let mut sum = 0u32;
                    for (i, &s) in outs.iter().take(3).enumerate() {
                        sum |= u32::from(s) << i;
                    }
                    sum |= u32::from(outs[3]) << 3;
                    assert_eq!(sum, a + b + cin, "a={a} b={b} cin={cin}");
                }
            }
        }
    }

    #[test]
    fn c17_matches_reference_truth_table() {
        let net = c17();
        net.check_invariants();
        // Reference model: 22 = NAND(10, 16), 23 = NAND(16, 19) with
        // 10 = NAND(1,3), 11 = NAND(3,6), 16 = NAND(2,11), 19 = NAND(11,7).
        let nand = |a: bool, b: bool| !(a && b);
        for m in 0u32..32 {
            let v: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            let (i1, i2, i3, i6, i7) = (v[0], v[1], v[2], v[3], v[4]);
            let g10 = nand(i1, i3);
            let g11 = nand(i3, i6);
            let g16 = nand(i2, g11);
            let g19 = nand(g11, i7);
            let want = vec![nand(g10, g16), nand(g16, g19)];
            assert_eq!(net.eval_outputs(&v), want, "m = {m:05b}");
        }
    }

    #[test]
    fn suite_is_well_formed() {
        for net in standard_suite() {
            net.check_invariants();
            assert!(net.sop_literals() > 0);
        }
    }
}
