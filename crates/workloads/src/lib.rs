#![warn(missing_docs)]
//! # boolsubst-workloads — benchmark substrate and scripts
//!
//! The experimental workloads standing in for the paper's MCNC/ISCAS
//! suite (see DESIGN.md §3): constructors for classic circuit functions
//! ([`benchmarks`]), a seeded synthetic network generator ([`generator`]),
//! and the SIS-like preparation scripts ([`scripts`]) that produce the
//! starting points of Tables II–V.
//!
//! ```
//! use boolsubst_workloads::{benchmarks, scripts};
//!
//! let mut net = benchmarks::ripple_adder(4);
//! scripts::script_a(&mut net); // eliminate 0; simplify
//! assert!(net.sop_literals() > 0);
//! ```

pub mod benchmarks;
pub mod generator;
pub mod large;
pub mod scripts;

use boolsubst_network::Network;

/// The full workload set used by every table binary: the named standard
/// circuits plus the generated suite.
#[must_use]
pub fn full_suite() -> Vec<Network> {
    let mut out = benchmarks::standard_suite();
    out.extend(generator::generated_suite());
    out
}
