//! The SIS-like scripts of the paper's experiments: Script A
//! (`eliminate 0; simplify`), Script B (+`gcx`), Script C (+`gkx`), and a
//! `script.algebraic`-style full flow with a pluggable resubstitution
//! step.

use boolsubst_algebraic::{fx, gcx, gkx, ExtractOptions, FxOptions};
use boolsubst_cube::{simplify, Cover, SimplifyOptions};
use boolsubst_network::Network;

/// Two-level-simplifies every internal node (the SIS `simplify` step,
/// without external don't cares), then sweeps.
pub fn simplify_network(net: &mut Network) {
    let ids: Vec<_> = net.internal_ids().collect();
    for id in ids {
        let node = net.node(id);
        let cover = node.cover().expect("internal").clone();
        let fanins = node.fanins().to_vec();
        let dc = Cover::new(cover.num_vars());
        let simplified = simplify(&cover, &dc, SimplifyOptions::default());
        if simplified.literal_count() < cover.literal_count() || simplified.len() < cover.len() {
            net.replace_function(id, fanins, simplified)
                .expect("simplify preserves structure");
        }
    }
    net.sweep();
}

/// Script A: `eliminate 0; simplify` — collapses single-use nodes into
/// complex gates (which suit substitution best, per the paper) and
/// two-level-minimizes each node.
pub fn script_a(net: &mut Network) {
    net.eliminate(0);
    simplify_network(net);
}

/// Script B: Script A followed by greedy common-cube extraction (`gcx`).
pub fn script_b(net: &mut Network) {
    script_a(net);
    gcx(net, &ExtractOptions::default());
    net.sweep();
}

/// Script C: Script A followed by greedy kernel extraction (`gkx`).
pub fn script_c(net: &mut Network) {
    script_a(net);
    gkx(net, &ExtractOptions::default());
    net.sweep();
}

/// The `script.algebraic`-style flow with a pluggable resubstitution
/// callback (the paper's Table V replaces every `resub` occurrence with
/// each algorithm under test):
///
/// ```text
/// sweep; eliminate -1; simplify; eliminate -1; sweep; eliminate 5;
/// simplify; RESUB; fx; RESUB; sweep; eliminate -1; sweep; simplify
/// ```
pub fn script_algebraic_with(net: &mut Network, mut resub: impl FnMut(&mut Network)) {
    net.sweep();
    net.eliminate(-1);
    simplify_network(net);
    net.eliminate(-1);
    net.sweep();
    net.eliminate(5);
    simplify_network(net);
    resub(net);
    fx(net, &FxOptions::default());
    resub(net);
    net.sweep();
    net.eliminate(-1);
    net.sweep();
    simplify_network(net);
}

/// An all-Boolean optimization flow built from this workspace's pieces —
/// what a downstream user would actually run: prepare, substitute
/// (extended), extract, substitute again, then clean up. The `resub`
/// argument supplies the substitution step so callers can choose the
/// configuration.
pub fn script_boolean(net: &mut Network, mut resub: impl FnMut(&mut Network)) {
    net.sweep();
    net.eliminate(0);
    simplify_network(net);
    resub(net);
    fx(net, &FxOptions::default());
    gkx(net, &ExtractOptions::default());
    resub(net);
    net.sweep();
    simplify_network(net);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{ripple_adder, symmetric_rd};
    use crate::generator::{random_network, GeneratorParams};
    use boolsubst_network::random_sim_equivalent;

    fn preserves<F: FnOnce(&mut Network)>(mut net: Network, f: F) -> (usize, usize) {
        let before = net.clone();
        let lits_before = net.sop_literals();
        f(&mut net);
        net.check_invariants();
        assert!(
            random_sim_equivalent(&before, &net, 300, 0xFEED),
            "script changed the function of {}",
            before.name()
        );
        (lits_before, net.sop_literals())
    }

    #[test]
    fn script_a_preserves_and_reshapes() {
        let (_, after) = preserves(ripple_adder(4), script_a);
        assert!(after > 0);
        let (_, after) = preserves(symmetric_rd(5), script_a);
        assert!(after > 0);
    }

    #[test]
    fn script_b_and_c_preserve() {
        preserves(ripple_adder(4), script_b);
        preserves(ripple_adder(4), script_c);
        let p = GeneratorParams::default();
        preserves(random_network(7, &p), script_b);
        preserves(random_network(7, &p), script_c);
    }

    #[test]
    fn script_algebraic_with_noop_resub_preserves() {
        preserves(symmetric_rd(5), |net| script_algebraic_with(net, |_| {}));
        let p = GeneratorParams::default();
        preserves(random_network(11, &p), |net| {
            script_algebraic_with(net, |_| {});
        });
    }

    #[test]
    fn script_boolean_preserves() {
        preserves(ripple_adder(4), |net| script_boolean(net, |_| {}));
        let p = GeneratorParams::default();
        preserves(random_network(19, &p), |net| script_boolean(net, |_| {}));
    }

    #[test]
    fn simplify_reduces_redundant_cover() {
        let mut net = Network::new("red");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let f = net
            .add_node(
                "f",
                vec![a, b],
                boolsubst_cube::parse_sop(2, "ab + ab' + a'b").expect("p"),
            )
            .expect("f");
        net.add_output("f", f).expect("o");
        simplify_network(&mut net);
        assert!(net.sop_literals() <= 2);
    }
}
