//! Seeded synthetic multilevel network generator. Produces layered DAGs
//! with deliberate sharing and containment structure so Boolean
//! substitution opportunities exist (the regimes MCNC random-logic
//! circuits exercise).

use boolsubst_cube::{Cover, Cube, Lit, Phase};
use boolsubst_network::{Network, NodeId};

/// Parameters for the generator.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorParams {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of internal nodes.
    pub nodes: usize,
    /// Maximum fanins per node.
    pub max_fanin: usize,
    /// Maximum cubes per node cover.
    pub max_cubes: usize,
    /// Fraction (0–100) of nodes re-using an existing node's cube pattern
    /// with one extra literal — creating containment/sharing structure.
    pub sharing_percent: u64,
}

impl Default for GeneratorParams {
    fn default() -> GeneratorParams {
        GeneratorParams {
            inputs: 8,
            nodes: 24,
            max_fanin: 5,
            max_cubes: 4,
            sharing_percent: 40,
        }
    }
}

/// A tiny deterministic PRNG (xorshift64*), so workloads are reproducible
/// without external dependencies.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates the generator from a seed (0 is mapped to a fixed value).
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        Rng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Generates a random layered network. Deterministic in `(seed, params)`.
///
/// # Panics
///
/// Panics if the parameters are degenerate (no inputs or nodes).
#[must_use]
pub fn random_network(seed: u64, params: &GeneratorParams) -> Network {
    assert!(
        params.inputs >= 2 && params.nodes >= 1,
        "degenerate parameters"
    );
    let mut rng = Rng::new(seed);
    let mut net = Network::new(format!("rnd{seed}"));
    let mut pool: Vec<NodeId> = (0..params.inputs)
        .map(|i| net.add_input(format!("x{i}")).expect("input"))
        .collect();
    let mut internal: Vec<NodeId> = Vec::new();

    for k in 0..params.nodes {
        // Choose distinct fanins, biased towards recent nodes for depth.
        let arity = 2 + rng.below(params.max_fanin.saturating_sub(1).max(1));
        let mut fanins: Vec<NodeId> = Vec::new();
        while fanins.len() < arity.min(pool.len()) {
            let idx = if rng.below(100) < 50 && pool.len() > params.inputs {
                params.inputs + rng.below(pool.len() - params.inputs)
            } else {
                rng.below(pool.len())
            };
            let cand = pool[idx];
            if !fanins.contains(&cand) {
                fanins.push(cand);
            }
        }
        let n = fanins.len();

        // Build the cover.
        let cubes = 1 + rng.below(params.max_cubes);
        let mut cover = Cover::new(n);
        for _ in 0..cubes {
            let mut cube = Cube::universe(n);
            let lits = 1 + rng.below(n);
            for _ in 0..lits {
                let v = rng.below(n);
                let phase = if rng.below(100) < 35 {
                    Phase::Neg
                } else {
                    Phase::Pos
                };
                cube.restrict(Lit { var: v, phase });
            }
            if !cube.is_empty() {
                cover.push(cube);
            }
        }
        // Sharing structure: sometimes append a specialization of an
        // existing cube (same literals + one extra), creating containment
        // pairs that Boolean division feeds on.
        if (rng.below(100) as u64) < params.sharing_percent && !cover.is_empty() {
            let base = cover.cubes()[rng.below(cover.len())].clone();
            let mut special = base;
            special.restrict(Lit {
                var: rng.below(n),
                phase: if rng.below(2) == 0 {
                    Phase::Pos
                } else {
                    Phase::Neg
                },
            });
            if !special.is_empty() {
                cover.push(special);
            }
        }
        cover.remove_contained_cubes();
        if cover.is_empty() {
            cover.push(Cube::from_lits(n, &[Lit::pos(0)]));
        }
        let id = net
            .add_node(format!("n{k}"), fanins, cover)
            .expect("generated node");
        pool.push(id);
        internal.push(id);
    }

    // Outputs: the sinks (no fanout) plus a few random internal nodes.
    let fanouts = net.fanouts();
    let mut out_count = 0;
    for &id in &internal {
        if fanouts[id.index()].is_empty() {
            net.add_output(format!("z{out_count}"), id).expect("output");
            out_count += 1;
        }
    }
    if out_count == 0 {
        let id = *internal.last().expect("nonempty");
        net.add_output("z0", id).expect("output");
    }
    net
}

/// Parameters for [`planted_network`].
#[derive(Debug, Clone, Copy)]
pub struct PlantedParams {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of hidden divisor expressions to plant.
    pub hidden: usize,
    /// Number of target nodes embedding a hidden divisor.
    pub targets: usize,
    /// Extra cubes appended to each *materialized* divisor node, so that
    /// only extended division (divisor decomposition) can exploit it.
    pub divisor_extra_cubes: usize,
}

impl Default for PlantedParams {
    fn default() -> PlantedParams {
        PlantedParams {
            inputs: 10,
            hidden: 3,
            targets: 8,
            divisor_extra_cubes: 1,
        }
    }
}

fn random_cube(rng: &mut Rng, n: usize, min_lits: usize, max_lits: usize) -> Cube {
    loop {
        let mut cube = Cube::universe(n);
        let lits = min_lits + rng.below(max_lits - min_lits + 1);
        for _ in 0..lits {
            let phase = if rng.below(100) < 30 {
                Phase::Neg
            } else {
                Phase::Pos
            };
            cube.restrict(Lit {
                var: rng.below(n),
                phase,
            });
        }
        if !cube.is_empty() && cube.literal_count() >= min_lits {
            return cube;
        }
    }
}

/// Generates a network with *planted Boolean substitution opportunities*:
/// hidden expressions `H_j` are embedded (flattened) inside target nodes
/// as `f = H_j·q1 + H_j·q2 + noise`, while separate divisor nodes carry
/// `H_j` — optionally padded with extra cubes so only the paper's
/// *extended* division (divisor decomposition) can recover the share.
/// Deterministic in `(seed, params)`.
///
/// # Panics
///
/// Panics on degenerate parameters.
#[must_use]
pub fn planted_network(seed: u64, params: &PlantedParams) -> Network {
    assert!(params.inputs >= 4 && params.hidden >= 1 && params.targets >= 1);
    let mut rng = Rng::new(seed.wrapping_mul(0x517C_C1B7_2722_0A95) | 1);
    let n = params.inputs;
    let mut net = Network::new(format!("plant{seed}"));
    let pis: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("x{i}")).expect("input"))
        .collect();

    // Hidden expressions: 2-3 cubes over the PIs.
    let hidden: Vec<Cover> = (0..params.hidden)
        .map(|_| {
            let mut cover = Cover::new(n);
            let cubes = 2 + rng.below(2);
            while cover.len() < cubes {
                cover.push(random_cube(&mut rng, n, 1, 3));
                cover.remove_contained_cubes();
            }
            cover
        })
        .collect();

    // Materialized divisor nodes: H_j (+ padding cubes).
    for (j, h) in hidden.iter().enumerate() {
        let mut cover = h.clone();
        for _ in 0..params.divisor_extra_cubes {
            cover.push(random_cube(&mut rng, n, 2, 3));
        }
        cover.remove_contained_cubes();
        let support = cover.support();
        let fanins: Vec<NodeId> = support.iter().map(|&v| pis[v]).collect();
        let mut map = vec![0usize; n];
        for (k, &v) in support.iter().enumerate() {
            map[v] = k;
        }
        let local = cover.remapped(fanins.len(), &map);
        let id = net
            .add_node(format!("d{j}"), fanins, local)
            .expect("divisor node");
        net.add_output(format!("d{j}"), id).expect("divisor output");
    }

    // Target nodes: flattened H_j·q1 + H_j·q2 + noise.
    for t in 0..params.targets {
        let h = &hidden[rng.below(hidden.len())];
        let mut cover = Cover::new(n);
        let quotient_cubes = 1 + rng.below(2);
        for _ in 0..quotient_cubes {
            let q = random_cube(&mut rng, n, 1, 2);
            for hc in h.cubes() {
                cover.push(hc.and(&q));
            }
        }
        if rng.below(100) < 60 {
            cover.push(random_cube(&mut rng, n, 2, 4)); // remainder noise
        }
        cover.remove_contained_cubes();
        if cover.is_empty() {
            cover.push(random_cube(&mut rng, n, 1, 2));
        }
        let support = cover.support();
        let fanins: Vec<NodeId> = support.iter().map(|&v| pis[v]).collect();
        let mut map = vec![0usize; n];
        for (k, &v) in support.iter().enumerate() {
            map[v] = k;
        }
        let local = cover.remapped(fanins.len(), &map);
        let id = net
            .add_node(format!("f{t}"), fanins, local)
            .expect("target node");
        net.add_output(format!("f{t}"), id).expect("target output");
    }
    net
}

/// A deterministic batch of generated circuits for the tables.
#[must_use]
pub fn generated_suite() -> Vec<Network> {
    let mut out = Vec::new();
    for (seed, inputs, nodes) in [
        (1u64, 8usize, 20usize),
        (2, 10, 30),
        (3, 12, 40),
        (5, 9, 26),
        (8, 14, 48),
        (13, 11, 36),
    ] {
        let params = GeneratorParams {
            inputs,
            nodes,
            ..GeneratorParams::default()
        };
        out.push(random_network(seed, &params));
    }
    for (seed, inputs, targets, extra) in [
        (21u64, 10usize, 8usize, 0usize),
        (22, 12, 10, 1),
        (23, 12, 12, 1),
        (24, 14, 12, 2),
    ] {
        let params = PlantedParams {
            inputs,
            targets,
            divisor_extra_cubes: extra,
            ..PlantedParams::default()
        };
        out.push(planted_network(seed, &params));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = GeneratorParams::default();
        let a = random_network(42, &p);
        let b = random_network(42, &p);
        assert_eq!(
            boolsubst_network::write_blif(&a),
            boolsubst_network::write_blif(&b)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let p = GeneratorParams::default();
        let a = random_network(1, &p);
        let b = random_network(2, &p);
        assert_ne!(
            boolsubst_network::write_blif(&a),
            boolsubst_network::write_blif(&b)
        );
    }

    #[test]
    fn planted_networks_are_valid_and_deterministic() {
        let p = PlantedParams::default();
        let a = planted_network(9, &p);
        let b = planted_network(9, &p);
        a.check_invariants();
        assert_eq!(
            boolsubst_network::write_blif(&a),
            boolsubst_network::write_blif(&b)
        );
        assert!(a.outputs().len() >= p.hidden + p.targets);
    }

    #[test]
    fn generated_networks_are_valid() {
        for net in generated_suite() {
            net.check_invariants();
            assert!(!net.outputs().is_empty());
            assert!(net.sop_literals() > 0);
        }
    }
}
