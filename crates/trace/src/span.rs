//! The span/event data model: what one traced substitution run is made of.

/// The engine's pipeline stages, matching the five stage-nanos counters of
/// the aggregate stats block. Histogram samples and per-pair attribution
/// both use this axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Target ordering and candidate enumeration (outside pair spans).
    Enumerate,
    /// The cheap per-pair structural/cycle/size filters.
    Filter,
    /// Simulation-signature work: screening, pool refinement, patching.
    Sim,
    /// Division proper: proofs, RAR/ATPG checks, gain evaluation.
    Divide,
    /// Side-table and signature patching after an accepted rewrite.
    Apply,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Enumerate,
        Stage::Filter,
        Stage::Sim,
        Stage::Divide,
        Stage::Apply,
    ];

    /// Stable lowercase label used by both exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Enumerate => "enumerate",
            Stage::Filter => "filter",
            Stage::Sim => "sim",
            Stage::Divide => "divide",
            Stage::Apply => "apply",
        }
    }

    /// Dense index into per-stage arrays (`0..Stage::ALL.len()`).
    #[must_use]
    pub fn idx(self) -> usize {
        match self {
            Stage::Enumerate => 0,
            Stage::Filter => 1,
            Stage::Sim => 2,
            Stage::Divide => 3,
            Stage::Apply => 4,
        }
    }
}

/// How one (target, divisor) pair attempt ended. Covers every reject
/// reason counted by the engine's stats block plus the three acceptance
/// kinds, so a funnel over outcomes reconciles exactly with the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Accepted: SOP division (direct or by the divisor's complement).
    AcceptedSop,
    /// Accepted: product-of-sums-form substitution.
    AcceptedPos,
    /// Accepted: extended division decomposed the divisor.
    AcceptedExtended,
    /// Rejected by the self-pair/existing-fanin structural filter.
    RejectedStructural,
    /// Rejected: the divisor lies in the target's transitive fanout.
    RejectedTfo,
    /// Rejected by the divisor cube-count bound.
    RejectedDivisorSize,
    /// Rejected by the joint-variable-space bound.
    RejectedJointSpace,
    /// Rejected by the support-overlap filter (legacy sweep only — the
    /// engine's candidate index implies overlap; kept for completeness).
    RejectedSupport,
    /// Rejected purely by simulation-signature witnesses, no proof ran.
    RejectedSimRefuted,
    /// Survived every filter but no division strategy produced gain.
    RejectedNoGain,
    /// Accepted by division but refuted by the post-apply guard pipeline;
    /// the rewrite was rolled back and the pair quarantined.
    GuardRejected,
    /// The per-pair work panicked (or corrupted state was detected); the
    /// move was rolled back and the pair quarantined.
    EngineFault,
}

impl Outcome {
    /// Every outcome, acceptance kinds first.
    pub const ALL: [Outcome; 12] = [
        Outcome::AcceptedSop,
        Outcome::AcceptedPos,
        Outcome::AcceptedExtended,
        Outcome::RejectedStructural,
        Outcome::RejectedTfo,
        Outcome::RejectedDivisorSize,
        Outcome::RejectedJointSpace,
        Outcome::RejectedSupport,
        Outcome::RejectedSimRefuted,
        Outcome::RejectedNoGain,
        Outcome::GuardRejected,
        Outcome::EngineFault,
    ];

    /// Number of distinct outcomes (`Outcome::ALL.len()`).
    pub const COUNT: usize = Outcome::ALL.len();

    /// Stable snake_case label used by both exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Outcome::AcceptedSop => "accept_sop",
            Outcome::AcceptedPos => "accept_pos",
            Outcome::AcceptedExtended => "accept_extended",
            Outcome::RejectedStructural => "reject_structural",
            Outcome::RejectedTfo => "reject_tfo",
            Outcome::RejectedDivisorSize => "reject_divisor_size",
            Outcome::RejectedJointSpace => "reject_joint_space",
            Outcome::RejectedSupport => "reject_support",
            Outcome::RejectedSimRefuted => "reject_sim_refuted",
            Outcome::RejectedNoGain => "reject_no_gain",
            Outcome::GuardRejected => "guard_rejected",
            Outcome::EngineFault => "engine_fault",
        }
    }

    /// Inverse of [`Outcome::name`] (exporter tests, the CI validator).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Outcome> {
        Outcome::ALL.into_iter().find(|o| o.name() == name)
    }

    /// Whether the pair was accepted (a rewrite was applied).
    #[must_use]
    pub fn accepted(self) -> bool {
        matches!(
            self,
            Outcome::AcceptedSop | Outcome::AcceptedPos | Outcome::AcceptedExtended
        )
    }

    /// Dense index into per-outcome arrays (`0..Outcome::COUNT`).
    #[must_use]
    pub fn idx(self) -> usize {
        match self {
            Outcome::AcceptedSop => 0,
            Outcome::AcceptedPos => 1,
            Outcome::AcceptedExtended => 2,
            Outcome::RejectedStructural => 3,
            Outcome::RejectedTfo => 4,
            Outcome::RejectedDivisorSize => 5,
            Outcome::RejectedJointSpace => 6,
            Outcome::RejectedSupport => 7,
            Outcome::RejectedSimRefuted => 8,
            Outcome::RejectedNoGain => 9,
            Outcome::GuardRejected => 10,
            Outcome::EngineFault => 11,
        }
    }
}

/// Per-stage nanosecond attribution of one pair span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageNanos {
    /// Candidate-enumeration time (usually 0 inside a pair span).
    pub enumerate: u64,
    /// Cheap filter time.
    pub filter: u64,
    /// Simulation screen/refine/patch time.
    pub sim: u64,
    /// Division/proof time (simulation screen time already subtracted).
    pub divide: u64,
    /// Post-acceptance side-table patch time.
    pub apply: u64,
}

impl StageNanos {
    /// Adds `ns` to the given stage, saturating.
    pub fn add(&mut self, stage: Stage, ns: u64) {
        let slot = match stage {
            Stage::Enumerate => &mut self.enumerate,
            Stage::Filter => &mut self.filter,
            Stage::Sim => &mut self.sim,
            Stage::Divide => &mut self.divide,
            Stage::Apply => &mut self.apply,
        };
        *slot = slot.saturating_add(ns);
    }

    /// Reads one stage's nanos.
    #[must_use]
    pub fn get(self, stage: Stage) -> u64 {
        match stage {
            Stage::Enumerate => self.enumerate,
            Stage::Filter => self.filter,
            Stage::Sim => self.sim,
            Stage::Divide => self.divide,
            Stage::Apply => self.apply,
        }
    }

    /// Sum over all stages, saturating.
    #[must_use]
    pub fn total(self) -> u64 {
        Stage::ALL
            .into_iter()
            .fold(0u64, |acc, s| acc.saturating_add(self.get(s)))
    }
}

/// One traced (target, divisor) attempt: where the time went and how the
/// pair was disposed of. Timestamps are nanoseconds relative to the
/// tracer's epoch (its construction instant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairSpan {
    /// 1-based sweep pass the attempt ran in.
    pub pass: u32,
    /// Target node id (raw slot index).
    pub target: u32,
    /// Divisor node id (raw slot index).
    pub divisor: u32,
    /// Span start, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// Wall-clock span duration (includes untimed gaps such as GDC
    /// shadow-snapshot builds, so it can exceed the stage sum).
    pub dur_ns: u64,
    /// Per-stage attribution.
    pub stages: StageNanos,
    /// How the attempt ended.
    pub outcome: Outcome,
    /// Factored-literal gain of the accepted rewrite (0 on rejects).
    pub gain: i64,
    /// RAR/ATPG fault checks the GDC-mode division ran for this pair.
    pub rar_checks: u64,
    /// Sweep lane the attempt ran on: `0` for live (sequential or
    /// committer) attempts, `w + 1` for a span replayed from
    /// speculative worker `w`. Chrome export maps lanes to named
    /// threads.
    pub worker: u32,
}

/// One sweep pass over all targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassSpan {
    /// 1-based pass number.
    pub pass: u32,
    /// Pass start, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// Pass duration.
    pub dur_ns: u64,
    /// Pair attempts examined during the pass.
    pub pairs: u64,
    /// Substitutions accepted during the pass.
    pub substitutions: u64,
    /// Factored-literal gain accumulated during the pass.
    pub literal_gain: i64,
}

/// Which guard tier produced a verdict. Mirrors the guard crate's
/// decision taxonomy without depending on it (trace sits below guard in
/// the crate graph, so the engine maps decisions to this enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuardTier {
    /// Tier A: word-parallel simulation signatures (exhaustive or pool).
    Sim,
    /// Tier B: shared-manager BDD compare.
    Bdd,
    /// Tier C: Tseitin miter + CDCL under a conflict budget.
    Sat,
    /// No exact tier had budget; the verdict rests on the sampled pool.
    Sampled,
}

impl GuardTier {
    /// Every tier, in escalation order.
    pub const ALL: [GuardTier; 4] = [
        GuardTier::Sim,
        GuardTier::Bdd,
        GuardTier::Sat,
        GuardTier::Sampled,
    ];

    /// Stable lowercase label used by both exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GuardTier::Sim => "sim",
            GuardTier::Bdd => "bdd",
            GuardTier::Sat => "sat",
            GuardTier::Sampled => "sampled",
        }
    }

    /// Inverse of [`GuardTier::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<GuardTier> {
        GuardTier::ALL.into_iter().find(|t| t.name() == name)
    }

    /// Dense index into per-tier arrays (`0..GuardTier::ALL.len()`).
    #[must_use]
    pub fn idx(self) -> usize {
        match self {
            GuardTier::Sim => 0,
            GuardTier::Bdd => 1,
            GuardTier::Sat => 2,
            GuardTier::Sampled => 3,
        }
    }
}

/// Everything the ring buffer records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A completed sweep pass.
    Pass(PassSpan),
    /// A completed pair attempt.
    Pair(PairSpan),
    /// A GDC shadow-circuit snapshot was built from scratch.
    ShadowBuild {
        /// Pass the build happened in.
        pass: u32,
        /// Target whose cone was excluded from the snapshot.
        target: u32,
        /// Build start, nanoseconds since the tracer epoch.
        start_ns: u64,
        /// Build duration.
        dur_ns: u64,
    },
    /// A counterexample-refinement attempt after a sim-filter false pass.
    SimRefine {
        /// Pass the refinement happened in.
        pass: u32,
        /// Target of the falsely passed pair.
        target: u32,
        /// Divisor of the falsely passed pair.
        divisor: u32,
        /// Attempt start, nanoseconds since the tracer epoch.
        start_ns: u64,
        /// Attempt duration.
        dur_ns: u64,
        /// Whether a harvested pattern actually grew the pool.
        grew: bool,
    },
    /// A post-apply guard check of an accepted rewrite (checked mode).
    Guard {
        /// Pass the check happened in.
        pass: u32,
        /// Target of the guarded rewrite.
        target: u32,
        /// Divisor of the guarded rewrite.
        divisor: u32,
        /// Tier that produced the verdict.
        tier: GuardTier,
        /// Whether the rewrite was allowed to stand.
        passed: bool,
        /// Whether the verdict is a proof (vs. a sampled pass).
        exact: bool,
        /// Check start, nanoseconds since the tracer epoch.
        start_ns: u64,
        /// Check duration.
        dur_ns: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_names_roundtrip() {
        for o in Outcome::ALL {
            assert_eq!(Outcome::from_name(o.name()), Some(o));
        }
        assert_eq!(Outcome::from_name("nope"), None);
    }

    #[test]
    fn outcome_indices_are_dense_and_unique() {
        let mut seen = [false; Outcome::COUNT];
        for o in Outcome::ALL {
            assert!(!seen[o.idx()], "duplicate index for {o:?}");
            seen[o.idx()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn stage_nanos_attribution() {
        let mut s = StageNanos::default();
        s.add(Stage::Sim, 5);
        s.add(Stage::Sim, 7);
        s.add(Stage::Divide, 100);
        assert_eq!(s.get(Stage::Sim), 12);
        assert_eq!(s.total(), 112);
        s.add(Stage::Apply, u64::MAX);
        assert_eq!(s.total(), u64::MAX, "total saturates");
    }
}
