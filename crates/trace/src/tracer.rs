//! The recording handle the engine threads through as `Option<&mut Tracer>`.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::time::Instant;

use crate::hist::LatencyHistogram;
use crate::report::TraceReport;
use crate::span::{GuardTier, Outcome, PairSpan, PassSpan, Stage, StageNanos, TraceEvent};

/// One pair attempt measured off-thread by a parallel-sweep worker.
///
/// Workers cannot share the single [`Tracer`] (it is deliberately
/// `&mut`-threaded), so they buffer these per-worker and the committer
/// replays the records of *committed* pairs — in commit order — via
/// [`Tracer::record_pair`]. The replayed span lands in every aggregate
/// exactly like a live one; only `start_ns` is synthesised (commit time
/// minus the measured duration), since the worker clock is not the
/// tracer's epoch clock.
#[derive(Debug, Clone, Copy)]
pub struct PairRecord {
    /// Target node id (compact u32 form).
    pub target: u32,
    /// Divisor node id (compact u32 form).
    pub divisor: u32,
    /// Wall-clock duration of the attempt as measured on the worker.
    pub dur_ns: u64,
    /// Per-stage attribution measured on the worker.
    pub stages: StageNanos,
    /// The decided outcome.
    pub outcome: Outcome,
    /// Realised factored-literal gain (0 for rejects).
    pub gain: i64,
    /// RAR/ATPG fault checks run by this attempt.
    pub rar_checks: u64,
    /// Index of the sweep worker that measured the attempt (0 = the
    /// committer's inline drain).
    pub worker: u32,
}

/// Bounds on what a [`Tracer`] retains.
#[derive(Debug, Clone, Copy)]
pub struct TracerConfig {
    /// Maximum events kept in the ring buffer; older events are dropped
    /// (aggregates stay exact regardless).
    pub ring_capacity: usize,
    /// How many slowest pair spans to retain.
    pub top_k: usize,
    /// How many hottest targets [`Tracer::hot_targets`] returns.
    pub hot_targets: usize,
}

impl Default for TracerConfig {
    fn default() -> TracerConfig {
        TracerConfig {
            ring_capacity: 1 << 16,
            top_k: 16,
            hot_targets: 10,
        }
    }
}

/// Per-target aggregate across every pair attempt that targeted it.
#[derive(Debug, Clone, Copy, Default)]
pub struct TargetAgg {
    /// Pair attempts with this node as the target.
    pub pairs: u64,
    /// Accepted rewrites onto this target.
    pub accepts: u64,
    /// Total wall-clock nanos spent on this target's pairs.
    pub dur_ns: u64,
    /// Total factored-literal gain realised on this target.
    pub gain: i64,
}

/// Records one traced substitution run: a bounded event ring plus exact
/// aggregates (stage/outcome/pair histograms, outcome funnel, top-K
/// slowest pairs, per-target heat, shadow-build and sim-refinement
/// counters).
///
/// All timestamps are nanoseconds since the tracer's construction
/// instant (its *epoch*). The tracer never touches the network being
/// optimized; attaching one cannot change results.
#[derive(Debug)]
pub struct Tracer {
    config: TracerConfig,
    epoch: Instant,
    mode: String,
    discovery: Option<String>,
    names: Vec<String>,
    ring: VecDeque<TraceEvent>,
    dropped: u64,
    stage_hist: [LatencyHistogram; Stage::ALL.len()],
    outcome_hist: [LatencyHistogram; Outcome::COUNT],
    pair_hist: LatencyHistogram,
    outcome_counts: [u64; Outcome::COUNT],
    pairs: u64,
    slowest: Vec<PairSpan>,
    per_target: HashMap<u32, TargetAgg>,
    passes: Vec<PassSpan>,
    cur: Option<PairSpan>,
    noted: Option<Outcome>,
    cur_pass: u32,
    pass_start_ns: u64,
    pass_pairs: u64,
    shadow_builds: u64,
    shadow_ns: u64,
    refine_attempts: u64,
    refine_grew: u64,
    refine_ns: u64,
    guard_checks: u64,
    guard_tier_counts: [u64; GuardTier::ALL.len()],
    guard_ns: u64,
}

impl Tracer {
    /// A tracer with default bounds, labelled with the mode it records
    /// (e.g. `"basic"`, `"ext"`, `"ext-gdc"`).
    #[must_use]
    pub fn new(mode: &str) -> Tracer {
        Tracer::with_config(mode, TracerConfig::default())
    }

    /// A tracer with explicit bounds.
    #[must_use]
    pub fn with_config(mode: &str, config: TracerConfig) -> Tracer {
        Tracer {
            config,
            epoch: Instant::now(),
            mode: mode.to_string(),
            discovery: None,
            names: Vec::new(),
            ring: VecDeque::new(),
            dropped: 0,
            stage_hist: std::array::from_fn(|_| LatencyHistogram::new()),
            outcome_hist: std::array::from_fn(|_| LatencyHistogram::new()),
            pair_hist: LatencyHistogram::new(),
            outcome_counts: [0; Outcome::COUNT],
            pairs: 0,
            slowest: Vec::new(),
            per_target: HashMap::new(),
            passes: Vec::new(),
            cur: None,
            noted: None,
            cur_pass: 0,
            pass_start_ns: 0,
            pass_pairs: 0,
            shadow_builds: 0,
            shadow_ns: 0,
            refine_attempts: 0,
            refine_grew: 0,
            refine_ns: 0,
            guard_checks: 0,
            guard_tier_counts: [0; GuardTier::ALL.len()],
            guard_ns: 0,
        }
    }

    /// The mode label this tracer was built with.
    #[must_use]
    pub fn mode(&self) -> &str {
        &self.mode
    }

    /// Labels the run with the resolved divisor-discovery strategy
    /// (`"overlap"`, `"signature"`); exported in the JSONL meta line.
    pub fn set_discovery(&mut self, name: &str) {
        self.discovery = Some(name.to_string());
    }

    /// The discovery label, when the engine set one.
    #[must_use]
    pub fn discovery(&self) -> Option<&str> {
        self.discovery.as_deref()
    }

    /// Nanoseconds since the tracer epoch.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Installs a node-id → name table (index = raw slot id). Used by the
    /// Chrome exporter and the report to label targets/divisors.
    pub fn set_node_names(&mut self, names: Vec<String>) {
        self.names = names;
    }

    /// The display name for a node id; falls back to `#id`.
    #[must_use]
    pub fn node_name(&self, id: u32) -> String {
        match self.names.get(id as usize) {
            Some(n) if !n.is_empty() => n.clone(),
            _ => format!("#{id}"),
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.ring.len() >= self.config.ring_capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Marks the start of sweep pass `pass` (1-based).
    pub fn begin_pass(&mut self, pass: u32) {
        self.cur_pass = pass;
        self.pass_start_ns = self.now_ns();
        self.pass_pairs = 0;
    }

    /// Completes the current pass with its accepted-substitution count
    /// and literal gain.
    pub fn end_pass(&mut self, substitutions: u64, literal_gain: i64) {
        let start_ns = self.pass_start_ns;
        let span = PassSpan {
            pass: self.cur_pass,
            start_ns,
            dur_ns: self.now_ns().saturating_sub(start_ns),
            pairs: self.pass_pairs,
            substitutions,
            literal_gain,
        };
        self.passes.push(span.clone());
        self.push(TraceEvent::Pass(span));
    }

    /// Opens a pair span for (`target`, `divisor`).
    pub fn begin_pair(&mut self, target: u32, divisor: u32) {
        self.cur = Some(PairSpan {
            pass: self.cur_pass,
            target,
            divisor,
            start_ns: self.now_ns(),
            dur_ns: 0,
            stages: Default::default(),
            outcome: Outcome::RejectedNoGain,
            gain: 0,
            rar_checks: 0,
            worker: 0,
        });
        self.noted = None;
    }

    /// Attributes `ns` to `stage`: always sampled into the per-stage
    /// histogram, and also onto the open pair span if one exists.
    pub fn stage(&mut self, stage: Stage, ns: u64) {
        self.stage_hist[stage.idx()].record(ns);
        if let Some(cur) = self.cur.as_mut() {
            cur.stages.add(stage, ns);
        }
    }

    /// Records the outcome the division core decided on; consumed by the
    /// next [`Tracer::end_pair`].
    pub fn note_outcome(&mut self, outcome: Outcome) {
        self.noted = Some(outcome);
    }

    /// Sets the open pair's RAR/ATPG fault-check count.
    pub fn set_rar_checks(&mut self, checks: u64) {
        if let Some(cur) = self.cur.as_mut() {
            cur.rar_checks = checks;
        }
    }

    /// Closes the open pair span with the outcome noted since
    /// [`Tracer::begin_pair`] (default: no-gain reject) and the realised
    /// literal gain. No-op when no span is open.
    pub fn end_pair(&mut self, gain: i64) {
        let outcome = self.noted.take().unwrap_or(Outcome::RejectedNoGain);
        self.finish_pair(outcome, gain);
    }

    /// Closes the open pair span with an explicit outcome, overriding
    /// anything noted (used by the engine's early filter rejects).
    pub fn end_pair_with(&mut self, outcome: Outcome, gain: i64) {
        self.noted = None;
        self.finish_pair(outcome, gain);
    }

    fn finish_pair(&mut self, outcome: Outcome, gain: i64) {
        let Some(mut span) = self.cur.take() else {
            return;
        };
        span.dur_ns = self.now_ns().saturating_sub(span.start_ns);
        span.outcome = outcome;
        span.gain = gain;
        self.aggregate_pair(span);
    }

    /// Replays one worker-measured [`PairRecord`] into this tracer, as if
    /// the pair had been traced live: per-stage histograms, outcome
    /// funnel, per-target heat, top-K, and the event ring all see it.
    /// Call in commit order so exported spans read like the equivalent
    /// sequential run.
    pub fn record_pair(&mut self, rec: &PairRecord) {
        for stage in Stage::ALL {
            let ns = rec.stages.get(stage);
            if ns > 0 {
                self.stage_hist[stage.idx()].record(ns);
            }
        }
        let span = PairSpan {
            pass: self.cur_pass,
            target: rec.target,
            divisor: rec.divisor,
            start_ns: self.now_ns().saturating_sub(rec.dur_ns),
            dur_ns: rec.dur_ns,
            stages: rec.stages,
            outcome: rec.outcome,
            gain: rec.gain,
            rar_checks: rec.rar_checks,
            worker: rec.worker + 1,
        };
        self.aggregate_pair(span);
    }

    fn aggregate_pair(&mut self, span: PairSpan) {
        let outcome = span.outcome;
        let gain = span.gain;
        self.pairs += 1;
        self.pass_pairs += 1;
        self.pair_hist.record(span.dur_ns);
        self.outcome_counts[outcome.idx()] += 1;
        self.outcome_hist[outcome.idx()].record(span.dur_ns);

        let agg = self.per_target.entry(span.target).or_default();
        agg.pairs += 1;
        agg.dur_ns = agg.dur_ns.saturating_add(span.dur_ns);
        if outcome.accepted() {
            agg.accepts += 1;
            agg.gain += gain;
        }

        // Keep the top-K slowest pairs, sorted by descending duration.
        let pos = self.slowest.partition_point(|s| s.dur_ns >= span.dur_ns);
        if pos < self.config.top_k {
            self.slowest.insert(pos, span.clone());
            self.slowest.truncate(self.config.top_k);
        }

        self.push(TraceEvent::Pair(span));
    }

    /// Records a from-scratch GDC shadow-circuit snapshot build.
    pub fn shadow_build(&mut self, target: u32, dur_ns: u64) {
        self.shadow_builds += 1;
        self.shadow_ns = self.shadow_ns.saturating_add(dur_ns);
        let start_ns = self.now_ns().saturating_sub(dur_ns);
        self.push(TraceEvent::ShadowBuild {
            pass: self.cur_pass,
            target,
            start_ns,
            dur_ns,
        });
    }

    /// Records a counterexample-refinement attempt after a simulation
    /// false pass; `grew` says whether the pattern pool actually grew.
    pub fn sim_refine(&mut self, target: u32, divisor: u32, grew: bool, dur_ns: u64) {
        self.refine_attempts += 1;
        if grew {
            self.refine_grew += 1;
        }
        self.refine_ns = self.refine_ns.saturating_add(dur_ns);
        let start_ns = self.now_ns().saturating_sub(dur_ns);
        self.push(TraceEvent::SimRefine {
            pass: self.cur_pass,
            target,
            divisor,
            start_ns,
            dur_ns,
            grew,
        });
    }

    /// Records one post-apply guard check of an accepted rewrite
    /// (checked mode): which tier decided, whether the rewrite stood,
    /// and whether the verdict was a proof.
    pub fn guard_check(
        &mut self,
        target: u32,
        divisor: u32,
        tier: GuardTier,
        passed: bool,
        exact: bool,
        dur_ns: u64,
    ) {
        self.guard_checks += 1;
        self.guard_tier_counts[tier.idx()] += 1;
        self.guard_ns = self.guard_ns.saturating_add(dur_ns);
        let start_ns = self.now_ns().saturating_sub(dur_ns);
        self.push(TraceEvent::Guard {
            pass: self.cur_pass,
            target,
            divisor,
            tier,
            passed,
            exact,
            start_ns,
            dur_ns,
        });
    }

    /// `(checks, total_ns)` of post-apply guard checks.
    #[must_use]
    pub fn guard_stats(&self) -> (u64, u64) {
        (self.guard_checks, self.guard_ns)
    }

    /// How many guard checks were decided by `tier`.
    #[must_use]
    pub fn guard_tier_count(&self, tier: GuardTier) -> u64 {
        self.guard_tier_counts[tier.idx()]
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Events evicted from the ring because it was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total pair spans recorded (not bounded by the ring).
    #[must_use]
    pub fn pairs(&self) -> u64 {
        self.pairs
    }

    /// Completed pass summaries, in order.
    #[must_use]
    pub fn pass_summaries(&self) -> &[PassSpan] {
        &self.passes
    }

    /// How many pairs ended with `outcome`.
    #[must_use]
    pub fn outcome_count(&self, outcome: Outcome) -> u64 {
        self.outcome_counts[outcome.idx()]
    }

    /// The full outcome funnel as `(outcome, count)`, acceptance first,
    /// zero-count outcomes included.
    #[must_use]
    pub fn funnel(&self) -> Vec<(Outcome, u64)> {
        Outcome::ALL
            .into_iter()
            .map(|o| (o, self.outcome_counts[o.idx()]))
            .collect()
    }

    /// Latency histogram of one pipeline stage.
    #[must_use]
    pub fn stage_histogram(&self, stage: Stage) -> &LatencyHistogram {
        &self.stage_hist[stage.idx()]
    }

    /// Latency histogram of pairs that ended with `outcome`.
    #[must_use]
    pub fn outcome_histogram(&self, outcome: Outcome) -> &LatencyHistogram {
        &self.outcome_hist[outcome.idx()]
    }

    /// Wall-clock latency histogram over all pair spans.
    #[must_use]
    pub fn pair_histogram(&self) -> &LatencyHistogram {
        &self.pair_hist
    }

    /// The top-K slowest pair spans, slowest first.
    #[must_use]
    pub fn slowest_pairs(&self) -> &[PairSpan] {
        &self.slowest
    }

    /// The hottest targets by total wall-clock time, hottest first,
    /// bounded by the configured count.
    #[must_use]
    pub fn hot_targets(&self) -> Vec<(u32, TargetAgg)> {
        let mut v: Vec<(u32, TargetAgg)> = self
            .per_target
            .iter()
            .map(|(&id, &agg)| (id, agg))
            .collect();
        v.sort_by(|a, b| b.1.dur_ns.cmp(&a.1.dur_ns).then(a.0.cmp(&b.0)));
        v.truncate(self.config.hot_targets);
        v
    }

    /// `(builds, total_ns)` of from-scratch GDC shadow snapshots.
    #[must_use]
    pub fn shadow_stats(&self) -> (u64, u64) {
        (self.shadow_builds, self.shadow_ns)
    }

    /// `(attempts, grew, total_ns)` of sim counterexample refinements.
    #[must_use]
    pub fn refine_stats(&self) -> (u64, u64, u64) {
        (self.refine_attempts, self.refine_grew, self.refine_ns)
    }

    /// A human-readable report borrowing this tracer.
    #[must_use]
    pub fn report(&self) -> TraceReport<'_> {
        TraceReport::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pair(t: &mut Tracer, target: u32, divisor: u32, outcome: Outcome, gain: i64) {
        t.begin_pair(target, divisor);
        t.stage(Stage::Filter, 10);
        t.stage(Stage::Divide, 100);
        if outcome == Outcome::RejectedNoGain {
            t.end_pair(gain);
        } else {
            t.note_outcome(outcome);
            t.end_pair(gain);
        }
    }

    #[test]
    fn records_pairs_and_funnel() {
        let mut t = Tracer::new("basic");
        t.begin_pass(1);
        run_pair(&mut t, 3, 5, Outcome::AcceptedSop, 2);
        run_pair(&mut t, 3, 6, Outcome::RejectedNoGain, 0);
        run_pair(&mut t, 4, 5, Outcome::RejectedSimRefuted, 0);
        t.end_pass(1, 2);

        assert_eq!(t.pairs(), 3);
        assert_eq!(t.outcome_count(Outcome::AcceptedSop), 1);
        assert_eq!(t.outcome_count(Outcome::RejectedNoGain), 1);
        assert_eq!(t.outcome_count(Outcome::RejectedSimRefuted), 1);
        let total: u64 = t.funnel().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3);
        assert_eq!(t.stage_histogram(Stage::Filter).count(), 3);
        assert_eq!(t.pair_histogram().count(), 3);

        let passes = t.pass_summaries();
        assert_eq!(passes.len(), 1);
        assert_eq!(passes[0].pairs, 3);
        assert_eq!(passes[0].substitutions, 1);
        assert_eq!(passes[0].literal_gain, 2);

        let hot = t.hot_targets();
        assert_eq!(hot[0].0, 3, "target 3 saw two pairs");
        assert_eq!(hot[0].1.pairs, 2);
        assert_eq!(hot[0].1.accepts, 1);
        assert_eq!(hot[0].1.gain, 2);

        // Pair + pass events all fit in the default ring.
        assert_eq!(t.events().count(), 4);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_but_aggregates_stay_exact() {
        let mut t = Tracer::with_config(
            "basic",
            TracerConfig {
                ring_capacity: 2,
                top_k: 4,
                hot_targets: 4,
            },
        );
        t.begin_pass(1);
        for d in 0..5u32 {
            run_pair(&mut t, 1, d, Outcome::RejectedNoGain, 0);
        }
        assert_eq!(t.events().count(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.pairs(), 5, "aggregate count survives ring eviction");
        assert_eq!(t.outcome_count(Outcome::RejectedNoGain), 5);
        assert_eq!(t.pair_histogram().count(), 5);
    }

    #[test]
    fn slowest_pairs_are_sorted_and_bounded() {
        let mut t = Tracer::with_config(
            "basic",
            TracerConfig {
                ring_capacity: 64,
                top_k: 2,
                hot_targets: 4,
            },
        );
        t.begin_pass(1);
        for d in 0..4u32 {
            // Durations vary with real elapsed time; just check invariants.
            run_pair(&mut t, 1, d, Outcome::RejectedNoGain, 0);
        }
        let slowest = t.slowest_pairs();
        assert_eq!(slowest.len(), 2);
        assert!(slowest[0].dur_ns >= slowest[1].dur_ns);
    }

    #[test]
    fn unmatched_end_pair_is_a_noop() {
        let mut t = Tracer::new("basic");
        t.end_pair(0);
        t.end_pair_with(Outcome::RejectedStructural, 0);
        assert_eq!(t.pairs(), 0);
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn node_names_fall_back_to_ids() {
        let mut t = Tracer::new("ext");
        assert_eq!(t.node_name(7), "#7");
        t.set_node_names(vec!["a".into(), String::new(), "c".into()]);
        assert_eq!(t.node_name(0), "a");
        assert_eq!(t.node_name(1), "#1", "empty name falls back");
        assert_eq!(t.node_name(2), "c");
        assert_eq!(t.node_name(9), "#9");
    }
}
