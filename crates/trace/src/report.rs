//! Human-readable rendering of a recorded trace.

use std::fmt;

use crate::hist::bucket_floor;
use crate::span::{Outcome, Stage};
use crate::tracer::Tracer;

/// A borrow of a [`Tracer`] that `Display`s as a multi-section text
/// report: pass table, reject-reason funnel, per-stage latency summary,
/// pair wall-time histogram, slowest pairs, hottest targets, and the
/// shadow/refinement side counters.
#[derive(Debug, Clone, Copy)]
pub struct TraceReport<'a> {
    tracer: &'a Tracer,
}

impl<'a> TraceReport<'a> {
    /// Wraps `tracer` for rendering.
    #[must_use]
    pub fn new(tracer: &'a Tracer) -> TraceReport<'a> {
        TraceReport { tracer }
    }
}

/// Compact nanosecond formatting: picks ns/µs/ms/s to keep 3-4 digits.
fn fmt_ns(ns: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let v = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", v / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", v / 1e6)
    } else {
        format!("{:.2}s", v / 1e9)
    }
}

#[allow(clippy::cast_precision_loss)]
fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

impl fmt::Display for TraceReport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.tracer;
        writeln!(f, "=== trace report: mode {} ===", t.mode())?;
        writeln!(
            f,
            "pairs traced: {}   passes: {}   events dropped: {}",
            t.pairs(),
            t.pass_summaries().len(),
            t.dropped()
        )?;

        if !t.pass_summaries().is_empty() {
            writeln!(f, "\n-- passes --")?;
            writeln!(
                f,
                "{:>4} {:>10} {:>8} {:>6} {:>6}",
                "pass", "time", "pairs", "subs", "gain"
            )?;
            for p in t.pass_summaries() {
                writeln!(
                    f,
                    "{:>4} {:>10} {:>8} {:>6} {:>6}",
                    p.pass,
                    fmt_ns(p.dur_ns),
                    p.pairs,
                    p.substitutions,
                    p.literal_gain
                )?;
            }
        }

        writeln!(f, "\n-- outcome funnel --")?;
        let total = t.pairs();
        for (o, count) in t.funnel() {
            if count == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<22} {:>8}  ({:>5.1}%)  total {}",
                o.name(),
                count,
                pct(count, total),
                fmt_ns(t.outcome_histogram(o).sum_ns())
            )?;
        }
        let accepted: u64 = Outcome::ALL
            .iter()
            .filter(|o| o.accepted())
            .map(|&o| t.outcome_count(o))
            .sum();
        writeln!(
            f,
            "{:<22} {:>8}  ({:>5.1}%)",
            "=> accepted",
            accepted,
            pct(accepted, total)
        )?;

        writeln!(f, "\n-- stage latency --")?;
        for s in Stage::ALL {
            let h = t.stage_histogram(s);
            if h.is_empty() {
                continue;
            }
            writeln!(
                f,
                "{:<10} n={:<8} total={:<9} p50<={:<9} p90<={:<9} p99<={:<9} max<={}",
                s.name(),
                h.count(),
                fmt_ns(h.sum_ns()),
                fmt_ns(h.quantile_ceil(0.5)),
                fmt_ns(h.quantile_ceil(0.9)),
                fmt_ns(h.quantile_ceil(0.99)),
                fmt_ns(h.max_ceil())
            )?;
        }

        let ph = t.pair_histogram();
        if !ph.is_empty() {
            writeln!(f, "\n-- pair wall time (log2 buckets) --")?;
            let peak = ph.nonzero_buckets().map(|(_, c)| c).max().unwrap_or(1);
            for (i, count) in ph.nonzero_buckets() {
                let width = (count * 40).div_ceil(peak) as usize;
                writeln!(
                    f,
                    ">= {:>9} {:>8} |{}",
                    fmt_ns(bucket_floor(i)),
                    count,
                    "#".repeat(width)
                )?;
            }
        }

        if !t.slowest_pairs().is_empty() {
            writeln!(f, "\n-- slowest pairs --")?;
            writeln!(
                f,
                "{:>10} {:>4} {:<16} {:<16} {:<20} {:>5} {:>6}",
                "time", "pass", "target", "divisor", "outcome", "gain", "rar"
            )?;
            for p in t.slowest_pairs() {
                writeln!(
                    f,
                    "{:>10} {:>4} {:<16} {:<16} {:<20} {:>5} {:>6}",
                    fmt_ns(p.dur_ns),
                    p.pass,
                    t.node_name(p.target),
                    t.node_name(p.divisor),
                    p.outcome.name(),
                    p.gain,
                    p.rar_checks
                )?;
            }
        }

        let hot = t.hot_targets();
        if !hot.is_empty() {
            writeln!(f, "\n-- hottest targets --")?;
            writeln!(
                f,
                "{:<16} {:>8} {:>8} {:>10} {:>6}",
                "target", "pairs", "accepts", "time", "gain"
            )?;
            for (id, agg) in hot {
                writeln!(
                    f,
                    "{:<16} {:>8} {:>8} {:>10} {:>6}",
                    t.node_name(id),
                    agg.pairs,
                    agg.accepts,
                    fmt_ns(agg.dur_ns),
                    agg.gain
                )?;
            }
        }

        let (guard_checks, guard_ns) = t.guard_stats();
        if guard_checks > 0 {
            writeln!(f, "\n-- guard verdicts --")?;
            for tier in crate::span::GuardTier::ALL {
                let count = t.guard_tier_count(tier);
                if count == 0 {
                    continue;
                }
                writeln!(
                    f,
                    "{:<10} {:>8}  ({:>5.1}%)",
                    tier.name(),
                    count,
                    pct(count, guard_checks)
                )?;
            }
            writeln!(f, "checks: {guard_checks}   time: {}", fmt_ns(guard_ns))?;
        }

        let (shadow_builds, shadow_ns) = t.shadow_stats();
        let (refines, grew, refine_ns) = t.refine_stats();
        if shadow_builds > 0 || refines > 0 {
            writeln!(
                f,
                "\nshadow builds: {} ({})   sim refinements: {} ({} grew, {})",
                shadow_builds,
                fmt_ns(shadow_ns),
                refines,
                grew,
                fmt_ns(refine_ns)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn report_contains_sections() {
        let mut t = Tracer::new("basic");
        t.set_node_names(vec!["a".into(), "b".into(), "c".into()]);
        t.begin_pass(1);
        t.begin_pair(0, 1);
        t.stage(Stage::Filter, 50);
        t.stage(Stage::Divide, 900);
        t.note_outcome(Outcome::AcceptedSop);
        t.end_pair(3);
        t.begin_pair(2, 1);
        t.stage(Stage::Filter, 10);
        t.end_pair_with(Outcome::RejectedTfo, 0);
        t.end_pass(1, 3);

        let text = t.report().to_string();
        assert!(text.contains("mode basic"));
        assert!(text.contains("-- passes --"));
        assert!(text.contains("-- outcome funnel --"));
        assert!(text.contains("accept_sop"));
        assert!(text.contains("reject_tfo"));
        assert!(text.contains("=> accepted"));
        assert!(text.contains("-- stage latency --"));
        assert!(text.contains("-- slowest pairs --"));
        assert!(text.contains("-- hottest targets --"));
        assert!(text.contains('a'), "node names used");
    }
}
