//! Minimal std-only JSON plumbing, shared across the workspace: an
//! escaping single-line object writer (used by the trace exporters and by
//! the bench binaries' `BENCH_sweep.json` emission, replacing their
//! hand-rolled string formatting) and a small recursive-descent parser
//! (used by the exporter tests and the `trace_validate` CI binary).

use std::fmt::Write as _;

/// Escapes `s` per RFC 8259 into `out` (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A one-shot single-line JSON object builder: `{"k": v, "k2": v2}` with
/// a space after each colon and comma — the style of the repo's
/// hand-written emitters, so regenerated files diff cleanly.
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl Default for JsonObj {
    fn default() -> JsonObj {
        JsonObj::new()
    }
}

impl JsonObj {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> JsonObj {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push_str(", ");
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\": ");
    }

    /// Adds a string field (escaped).
    pub fn str(&mut self, k: &str, v: &str) -> &mut JsonObj {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut JsonObj {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a signed integer field.
    pub fn i64(&mut self, k: &str, v: i64) -> &mut JsonObj {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field rendered with a fixed number of decimals
    /// (non-finite values become `null` — JSON has no NaN/Inf).
    pub fn f64(&mut self, k: &str, v: f64, decimals: usize) -> &mut JsonObj {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v:.decimals$}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut JsonObj {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value verbatim (e.g. a nested object).
    pub fn raw(&mut self, k: &str, v: &str) -> &mut JsonObj {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns its text. The builder is spent:
    /// further fields would land in a fresh empty buffer.
    pub fn finish(&mut self) -> String {
        let mut buf = std::mem::take(&mut self.buf);
        buf.push('}');
        buf
    }
}

/// Renders pre-serialized rows as a pretty JSON array: one row per line,
/// two-space indent, trailing newline — the `BENCH_sweep.json` shape.
#[must_use]
pub fn json_array_pretty<I: IntoIterator<Item = String>>(rows: I) -> String {
    let rows: Vec<String> = rows.into_iter().collect();
    if rows.is_empty() {
        return String::from("[]\n");
    }
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("  ");
        out.push_str(r);
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

/// A parsed JSON value. Numbers are kept as `f64` (every value our own
/// writer emits fits exactly; integer accessors validate the cast).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, field order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (no trailing garbage allowed).
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup (linear; objects here are small).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if exact.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        #[allow(clippy::cast_possible_truncation)]
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The numeric payload as a signed integer, if exact.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        match self {
            Json::Num(v) if v.fract() == 0.0 && v.abs() <= 2f64.powi(53) => Some(*v as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field slice, if this is an object.
    #[must_use]
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while matches!(
            self.b.get(self.i),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| format!("bad number at offset {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.i + 4;
        let hex = self
            .b
            .get(self.i..end)
            .and_then(|s| std::str::from_utf8(s).ok())
            .ok_or_else(|| format!("truncated \\u escape at offset {}", self.i))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at offset {}", self.i))?;
        self.i = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut seg = self.i;
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    out.push_str(
                        std::str::from_utf8(&self.b[seg..self.i]).map_err(|e| e.to_string())?,
                    );
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(
                        std::str::from_utf8(&self.b[seg..self.i]).map_err(|e| e.to_string())?,
                    );
                    self.i += 1;
                    let esc = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| String::from("truncated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let mut code = self.hex4()?;
                            // Combine a UTF-16 surrogate pair if present.
                            if (0xD800..0xDC00).contains(&code)
                                && self.b.get(self.i) == Some(&b'\\')
                                && self.b.get(self.i + 1) == Some(&b'u')
                            {
                                self.i += 2;
                                let low = self.hex4()?;
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        c => return Err(format!("bad escape \\{}", c as char)),
                    }
                    seg = self.i;
                }
                Some(_) => self.i += 1,
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            fields.push((key, self.value()?));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_formats() {
        let line = JsonObj::new()
            .str("name", "a\"b\\c\nd\u{1}")
            .u64("n", 42)
            .i64("g", -7)
            .f64("secs", 0.125, 3)
            .f64("inf", f64::INFINITY, 1)
            .bool("ok", true)
            .raw("nested", "{\"x\": 1}")
            .finish();
        assert_eq!(
            line,
            "{\"name\": \"a\\\"b\\\\c\\nd\\u0001\", \"n\": 42, \"g\": -7, \
             \"secs\": 0.125, \"inf\": null, \"ok\": true, \"nested\": {\"x\": 1}}"
        );
    }

    #[test]
    fn writer_output_parses_back() {
        let line = JsonObj::new()
            .str("s", "tab\there \"q\" µs")
            .u64("u", u64::from(u32::MAX))
            .f64("f", 1234.5, 1)
            .bool("b", false)
            .finish();
        let v = Json::parse(&line).expect("parse");
        assert_eq!(
            v.get("s").and_then(Json::as_str),
            Some("tab\there \"q\" µs")
        );
        assert_eq!(v.get("u").and_then(Json::as_u64), Some(u64::from(u32::MAX)));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1234.5));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn parser_handles_structures() {
        let v = Json::parse(" [ 1 , {\"a\": [true, null]}, \"x\" ] ").expect("parse");
        let items = v.as_array().expect("array");
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(
            items[1]
                .get("a")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(items[2].as_str(), Some("x"));
        assert_eq!(Json::parse("[]").expect("empty"), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").expect("empty"), Json::Obj(vec![]));
    }

    #[test]
    fn parser_decodes_unicode_escapes() {
        let v = Json::parse("\"\\u00e9\\ud83d\\ude00\"").expect("parse");
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn array_pretty_shape() {
        assert_eq!(json_array_pretty(Vec::new()), "[]\n");
        assert_eq!(
            json_array_pretty(vec!["{\"a\": 1}".to_string(), "{\"b\": 2}".to_string()]),
            "[\n  {\"a\": 1},\n  {\"b\": 2}\n]\n"
        );
    }
}
