//! Log2-bucketed latency histograms: fixed size, no allocation on the
//! record path, exact counts per power-of-two bucket.

/// Number of buckets: one exact-zero bucket plus one per power of two.
pub const BUCKETS: usize = 65;

/// Bucket index for a nanosecond sample: bucket 0 holds exact zeros,
/// bucket `i >= 1` holds the range `[2^(i-1), 2^i - 1]`.
#[must_use]
pub fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        64 - ns.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i`.
///
/// # Panics
///
/// Panics if `i >= BUCKETS`.
#[must_use]
pub fn bucket_floor(i: usize) -> u64 {
    assert!(i < BUCKETS);
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
///
/// # Panics
///
/// Panics if `i >= BUCKETS`.
#[must_use]
pub fn bucket_ceil(i: usize) -> u64 {
    assert!(i < BUCKETS);
    match i {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A log2 latency histogram with saturating totals.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples, in nanoseconds.
    #[must_use]
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Whether no sample was recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw count of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= BUCKETS`.
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Upper bound of the bucket containing the `q` quantile
    /// (`0.0 ..= 1.0`); 0 for an empty histogram. The bound is the
    /// coarsest correct answer a log2 histogram can give.
    #[must_use]
    pub fn quantile_ceil(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_ceil(i);
            }
        }
        bucket_ceil(BUCKETS - 1)
    }

    /// Upper bound of the largest non-empty bucket; 0 when empty.
    #[must_use]
    pub fn max_ceil(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&b| b > 0)
            .map_or(0, bucket_ceil)
    }

    /// Iterates `(bucket_index, count)` over non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b > 0)
            .map(|(i, &b)| (i, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        // The exact-zero bucket.
        assert_eq!(bucket_index(0), 0);
        // 1 opens bucket 1.
        assert_eq!(bucket_index(1), 1);
        // Powers of two open a new bucket; one below stays in the old.
        for k in 1..=63u32 {
            let p = 1u64 << k;
            assert_eq!(bucket_index(p), k as usize + 1, "2^{k}");
            assert_eq!(bucket_index(p - 1), k as usize, "2^{k} - 1");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        // Floor/ceil bracket their own index.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i);
            assert_eq!(bucket_index(bucket_ceil(i)), i);
        }
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_ceil(0.5), 0);
        assert_eq!(h.max_ceil(), 0);
        for ns in [0u64, 1, 1, 2, 3, 4, 1024] {
            h.record(ns);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum_ns(), 1035);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2); // the two 1s
        assert_eq!(h.bucket(2), 2); // 2 and 3
        assert_eq!(h.bucket(3), 1); // 4
        assert_eq!(h.bucket(11), 1); // 1024
                                     // Median sample is the 4th of 7 -> the [2,3] bucket.
        assert_eq!(h.quantile_ceil(0.5), 3);
        assert_eq!(h.quantile_ceil(1.0), bucket_ceil(11));
        assert_eq!(h.max_ceil(), bucket_ceil(11));
        assert_eq!(h.nonzero_buckets().count(), 5);
    }

    #[test]
    fn merge_adds_samples() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(5);
        b.record(0);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket(0), 1);
        assert_eq!(a.bucket(64), 1);
        assert_eq!(a.sum_ns(), u64::MAX, "sum saturates");
    }
}
