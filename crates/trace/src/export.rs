//! Trace exporters: newline-delimited JSON events and the Chrome
//! trace-event format (loadable in `chrome://tracing` and Perfetto).

use std::io::{self, Write};

use crate::json::JsonObj;
use crate::span::TraceEvent;
use crate::tracer::Tracer;

/// Serializes one ring-buffer event as a single-line JSON object.
#[must_use]
pub fn event_to_json(ev: &TraceEvent) -> String {
    match ev {
        TraceEvent::Pass(p) => JsonObj::new()
            .str("type", "pass")
            .u64("pass", u64::from(p.pass))
            .u64("start_ns", p.start_ns)
            .u64("dur_ns", p.dur_ns)
            .u64("pairs", p.pairs)
            .u64("substitutions", p.substitutions)
            .i64("literal_gain", p.literal_gain)
            .finish(),
        TraceEvent::Pair(p) => JsonObj::new()
            .str("type", "pair")
            .u64("pass", u64::from(p.pass))
            .u64("target", u64::from(p.target))
            .u64("divisor", u64::from(p.divisor))
            .u64("start_ns", p.start_ns)
            .u64("dur_ns", p.dur_ns)
            .u64("enumerate_ns", p.stages.enumerate)
            .u64("filter_ns", p.stages.filter)
            .u64("sim_ns", p.stages.sim)
            .u64("divide_ns", p.stages.divide)
            .u64("apply_ns", p.stages.apply)
            .str("outcome", p.outcome.name())
            .i64("gain", p.gain)
            .u64("rar_checks", p.rar_checks)
            .u64("worker", u64::from(p.worker))
            .finish(),
        TraceEvent::ShadowBuild {
            pass,
            target,
            start_ns,
            dur_ns,
        } => JsonObj::new()
            .str("type", "shadow_build")
            .u64("pass", u64::from(*pass))
            .u64("target", u64::from(*target))
            .u64("start_ns", *start_ns)
            .u64("dur_ns", *dur_ns)
            .finish(),
        TraceEvent::SimRefine {
            pass,
            target,
            divisor,
            start_ns,
            dur_ns,
            grew,
        } => JsonObj::new()
            .str("type", "sim_refine")
            .u64("pass", u64::from(*pass))
            .u64("target", u64::from(*target))
            .u64("divisor", u64::from(*divisor))
            .u64("start_ns", *start_ns)
            .u64("dur_ns", *dur_ns)
            .bool("grew", *grew)
            .finish(),
        TraceEvent::Guard {
            pass,
            target,
            divisor,
            tier,
            passed,
            exact,
            start_ns,
            dur_ns,
        } => JsonObj::new()
            .str("type", "guard")
            .u64("pass", u64::from(*pass))
            .u64("target", u64::from(*target))
            .u64("divisor", u64::from(*divisor))
            .str("tier", tier.name())
            .bool("passed", *passed)
            .bool("exact", *exact)
            .u64("start_ns", *start_ns)
            .u64("dur_ns", *dur_ns)
            .finish(),
    }
}

/// Writes the trace as newline-delimited JSON: one `meta` line with the
/// mode and run-level aggregates, then one line per retained event.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_jsonl<W: Write>(t: &Tracer, w: &mut W) -> io::Result<()> {
    let (shadow_builds, shadow_ns) = t.shadow_stats();
    let (refine_attempts, refine_grew, refine_ns) = t.refine_stats();
    let (guard_checks, guard_ns) = t.guard_stats();
    let mut meta = JsonObj::new();
    meta.str("type", "meta")
        .str("mode", t.mode())
        .str("discovery", t.discovery().unwrap_or("overlap"))
        .u64("pairs", t.pairs())
        .u64("passes", t.pass_summaries().len() as u64)
        .u64("events_dropped", t.dropped())
        .u64("shadow_builds", shadow_builds)
        .u64("shadow_ns", shadow_ns)
        .u64("refine_attempts", refine_attempts)
        .u64("refine_grew", refine_grew)
        .u64("refine_ns", refine_ns)
        .u64("guard_checks", guard_checks)
        .u64("guard_ns", guard_ns);
    for tier in crate::span::GuardTier::ALL {
        meta.u64(&format!("guard_{}", tier.name()), t.guard_tier_count(tier));
    }
    let meta = meta.finish();
    writeln!(w, "{meta}")?;
    for ev in t.events() {
        writeln!(w, "{}", event_to_json(ev))?;
    }
    Ok(())
}

/// [`write_jsonl`] into a `String`.
#[must_use]
pub fn jsonl_string(t: &Tracer) -> String {
    let mut buf = Vec::new();
    write_jsonl(t, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

fn micros(ns: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let us = ns as f64 / 1000.0;
    format!("{us:.3}")
}

/// Thread ids used in the Chrome export: pair spans.
const TID_PAIRS: u64 = 0;
/// Thread ids used in the Chrome export: pass spans.
const TID_PASSES: u64 = 1;
/// Thread ids used in the Chrome export: shadow builds and refinements.
const TID_AUX: u64 = 2;
/// Speculative-sweep worker lanes start here: a pair span replayed from
/// worker `w` (span `worker == w + 1`) lands on tid `TID_AUX + w + 1`,
/// labelled `worker w` by a `thread_name` metadata row.
const TID_WORKER_BASE: u64 = TID_AUX;

fn pair_tid(worker: u32) -> u64 {
    if worker == 0 {
        TID_PAIRS
    } else {
        TID_WORKER_BASE + u64::from(worker)
    }
}

#[allow(clippy::too_many_arguments)]
fn chrome_complete(
    out: &mut Vec<String>,
    name: &str,
    cat: &str,
    pid: u64,
    tid: u64,
    start_ns: u64,
    dur_ns: u64,
    args: String,
) {
    out.push(
        JsonObj::new()
            .str("name", name)
            .str("cat", cat)
            .str("ph", "X")
            .raw("ts", &micros(start_ns))
            .raw("dur", &micros(dur_ns))
            .u64("pid", pid)
            .u64("tid", tid)
            .raw("args", &args)
            .finish(),
    );
}

fn chrome_metadata(out: &mut Vec<String>, name: &str, pid: u64, tid: u64, label: &str) {
    out.push(
        JsonObj::new()
            .str("name", name)
            .str("ph", "M")
            .u64("pid", pid)
            .u64("tid", tid)
            .raw("args", JsonObj::new().str("name", label).finish().as_str())
            .finish(),
    );
}

/// Renders one or more tracers (one Chrome "process" per tracer, so
/// modes sit side by side) as a Chrome trace-event JSON array.
#[must_use]
pub fn chrome_trace_string(tracers: &[&Tracer]) -> String {
    let mut rows: Vec<String> = Vec::new();
    for (pid, t) in (0u64..).zip(tracers.iter()) {
        chrome_metadata(
            &mut rows,
            "process_name",
            pid,
            TID_PAIRS,
            &format!("boolsubst {}", t.mode()),
        );
        chrome_metadata(&mut rows, "thread_name", pid, TID_PAIRS, "pairs");
        chrome_metadata(&mut rows, "thread_name", pid, TID_PASSES, "passes");
        chrome_metadata(&mut rows, "thread_name", pid, TID_AUX, "engine aux");
        // Label every speculative-worker lane that actually carries
        // spans, so the viewer shows "worker 3" instead of a raw tid.
        let mut worker_lanes: Vec<u32> = t
            .events()
            .filter_map(|ev| match ev {
                TraceEvent::Pair(p) if p.worker > 0 => Some(p.worker),
                _ => None,
            })
            .collect();
        worker_lanes.sort_unstable();
        worker_lanes.dedup();
        for &lane in &worker_lanes {
            chrome_metadata(
                &mut rows,
                "thread_name",
                pid,
                pair_tid(lane),
                &format!("worker {}", lane - 1),
            );
        }

        for ev in t.events() {
            match ev {
                TraceEvent::Pass(p) => {
                    let args = JsonObj::new()
                        .u64("pairs", p.pairs)
                        .u64("substitutions", p.substitutions)
                        .i64("literal_gain", p.literal_gain)
                        .finish();
                    chrome_complete(
                        &mut rows,
                        &format!("pass {}", p.pass),
                        "pass",
                        pid,
                        TID_PASSES,
                        p.start_ns,
                        p.dur_ns,
                        args,
                    );
                }
                TraceEvent::Pair(p) => {
                    let args = JsonObj::new()
                        .str("target", &t.node_name(p.target))
                        .str("divisor", &t.node_name(p.divisor))
                        .u64("pass", u64::from(p.pass))
                        .i64("gain", p.gain)
                        .u64("rar_checks", p.rar_checks)
                        .u64("filter_ns", p.stages.filter)
                        .u64("sim_ns", p.stages.sim)
                        .u64("divide_ns", p.stages.divide)
                        .u64("apply_ns", p.stages.apply)
                        .finish();
                    chrome_complete(
                        &mut rows,
                        p.outcome.name(),
                        "pair",
                        pid,
                        pair_tid(p.worker),
                        p.start_ns,
                        p.dur_ns,
                        args,
                    );
                }
                TraceEvent::ShadowBuild {
                    pass,
                    target,
                    start_ns,
                    dur_ns,
                } => {
                    let args = JsonObj::new()
                        .str("target", &t.node_name(*target))
                        .u64("pass", u64::from(*pass))
                        .finish();
                    chrome_complete(
                        &mut rows,
                        "shadow_build",
                        "aux",
                        pid,
                        TID_AUX,
                        *start_ns,
                        *dur_ns,
                        args,
                    );
                }
                TraceEvent::SimRefine {
                    pass,
                    target,
                    divisor,
                    start_ns,
                    dur_ns,
                    grew,
                } => {
                    let args = JsonObj::new()
                        .str("target", &t.node_name(*target))
                        .str("divisor", &t.node_name(*divisor))
                        .u64("pass", u64::from(*pass))
                        .bool("grew", *grew)
                        .finish();
                    chrome_complete(
                        &mut rows,
                        "sim_refine",
                        "aux",
                        pid,
                        TID_AUX,
                        *start_ns,
                        *dur_ns,
                        args,
                    );
                }
                TraceEvent::Guard {
                    pass,
                    target,
                    divisor,
                    tier,
                    passed,
                    exact,
                    start_ns,
                    dur_ns,
                } => {
                    let args = JsonObj::new()
                        .str("target", &t.node_name(*target))
                        .str("divisor", &t.node_name(*divisor))
                        .u64("pass", u64::from(*pass))
                        .str("tier", tier.name())
                        .bool("passed", *passed)
                        .bool("exact", *exact)
                        .finish();
                    chrome_complete(
                        &mut rows,
                        &format!("guard_{}", tier.name()),
                        "guard",
                        pid,
                        TID_AUX,
                        *start_ns,
                        *dur_ns,
                        args,
                    );
                }
            }
        }
    }
    crate::json::json_array_pretty(rows)
}

/// [`chrome_trace_string`] straight to a writer.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_chrome_trace<W: Write>(tracers: &[&Tracer], w: &mut W) -> io::Result<()> {
    w.write_all(chrome_trace_string(tracers).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::span::{Outcome, Stage};

    fn sample_tracer() -> Tracer {
        let mut t = Tracer::new("ext-gdc");
        t.set_node_names(vec!["n0".into(), "n1".into(), "n2".into()]);
        t.begin_pass(1);
        t.begin_pair(1, 2);
        t.stage(Stage::Filter, 3);
        t.stage(Stage::Divide, 40);
        t.set_rar_checks(7);
        t.note_outcome(Outcome::AcceptedSop);
        t.end_pair(5);
        t.shadow_build(1, 11);
        t.sim_refine(1, 2, true, 9);
        t.guard_check(1, 2, crate::span::GuardTier::Sat, true, true, 21);
        t.end_pass(1, 5);
        t
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let t = sample_tracer();
        let text = jsonl_string(&t);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines.len(),
            6,
            "meta + pair + shadow + refine + guard + pass"
        );

        let meta = Json::parse(lines[0]).expect("meta parses");
        assert_eq!(meta.get("type").and_then(Json::as_str), Some("meta"));
        assert_eq!(meta.get("mode").and_then(Json::as_str), Some("ext-gdc"));
        assert_eq!(meta.get("pairs").and_then(Json::as_u64), Some(1));

        let pair = Json::parse(lines[1]).expect("pair parses");
        assert_eq!(pair.get("type").and_then(Json::as_str), Some("pair"));
        assert_eq!(pair.get("target").and_then(Json::as_u64), Some(1));
        assert_eq!(pair.get("divisor").and_then(Json::as_u64), Some(2));
        assert_eq!(pair.get("filter_ns").and_then(Json::as_u64), Some(3));
        assert_eq!(pair.get("divide_ns").and_then(Json::as_u64), Some(40));
        assert_eq!(pair.get("rar_checks").and_then(Json::as_u64), Some(7));
        assert_eq!(pair.get("gain").and_then(Json::as_i64), Some(5));
        assert_eq!(
            pair.get("outcome").and_then(Json::as_str),
            Some("accept_sop")
        );

        let shadow = Json::parse(lines[2]).expect("shadow parses");
        assert_eq!(
            shadow.get("type").and_then(Json::as_str),
            Some("shadow_build")
        );
        let refine = Json::parse(lines[3]).expect("refine parses");
        assert_eq!(refine.get("grew").and_then(Json::as_bool), Some(true));
        let guard = Json::parse(lines[4]).expect("guard parses");
        assert_eq!(guard.get("type").and_then(Json::as_str), Some("guard"));
        assert_eq!(guard.get("tier").and_then(Json::as_str), Some("sat"));
        assert_eq!(guard.get("passed").and_then(Json::as_bool), Some(true));
        assert_eq!(guard.get("exact").and_then(Json::as_bool), Some(true));
        assert_eq!(guard.get("dur_ns").and_then(Json::as_u64), Some(21));
        assert_eq!(meta.get("guard_checks").and_then(Json::as_u64), Some(1));
        assert_eq!(meta.get("guard_sat").and_then(Json::as_u64), Some(1));
        assert_eq!(meta.get("guard_bdd").and_then(Json::as_u64), Some(0));
        let pass = Json::parse(lines[5]).expect("pass parses");
        assert_eq!(pass.get("substitutions").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn chrome_trace_is_valid_and_labelled() {
        let t = sample_tracer();
        let text = chrome_trace_string(&[&t]);
        let v = Json::parse(&text).expect("chrome trace parses");
        let rows = v.as_array().expect("array");
        // 4 metadata rows + 5 events.
        assert_eq!(rows.len(), 9);
        let guard = rows
            .iter()
            .find(|r| r.get("cat").and_then(Json::as_str) == Some("guard"))
            .expect("guard event present");
        assert_eq!(guard.get("name").and_then(Json::as_str), Some("guard_sat"));
        assert_eq!(
            rows[0].get("ph").and_then(Json::as_str),
            Some("M"),
            "leads with metadata"
        );
        let pair = rows
            .iter()
            .find(|r| r.get("cat").and_then(Json::as_str) == Some("pair"))
            .expect("pair event present");
        assert_eq!(pair.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(pair.get("name").and_then(Json::as_str), Some("accept_sop"));
        let args = pair.get("args").expect("args");
        assert_eq!(args.get("target").and_then(Json::as_str), Some("n1"));
        assert_eq!(args.get("divisor").and_then(Json::as_str), Some("n2"));
    }

    #[test]
    fn worker_spans_get_labelled_lanes() {
        let mut t = Tracer::new("ext-gdc");
        t.set_node_names(vec!["n0".into(), "n1".into(), "n2".into()]);
        t.begin_pass(1);
        // A live pair and two replayed worker records (workers 0 and 2).
        t.begin_pair(1, 2);
        t.end_pair(0);
        for worker in [0, 2] {
            t.record_pair(&crate::tracer::PairRecord {
                target: 1,
                divisor: 2,
                dur_ns: 10,
                stages: Default::default(),
                outcome: Outcome::RejectedStructural,
                gain: 0,
                rar_checks: 0,
                worker,
            });
        }
        t.end_pass(0, 0);

        let text = jsonl_string(&t);
        let workers: Vec<u64> = text
            .lines()
            .filter_map(|l| Json::parse(l).ok())
            .filter(|j| j.get("type").and_then(Json::as_str) == Some("pair"))
            .filter_map(|j| j.get("worker").and_then(Json::as_u64))
            .collect();
        assert_eq!(workers, vec![0, 1, 3], "live = 0, worker w = w + 1");

        let v = Json::parse(&chrome_trace_string(&[&t])).expect("parses");
        let rows = v.as_array().expect("array");
        let lane_label = |label: &str| {
            rows.iter()
                .find(|r| {
                    r.get("name").and_then(Json::as_str) == Some("thread_name")
                        && r.get("args")
                            .and_then(|a| a.get("name"))
                            .and_then(Json::as_str)
                            == Some(label)
                })
                .and_then(|r| r.get("tid").and_then(Json::as_u64))
        };
        let w0 = lane_label("worker 0").expect("worker 0 lane labelled");
        let w2 = lane_label("worker 2").expect("worker 2 lane labelled");
        assert!(
            lane_label("worker 1").is_none(),
            "unused lanes stay unlabelled"
        );
        // Replayed spans sit on their labelled lanes; the live one on "pairs".
        let pair_tids: Vec<u64> = rows
            .iter()
            .filter(|r| r.get("cat").and_then(Json::as_str) == Some("pair"))
            .filter_map(|r| r.get("tid").and_then(Json::as_u64))
            .collect();
        assert_eq!(pair_tids, vec![TID_PAIRS, w0, w2]);
    }

    #[test]
    fn chrome_trace_multi_process() {
        let a = sample_tracer();
        let b = sample_tracer();
        let text = chrome_trace_string(&[&a, &b]);
        let v = Json::parse(&text).expect("parses");
        let pids: std::collections::BTreeSet<u64> = v
            .as_array()
            .expect("array")
            .iter()
            .filter_map(|r| r.get("pid").and_then(Json::as_u64))
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }
}
