#![warn(missing_docs)]
//! # boolsubst-trace — structured tracing for the substitution engine
//!
//! The engine's aggregate [`SubstStats`] block answers *how much* time the
//! sweep spent per stage; this crate answers *which pair burned it and
//! why*. It provides a zero-cost-when-off tracing layer the engine
//! threads through as an `Option<&mut Tracer>`:
//!
//! * a **span/event model** ([`PairSpan`], [`PassSpan`], [`TraceEvent`])
//!   carrying target/divisor ids, per-stage nanos
//!   (enumerate/filter/sim/divide/apply), and a typed [`Outcome`]
//!   covering every reject reason the stats counters know about plus the
//!   SOP/POS/extended acceptance kinds;
//! * a **bounded ring-buffer recorder** ([`Tracer`]) — aggregates
//!   (histograms, funnel counts, top-K slowest pairs, per-target heat)
//!   stay exact even after the ring starts dropping old events;
//! * **log2-bucket latency histograms** ([`LatencyHistogram`]) per stage
//!   and per outcome;
//! * two **exporters** ([`export`]): newline-delimited JSON events and
//!   the Chrome trace-event format loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev);
//! * a human-readable [`TraceReport`] — per-pass phase breakdown,
//!   reject-reason funnel, histograms, hottest targets;
//! * a tiny std-only [`json`] writer/parser shared with the bench
//!   emitters and the CI trace validator.
//!
//! The disabled path is bit-identical and near-free: every hook is
//! guarded by an `Option` that the engine leaves `None` unless a tracer
//! was attached, and the tracer itself never touches the network.
//!
//! [`SubstStats`]: https://docs.rs/boolsubst-core

pub mod export;
pub mod hist;
pub mod json;
pub mod report;
pub mod span;
pub mod tracer;

pub use hist::{bucket_ceil, bucket_floor, bucket_index, LatencyHistogram, BUCKETS};
pub use report::TraceReport;
pub use span::{GuardTier, Outcome, PairSpan, PassSpan, Stage, StageNanos, TraceEvent};
pub use tracer::{PairRecord, TargetAgg, Tracer, TracerConfig};
