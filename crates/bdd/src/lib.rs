#![warn(missing_docs)]
//! # boolsubst-bdd — reduced ordered BDDs
//!
//! A compact hash-consed ROBDD package used as the *exact equivalence
//! oracle* of the workspace: every Boolean-division rewrite can be checked
//! by building BDDs of the affected functions before and after.
//!
//! Terminals are [`Bdd::zero`] and [`Bdd::one`]; all operations go through
//! a memoized `ite`. Variable order is the creation order of variables.
//!
//! ```
//! use boolsubst_bdd::Bdd;
//!
//! let mut bdd = Bdd::new(3);
//! let (a, b, c) = (bdd.var(0), bdd.var(1), bdd.var(2));
//! let ab = bdd.and(a, b);
//! let f = bdd.or(ab, c);          // ab + c
//! let g = bdd.or(c, ab);          // c + ab
//! assert_eq!(f, g);               // canonical: equal functions unify
//! assert!(bdd.eval(f, &[true, true, false]));
//! ```

use std::collections::HashMap;

/// Reference to a BDD node (index into the shared node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// A BDD manager: node table, unique table and operation cache.
#[derive(Debug)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, Ref, Ref), Ref>,
    ite_cache: HashMap<(Ref, Ref, Ref), Ref>,
    num_vars: usize,
}

const VAR_TERMINAL: u32 = u32::MAX;

impl Bdd {
    /// Creates a manager for `num_vars` variables (ordered by index).
    #[must_use]
    pub fn new(num_vars: usize) -> Bdd {
        let nodes = vec![
            Node {
                var: VAR_TERMINAL,
                lo: Ref(0),
                hi: Ref(0),
            }, // 0 terminal
            Node {
                var: VAR_TERMINAL,
                lo: Ref(1),
                hi: Ref(1),
            }, // 1 terminal
        ];
        Bdd {
            nodes,
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            num_vars,
        }
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The constant-0 function.
    #[must_use]
    pub fn zero(&self) -> Ref {
        Ref(0)
    }

    /// The constant-1 function.
    #[must_use]
    pub fn one(&self) -> Ref {
        Ref(1)
    }

    /// The projection function of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vars`.
    pub fn var(&mut self, v: usize) -> Ref {
        assert!(v < self.num_vars, "variable {v} out of range");
        self.mk(v as u32, Ref(0), Ref(1))
    }

    /// The complement of the projection function of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vars`.
    pub fn nvar(&mut self, v: usize) -> Ref {
        assert!(v < self.num_vars, "variable {v} out of range");
        self.mk(v as u32, Ref(1), Ref(0))
    }

    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return r;
        }
        let r = Ref(u32::try_from(self.nodes.len()).expect("BDD node table overflow"));
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        r
    }

    fn var_of(&self, r: Ref) -> u32 {
        self.nodes[r.0 as usize].var
    }

    /// If-then-else: `f·g + f'·h` — the universal BDD operation.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        if f == self.one() {
            return g;
        }
        if f == self.zero() {
            return h;
        }
        if g == h {
            return g;
        }
        if g == self.one() && h == self.zero() {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    fn cofactors(&self, r: Ref, var: u32) -> (Ref, Ref) {
        let n = self.nodes[r.0 as usize];
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (r, r)
        }
    }

    /// Boolean AND.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        let zero = self.zero();
        self.ite(f, g, zero)
    }

    /// Boolean OR.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        let one = self.one();
        self.ite(f, one, g)
    }

    /// Boolean NOT.
    pub fn not(&mut self, f: Ref) -> Ref {
        let one = self.one();
        let zero = self.zero();
        self.ite(f, zero, one)
    }

    /// Boolean XOR.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Existential quantification of variable `v` from `f`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vars`.
    pub fn exists(&mut self, f: Ref, v: usize) -> Ref {
        let f_hi = self.compose_const(f, v, true);
        let f_lo = self.compose_const(f, v, false);
        self.or(f_hi, f_lo)
    }

    /// Restricts variable `v` of `f` to a constant.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vars`.
    pub fn compose_const(&mut self, f: Ref, v: usize, value: bool) -> Ref {
        assert!(v < self.num_vars, "variable {v} out of range");
        let mut memo = HashMap::new();
        self.restrict_rec(f, v as u32, value, &mut memo)
    }

    fn restrict_rec(&mut self, r: Ref, var: u32, value: bool, memo: &mut HashMap<Ref, Ref>) -> Ref {
        let n = self.nodes[r.0 as usize];
        if n.var == VAR_TERMINAL || n.var > var {
            return r;
        }
        if let Some(&m) = memo.get(&r) {
            return m;
        }
        let out = if n.var == var {
            if value {
                n.hi
            } else {
                n.lo
            }
        } else {
            let lo = self.restrict_rec(n.lo, var, value, memo);
            let hi = self.restrict_rec(n.hi, var, value, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(r, out);
        out
    }

    /// Evaluates `f` under a complete assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() < num_vars`.
    #[must_use]
    pub fn eval(&self, f: Ref, inputs: &[bool]) -> bool {
        assert!(inputs.len() >= self.num_vars, "assignment too short");
        let mut r = f;
        loop {
            let n = self.nodes[r.0 as usize];
            if n.var == VAR_TERMINAL {
                return r == self.one();
            }
            r = if inputs[n.var as usize] { n.hi } else { n.lo };
        }
    }

    /// Number of nodes ever allocated in the manager (diagnostics).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of satisfying assignments of `f` over all `num_vars`
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 127` (the count may not fit in `u128`).
    #[must_use]
    pub fn sat_count(&self, f: Ref) -> u128 {
        assert!(self.num_vars <= 127, "sat_count limited to 127 variables");
        let mut memo: HashMap<Ref, u128> = HashMap::new();
        let below = self.count_below(f, &mut memo);
        below << self.level(f)
    }

    /// Level of a reference: its variable index, or `num_vars` for
    /// terminals.
    fn level(&self, r: Ref) -> u32 {
        let v = self.var_of(r);
        if v == VAR_TERMINAL {
            self.num_vars as u32
        } else {
            v
        }
    }

    /// Satisfying count over variables `[level(r), num_vars)`.
    fn count_below(&self, r: Ref, memo: &mut HashMap<Ref, u128>) -> u128 {
        if r == self.zero() {
            return 0;
        }
        if r == self.one() {
            return 1;
        }
        if let Some(&c) = memo.get(&r) {
            return c;
        }
        let n = self.nodes[r.0 as usize];
        let lo = self.count_below(n.lo, memo) << (self.level(n.lo) - n.var - 1);
        let hi = self.count_below(n.hi, memo) << (self.level(n.hi) - n.var - 1);
        let total = lo + hi;
        memo.insert(r, total);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicity() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let ab = bdd.and(a, b);
        let ba = bdd.and(b, a);
        assert_eq!(ab, ba);
        let na = bdd.not(a);
        let nna = bdd.not(na);
        assert_eq!(a, nna);
    }

    #[test]
    fn xor_truth_table() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let x = bdd.xor(a, b);
        assert!(!bdd.eval(x, &[false, false]));
        assert!(bdd.eval(x, &[true, false]));
        assert!(bdd.eval(x, &[false, true]));
        assert!(!bdd.eval(x, &[true, true]));
    }

    #[test]
    fn tautology_collapses_to_one() {
        let mut bdd = Bdd::new(1);
        let a = bdd.var(0);
        let na = bdd.not(a);
        let t = bdd.or(a, na);
        assert_eq!(t, bdd.one());
    }

    #[test]
    fn consensus_identity() {
        // ab + a'c + bc == ab + a'c
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let na = bdd.not(a);
        let nac = bdd.and(na, c);
        let bc = bdd.and(b, c);
        let t1 = bdd.or(ab, nac);
        let lhs = bdd.or(t1, bc);
        assert_eq!(lhs, t1);
    }

    #[test]
    fn sat_count_majority() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let ac = bdd.and(a, c);
        let bc = bdd.and(b, c);
        let t = bdd.or(ab, ac);
        let maj = bdd.or(t, bc);
        assert_eq!(bdd.sat_count(maj), 4);
        let one = bdd.one();
        let zero = bdd.zero();
        assert_eq!(bdd.sat_count(one), 8);
        assert_eq!(bdd.sat_count(zero), 0);
        let just_a = bdd.var(0);
        assert_eq!(bdd.sat_count(just_a), 4);
    }

    #[test]
    fn restrict_shannon() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let f = bdd.or(ab, c); // ab + c
        let f_a1 = bdd.compose_const(f, 0, true); // b + c
        let expect = bdd.or(b, c);
        assert_eq!(f_a1, expect);
        let f_a0 = bdd.compose_const(f, 0, false); // c
        assert_eq!(f_a0, c);
    }

    #[test]
    fn exists_quantifier() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let ab = bdd.and(a, b);
        // ∃a. ab = b
        let e = bdd.exists(ab, 0);
        assert_eq!(e, b);
    }
}
