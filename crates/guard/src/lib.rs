#![warn(missing_docs)]
//! # boolsubst-guard — post-apply equivalence guards for checked substitution
//!
//! Every substitution the engine accepts is supposed to preserve the
//! network's primary-output functions exactly (Lemma 1/2 make the added
//! divisor wire redundant by construction, and redundancy removal deletes
//! only untestable wires). A bug anywhere in that chain — implication,
//! vote-table masking, cube bookkeeping — silently miscompiles the
//! network. This crate is the independent check the checked-apply mode
//! runs *after* each accepted rewrite, against the reconstructed
//! pre-state:
//!
//! * **Tier A (simulation)** — word-parallel signatures of every primary
//!   output over a guard-owned [`PatternPool`], compared pre vs post. For
//!   networks with few inputs the pool is exhaustive, making the tier a
//!   complete equivalence check; otherwise a mismatch is a concrete
//!   counterexample (sound refutation) while a match proves nothing.
//! * **Tier B (exact)** — a shared-manager BDD comparison of the
//!   primary-output functions, run when tier A sampled (inconclusive on a
//!   pass) and the network is small enough to afford it.
//! * **Tier C (SAT)** — a Tseitin miter solved by the CDCL engine in
//!   `boolsubst-sat` under a conflict budget, run when tier B is out of
//!   node budget (BDDs blow up on multiplier-shaped cones where the
//!   miter stays window-sized thanks to structural CNF sharing).
//!
//! Which tiers run is a [`TierPolicy`]; the default [`TierPolicy::Auto`]
//! escalates `sim → BDD(node_limit) → SAT(conflict_budget)` and only
//! degrades to [`GuardDecision::PassSampled`] when every exact backend
//! is out of budget.
//!
//! The guard deliberately re-implements its BDD oracle here rather than
//! calling into `boolsubst-core`: the checked engine lives in core, so the
//! guard must sit *below* it in the crate graph to stay an independent
//! layer (and to keep a core bug from vouching for itself).

use boolsubst_bdd::{Bdd, Ref};
use boolsubst_cube::Phase;
use boolsubst_metrics::{Counter, Histogram, MetricsHandle};
use boolsubst_network::{Network, NodeId};
use boolsubst_sat::miter::EquivResult;
use boolsubst_sat::SatOptions;
use boolsubst_sim::{PatternPool, SimTable};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Tunables for the guard pipeline. `Copy` so it can ride inside the
/// engine's options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardConfig {
    /// Signature width of the random pool, in 64-bit words (64 patterns
    /// each). Used when the network has too many inputs for an exhaustive
    /// pool.
    pub words: usize,
    /// Seed for the random pool (deterministic across runs).
    pub seed: u64,
    /// Networks with at most this many primary inputs get an exhaustive
    /// pool, making tier A a complete check (capped at 16 by the pool).
    pub exhaustive_inputs: usize,
    /// Tier B (exact BDD compare) runs only when tier A sampled and the
    /// network has at most this many live nodes. `0` disables tier B.
    pub exact_node_limit: usize,
    /// Cap on the shared BDD manager's node count during a tier B
    /// compare. Network size is a poor proxy for BDD size (a small
    /// multiplier cone explodes where a wide adder stays linear), so the
    /// build itself is budgeted: blowing the cap abandons tier B —
    /// escalating to the tier C miter under [`TierPolicy::Auto`],
    /// degrading to a sampled pass otherwise. `0` means unlimited.
    pub bdd_node_budget: usize,
    /// Which exact tiers may run after tier A samples clean.
    pub tier: TierPolicy,
    /// Tier C solver budget. A zero [`SatOptions::conflict_budget`]
    /// disables tier C even under policies that would run it.
    pub sat: SatOptions,
    /// Wall-clock deadline shared with the surrounding job/sweep. When
    /// set, the tier C conflict budget is *derived from the remaining
    /// time* before every SAT run (using the guard's observed
    /// nanoseconds-per-conflict rate), so a single miter check can never
    /// overrun the deadline by more than one conflict's worth of work.
    /// When the window cannot afford even one conflict (or has already
    /// passed), the check returns [`GuardDecision::OutOfTime`]: the
    /// rewrite is refused and the sweep interrupts, rather than quietly
    /// degrading the evidence to a sampled pass.
    pub deadline: Option<Instant>,
}

impl Default for GuardConfig {
    fn default() -> GuardConfig {
        GuardConfig {
            words: 4,
            seed: 0x6A5D_0CE1_1B0A_7E0F,
            exhaustive_inputs: 12,
            exact_node_limit: 4096,
            bdd_node_budget: 1 << 18,
            tier: TierPolicy::Auto,
            sat: SatOptions::default(),
            deadline: None,
        }
    }
}

/// Which exact tier(s) back up the simulation screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierPolicy {
    /// Tier A only: sampled passes are accepted as-is.
    Sim,
    /// `sim → BDD(node_limit)`: the pre-SAT pipeline. Networks over the
    /// node limit degrade to a sampled pass.
    Bdd,
    /// `sim → SAT(conflict_budget)`: skip the BDD compare entirely.
    Sat,
    /// `sim → BDD(node_limit) → SAT(conflict_budget)`: BDDs where they
    /// are cheap, the miter where they are not.
    #[default]
    Auto,
}

impl TierPolicy {
    /// Every policy, in escalation order.
    pub const ALL: [TierPolicy; 4] = [
        TierPolicy::Sim,
        TierPolicy::Bdd,
        TierPolicy::Sat,
        TierPolicy::Auto,
    ];

    /// Stable lowercase label (CLI flag values, JSON rows).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TierPolicy::Sim => "sim",
            TierPolicy::Bdd => "bdd",
            TierPolicy::Sat => "sat",
            TierPolicy::Auto => "auto",
        }
    }

    /// Inverse of [`TierPolicy::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<TierPolicy> {
        TierPolicy::ALL.into_iter().find(|t| t.name() == name)
    }
}

/// How one guard check concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardDecision {
    /// All primary outputs match on an exhaustive pool: exact equivalence.
    PassExhaustive,
    /// Tier A sampled clean and the tier B BDD compare proved equivalence.
    PassExact,
    /// Tier A sampled clean; tier B was out of budget. Not a proof — but
    /// the rewrite also passed the engine's own redundancy reasoning, so
    /// two independent mechanisms now agree.
    PassSampled,
    /// A pool pattern evaluates the named output differently pre vs post:
    /// a concrete counterexample, conclusive regardless of pool kind.
    RefutedSim {
        /// Name of the first mismatching primary output.
        output: String,
    },
    /// The tier B BDD compare found a primary output whose function
    /// changed (on a point the sampled pool missed).
    RefutedExact {
        /// Name of the first mismatching primary output.
        output: String,
    },
    /// Tier A sampled clean and the tier C miter was proved UNSAT:
    /// exact equivalence by SAT.
    PassSat,
    /// The tier C miter is satisfiable: some input assignment (found by
    /// the solver, missed by the pool) distinguishes the named output.
    RefutedSat {
        /// Name of the first mismatching primary output.
        output: String,
    },
    /// The remaining [`GuardConfig::deadline`] window could not afford an
    /// exact tier C verdict (or a deadline-capped run came back unknown).
    /// This is a *refusal*, not a sampled pass: the caller must undo the
    /// unproven rewrite and treat the sweep as deadline-interrupted —
    /// degrading to [`GuardDecision::PassSampled`] here would let result
    /// quality silently depend on wall-clock load.
    OutOfTime,
}

impl GuardDecision {
    /// Whether the rewrite may stand.
    #[must_use]
    pub fn passed(&self) -> bool {
        matches!(
            self,
            GuardDecision::PassExhaustive
                | GuardDecision::PassExact
                | GuardDecision::PassSampled
                | GuardDecision::PassSat
        )
    }

    /// Whether the decision is a *proof* of equivalence (exhaustive
    /// pool, BDD, or UNSAT miter), as opposed to a sampled pass.
    #[must_use]
    pub fn exact(&self) -> bool {
        matches!(
            self,
            GuardDecision::PassExhaustive | GuardDecision::PassExact | GuardDecision::PassSat
        )
    }

    /// The tier that produced the decision: `"sim"`, `"bdd"`, `"sat"`,
    /// `"sampled"` (no exact tier had budget), or `"deadline"` (tier C
    /// refused for lack of remaining time). Stable labels, used by the
    /// trace exporters and BENCH_guard.json.
    #[must_use]
    pub fn tier_name(&self) -> &'static str {
        match self {
            GuardDecision::PassExhaustive | GuardDecision::RefutedSim { .. } => "sim",
            GuardDecision::PassExact | GuardDecision::RefutedExact { .. } => "bdd",
            GuardDecision::PassSat | GuardDecision::RefutedSat { .. } => "sat",
            GuardDecision::PassSampled => "sampled",
            GuardDecision::OutOfTime => "deadline",
        }
    }
}

/// Stable tier labels in decision-tier index order (matches
/// [`GuardDecision::tier_name`] values).
const TIER_NAMES: [&str; 5] = ["sim", "bdd", "sat", "sampled", "deadline"];

/// Instruments resolved once at [`Guard::attach_metrics`] time: the
/// per-check hot path then only touches atomics. Tier latency
/// histograms are keyed by the tier that *decided* the check, so the
/// sim bucket holds pure-tier-A latencies while the sat bucket holds
/// the full escalated cost.
#[derive(Debug, Clone)]
struct GuardMetrics {
    checks: Counter,
    tier: [Counter; 5],
    check_ns: [Histogram; 5],
    escalations_bdd: Counter,
    escalations_sat: Counter,
    sat_conflicts: Counter,
    sat_restarts: Counter,
    sat_learnt: Counter,
}

impl GuardMetrics {
    fn resolve(handle: &MetricsHandle) -> GuardMetrics {
        GuardMetrics {
            checks: handle.counter("guard.checks"),
            tier: std::array::from_fn(|i| handle.counter(&format!("guard.tier.{}", TIER_NAMES[i]))),
            check_ns: std::array::from_fn(|i| {
                handle.histogram(&format!("guard.check_ns.{}", TIER_NAMES[i]))
            }),
            escalations_bdd: handle.counter("guard.escalations.bdd"),
            escalations_sat: handle.counter("guard.escalations.sat"),
            sat_conflicts: handle.counter("sat.conflicts"),
            sat_restarts: handle.counter("sat.restarts"),
            sat_learnt: handle.counter("sat.learnt_clauses"),
        }
    }
}

/// The guard pipeline: owns its pattern pools (one per input count, built
/// lazily and reused across checks) and a few diagnostic counters.
#[derive(Debug, Clone)]
pub struct Guard {
    config: GuardConfig,
    pools: HashMap<usize, PatternPool>,
    checks: u64,
    exact_runs: u64,
    sat_runs: u64,
    sampled_passes: u64,
    sat_skipped_deadline: u64,
    bdd_over_budget: u64,
    /// EWMA of observed tier C cost in nanoseconds per conflict, used to
    /// translate remaining deadline time into an affordable conflict
    /// budget. Seeded conservatively (20 µs/conflict ≈ the miter's
    /// per-node encode + solve overhead on the corpus multipliers) and
    /// refined after every SAT run that spent at least one conflict.
    sat_ns_per_conflict: f64,
    metrics: Option<GuardMetrics>,
}

/// Seed estimate for [`Guard::sat_ns_per_conflict`] before any tier C
/// run has been observed.
const SAT_NS_PER_CONFLICT_SEED: f64 = 20_000.0;

/// Translates a remaining-deadline window into a tier C conflict budget:
/// the configured budget capped by how many conflicts the observed rate
/// says fit into `remaining`. `None` means tier C cannot afford even one
/// conflict (or is disabled) and the caller must degrade.
#[must_use]
pub fn sat_budget_for_deadline(
    configured: u64,
    remaining: Option<Duration>,
    ns_per_conflict: f64,
) -> Option<u64> {
    if configured == 0 {
        return None;
    }
    let Some(remaining) = remaining else {
        return Some(configured);
    };
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    #[allow(clippy::cast_sign_loss)]
    let affordable = (remaining.as_nanos() as f64 / ns_per_conflict.max(1.0)) as u64;
    if affordable == 0 {
        return None;
    }
    Some(configured.min(affordable))
}

impl Guard {
    /// Creates a guard with the given tunables.
    #[must_use]
    pub fn new(config: GuardConfig) -> Guard {
        Guard {
            config,
            pools: HashMap::new(),
            checks: 0,
            exact_runs: 0,
            sat_runs: 0,
            sampled_passes: 0,
            sat_skipped_deadline: 0,
            bdd_over_budget: 0,
            sat_ns_per_conflict: SAT_NS_PER_CONFLICT_SEED,
            metrics: None,
        }
    }

    /// Replaces the wall-clock deadline for subsequent checks (the other
    /// tunables are untouched). A long-running service sets this per job
    /// on a guard it reuses across jobs.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.config.deadline = deadline;
    }

    /// Adopts a new configuration while keeping the learned state (the
    /// cached pattern pools and the observed SAT rate) whenever the pool
    /// shape is unchanged. Pools are keyed by input count but built from
    /// `(words, seed, exhaustive_inputs)`, so a change to any of those
    /// drops the cache rather than serving stale-shaped pools.
    pub fn adopt_config(&mut self, config: GuardConfig) {
        let pools_stale = config.words != self.config.words
            || config.seed != self.config.seed
            || config.exhaustive_inputs != self.config.exhaustive_inputs;
        if pools_stale {
            self.pools.clear();
        }
        self.config = config;
    }

    /// Attaches a metrics registry: every subsequent check books
    /// `guard.checks`, per-tier decision counts (`guard.tier.<tier>`),
    /// per-tier latency histograms (`guard.check_ns.<tier>`),
    /// escalation counters (`guard.escalations.{bdd,sat}`), and the
    /// tier C solver effort (`sat.{conflicts,restarts,learnt_clauses}`).
    /// Observation only — decisions are identical with or without it.
    pub fn attach_metrics(&mut self, handle: &MetricsHandle) {
        self.metrics = Some(GuardMetrics::resolve(handle));
    }

    /// Number of [`Guard::check`] calls so far.
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of checks that escalated to the tier B BDD compare.
    #[must_use]
    pub fn exact_runs(&self) -> u64 {
        self.exact_runs
    }

    /// Number of checks that escalated to the tier C SAT miter.
    #[must_use]
    pub fn sat_runs(&self) -> u64 {
        self.sat_runs
    }

    /// Number of checks that ended in [`GuardDecision::PassSampled`] —
    /// every exact tier was out of budget and the verdict rests on the
    /// random pool alone.
    #[must_use]
    pub fn sampled_passes(&self) -> u64 {
        self.sampled_passes
    }

    /// Number of tier C escalations that returned
    /// [`GuardDecision::OutOfTime`] because the remaining deadline window
    /// could not afford (or complete) a single exact run.
    #[must_use]
    pub fn sat_skipped_deadline(&self) -> u64 {
        self.sat_skipped_deadline
    }

    /// Number of tier B runs abandoned because the BDD build blew
    /// [`GuardConfig::bdd_node_budget`] (each escalated to tier C under
    /// [`TierPolicy::Auto`], or degraded to a sampled pass otherwise).
    #[must_use]
    pub fn bdd_over_budget(&self) -> u64 {
        self.bdd_over_budget
    }

    /// Checks that `post` (the network after an accepted rewrite) still
    /// computes the same primary-output functions as `pre` (the
    /// reconstructed pre-state). The two networks must have identical
    /// primary-input and output declarations — `pre` is a rollback of a
    /// clone of `post`, so the engine guarantees this; a structural
    /// mismatch is reported as a refutation rather than trusted.
    pub fn check(&mut self, pre: &Network, post: &Network) -> GuardDecision {
        let t0 = self.metrics.as_ref().map(|_| Instant::now());
        let decision = self.check_inner(pre, post);
        if let (Some(m), Some(t0)) = (&self.metrics, t0) {
            m.checks.inc();
            let i = TIER_NAMES
                .iter()
                .position(|&t| t == decision.tier_name())
                .expect("known tier");
            m.tier[i].inc();
            m.check_ns[i].observe(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        decision
    }

    fn check_inner(&mut self, pre: &Network, post: &Network) -> GuardDecision {
        self.checks += 1;
        if pre.inputs().len() != post.inputs().len() || pre.outputs().len() != post.outputs().len()
        {
            return GuardDecision::RefutedSim {
                output: "<interface mismatch>".to_string(),
            };
        }

        // Tier A: word-parallel signatures over the shared pool.
        let n = pre.inputs().len();
        let config = self.config;
        let pool = self.pools.entry(n).or_insert_with(|| {
            if n <= config.exhaustive_inputs.min(16) {
                PatternPool::exhaustive(n)
            } else {
                PatternPool::random(n, config.words, 0, config.seed)
            }
        });
        let exhaustive = n <= config.exhaustive_inputs.min(16);
        let pre_table = SimTable::build(pre, pool);
        let post_table = SimTable::build(post, pool);
        let words = pool.words();
        for (k, (name, o)) in pre.outputs().iter().enumerate() {
            let (post_name, post_o) = &post.outputs()[k];
            if name != post_name {
                return GuardDecision::RefutedSim {
                    output: "<interface mismatch>".to_string(),
                };
            }
            let a = pre_table.sig(pre, *o);
            let b = post_table.sig(post, *post_o);
            for w in 0..words {
                if (a[w] ^ b[w]) & pool.mask(w) != 0 {
                    return GuardDecision::RefutedSim {
                        output: name.clone(),
                    };
                }
            }
        }
        if exhaustive {
            return GuardDecision::PassExhaustive;
        }

        // Tier A sampled clean: escalate to whichever exact backend the
        // policy allows and can afford. A path that runs out of *budget*
        // falls through to a (counted) sampled pass; a tier C run that
        // runs out of *deadline* instead refuses with `OutOfTime`, so a
        // loaded machine interrupts the sweep rather than quietly
        // lowering the evidence bar.
        let bdd_affordable =
            self.config.exact_node_limit != 0 && post.len() <= self.config.exact_node_limit;
        let decision = match self.config.tier {
            TierPolicy::Sim => None,
            TierPolicy::Bdd => bdd_affordable.then(|| self.check_bdd(pre, post)).flatten(),
            TierPolicy::Sat => self.check_sat(pre, post),
            TierPolicy::Auto => {
                match bdd_affordable.then(|| self.check_bdd(pre, post)).flatten() {
                    Some(d) => Some(d),
                    // Tier B unaffordable or its build blew the node
                    // budget: fall through to the miter.
                    None => self.check_sat(pre, post),
                }
            }
        };
        decision.unwrap_or_else(|| {
            self.sampled_passes += 1;
            GuardDecision::PassSampled
        })
    }

    /// Tier B: exact BDD compare of the primary-output functions, capped
    /// by [`GuardConfig::bdd_node_budget`]. `None` means the build blew
    /// the budget before reaching a verdict — the caller escalates (Auto)
    /// or degrades to a sampled pass.
    fn check_bdd(&mut self, pre: &Network, post: &Network) -> Option<GuardDecision> {
        self.exact_runs += 1;
        if let Some(m) = &self.metrics {
            m.escalations_bdd.inc();
        }
        match outputs_equal_exact(pre, post, self.config.bdd_node_budget) {
            Ok(None) => Some(GuardDecision::PassExact),
            Ok(Some(output)) => Some(GuardDecision::RefutedExact { output }),
            Err(BddOverBudget) => {
                self.bdd_over_budget += 1;
                None
            }
        }
    }

    /// Tier C: Tseitin miter under the configured conflict budget,
    /// further capped by the remaining deadline time (see
    /// [`GuardConfig::deadline`]). Returns `None` when tier C is disabled
    /// or the *configured* budget runs dry — the caller degrades to a
    /// sampled pass. Returns [`GuardDecision::OutOfTime`] when the
    /// *deadline* is what stopped it (expired, cannot afford one
    /// conflict, or a deadline-capped run came back unknown) — the
    /// caller must refuse the rewrite.
    fn check_sat(&mut self, pre: &Network, post: &Network) -> Option<GuardDecision> {
        if self.config.sat.conflict_budget == 0 {
            return None;
        }
        let remaining = match self.config.deadline {
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    self.sat_skipped_deadline += 1;
                    return Some(GuardDecision::OutOfTime);
                }
                Some(d - now)
            }
            None => None,
        };
        let Some(budget) = sat_budget_for_deadline(
            self.config.sat.conflict_budget,
            remaining,
            self.sat_ns_per_conflict,
        ) else {
            self.sat_skipped_deadline += 1;
            return Some(GuardDecision::OutOfTime);
        };
        self.sat_runs += 1;
        let t0 = Instant::now();
        let (result, stats) = boolsubst_sat::check_equivalence_with_stats(
            pre,
            post,
            SatOptions {
                conflict_budget: budget,
            },
        );
        if stats.conflicts > 0 {
            // Refine the time-per-conflict estimate (EWMA, alpha 0.3) so
            // deadline-derived budgets track this workload's real rate.
            #[allow(clippy::cast_precision_loss)]
            let observed = nanos_f64(t0.elapsed()) / stats.conflicts as f64;
            self.sat_ns_per_conflict = 0.7 * self.sat_ns_per_conflict + 0.3 * observed;
        }
        if let Some(m) = &self.metrics {
            m.escalations_sat.inc();
            m.sat_conflicts.add(stats.conflicts);
            m.sat_restarts.add(stats.restarts);
            m.sat_learnt.add(stats.learnt_clauses);
        }
        match result {
            EquivResult::Equivalent => Some(GuardDecision::PassSat),
            EquivResult::Inequivalent { output, .. } => Some(GuardDecision::RefutedSat { output }),
            EquivResult::InterfaceMismatch => Some(GuardDecision::RefutedSat {
                output: "<interface mismatch>".to_string(),
            }),
            // Unknown under the full configured budget is a genuine
            // budget exhaustion (degrade to sampled); unknown under a
            // deadline-shrunk budget means the clock, not the budget,
            // stopped the proof.
            EquivResult::Unknown(_) if budget < self.config.sat.conflict_budget => {
                self.sat_skipped_deadline += 1;
                Some(GuardDecision::OutOfTime)
            }
            EquivResult::Unknown(_) => None,
        }
    }
}

/// `Duration` as f64 nanoseconds (saturating, precision loss accepted
/// for rate estimation).
#[allow(clippy::cast_precision_loss)]
fn nanos_f64(d: Duration) -> f64 {
    d.as_nanos() as f64
}

/// Marker error: a budgeted BDD build exceeded its node cap before
/// reaching a verdict.
struct BddOverBudget;

/// Shared-manager BDD comparison of primary-output functions. Inputs are
/// matched positionally: `pre` is a rolled-back clone of `post`, so input
/// `i` of one *is* input `i` of the other. Returns the name of the first
/// differing output, `None` when all outputs agree, or
/// [`BddOverBudget`] when the manager grew past `node_budget` nodes
/// mid-build (`0` = unlimited).
fn outputs_equal_exact(
    pre: &Network,
    post: &Network,
    node_budget: usize,
) -> Result<Option<String>, BddOverBudget> {
    let n = pre.inputs().len();
    let mut bdd = Bdd::new(n);
    let build = |bdd: &mut Bdd, net: &Network| -> Result<Vec<Option<Ref>>, BddOverBudget> {
        let mut node_fn: Vec<Option<Ref>> = vec![None; net.id_bound()];
        for (i, &pi) in net.inputs().iter().enumerate() {
            node_fn[pi.index()] = Some(bdd.var(i));
        }
        for id in net.topo_order() {
            let node = net.node(id);
            let Some(cover) = node.cover() else { continue };
            let mut acc = bdd.zero();
            for cube in cover.cubes() {
                let mut term = bdd.one();
                for l in cube.lits() {
                    let fan: NodeId = node.fanins()[l.var];
                    let f = node_fn[fan.index()].expect("topo order");
                    let lit = match l.phase {
                        Phase::Pos => f,
                        Phase::Neg => bdd.not(f),
                    };
                    term = bdd.and(term, lit);
                }
                acc = bdd.or(acc, term);
            }
            if node_budget != 0 && bdd.node_count() > node_budget {
                return Err(BddOverBudget);
            }
            node_fn[id.index()] = Some(acc);
        }
        Ok(node_fn)
    };
    let pre_fn = build(&mut bdd, pre)?;
    let post_fn = build(&mut bdd, post)?;
    for (k, (name, o)) in pre.outputs().iter().enumerate() {
        let (_, post_o) = &post.outputs()[k];
        let a = pre_fn[o.index()].expect("driver built");
        let b = post_fn[post_o.index()].expect("driver built");
        if a != b {
            return Ok(Some(name.clone()));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_cube::parse_sop;

    fn small_pair() -> (Network, Network) {
        let build = |flip: bool| {
            let mut net = Network::new("g");
            let a = net.add_input("a").expect("a");
            let b = net.add_input("b").expect("b");
            let sop = if flip { "a + b" } else { "ab" };
            let f = net
                .add_node("f", vec![a, b], parse_sop(2, sop).expect("f"))
                .expect("f");
            net.add_output("f", f).expect("of");
            net
        };
        (build(false), build(true))
    }

    /// A 20-input conjunction vs. the same network with the output
    /// constant-0: the functions differ only on the all-ones minterm,
    /// which a 256-pattern random pool misses (seeded, deterministic).
    fn wide_pair() -> (Network, Network) {
        let build = |constant: bool| {
            let mut net = Network::new("wide");
            let pis: Vec<NodeId> = (0..20)
                .map(|k| net.add_input(format!("x{k}")).expect("pi"))
                .collect();
            let cover = if constant {
                boolsubst_cube::Cover::new(20)
            } else {
                let mut cube = boolsubst_cube::Cube::universe(20);
                for v in 0..20 {
                    cube.restrict(boolsubst_cube::Lit::pos(v));
                }
                let mut c = boolsubst_cube::Cover::new(20);
                c.push(cube);
                c
            };
            let f = net.add_node("f", pis, cover).expect("f");
            net.add_output("f", f).expect("of");
            net
        };
        (build(false), build(true))
    }

    #[test]
    fn identical_small_networks_pass_exhaustively() {
        let (pre, _) = small_pair();
        let mut guard = Guard::new(GuardConfig::default());
        assert_eq!(
            guard.check(&pre, &pre.clone()),
            GuardDecision::PassExhaustive
        );
        assert_eq!(guard.checks(), 1);
        assert_eq!(guard.exact_runs(), 0, "exhaustive tier A needs no tier B");
    }

    #[test]
    fn changed_output_function_is_refuted_by_tier_a() {
        let (pre, post) = small_pair();
        let mut guard = Guard::new(GuardConfig::default());
        assert_eq!(
            guard.check(&pre, &post),
            GuardDecision::RefutedSim {
                output: "f".to_string()
            }
        );
    }

    #[test]
    fn sampled_miss_is_caught_by_tier_b() {
        let (pre, post) = wide_pair();
        let mut guard = Guard::new(GuardConfig::default());
        assert_eq!(
            guard.check(&pre, &post),
            GuardDecision::RefutedExact {
                output: "f".to_string()
            },
            "the random pool must miss the all-ones minterm, the BDD must not"
        );
        assert_eq!(guard.exact_runs(), 1);
    }

    #[test]
    fn tier_b_budget_zero_escalates_to_sat_under_auto() {
        let (pre, post) = wide_pair();
        let mut guard = Guard::new(GuardConfig {
            exact_node_limit: 0,
            ..GuardConfig::default()
        });
        assert_eq!(
            guard.check(&pre, &post),
            GuardDecision::RefutedSat {
                output: "f".to_string()
            },
            "with tier B out of budget, Auto must fall through to the miter"
        );
        assert_eq!(guard.exact_runs(), 0);
        assert_eq!(guard.sat_runs(), 1);
    }

    #[test]
    fn bdd_node_budget_blown_escalates_to_sat_under_auto() {
        let (pre, post) = wide_pair();
        let mut guard = Guard::new(GuardConfig {
            bdd_node_budget: 1,
            ..GuardConfig::default()
        });
        assert_eq!(
            guard.check(&pre, &post),
            GuardDecision::RefutedSat {
                output: "f".to_string()
            },
            "a blown BDD build must fall through to the miter, not hang"
        );
        assert_eq!(guard.exact_runs(), 1, "tier B was attempted");
        assert_eq!(guard.bdd_over_budget(), 1);
        assert_eq!(guard.sat_runs(), 1);
    }

    #[test]
    fn bdd_node_budget_blown_degrades_to_sampled_under_bdd_policy() {
        let (pre, post) = wide_pair();
        let mut guard = Guard::new(GuardConfig {
            tier: TierPolicy::Bdd,
            bdd_node_budget: 1,
            ..GuardConfig::default()
        });
        assert_eq!(guard.check(&pre, &post), GuardDecision::PassSampled);
        assert_eq!(guard.bdd_over_budget(), 1);
        assert_eq!(guard.sat_runs(), 0, "Bdd policy must never touch the miter");
    }

    #[test]
    fn all_exact_budgets_zero_degrades_to_sampled_pass() {
        let (pre, post) = wide_pair();
        let mut guard = Guard::new(GuardConfig {
            exact_node_limit: 0,
            sat: SatOptions { conflict_budget: 0 },
            ..GuardConfig::default()
        });
        let decision = guard.check(&pre, &post);
        assert_eq!(decision, GuardDecision::PassSampled);
        assert!(decision.passed());
        assert!(!decision.exact());
        assert_eq!(decision.tier_name(), "sampled");
        assert_eq!(guard.sampled_passes(), 1);
        assert_eq!(guard.sat_runs(), 0);
    }

    #[test]
    fn sat_policy_skips_bdd_and_refutes_by_miter() {
        let (pre, post) = wide_pair();
        let mut guard = Guard::new(GuardConfig {
            tier: TierPolicy::Sat,
            ..GuardConfig::default()
        });
        let decision = guard.check(&pre, &post);
        assert_eq!(
            decision,
            GuardDecision::RefutedSat {
                output: "f".to_string()
            }
        );
        assert!(!decision.passed());
        assert_eq!(decision.tier_name(), "sat");
        assert_eq!(guard.exact_runs(), 0, "Sat policy must never touch the BDD");
        assert_eq!(guard.sat_runs(), 1);
    }

    #[test]
    fn sat_policy_proves_identical_wide_networks() {
        let (pre, _) = wide_pair();
        let mut guard = Guard::new(GuardConfig {
            tier: TierPolicy::Sat,
            ..GuardConfig::default()
        });
        let decision = guard.check(&pre, &pre.clone());
        assert_eq!(decision, GuardDecision::PassSat);
        assert!(decision.passed());
        assert!(decision.exact());
    }

    #[test]
    fn sim_policy_accepts_sampled_pass_without_escalation() {
        let (pre, post) = wide_pair();
        let mut guard = Guard::new(GuardConfig {
            tier: TierPolicy::Sim,
            ..GuardConfig::default()
        });
        assert_eq!(guard.check(&pre, &post), GuardDecision::PassSampled);
        assert_eq!(guard.exact_runs(), 0);
        assert_eq!(guard.sat_runs(), 0);
        assert_eq!(guard.sampled_passes(), 1);
    }

    #[test]
    fn tier_policy_names_round_trip() {
        for policy in TierPolicy::ALL {
            assert_eq!(TierPolicy::from_name(policy.name()), Some(policy));
        }
        assert_eq!(TierPolicy::from_name("nope"), None);
    }

    #[test]
    fn identical_wide_networks_pass_exactly() {
        let (pre, _) = wide_pair();
        let mut guard = Guard::new(GuardConfig::default());
        assert_eq!(guard.check(&pre, &pre.clone()), GuardDecision::PassExact);
    }

    #[test]
    fn expired_deadline_refuses_tier_c_with_out_of_time() {
        let (pre, post) = wide_pair();
        let mut guard = Guard::new(GuardConfig {
            tier: TierPolicy::Sat,
            deadline: Some(Instant::now() - Duration::from_secs(1)),
            ..GuardConfig::default()
        });
        let decision = guard.check(&pre, &post);
        assert_eq!(decision, GuardDecision::OutOfTime);
        assert!(!decision.passed(), "OutOfTime must refuse the rewrite");
        assert!(!decision.exact());
        assert_eq!(decision.tier_name(), "deadline");
        assert_eq!(guard.sat_runs(), 0, "expired deadline must not run SAT");
        assert_eq!(guard.sat_skipped_deadline(), 1);
        assert_eq!(guard.sampled_passes(), 0, "a refusal is not a sampled pass");
    }

    #[test]
    fn generous_deadline_still_runs_tier_c() {
        let (pre, post) = wide_pair();
        let mut guard = Guard::new(GuardConfig {
            tier: TierPolicy::Sat,
            deadline: Some(Instant::now() + Duration::from_secs(3600)),
            ..GuardConfig::default()
        });
        assert_eq!(
            guard.check(&pre, &post),
            GuardDecision::RefutedSat {
                output: "f".to_string()
            }
        );
        assert_eq!(guard.sat_runs(), 1);
        assert_eq!(guard.sat_skipped_deadline(), 0);
    }

    #[test]
    fn sat_budget_derivation_caps_by_remaining_time() {
        // Disabled budget: never run, deadline or not.
        assert_eq!(sat_budget_for_deadline(0, None, 20_000.0), None);
        assert_eq!(
            sat_budget_for_deadline(0, Some(Duration::from_secs(10)), 20_000.0),
            None
        );
        // No deadline: configured budget passes through untouched.
        assert_eq!(sat_budget_for_deadline(5_000, None, 20_000.0), Some(5_000));
        // Generous remaining time: capped at the configured budget.
        assert_eq!(
            sat_budget_for_deadline(5_000, Some(Duration::from_secs(3600)), 20_000.0),
            Some(5_000)
        );
        // Tight remaining time: capped by what the observed rate affords.
        // 1 ms at 20 µs/conflict affords exactly 50 conflicts.
        assert_eq!(
            sat_budget_for_deadline(5_000, Some(Duration::from_millis(1)), 20_000.0),
            Some(50)
        );
        // Less than one conflict's worth of time: degrade instead of run.
        assert_eq!(
            sat_budget_for_deadline(5_000, Some(Duration::from_nanos(100)), 20_000.0),
            None
        );
    }

    #[test]
    fn set_deadline_retargets_a_reused_guard() {
        let (pre, post) = wide_pair();
        let mut guard = Guard::new(GuardConfig {
            tier: TierPolicy::Sat,
            ..GuardConfig::default()
        });
        guard.set_deadline(Some(Instant::now() - Duration::from_secs(1)));
        assert_eq!(guard.check(&pre, &post), GuardDecision::OutOfTime);
        assert_eq!(guard.sat_skipped_deadline(), 1);
        guard.set_deadline(None);
        assert_eq!(
            guard.check(&pre, &post),
            GuardDecision::RefutedSat {
                output: "f".to_string()
            }
        );
    }

    #[test]
    fn adopt_config_keeps_pools_when_shape_unchanged() {
        let (wide, _) = wide_pair();
        let mut guard = Guard::new(GuardConfig::default());
        guard.check(&wide, &wide.clone());
        assert_eq!(guard.pools.len(), 1);
        // Same pool shape, different exact tier tunables: cache survives.
        guard.adopt_config(GuardConfig {
            exact_node_limit: 1,
            tier: TierPolicy::Sim,
            deadline: Some(Instant::now()),
            ..GuardConfig::default()
        });
        assert_eq!(guard.pools.len(), 1, "pool cache must survive re-tuning");
        // A seed change invalidates the cached pools.
        guard.adopt_config(GuardConfig {
            seed: 1,
            ..GuardConfig::default()
        });
        assert_eq!(guard.pools.len(), 0, "stale-shaped pools must be dropped");
    }

    #[test]
    fn pools_are_cached_per_input_count() {
        let (pre, _) = small_pair();
        let (wide, _) = wide_pair();
        let mut guard = Guard::new(GuardConfig::default());
        guard.check(&pre, &pre.clone());
        guard.check(&wide, &wide.clone());
        guard.check(&pre, &pre.clone());
        assert_eq!(guard.pools.len(), 2);
        assert_eq!(guard.checks(), 3);
    }
}
