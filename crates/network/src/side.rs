//! Incrementally maintained structural side tables for sweep sessions.
//!
//! [`Network`] answers structural queries (`fanouts`, `tfo`, `topo_order`)
//! by recomputing them from scratch — fine for one-shot calls, quadratic
//! when a substitution sweep asks them once per candidate pair. A
//! [`SideTables`] instance is built once per session and then *patched*
//! after each accepted edit instead of rebuilt:
//!
//! - **fanout lists** are updated edge-by-edge from the fanin diff;
//! - **levels** (longest path from the inputs) are repaired with a
//!   worklist that only visits the region whose level actually changed;
//! - **transitive fanouts** are memoized per node and invalidated only
//!   when a changed edge could have been reachable from the cached node.
//!
//! Staleness is a real hazard for this kind of cache, so every query
//! asserts that the tables were synchronised with the network's current
//! [`Network::version`]. Forgetting to call [`SideTables::sync_new_nodes`]
//! / [`SideTables::apply_replace`] after an edit is a panic, not a wrong
//! answer.

use crate::net::{Network, NodeId};
use std::collections::{HashMap, HashSet};

/// The version-checked synchronisation stamp shared by every incremental
/// side structure ([`SideTables`], the simulation signature table in
/// `boolsubst-sim`, ...).
///
/// A stamp records the [`Network::version`] its owner was last
/// synchronised with. Queries call [`VersionStamp::check`] so that a
/// forgotten patch is a panic instead of a silently wrong answer; patch
/// routines call [`VersionStamp::mark`] once the owner is up to date.
#[derive(Debug, Clone, Copy)]
pub struct VersionStamp {
    synced: u64,
}

impl VersionStamp {
    /// A stamp synchronised with the network's current state.
    #[must_use]
    pub fn new(net: &Network) -> VersionStamp {
        VersionStamp {
            synced: net.version(),
        }
    }

    /// True if no edit has happened since the last [`VersionStamp::mark`].
    #[must_use]
    pub fn is_synced(&self, net: &Network) -> bool {
        self.synced == net.version()
    }

    /// Asserts freshness; `what` names the owning structure in the panic.
    ///
    /// # Panics
    ///
    /// Panics if the network was edited since the last synchronisation.
    pub fn check(&self, net: &Network, what: &str) {
        assert_eq!(
            self.synced,
            net.version(),
            "{what} out of sync: network was edited without patching"
        );
    }

    /// Records that the owner is synchronised with the current version.
    pub fn mark(&mut self, net: &Network) {
        self.synced = net.version();
    }
}

/// Session-lifetime caches of fanouts, levels, and transitive fanouts.
///
/// See the module docs for the maintenance contract. All dense tables are
/// indexed by [`NodeId::index`].
#[derive(Debug, Clone)]
pub struct SideTables {
    /// Stamp recording the `Network::version` these tables reflect.
    stamp: VersionStamp,
    fanouts: Vec<Vec<NodeId>>,
    levels: Vec<u32>,
    tfo: HashMap<NodeId, HashSet<NodeId>>,
    /// Cumulative count of memoized-TFO reuses (observability).
    tfo_hits: u64,
    /// Cumulative count of TFO recomputations (observability).
    tfo_misses: u64,
    /// Monotone patch counter: bumped by every synchronisation
    /// ([`SideTables::sync_new_nodes`], [`SideTables::apply_replace`],
    /// [`SideTables::apply_remove`]). Epoch-scoped consumers — the parallel
    /// sweep's per-worker shadow caches and verdict tables — tag entries
    /// with the epoch they were computed against and treat a mismatch as
    /// an invalidation, instead of comparing whole structures.
    epoch: u64,
}

// The parallel sweep shares `&SideTables` (and `&Network`) across worker
// threads; neither type may grow interior mutability without revisiting
// that design. Compile-time pin:
const _: fn() = || {
    fn sync_only<T: Sync>() {}
    sync_only::<SideTables>();
    sync_only::<Network>();
};

impl SideTables {
    /// Builds the tables from scratch for the network's current state.
    #[must_use]
    pub fn build(net: &Network) -> SideTables {
        let fanouts = net.fanouts();
        let levels = compute_levels(net, &fanouts);
        SideTables {
            stamp: VersionStamp::new(net),
            fanouts,
            levels,
            tfo: HashMap::new(),
            tfo_hits: 0,
            tfo_misses: 0,
            epoch: 0,
        }
    }

    /// The current patch epoch (see the `epoch` field). Starts at 0 and
    /// increases by one per synchronisation; never decreases.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn assert_synced(&self, net: &Network) {
        self.stamp.check(net, "SideTables");
    }

    /// True if no edit has happened since the last synchronisation.
    #[must_use]
    pub fn is_synced(&self, net: &Network) -> bool {
        self.stamp.is_synced(net)
    }

    /// Fanout list of `id` (nodes that list `id` as a fanin).
    ///
    /// # Panics
    ///
    /// Panics if the tables are stale.
    #[must_use]
    pub fn fanouts(&self, net: &Network, id: NodeId) -> &[NodeId] {
        self.assert_synced(net);
        &self.fanouts[id.index()]
    }

    /// Longest-path depth of `id` from the primary inputs (inputs and
    /// constant nodes are level 0). Along every edge `u -> v`,
    /// `level(u) < level(v)`, so `level(d) <= level(t)` proves `d` is not
    /// in the transitive fanout of `t`.
    ///
    /// # Panics
    ///
    /// Panics if the tables are stale.
    #[must_use]
    pub fn level(&self, net: &Network, id: NodeId) -> u32 {
        self.assert_synced(net);
        self.levels[id.index()]
    }

    /// Memoized transitive fanout of `of` (excluding `of` itself).
    ///
    /// # Panics
    ///
    /// Panics if the tables are stale.
    pub fn tfo(&mut self, net: &Network, of: NodeId) -> &HashSet<NodeId> {
        self.assert_synced(net);
        if self.tfo.contains_key(&of) {
            self.tfo_hits += 1;
        } else {
            self.tfo_misses += 1;
            let mut seen = HashSet::new();
            let mut stack: Vec<NodeId> = self.fanouts[of.index()].clone();
            while let Some(n) = stack.pop() {
                if seen.insert(n) {
                    stack.extend(self.fanouts[n.index()].iter().copied());
                }
            }
            self.tfo.insert(of, seen);
        }
        &self.tfo[&of]
    }

    /// True if `node` lies in the transitive fanout of `of`. Uses the level
    /// table as a short-circuit before touching the memoized TFO set.
    ///
    /// # Panics
    ///
    /// Panics if the tables are stale.
    pub fn in_tfo(&mut self, net: &Network, node: NodeId, of: NodeId) -> bool {
        self.assert_synced(net);
        if self.levels[node.index()] <= self.levels[of.index()] {
            return false;
        }
        self.tfo(net, of).contains(&node)
    }

    /// Read-only variant of [`SideTables::in_tfo`] for shared (`&self`)
    /// use from the parallel sweep's worker threads: the level table
    /// short-circuits as usual, a memoized TFO set is consulted if one is
    /// present, and otherwise the reachability is recomputed on the spot
    /// *without* memoizing (the committer pre-warms the memo for the
    /// targets it hands out, so the recompute path is the exception).
    ///
    /// # Panics
    ///
    /// Panics if the tables are stale.
    #[must_use]
    pub fn in_tfo_frozen(&self, net: &Network, node: NodeId, of: NodeId) -> bool {
        self.assert_synced(net);
        if self.levels[node.index()] <= self.levels[of.index()] {
            return false;
        }
        if let Some(set) = self.tfo.get(&of) {
            return set.contains(&node);
        }
        let mut seen = HashSet::new();
        let mut stack: Vec<NodeId> = self.fanouts[of.index()].clone();
        while let Some(n) = stack.pop() {
            if n == node {
                return true;
            }
            if seen.insert(n) {
                stack.extend(self.fanouts[n.index()].iter().copied());
            }
        }
        false
    }

    /// The memoized TFO set of `of`, if one is cached. Read-only companion
    /// to [`SideTables::tfo`] for shared (`&self`) consumers.
    ///
    /// # Panics
    ///
    /// Panics if the tables are stale.
    #[must_use]
    pub fn tfo_cached(&self, net: &Network, of: NodeId) -> Option<&HashSet<NodeId>> {
        self.assert_synced(net);
        self.tfo.get(&of)
    }

    /// (hits, misses) of the memoized-TFO cache since construction.
    #[must_use]
    pub fn tfo_cache_stats(&self) -> (u64, u64) {
        (self.tfo_hits, self.tfo_misses)
    }

    /// Extends the tables over nodes created since the last
    /// synchronisation (ids at or past the previous bound). Must be called
    /// before [`SideTables::apply_replace`] when an edit both adds nodes
    /// and rewires an existing one.
    pub fn sync_new_nodes(&mut self, net: &Network) {
        self.epoch += 1;
        let old_bound = self.fanouts.len();
        if net.id_bound() == old_bound {
            self.stamp.mark(net);
            return;
        }
        self.fanouts.resize(net.id_bound(), Vec::new());
        self.levels.resize(net.id_bound(), 0);
        let mut touched: HashSet<NodeId> = HashSet::new();
        for idx in old_bound..net.id_bound() {
            let id = NodeId(idx);
            let Some(node) = net.node_opt(id) else {
                continue;
            };
            for &f in node.fanins() {
                self.fanouts[f.index()].push(id);
                touched.insert(f);
            }
            // Fanins of a fresh node already exist, so its level is final.
            self.levels[idx] = node
                .fanins()
                .iter()
                .map(|f| self.levels[f.index()] + 1)
                .max()
                .unwrap_or(0);
        }
        // A cached TFO that reaches a new node's fanin now also reaches the
        // new node: drop it.
        self.invalidate_touching(&touched);
        self.stamp.mark(net);
    }

    /// Patches the tables after `net.replace_function(id, ...)` succeeded.
    /// `old_fanins` is the fanin list captured *before* the edit.
    ///
    /// Repairs fanout lists from the fanin diff, relevels the affected
    /// downstream region, and invalidates only the memoized TFO sets that
    /// could see a changed edge.
    pub fn apply_replace(&mut self, net: &Network, id: NodeId, old_fanins: &[NodeId]) {
        self.epoch += 1;
        let new_fanins = net.node(id).fanins();
        for &f in old_fanins {
            if !new_fanins.contains(&f) {
                self.fanouts[f.index()].retain(|&o| o != id);
            }
        }
        for &f in new_fanins {
            if !old_fanins.contains(&f) {
                self.fanouts[f.index()].push(id);
            }
        }
        // Relevel: only nodes whose level actually changes propagate.
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let node = net.node(n);
            let lvl = node
                .fanins()
                .iter()
                .map(|f| self.levels[f.index()] + 1)
                .max()
                .unwrap_or(0);
            if self.levels[n.index()] != lvl {
                self.levels[n.index()] = lvl;
                stack.extend(self.fanouts[n.index()].iter().copied());
            }
        }
        // A cached TFO changes only if a changed edge `f -> id` was (or now
        // is) reachable from the cached node, i.e. `f` is the node itself
        // or in its cached set.
        let mut touched: HashSet<NodeId> = old_fanins
            .iter()
            .chain(new_fanins.iter())
            .copied()
            .collect();
        touched.insert(id);
        self.invalidate_touching(&touched);
        self.stamp.mark(net);
    }

    /// Patches the tables after `net.remove_node(id)` succeeded. The node
    /// had no fanouts, so only its fanins' fanout lists shrink; levels and
    /// other nodes' TFO sets are unaffected (they may retain the dead id
    /// in cached sets, which is harmless — nothing can name it as a
    /// divisor or target).
    pub fn apply_remove(&mut self, net: &Network, id: NodeId, old_fanins: &[NodeId]) {
        self.epoch += 1;
        for &f in old_fanins {
            self.fanouts[f.index()].retain(|&o| o != id);
        }
        self.tfo.remove(&id);
        self.stamp.mark(net);
    }

    fn invalidate_touching(&mut self, touched: &HashSet<NodeId>) {
        if touched.is_empty() {
            return;
        }
        self.tfo
            .retain(|of, set| !touched.contains(of) && touched.iter().all(|t| !set.contains(t)));
    }
}

/// Longest-path levels via one pass over a topological order.
fn compute_levels(net: &Network, fanouts: &[Vec<NodeId>]) -> Vec<u32> {
    let mut levels = vec![0u32; net.id_bound()];
    let mut indegree = vec![0usize; net.id_bound()];
    let mut queue: Vec<NodeId> = Vec::new();
    for id in net.node_ids() {
        indegree[id.index()] = net.node(id).fanins().len();
        if indegree[id.index()] == 0 {
            queue.push(id);
        }
    }
    while let Some(id) = queue.pop() {
        for &o in &fanouts[id.index()] {
            let lvl = levels[id.index()] + 1;
            if lvl > levels[o.index()] {
                levels[o.index()] = lvl;
            }
            indegree[o.index()] -= 1;
            if indegree[o.index()] == 0 {
                queue.push(o);
            }
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolsubst_cube::parse_sop;

    /// a, b, c inputs; g = ab; h = g + c; k = h·a.
    fn chain() -> (Network, Vec<NodeId>) {
        let mut net = Network::new("chain");
        let a = net.add_input("a").expect("a");
        let b = net.add_input("b").expect("b");
        let c = net.add_input("c").expect("c");
        let g = net
            .add_node("g", vec![a, b], parse_sop(2, "ab").expect("p"))
            .expect("g");
        let h = net
            .add_node("h", vec![g, c], parse_sop(2, "a + b").expect("p"))
            .expect("h");
        let k = net
            .add_node("k", vec![h, a], parse_sop(2, "ab").expect("p"))
            .expect("k");
        net.add_output("k", k).expect("out");
        (net, vec![a, b, c, g, h, k])
    }

    fn assert_matches_fresh(side: &mut SideTables, net: &Network) {
        let fresh = net.fanouts();
        for id in net.node_ids() {
            let mut got = side.fanouts(net, id).to_vec();
            let mut want = fresh[id.index()].clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "fanouts of {id}");
            let got_tfo: HashSet<NodeId> = side.tfo(net, id).clone();
            let want_tfo: HashSet<NodeId> = net.tfo(id).into_iter().collect();
            assert_eq!(got_tfo, want_tfo, "tfo of {id}");
        }
        // Level invariant: strictly increasing along every edge.
        for id in net.node_ids() {
            for &f in net.node(id).fanins() {
                assert!(
                    side.level(net, f) < side.level(net, id),
                    "level edge {f}->{id}"
                );
            }
        }
    }

    #[test]
    fn build_matches_recompute() {
        let (net, ids) = chain();
        let mut side = SideTables::build(&net);
        assert_matches_fresh(&mut side, &net);
        assert_eq!(side.level(&net, ids[0]), 0); // a
        assert_eq!(side.level(&net, ids[3]), 1); // g
        assert_eq!(side.level(&net, ids[4]), 2); // h
        assert_eq!(side.level(&net, ids[5]), 3); // k
    }

    #[test]
    fn stale_queries_panic() {
        let (mut net, ids) = chain();
        let side = SideTables::build(&net);
        net.replace_function(ids[3], vec![ids[0]], parse_sop(1, "a").expect("p"))
            .expect("replace");
        assert!(!side.is_synced(&net));
        let result = std::panic::catch_unwind(|| side.fanouts(&net, ids[0]).len());
        assert!(result.is_err(), "stale query must panic");
    }

    #[test]
    fn apply_replace_matches_fresh_build() {
        let (mut net, ids) = chain();
        let (a, _b, c, g, h, _k) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        let mut side = SideTables::build(&net);
        // Warm the memo so invalidation is exercised.
        for &id in &ids {
            side.tfo(&net, id);
        }
        // Rewire h from {g, c} to {a, c}: drops edge g->h, adds a->h.
        let old = net.node(h).fanins().to_vec();
        net.replace_function(h, vec![a, c], parse_sop(2, "ab").expect("p"))
            .expect("replace");
        side.apply_replace(&net, h, &old);
        assert_matches_fresh(&mut side, &net);
        // g no longer reaches anything.
        assert!(side.tfo(&net, g).is_empty());
    }

    #[test]
    fn sync_new_nodes_extends_and_invalidates() {
        let (mut net, ids) = chain();
        let (a, b, h) = (ids[0], ids[1], ids[4]);
        let mut side = SideTables::build(&net);
        side.tfo(&net, a); // warm: must be invalidated (new node hangs off a)
        side.tfo(&net, h); // warm: must survive (h does not reach a or b)
        let m = net
            .add_node("m", vec![a, b], parse_sop(2, "a + b").expect("p"))
            .expect("m");
        side.sync_new_nodes(&net);
        assert_matches_fresh(&mut side, &net);
        assert!(side.tfo(&net, a).contains(&m));
    }

    #[test]
    fn apply_remove_matches_fresh_build() {
        let (mut net, ids) = chain();
        let (a, h, k) = (ids[0], ids[4], ids[5]);
        let mut side = SideTables::build(&net);
        // Detach k from the outputs is not possible; instead remove a
        // freshly added leaf node.
        let m = net
            .add_node("m", vec![a, h], parse_sop(2, "ab").expect("p"))
            .expect("m");
        side.sync_new_nodes(&net);
        let old = net.node(m).fanins().to_vec();
        net.remove_node(m).expect("remove");
        side.apply_remove(&net, m, &old);
        assert!(!side.fanouts(&net, a).contains(&m));
        assert!(!side.fanouts(&net, h).contains(&m));
        assert!(side.fanouts(&net, h).contains(&k));
    }

    #[test]
    fn frozen_in_tfo_matches_memoized_cold_and_warm() {
        let (mut net, ids) = chain();
        let mut side = SideTables::build(&net);
        let epoch0 = side.epoch();
        // Cold: no memo present, the frozen query recomputes on the spot.
        for &x in &ids {
            for &y in &ids {
                let want = net.tfo(y).contains(&x);
                assert_eq!(side.in_tfo_frozen(&net, x, y), want, "cold ({x}, {y})");
            }
        }
        // Warm the memo, rewire, patch — answers must still agree.
        for &id in &ids {
            side.tfo(&net, id);
        }
        let h = ids[4];
        let old = net.node(h).fanins().to_vec();
        net.replace_function(h, vec![ids[0], ids[2]], parse_sop(2, "ab").expect("p"))
            .expect("replace");
        side.apply_replace(&net, h, &old);
        assert!(side.epoch() > epoch0, "patching must advance the epoch");
        for &x in &ids {
            for &y in &ids {
                let want = net.tfo(y).contains(&x);
                assert_eq!(side.in_tfo_frozen(&net, x, y), want, "warm ({x}, {y})");
                assert_eq!(side.in_tfo(&net, x, y), want, "memoized ({x}, {y})");
            }
        }
    }

    #[test]
    fn in_tfo_level_short_circuit_is_sound() {
        let (net, ids) = chain();
        let mut side = SideTables::build(&net);
        for &x in &ids {
            for &y in &ids {
                let want = net.tfo(y).contains(&x);
                assert_eq!(side.in_tfo(&net, x, y), want, "in_tfo({x}, {y})");
            }
        }
    }
}
