//! Minimal BLIF reader/writer covering the combinational subset used by
//! the workloads: `.model`, `.inputs`, `.outputs`, `.names`, `.end`.

use crate::{Network, NodeId};
use boolsubst_cube::{Cover, Cube, Lit};
use std::collections::HashMap;
use std::fmt;

/// Error produced when parsing BLIF text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBlifError {
    line: usize,
    msg: String,
}

impl ParseBlifError {
    fn new(line: usize, msg: impl Into<String>) -> ParseBlifError {
        ParseBlifError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blif parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseBlifError {}

struct RawNames {
    line: usize,
    signals: Vec<String>,
    /// (input pattern, output char) rows.
    rows: Vec<(String, char)>,
}

/// Parses a combinational BLIF model into a [`Network`].
///
/// Supports `.model`, `.inputs`, `.outputs`, `.names` (single-output cover
/// rows with `0`, `1`, `-` input columns and `0`/`1` output), comments
/// (`#`), line continuations (`\`), and an optional `.exdc` section whose
/// covers (matched to outputs by name) become the network's external
/// don't-care network. Latches and subcircuits are rejected.
///
/// # Errors
///
/// Returns [`ParseBlifError`] on malformed input.
pub fn parse_blif(text: &str) -> Result<Network, ParseBlifError> {
    // Join continuation lines and strip comments first.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let without_comment = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let chunk = without_comment.trim_end();
        if pending.is_empty() {
            pending_line = line_no;
        }
        if let Some(stripped) = chunk.strip_suffix('\\') {
            pending.push_str(stripped);
            pending.push(' ');
            continue;
        }
        pending.push_str(chunk);
        let full = pending.trim().to_string();
        pending.clear();
        if !full.is_empty() {
            logical.push((pending_line, full));
        }
    }

    let mut model_name = String::from("unnamed");
    let mut input_names: Vec<String> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    let mut names_blocks: Vec<RawNames> = Vec::new();
    let mut current: Option<RawNames> = None;

    let logical_all = logical;
    let mut exdc_lines: Vec<(usize, String)> = Vec::new();
    let logical: Vec<(usize, String)> = {
        let mut main = Vec::new();
        let mut in_exdc = false;
        for (ln, s) in logical_all {
            if s.split_whitespace().next() == Some(".exdc") {
                in_exdc = true;
                continue;
            }
            if in_exdc {
                exdc_lines.push((ln, s));
            } else {
                main.push((ln, s));
            }
        }
        main
    };

    for (line_no, line) in logical {
        if line.starts_with('.') {
            if let Some(block) = current.take() {
                names_blocks.push(block);
            }
            let mut parts = line.split_whitespace();
            let directive = parts.next().expect("nonempty");
            match directive {
                ".model" => {
                    if let Some(n) = parts.next() {
                        model_name = n.to_string();
                    }
                }
                ".inputs" => input_names.extend(parts.map(str::to_string)),
                ".outputs" => output_names.extend(parts.map(str::to_string)),
                ".names" => {
                    let signals: Vec<String> = parts.map(str::to_string).collect();
                    if signals.is_empty() {
                        return Err(ParseBlifError::new(line_no, ".names with no signals"));
                    }
                    current = Some(RawNames {
                        line: line_no,
                        signals,
                        rows: Vec::new(),
                    });
                }
                ".end" => break,
                other => {
                    return Err(ParseBlifError::new(
                        line_no,
                        format!("unsupported directive {other:?}"),
                    ));
                }
            }
        } else if let Some(block) = current.as_mut() {
            let mut parts = line.split_whitespace();
            let (pattern, out) = match (parts.next(), parts.next(), parts.next()) {
                (Some(p), Some(o), None) => (p.to_string(), o),
                (Some(o), None, None) if block.signals.len() == 1 => (String::new(), o),
                _ => {
                    return Err(ParseBlifError::new(line_no, "malformed cover row"));
                }
            };
            if out.len() != 1 || !matches!(out, "0" | "1") {
                return Err(ParseBlifError::new(line_no, "cover output must be 0 or 1"));
            }
            block
                .rows
                .push((pattern, out.chars().next().expect("checked")));
        } else {
            return Err(ParseBlifError::new(line_no, "cover row outside .names"));
        }
    }
    if let Some(block) = current.take() {
        names_blocks.push(block);
    }

    let mut net = build_network(&model_name, &input_names, &output_names, &names_blocks)?;
    if !exdc_lines.is_empty() {
        let dc = parse_exdc_section(&exdc_lines, &input_names, &output_names)?;
        net.set_exdc(dc)
            .map_err(|e| ParseBlifError::new(0, e.to_string()))?;
    }
    Ok(net)
}

/// Parses the `.exdc` section: `.names` blocks over the main model's
/// inputs, whose outputs (matched by name) mark don't-care input
/// combinations. Ends at `.end`.
fn parse_exdc_section(
    lines: &[(usize, String)],
    input_names: &[String],
    output_names: &[String],
) -> Result<Network, ParseBlifError> {
    let mut blocks: Vec<RawNames> = Vec::new();
    let mut current: Option<RawNames> = None;
    for (line_no, line) in lines {
        if line.starts_with('.') {
            if let Some(block) = current.take() {
                blocks.push(block);
            }
            let mut parts = line.split_whitespace();
            match parts.next().expect("nonempty") {
                ".names" => {
                    let signals: Vec<String> = parts.map(str::to_string).collect();
                    if signals.is_empty() {
                        return Err(ParseBlifError::new(*line_no, ".names with no signals"));
                    }
                    current = Some(RawNames {
                        line: *line_no,
                        signals,
                        rows: Vec::new(),
                    });
                }
                ".end" => break,
                other => {
                    return Err(ParseBlifError::new(
                        *line_no,
                        format!("unsupported directive {other:?} in .exdc"),
                    ));
                }
            }
        } else if let Some(block) = current.as_mut() {
            let mut parts = line.split_whitespace();
            let (pattern, out) = match (parts.next(), parts.next(), parts.next()) {
                (Some(p), Some(o), None) => (p.to_string(), o),
                (Some(o), None, None) if block.signals.len() == 1 => (String::new(), o),
                _ => return Err(ParseBlifError::new(*line_no, "malformed cover row")),
            };
            if out.len() != 1 || !matches!(out, "0" | "1") {
                return Err(ParseBlifError::new(*line_no, "cover output must be 0 or 1"));
            }
            block
                .rows
                .push((pattern, out.chars().next().expect("checked")));
        } else {
            return Err(ParseBlifError::new(
                *line_no,
                "cover row outside .names in .exdc",
            ));
        }
    }
    if let Some(block) = current.take() {
        blocks.push(block);
    }
    // The DC network's outputs are the blocks whose output signal names a
    // main-model output.
    let dc_outputs: Vec<String> = blocks
        .iter()
        .filter_map(|b| {
            let name = b.signals.last().expect("nonempty");
            output_names.contains(name).then(|| name.clone())
        })
        .collect();
    build_network("exdc", input_names, &dc_outputs, &blocks)
}

fn build_network(
    model_name: &str,
    input_names: &[String],
    output_names: &[String],
    blocks: &[RawNames],
) -> Result<Network, ParseBlifError> {
    let mut net = Network::new(model_name);
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    for n in input_names {
        let id = net
            .add_input(n)
            .map_err(|e| ParseBlifError::new(0, e.to_string()))?;
        ids.insert(n.clone(), id);
    }

    // Topologically sort the blocks: a block is ready when all its fanins
    // are defined.
    let mut remaining: Vec<&RawNames> = blocks.iter().collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|block| {
            let out_name = block.signals.last().expect("nonempty");
            let fanin_names = &block.signals[..block.signals.len() - 1];
            if !fanin_names.iter().all(|f| ids.contains_key(f)) {
                return true; // not ready yet
            }
            let fanins: Vec<NodeId> = fanin_names.iter().map(|f| ids[f]).collect();
            let cover = match rows_to_cover(block, fanin_names.len()) {
                Ok(c) => c,
                Err(_) => return true, // surfaced below via the stall check
            };
            match net.add_node(out_name, fanins, cover) {
                Ok(id) => {
                    ids.insert(out_name.clone(), id);
                    false
                }
                Err(_) => true,
            }
        });
        if remaining.len() == before {
            // Stalled: report the first offender precisely.
            let block = remaining[0];
            let fanin_names = &block.signals[..block.signals.len() - 1];
            rows_to_cover(block, fanin_names.len())?;
            let missing = fanin_names
                .iter()
                .find(|f| !ids.contains_key(*f))
                .cloned()
                .unwrap_or_else(|| "?".into());
            return Err(ParseBlifError::new(
                block.line,
                format!("undefined or cyclic signal {missing:?}"),
            ));
        }
    }

    for o in output_names {
        let id = *ids
            .get(o)
            .ok_or_else(|| ParseBlifError::new(0, format!("undriven output {o:?}")))?;
        net.add_output(o, id)
            .map_err(|e| ParseBlifError::new(0, e.to_string()))?;
    }
    Ok(net)
}

fn rows_to_cover(block: &RawNames, num_vars: usize) -> Result<Cover, ParseBlifError> {
    let mut on = Cover::new(num_vars);
    let mut off = Cover::new(num_vars);
    let mut out_value: Option<char> = None;
    for (pattern, out) in &block.rows {
        if let Some(prev) = out_value {
            if prev != *out {
                return Err(ParseBlifError::new(
                    block.line,
                    "mixed 0 and 1 output rows in one .names",
                ));
            }
        }
        out_value = Some(*out);
        if pattern.len() != num_vars {
            return Err(ParseBlifError::new(
                block.line,
                format!("pattern {pattern:?} has wrong width (want {num_vars})"),
            ));
        }
        let mut cube = Cube::universe(num_vars);
        for (v, ch) in pattern.chars().enumerate() {
            match ch {
                '1' => cube.restrict(Lit::pos(v)),
                '0' => cube.restrict(Lit::neg(v)),
                '-' => {}
                other => {
                    return Err(ParseBlifError::new(
                        block.line,
                        format!("bad pattern character {other:?}"),
                    ));
                }
            }
        }
        match out {
            '1' => on.push(cube),
            _ => off.push(cube),
        }
    }
    match out_value {
        None => Ok(Cover::new(num_vars)), // no rows: constant 0
        Some('1') => Ok(on),
        Some(_) => Ok(off.complement()),
    }
}

/// Serializes a network as BLIF text.
#[must_use]
pub fn write_blif(net: &Network) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, ".model {}", net.name());
    let _ = write!(s, ".inputs");
    for &i in net.inputs() {
        let _ = write!(s, " {}", net.node(i).name());
    }
    let _ = writeln!(s);
    let _ = write!(s, ".outputs");
    for (name, _) in net.outputs() {
        let _ = write!(s, " {name}");
    }
    let _ = writeln!(s);
    for id in net.topo_order() {
        let node = net.node(id);
        let Some(cover) = node.cover() else { continue };
        let _ = write!(s, ".names");
        for &f in node.fanins() {
            let _ = write!(s, " {}", net.node(f).name());
        }
        let _ = writeln!(s, " {}", node.name());
        let n = node.fanins().len();
        if cover.is_empty() {
            continue; // constant 0: no rows
        }
        for cube in cover.cubes() {
            let mut row = String::with_capacity(n + 2);
            for v in 0..n {
                row.push(match cube.var_state(v) {
                    boolsubst_cube::VarState::Pos => '1',
                    boolsubst_cube::VarState::Neg => '0',
                    _ => '-',
                });
            }
            let _ = writeln!(s, "{row} 1");
        }
    }
    // Outputs whose name differs from the driver need a buffer.
    for (name, id) in net.outputs() {
        if net.node(*id).name() != name {
            let _ = writeln!(s, ".names {} {}", net.node(*id).name(), name);
            let _ = writeln!(s, "1 1");
        }
    }
    if let Some(dc) = net.exdc() {
        s.push_str(".exdc\n");
        for id in dc.topo_order() {
            let node = dc.node(id);
            let Some(cover) = node.cover() else { continue };
            let _ = write!(s, ".names");
            for &f in node.fanins() {
                let _ = write!(s, " {}", dc.node(f).name());
            }
            let _ = writeln!(s, " {}", node.name());
            for cube in cover.cubes() {
                let mut row = String::new();
                for v in 0..node.fanins().len() {
                    row.push(match cube.var_state(v) {
                        boolsubst_cube::VarState::Pos => '1',
                        boolsubst_cube::VarState::Neg => '0',
                        _ => '-',
                    });
                }
                let _ = writeln!(s, "{row} 1");
            }
        }
    }
    s.push_str(".end\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a tiny sample
.model sample
.inputs a b c
.outputs f
.names a b g
11 1
.names g c f
1- 1
-1 1
.end
";

    #[test]
    fn parse_sample() {
        let net = parse_blif(SAMPLE).expect("parse");
        net.check_invariants();
        assert_eq!(net.name(), "sample");
        assert_eq!(net.inputs().len(), 3);
        assert_eq!(net.outputs().len(), 1);
        // f = ab + c
        assert_eq!(net.eval_outputs(&[true, true, false]), vec![true]);
        assert_eq!(net.eval_outputs(&[true, false, false]), vec![false]);
        assert_eq!(net.eval_outputs(&[false, false, true]), vec![true]);
    }

    #[test]
    fn roundtrip() {
        let net = parse_blif(SAMPLE).expect("parse");
        let text = write_blif(&net);
        let again = parse_blif(&text).expect("reparse");
        for m in 0u32..8 {
            let inputs: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(net.eval_outputs(&inputs), again.eval_outputs(&inputs));
        }
    }

    #[test]
    fn zero_rows_complemented() {
        let text = "\
.model inv
.inputs a b
.outputs f
.names a b f
11 0
.end
";
        let net = parse_blif(text).expect("parse");
        // f = (ab)' = a' + b'
        assert_eq!(net.eval_outputs(&[true, true]), vec![false]);
        assert_eq!(net.eval_outputs(&[false, true]), vec![true]);
    }

    #[test]
    fn constant_nodes() {
        let text = "\
.model consts
.inputs a
.outputs one zero f
.names one
1
.names zero
.names a one f
11 1
.end
";
        let net = parse_blif(text).expect("parse");
        assert_eq!(net.eval_outputs(&[true]), vec![true, false, true]);
        assert_eq!(net.eval_outputs(&[false]), vec![true, false, false]);
    }

    #[test]
    fn out_of_order_blocks() {
        let text = "\
.model ooo
.inputs a b
.outputs f
.names g b f
11 1
.names a b g
10 1
.end
";
        let net = parse_blif(text).expect("parse");
        assert_eq!(net.eval_outputs(&[true, false]), vec![false]);
    }

    #[test]
    fn errors_reported() {
        assert!(parse_blif(".model m\n.inputs a\n.outputs f\n.names a f\n2 1\n.end\n").is_err());
        assert!(parse_blif(".model m\n.inputs a\n.outputs f\n.end\n").is_err());
        assert!(parse_blif("11 1\n").is_err());
        // Cycle: f depends on g depends on f.
        let cyc = ".model c\n.inputs a\n.outputs f\n.names g f\n1 1\n.names f g\n1 1\n.end\n";
        assert!(parse_blif(cyc).is_err());
    }

    #[test]
    fn exdc_section_roundtrip() {
        let text = "\
.model dcdemo
.inputs a b
.outputs f
.names a b f
11 1
.exdc
.names a b f
00 1
.end
";
        let net = parse_blif(text).expect("parse");
        let dc = net.exdc().expect("exdc attached");
        assert_eq!(dc.outputs().len(), 1);
        // DC marks the input 00 as unconstrained.
        assert!(dc.eval_outputs(&[false, false])[0]);
        assert!(!dc.eval_outputs(&[true, false])[0]);
        let again = parse_blif(&write_blif(&net)).expect("reparse");
        assert!(again.exdc().is_some());
        assert_eq!(
            again.exdc().expect("exdc").eval_outputs(&[false, false]),
            vec![true]
        );
    }

    #[test]
    fn continuation_lines() {
        let text = ".model m\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n";
        let net = parse_blif(text).expect("parse");
        assert_eq!(net.inputs().len(), 2);
    }
}
